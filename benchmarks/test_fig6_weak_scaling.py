"""Fig 6: weak scaling, 1.2M -> 1077M elements, 1 -> 1000 processors.

Paper claims: (1) no implementation achieves optimal speedup (communication
and partitioning overhead grow with P); (2) PM-octree weak-scales like
in-core; (3) out-of-core is far slower throughout.
"""

import pytest

from repro.harness import experiments as E
from repro.harness.report import print_table
from repro.parallel.runtime import Backend


def test_fig6_weak_scaling(benchmark, weak_scaling_runs):
    runs = benchmark.pedantic(
        lambda: weak_scaling_runs, rounds=1, iterations=1
    )
    rows = []
    for i, nranks in enumerate(E.WEAK_POINTS):
        rows.append((
            nranks,
            f"{nranks * 1e6:.3g}",
            runs[Backend.IN_CORE][i].makespan_s,
            runs[Backend.PM_OCTREE][i].makespan_s,
            runs[Backend.OUT_OF_CORE][i].makespan_s,
            f"{runs[Backend.PM_OCTREE][i].scale_factor:.0f}x",
        ))
    print_table(
        "Fig 6: weak-scaling execution time (simulated seconds)",
        ["P", "elements", "in-core (s)", "PM-octree (s)",
         "out-of-core (s)", "elem scale"],
        rows,
    )
    pm = [r.makespan_s for r in runs[Backend.PM_OCTREE]]
    ic = [r.makespan_s for r in runs[Backend.IN_CORE]]
    ooc = [r.makespan_s for r in runs[Backend.OUT_OF_CORE]]

    # (3) out-of-core is the clear loser at every point
    for a, b, c in zip(ic, pm, ooc):
        assert c > b > a * 0.8  # ooc worst; pm >= roughly in-core
    # (2) PM weak-scales like in-core: the PM/in-core ratio stays bounded
    ratios = [p / i for p, i in zip(pm, ic)]
    assert max(ratios) / min(ratios) < 2.0
    # (1) sub-optimal speedup: execution time grows from P=1 to P=1000
    assert pm[-1] > pm[0]
