"""§5.6: failure recovery (6.75M elements, 100 processes, killed at step 20).

Paper:
* scenario 1 (same nodes reboot): in-core 42.9 s (re-read snapshot file),
  PM-octree 2.1 s (mark + return ADDR(V_{i-1})), out-of-core immediate;
* scenario 2 (one node replaced): in-core unchanged (snapshot on shared
  PFS), PM-octree 3.48 s (+1.38 s to move the octant replica), out-of-core
  cannot recover (no replication).
"""

from repro.harness import experiments as E
from repro.harness.report import print_table


def test_sec56_recovery(benchmark):
    res = benchmark.pedantic(E.exp_recovery, rounds=1, iterations=1)
    print_table(
        "§5.6: simulated restart times",
        ["implementation", "same node (s)", "new node (s)"],
        [
            ("in-core", res.incore_same_node_s, res.incore_new_node_s),
            ("PM-octree", res.pm_same_node_s, res.pm_new_node_s),
            ("out-of-core", res.ooc_same_node_s,
             "unrecoverable" if not res.ooc_new_node_recoverable else "-"),
        ],
    )
    print(f"   PM replica transfer component: {res.pm_replica_transfer_s:.3f} s")

    # scenario 1 ordering: out-of-core ~immediate < PM << in-core
    assert res.pm_same_node_s < res.incore_same_node_s / 5.0
    assert res.ooc_same_node_s < res.pm_same_node_s
    # scenario 2: PM pays a transfer surcharge but stays near-instant
    assert res.pm_new_node_s > res.pm_same_node_s
    assert res.pm_new_node_s < res.incore_new_node_s
    # in-core reads from the shared PFS either way
    assert res.incore_new_node_s == res.incore_same_node_s
    # out-of-core data died with the node
    assert not res.ooc_new_node_recoverable
