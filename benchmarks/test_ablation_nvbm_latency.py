"""Sensitivity ablation: how slow must NVBM be before PM-octree suffers?

The paper assumes NVBM writes at 2.5x DRAM (Table 2).  Real parts vary; this
sweep scales the NVBM latencies from 1x to 4x the Table-2 values and tracks
PM-octree's slowdown over in-core.  The design premise requires the gap to
widen monotonically with the latency — that is the cost the dynamic
transformation exists to hide.
"""

from repro.harness import experiments as E
from repro.harness.report import print_table


def test_ablation_nvbm_latency(benchmark):
    rows = benchmark.pedantic(
        E.exp_nvbm_latency_sensitivity, rounds=1, iterations=1
    )
    print_table(
        "Ablation: NVBM latency sensitivity (write latency x Table-2)",
        ["latency factor", "PM time (s)", "in-core time (s)",
         "PM slowdown vs in-core"],
        [
            (r.write_latency_factor, r.pm_time_s, r.incore_time_s,
             f"{r.slowdown_vs_incore:.2f}x")
            for r in rows
        ],
    )
    slowdowns = [r.slowdown_vs_incore for r in rows]
    # gap widens monotonically with NVBM latency
    assert all(a < b for a, b in zip(slowdowns, slowdowns[1:]))
    # at the Table-2 point PM stays within ~3x of in-core even with only a
    # quarter of the tree budgeted into C0
    assert slowdowns[0] < 3.0
