"""Fig 9: strong scaling of the three implementations, 150M elements.

Paper: all three decrease roughly linearly with P, and the in-core lead
over PM-octree *shrinks* as ranks grow (48% faster at 240 ranks -> 36% at
1000) because more of each rank's octants fit in its C0 DRAM.
"""

from repro.harness import experiments as E
from repro.harness.report import print_table
from repro.parallel.runtime import Backend


def test_fig9_strong_compare(benchmark, strong_scaling_runs):
    runs = benchmark.pedantic(
        lambda: strong_scaling_runs, rounds=1, iterations=1
    )
    rows = []
    for i, p in enumerate(E.STRONG_POINTS):
        ic = runs[Backend.IN_CORE][i].makespan_s
        pm = runs[Backend.PM_OCTREE][i].makespan_s
        ooc = runs[Backend.OUT_OF_CORE][i].makespan_s
        rows.append((p, ic, pm, ooc, f"{100 * (pm - ic) / ic:.0f}%"))
    print_table(
        "Fig 9: strong scaling, three implementations (150M elements)",
        ["P", "in-core (s)", "PM-octree (s)", "out-of-core (s)",
         "in-core lead"],
        rows,
    )
    for backend in Backend:
        times = [r.makespan_s for r in runs[backend]]
        # time decreases monotonically with more processors
        assert all(a > b for a, b in zip(times, times[1:]))
    # ordering holds at every point: in-core <= PM << out-of-core
    for i in range(len(E.STRONG_POINTS)):
        assert runs[Backend.IN_CORE][i].makespan_s \
            <= runs[Backend.PM_OCTREE][i].makespan_s
        assert runs[Backend.PM_OCTREE][i].makespan_s \
            < runs[Backend.OUT_OF_CORE][i].makespan_s
