"""Shared state for the benchmark suite.

Figs 6 and 7 are two views of the same weak-scaling runs and Figs 8 and 9
share the strong-scaling runs, so those run sets are computed once per
session and cached here.
"""

import pytest

from repro.harness import experiments as E
from repro.parallel.runtime import Backend

_cache = {}


@pytest.fixture(scope="session")
def weak_scaling_runs():
    if "weak" not in _cache:
        _cache["weak"] = E.exp_weak_scaling()
    return _cache["weak"]


@pytest.fixture(scope="session")
def strong_scaling_runs():
    if "strong" not in _cache:
        _cache["strong"] = E.exp_strong_scaling(backends=tuple(Backend))
    return _cache["strong"]
