"""§1 claim: octree meshing is write-intensive.

Paper: "memory writes account for up to 72%, and 41% on average, of the
total number of memory accesses" in the fluid-dynamics simulations studied.
"""

from repro.harness import experiments as E
from repro.harness.report import print_table


def test_write_intensity(benchmark):
    res = benchmark.pedantic(E.exp_write_intensity, rounds=1, iterations=1)
    print_table(
        "§1: memory write intensity of the droplet workload",
        ["metric", "value"],
        [
            ("average write fraction", f"{res.avg_pct:.1f}%"),
            ("maximum write fraction", f"{res.max_pct:.1f}%"),
            ("steps sampled", len(res.per_step_pct)),
        ],
    )
    # the workload is meaningfully write-intensive; our solver does fewer
    # sweeps per step than full Gerris so the absolute band sits below the
    # paper's 41%/72%, with the same shape (peak during construction storms)
    assert 15.0 < res.avg_pct < 60.0
    assert res.max_pct > 1.4 * res.avg_pct
    assert res.max_pct < 90.0
