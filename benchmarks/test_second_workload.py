"""§6 future work: PM-octree under a second AMR application.

Runs the wavefront workload through the same three-implementation
comparison as Fig 6's droplet runs.  The paper's conclusions must carry
over to a workload with a very different hot-region shape (a ring sweeping
the whole domain instead of a jet): in-core fastest, PM-octree close,
out-of-core far behind.
"""

from repro.config import SolverConfig
from repro.harness.report import print_table
from repro.parallel.runtime import Backend, RunConfig, run_parallel

SOLVER = SolverConfig(dim=2, min_level=2, max_level=5, dt=0.02)


def test_wave_workload_across_backends(benchmark):
    def run():
        out = {}
        for backend in Backend:
            out[backend] = run_parallel(RunConfig(
                backend=backend, nranks=16, target_elements=16e6,
                steps=10, workload="wave", solver=SOLVER,
            ))
        return out

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    print_table(
        "Second workload (expanding wavefront), 16 ranks / 16M elements",
        ["backend", "time (s)", "NVBM writes", "octants (actual)"],
        [
            (b.value, r.makespan_s, r.nvbm_writes, r.actual_octants)
            for b, r in results.items()
        ],
    )
    ic = results[Backend.IN_CORE].makespan_s
    pm = results[Backend.PM_OCTREE].makespan_s
    ooc = results[Backend.OUT_OF_CORE].makespan_s
    # the paper's ordering carries over to the second application
    assert ic < pm < ooc
    # PM stays within a small factor of in-core (the ring's hot set is much
    # larger than the jet's, so the factor is higher than Fig 6's ~1.6x)
    assert pm < 5.0 * ic
    assert ooc > 5.0 * pm
