"""Fig 8: strong scaling of PM-octree at 150M elements, 240 -> 1000 ranks.

Paper: (a) the speedup is close to ideal over this range; (b) the breakdown
across routines shows no major fluctuation as P grows.
"""

from repro.harness import experiments as E
from repro.harness.report import print_table
from repro.parallel.runtime import Backend


def test_fig8_strong_scaling(benchmark, strong_scaling_runs):
    runs = benchmark.pedantic(
        lambda: strong_scaling_runs[Backend.PM_OCTREE], rounds=1, iterations=1
    )
    base_p = E.STRONG_POINTS[0]
    base_t = runs[0].makespan_s
    rows = []
    for p, r in zip(E.STRONG_POINTS, runs):
        rows.append((p, r.makespan_s, base_t / r.makespan_s, p / base_p))
    print_table(
        "Fig 8a: strong scaling, 150M elements (PM-octree)",
        ["P", "time (s)", "speedup", "ideal"],
        rows,
    )
    bds = [E.meshing_breakdown(r) for r in runs]
    print_table(
        "Fig 8b: breakdown stability",
        ["P", "construct%", "refine%", "balance%", "partition%"],
        [
            (p, bd["construct"], bd["refine"], bd["balance"], bd["partition"])
            for p, bd in zip(E.STRONG_POINTS, bds)
        ],
    )
    # (a) speedup within 25% of ideal at every point
    for p, r in zip(E.STRONG_POINTS, runs):
        speedup = base_t / r.makespan_s
        ideal = p / base_p
        assert speedup > 0.75 * ideal
    # (b) no phase's share swings wildly with P
    for key in ("refine", "balance"):
        shares = [bd[key] for bd in bds]
        assert max(shares) - min(shares) < 40.0
