"""Fig 10: impact of the DRAM size configured for the C0 tree.

Paper anchors (6.75M elements, 100 ranks, 20 GB max in-core demand):
execution time falls from 233.5 s at 1 GB to 89.1 s at 8 GB (2.6x); C0/C1
merge count falls from 491 at 1 GB to once-per-step at 8 GB; at 8 GB
PM-octree is very close to in-core; even at 1 GB it clearly beats
out-of-core.
"""

from repro.harness import experiments as E
from repro.harness.report import print_table


def test_fig10_dram_size(benchmark):
    rows = benchmark.pedantic(E.exp_fig10, rounds=1, iterations=1)
    print_table(
        "Fig 10: execution time vs DRAM configured for C0",
        ["configuration", "C0 budget (octants)", "time (s)", "merges"],
        [(r.label, r.dram_budget_octants, r.makespan_s, r.merges)
         for r in rows],
    )
    by_label = {r.label: r for r in rows}
    pm = [r for r in rows if r.label.startswith("PM-octree")]
    # larger budget -> faster (allowing small noise between adjacent points)
    assert pm[-1].makespan_s < pm[0].makespan_s
    # at the largest budget PM is close to in-core (within ~60%); the paper
    # reports "very close" for the same reason: PM persists only deltas
    incore = by_label["in-core"].makespan_s
    assert pm[-1].makespan_s < 1.6 * incore
    # even the smallest budget beats out-of-core by a wide margin (§5.4's
    # three reasons: page granularity, index lookups, pointer-free balance)
    assert by_label["out-of-core"].makespan_s > 3.0 * pm[0].makespan_s
    # (the paper's per-step merge-count anchor, 491 merges at 1 GB, does not
    # map onto this architecture's eviction counter — see EXPERIMENTS.md —
    # so merge counts are reported above but not asserted)