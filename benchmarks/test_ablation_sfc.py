"""SFC ablation: Morton vs Hilbert ordering for the Partition routine.

The paper partitions along a space-filling curve (the Salmon lineage it
cites); the curve choice sets the rank-boundary surface and therefore the
per-step ghost-exchange volume.  This ablation partitions the droplet
workload's (adaptive) mesh with both curves and compares edge cuts.
"""

from repro.config import DRAM_SPEC, SolverConfig
from repro.harness.report import print_table
from repro.nvbm.arena import MemoryArena
from repro.nvbm.clock import SimClock
from repro.nvbm.pointers import ARENA_DRAM
from repro.octree.tree import PointerOctree
from repro.parallel.sfc import compare_curves
from repro.solver.simulation import DropletSimulation


def _droplet_tree(steps=20, max_level=5):
    clock = SimClock()
    tree = PointerOctree(
        MemoryArena(ARENA_DRAM, DRAM_SPEC, clock, 1 << 17), dim=2
    )
    sim = DropletSimulation(
        tree, SolverConfig(dim=2, min_level=2, max_level=max_level, dt=0.01),
        clock=clock,
    )
    sim.run(steps)
    return tree


def test_ablation_sfc(benchmark):
    tree = _droplet_tree()

    def run():
        return {p: compare_curves(tree, nranks=p) for p in (6, 12, 24, 48)}

    cuts = benchmark.pedantic(run, rounds=1, iterations=1)
    print_table(
        "Ablation: partition edge cut by space-filling curve "
        "(droplet mesh)",
        ["ranks", "Morton cut", "Hilbert cut", "Hilbert saves"],
        [
            (p, c["morton"], c["hilbert"],
             f"{100 * (c['morton'] - c['hilbert']) / max(1, c['morton']):.0f}%")
            for p, c in cuts.items()
        ],
    )
    total_m = sum(c["morton"] for c in cuts.values())
    total_h = sum(c["hilbert"] for c in cuts.values())
    # Hilbert's locality wins in aggregate on the adaptive mesh
    assert total_h < total_m
    # and never loses badly at any point
    for c in cuts.values():
        assert c["hilbert"] <= 1.3 * c["morton"]
