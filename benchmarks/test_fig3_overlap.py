"""Fig 3: octant overlap ratio of V_{i-1}/V_i and memory per 1000 octants.

Paper: over 150 droplet-ejection steps the overlap ranges 39%-99%; sharing
reduces memory per 1000 octants by up to 1.98x vs keeping two full copies,
and at 99.5% overlap the footprint is only 1.01x a single copy.
"""

import numpy as np

from repro.harness import experiments as E
from repro.harness.report import print_table


def test_fig3_overlap_and_memory(benchmark):
    rows = benchmark.pedantic(E.exp_fig3, rounds=1, iterations=1)
    sampled = rows[:: max(1, len(rows) // 20)]
    print_table(
        "Fig 3: overlap ratio and memory usage per 1000 octants",
        ["step", "overlap", "octants", "KB/1000 oct",
         "reduction vs 2 copies", "factor vs 1 copy"],
        [
            (r.step, r.overlap_ratio, r.octants, r.kb_per_1000_octants,
             r.reduction_vs_two_copies, r.factor_vs_single_copy)
            for r in sampled
        ],
    )
    overlaps = np.array([r.overlap_ratio for r in rows])
    reductions = np.array([r.reduction_vs_two_copies for r in rows])
    factors = np.array([r.factor_vs_single_copy for r in rows])

    # paper: overlap spans a wide range, from ~0.39 up to ~0.99
    assert overlaps.min() < 0.5
    assert overlaps.max() > 0.95
    # paper: up to 1.98x memory reduction vs storing both versions fully
    assert reductions.max() > 1.9
    # paper: at the highest overlap the footprint is ~1.01x a single copy
    best = factors[int(np.argmax(overlaps))]
    assert best < 1.1
    # memory saving co-varies with overlap: high-overlap steps cost less
    hi = reductions[overlaps > 0.9].mean()
    lo = reductions[overlaps < 0.5].mean()
    assert hi > lo
