"""Table 2: characteristics of DRAM and NVBM as modelled.

Paper: DRAM 60/60 ns r/w, endurance > 1e16; NVBM 100/150 ns r/w, endurance
1e6-1e8 writes/bit (we model the midpoint 1e7).
"""

from repro.harness import experiments as E
from repro.harness.report import print_table


def test_table2_devices(benchmark):
    rows = benchmark.pedantic(E.exp_table2, rounds=1, iterations=1)
    print_table(
        "Table 2: Characteristics of DRAM and NVBM",
        ["Device", "Read (ns)", "Write (ns)", "Endurance (writes)"],
        rows,
    )
    devices = {r[0]: r for r in rows}
    assert devices["DRAM"][1:3] == (60.0, 60.0)
    assert devices["NVBM"][1:3] == (100.0, 150.0)
    # §1: NVBM write latency is 2.5x DRAM's
    assert devices["NVBM"][2] / devices["DRAM"][2] == 2.5
    assert devices["DRAM"][3] > 1e15
    assert 1e6 <= devices["NVBM"][3] <= 1e8
