"""Fig 11: effectiveness of the dynamic PM-octree layout transformation.

Paper (100 ranks, meshes 1.19M -> 224M elements): at small meshes the hot
octants fit DRAM anyway and transformation changes nothing; at 224M (C0
holds only ~7% of the octants) transformation cuts execution time by 24.7%
and NVBM writes by 31%.
"""

from repro.harness import experiments as E
from repro.harness.report import print_table


def test_fig11_transformation(benchmark):
    rows = benchmark.pedantic(E.exp_fig11, rounds=1, iterations=1)
    print_table(
        "Fig 11: execution time without/with dynamic transformation",
        ["elements", "time w/o (s)", "time w/ (s)", "time cut",
         "NVBM writes w/o", "w/", "write cut"],
        [
            (f"{r.target_elements:.3g}", r.time_without_s, r.time_with_s,
             f"{r.time_reduction_pct:.1f}%", r.nvbm_writes_without,
             r.nvbm_writes_with, f"{r.write_reduction_pct:.1f}%")
            for r in rows
        ],
    )
    # paper: at the small meshes the hot octants fit DRAM either way, so
    # transformation changes (almost) nothing
    small = rows[0]
    assert abs(small.time_reduction_pct) < 5.0
    # paper: at 224M elements transformation cuts time by 24.7% and NVBM
    # writes by 31% — we require the same shape at substantial magnitude
    big = rows[-1]
    assert big.time_reduction_pct > 10.0
    assert big.write_reduction_pct > 10.0
    assert big.time_reduction_pct > small.time_reduction_pct
    # it never makes things dramatically worse anywhere
    for r in rows:
        assert r.time_with_s < 1.25 * r.time_without_s
