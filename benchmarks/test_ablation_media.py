"""Out-of-core medium study + checkpoint-cadence trade-off.

Two supporting claims of §§1-2:
* Etree was designed for disks; the same workload on NVBM-behind-a-
  filesystem is orders of magnitude faster per page — yet §5 still rejects
  the design because the remaining software costs (index descents, page
  RMW, pointer-free balance) dominate on fast media.
* The in-core snapshot interval trades I/O cost against work lost at a
  crash; PM-octree persists every step for less than any cadence's cost
  because it writes deltas only.
"""

from repro.harness import experiments as E
from repro.harness.report import print_table


def test_etree_medium(benchmark):
    rows = benchmark.pedantic(E.exp_etree_medium, rounds=1, iterations=1)
    print_table(
        "Out-of-core medium: spinning disk vs NVBM filesystem",
        ["medium", "time (s)", "page reads", "page writes"],
        [(r.medium, r.makespan_s, r.page_reads, r.page_writes) for r in rows],
    )
    by = {r.medium: r for r in rows}
    # identical page traffic (same algorithm)...
    assert by["HDD"].page_reads == by["NVBM-fs"].page_reads
    assert by["HDD"].page_writes == by["NVBM-fs"].page_writes
    # ...but disks are 3+ orders of magnitude slower (§2: "4-5 orders")
    assert by["HDD"].makespan_s > 1e3 * by["NVBM-fs"].makespan_s


def test_checkpoint_cadence(benchmark):
    rows = benchmark.pedantic(E.exp_checkpoint_cadence, rounds=1, iterations=1)
    print_table(
        "In-core checkpoint cadence vs PM-octree per-step persistence",
        ["interval", "snapshot cost (s)", "E[lost steps]",
         "PM per-step persist (s)"],
        [
            (r.interval, r.checkpoint_cost_s, r.expected_lost_steps,
             r.pm_persist_cost_s)
            for r in rows
        ],
    )
    # denser checkpoints cost more I/O...
    costs = [r.checkpoint_cost_s for r in rows]
    assert all(a >= b for a, b in zip(costs, costs[1:]))
    # ...and sparser ones lose more work
    losses = [r.expected_lost_steps for r in rows]
    assert all(a <= b for a, b in zip(losses, losses[1:]))
    # PM persists EVERY step for less than in-core persisting every step
    every_step = rows[0]
    assert every_step.pm_persist_cost_s < every_step.checkpoint_cost_s
    # and PM's loss bound is zero steps by construction (persist each step)
