"""Fig 5: locality-oblivious vs locality-aware PM-octree layout.

Paper: with the hot subdomain's octants left in NVBM (oblivious layout), a
refinement pass over that subdomain serves ~89% more writes from NVBM than
under the locality-aware layout the dynamic transformation produces.
"""

from repro.harness import experiments as E
from repro.harness.report import print_table


def test_fig5_layout_writes(benchmark):
    res = benchmark.pedantic(E.exp_fig5, rounds=1, iterations=1)
    print_table(
        "Fig 5: NVBM writes served during a hot-subdomain update burst",
        ["layout", "NVBM writes"],
        [
            ("locality-oblivious (Fig 5a)", res.writes_oblivious),
            ("locality-aware (Fig 5b)", res.writes_aware),
            ("% more writes when oblivious", f"{res.pct_more_writes:.0f}%"),
        ],
    )
    # paper: ~89% more NVBM writes under the oblivious layout
    assert res.writes_oblivious > res.writes_aware
    assert 40.0 < res.pct_more_writes < 250.0
