"""Ablation: what the feature-directed part of §3.3 buys.

The paper argues access *history* is a poor predictor under AMR because the
computed subdomain moves between steps; feature-directed sampling
pre-executes the next step's predicates instead.  This ablation compares
NVBM writes under (a) feature-directed placement, (b) history-based
placement (last step's mixed cells), and (c) no transformation at all.
"""

from repro.harness import experiments as E
from repro.harness.report import print_table


def test_ablation_sampling_policy(benchmark):
    rows = benchmark.pedantic(E.exp_ablation_sampling, rounds=1, iterations=1)
    print_table(
        "Ablation: subtree-placement policy vs NVBM writes",
        ["policy", "NVBM writes", "exec time (s)"],
        [(r.policy, r.nvbm_writes, r.makespan_s) for r in rows],
    )
    by = {r.policy: r for r in rows}
    # any transformation beats none on NVBM writes
    assert by["feature-directed"].nvbm_writes < by["none"].nvbm_writes
    # feature-directed is at least as good as history-based
    assert by["feature-directed"].nvbm_writes \
        <= 1.1 * by["history"].nvbm_writes
