"""Fig 7: execution-time breakdown across the meshing routines (weak scaling).

Paper anchors: Partition is 0% on 1 processor, ~19% at 6 processors, and
grows to 56% at 1000 processors; refine/balance grow only logarithmically
with the problem size.
"""

from repro.harness import experiments as E
from repro.harness.report import print_table
from repro.parallel.runtime import Backend


def test_fig7_breakdown(benchmark, weak_scaling_runs):
    runs = weak_scaling_runs[Backend.PM_OCTREE]
    breakdowns = benchmark.pedantic(
        lambda: [E.meshing_breakdown(r) for r in runs], rounds=1, iterations=1
    )
    rows = [
        (p, *(f"{bd[k]:.1f}%" for k in ("construct", "refine", "balance",
                                        "partition")))
        for p, bd in zip(E.WEAK_POINTS, breakdowns)
    ]
    print_table(
        "Fig 7: time-% breakdown across meshing routines (PM-octree)",
        ["P", "construct", "refine", "balance", "partition"],
        rows,
    )
    partitions = [bd["partition"] for bd in breakdowns]
    # Partition: exactly 0 on one processor...
    assert partitions[0] == 0.0
    # ...then strictly present and growing toward large P
    assert partitions[1] > 0.0
    assert partitions[-1] > partitions[1]
    assert max(partitions) == partitions[-1]
    # refine no longer dominates at scale (it grows sublinearly)
    assert breakdowns[-1]["refine"] < breakdowns[0]["refine"] + 60
