"""Endurance ablation: slot-recycling policy vs NVBM lifetime.

Table 2 gives NVBM 1e6-1e8 writes/bit.  Device lifetime is set by the
most-worn cell, so the allocator's recycling order matters: LIFO reuse
hammers the few slots the COW/GC churn keeps freeing, FIFO wear-leveling
rotates the churn across the whole arena.
"""

from repro.harness import experiments as E
from repro.harness.report import print_table


def test_ablation_endurance(benchmark):
    rows = benchmark.pedantic(E.exp_endurance, rounds=1, iterations=1)
    print_table(
        "Ablation: NVBM slot recycling vs per-cell wear",
        ["policy", "total writes", "max slot wear", "lifetime vs LIFO"],
        [
            (r.policy, r.total_writes, r.max_slot_wear,
             f"{r.lifetime_multiplier:.1f}x")
            for r in rows
        ],
    )
    by = {r.policy: r for r in rows}
    lifo = by["LIFO reuse"]
    wl = by["wear-leveling (FIFO)"]
    # identical workload...
    assert abs(wl.total_writes - lifo.total_writes) < 0.05 * lifo.total_writes
    # ...but the peak cell wear (hence lifetime) improves substantially
    assert wl.max_slot_wear * 2 <= lifo.max_slot_wear
