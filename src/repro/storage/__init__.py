"""Block storage substrate for the baselines.

The in-core baseline writes snapshot *files* through a filesystem on a
page-granular block device; the Etree out-of-core baseline stores octant
pages behind a B-tree index.  Both devices charge the simulated clock with
I/O-bus latencies (per-page software+media latency plus a bandwidth term) —
orders of magnitude above memory latencies, which is the paper's core
argument for why neither design suits NVBM.
"""

from repro.storage.block import BlockDevice
from repro.storage.filesystem import SimFile, SimFileSystem
from repro.storage.btree import BTree

__all__ = ["BTree", "BlockDevice", "SimFile", "SimFileSystem"]
