"""An on-device B-tree: the Etree library's page index.

Etree assigns each octant a Z-value key and finds its page through a B-tree
(§2).  This B-tree keeps *all* nodes as serialized pages on the block
device, so every search pays ``O(log_B n)`` page reads and every insert a
few page writes — the "additional memory latency" §1 says index-based
out-of-core designs impose when pointed at NVBM.

Implementation notes
--------------------
* Classic CLRS B-tree with preemptive splitting on the way down; keys are
  unsigned 64-bit integers, values signed 64-bit.
* Deletion is by tombstone (the common LSM-ish simplification): the key
  stays, the value becomes :data:`TOMBSTONE`, lookups and scans skip it.
  Etree's own coarsening rewrites pages similarly rather than rebalancing.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass, field
from typing import Iterator, List, Optional, Tuple

from repro.errors import StorageError
from repro.storage.block import BlockDevice

TOMBSTONE = -(1 << 62)

_HEADER = struct.Struct("<BH")  # leaf flag, nkeys


@dataclass
class _Node:
    page_id: int
    leaf: bool
    keys: List[int] = field(default_factory=list)
    values: List[int] = field(default_factory=list)  # leaf payloads
    children: List[int] = field(default_factory=list)  # internal child pages


class BTree:
    """B-tree of int64 values keyed by uint64 keys, resident on a device."""

    def __init__(self, device: BlockDevice, min_degree: Optional[int] = None,
                 cache_internal: bool = False):
        """``cache_internal`` keeps internal nodes in a volatile buffer pool
        (as Etree's own buffer manager does), so a lookup only pays device
        I/O for the leaf page.  The cache is write-through: every update
        still writes the device, and losing the cache loses nothing."""
        self.device = device
        if min_degree is None:
            # Entry cost: key (8) + value-or-child (8); headroom for header.
            per_entry = 16
            min_degree = max(2, (device.page_size - 64) // (2 * per_entry) // 2)
        if min_degree < 2:
            raise ValueError("min_degree must be at least 2")
        self.t = min_degree
        self._count = 0
        self.cache_internal = cache_internal
        self._pool: dict = {}
        root = _Node(page_id=self.device.alloc_page(), leaf=True)
        self._store(root)
        self._root_page = root.page_id

    # -- node (de)serialization --------------------------------------------------

    def _store(self, node: _Node) -> None:
        n = len(node.keys)
        parts = [_HEADER.pack(1 if node.leaf else 0, n)]
        parts.append(struct.pack(f"<{n}Q", *node.keys))
        if node.leaf:
            parts.append(struct.pack(f"<{n}q", *node.values))
        else:
            parts.append(struct.pack(f"<{n + 1}I", *node.children))
        data = b"".join(parts)
        if len(data) > self.device.page_size:
            raise StorageError(
                f"B-tree node overflow: {len(data)} bytes > page "
                f"({self.device.page_size}); min_degree too large"
            )
        self.device.write_page(node.page_id, data)
        if self.cache_internal:
            if node.leaf:
                self._pool.pop(node.page_id, None)  # a leaf may replace a
                # split internal page id? (never happens, but stay safe)
            else:
                self._pool[node.page_id] = data

    def _load(self, page_id: int) -> _Node:
        data = self._pool.get(page_id) if self.cache_internal else None
        if data is None:
            data = self.device.read_page(page_id)
        leaf, n = _HEADER.unpack_from(data, 0)
        off = _HEADER.size
        keys = list(struct.unpack_from(f"<{n}Q", data, off))
        off += 8 * n
        node = _Node(page_id=page_id, leaf=bool(leaf), keys=keys)
        if leaf:
            node.values = list(struct.unpack_from(f"<{n}q", data, off))
        else:
            node.children = list(struct.unpack_from(f"<{n + 1}I", data, off))
        return node

    # -- search ----------------------------------------------------------------

    def get(self, key: int) -> Optional[int]:
        """Value for ``key``, or None when absent/tombstoned."""
        node = self._load(self._root_page)
        while True:
            i = self._lower_bound(node.keys, key)
            if node.leaf:
                if i < len(node.keys) and node.keys[i] == key:
                    v = node.values[i]
                    return None if v == TOMBSTONE else v
                return None
            if i < len(node.keys) and node.keys[i] == key:
                i += 1  # equal keys in internal nodes route right
            node = self._load(node.children[i])

    def __contains__(self, key: int) -> bool:
        return self.get(key) is not None

    @staticmethod
    def _lower_bound(keys: List[int], key: int) -> int:
        import bisect

        return bisect.bisect_left(keys, key)

    # -- insert ---------------------------------------------------------------

    def put(self, key: int, value: int) -> None:
        """Insert or overwrite."""
        if value == TOMBSTONE:
            raise ValueError("TOMBSTONE is reserved")
        root = self._load(self._root_page)
        if len(root.keys) == 2 * self.t - 1:
            new_root = _Node(page_id=self.device.alloc_page(), leaf=False,
                             children=[root.page_id])
            self._split_child(new_root, 0, root)
            self._root_page = new_root.page_id
            root = new_root
        self._insert_nonfull(root, key, value)

    def _split_child(self, parent: _Node, i: int, child: _Node) -> None:
        # Routing invariant everywhere: keys >= router live in the right
        # subtree (searches send equal keys right).
        t = self.t
        right = _Node(page_id=self.device.alloc_page(), leaf=child.leaf)
        if child.leaf:
            # B+-tree style: values never move up; the router is a *copy* of
            # the right leaf's first key.
            router = child.keys[t]
            right.keys = child.keys[t:]
            right.values = child.values[t:]
            child.keys = child.keys[:t]
            child.values = child.values[:t]
        else:
            # Internal keys are pure routers, so the median moves up.
            router = child.keys[t - 1]
            right.keys = child.keys[t:]
            right.children = child.children[t:]
            child.keys = child.keys[: t - 1]
            child.children = child.children[:t]
        parent.keys.insert(i, router)
        parent.children.insert(i + 1, right.page_id)
        self._store(child)
        self._store(right)
        self._store(parent)

    def _insert_nonfull(self, node: _Node, key: int, value: int) -> None:
        while True:
            i = self._lower_bound(node.keys, key)
            if node.leaf:
                if i < len(node.keys) and node.keys[i] == key:
                    if node.values[i] == TOMBSTONE:
                        self._count += 1
                    node.values[i] = value
                else:
                    node.keys.insert(i, key)
                    node.values.insert(i, value)
                    self._count += 1
                self._store(node)
                return
            if i < len(node.keys) and node.keys[i] == key:
                i += 1
            child = self._load(node.children[i])
            if len(child.keys) == 2 * self.t - 1:
                self._split_child(node, i, child)
                # re-route after the split (equal keys go right)
                if key >= node.keys[i]:
                    child = self._load(node.children[i + 1])
                else:
                    child = self._load(node.children[i])
            node = child

    # -- delete (tombstone) -------------------------------------------------------

    def delete(self, key: int) -> bool:
        """Tombstone a key; returns False when it was absent."""
        node = self._load(self._root_page)
        while True:
            i = self._lower_bound(node.keys, key)
            if node.leaf:
                if i < len(node.keys) and node.keys[i] == key:
                    if node.values[i] == TOMBSTONE:
                        return False
                    node.values[i] = TOMBSTONE
                    self._store(node)
                    self._count -= 1
                    return True
                return False
            if i < len(node.keys) and node.keys[i] == key:
                i += 1
            node = self._load(node.children[i])

    # -- scans -------------------------------------------------------------------

    def __len__(self) -> int:
        return self._count

    def items(self) -> Iterator[Tuple[int, int]]:
        """All live (key, value) pairs in key order."""
        yield from self.range(0, (1 << 64) - 1)

    def range(self, lo: int, hi: int) -> Iterator[Tuple[int, int]]:
        """Live pairs with ``lo <= key <= hi`` in key order."""
        stack: List[Tuple[int, int]] = [(self._root_page, 0)]
        # iterative in-order walk restricted to [lo, hi]
        def walk(page_id: int) -> Iterator[Tuple[int, int]]:
            node = self._load(page_id)
            if node.leaf:
                for k, v in zip(node.keys, node.values):
                    if lo <= k <= hi and v != TOMBSTONE:
                        yield k, v
                return
            for i, k in enumerate(node.keys):
                if k >= lo:
                    yield from walk(node.children[i])
                if k > hi:
                    return
            yield from walk(node.children[len(node.keys)])

        yield from walk(self._root_page)

    def height(self) -> int:
        """Levels from root to leaf (1 for a single-node tree)."""
        h = 1
        node = self._load(self._root_page)
        while not node.leaf:
            node = self._load(node.children[0])
            h += 1
        return h
