"""Minimal filesystem over a block device: named append/read files.

Just enough POSIX-flavour for the in-core baseline's snapshot path
(``gfs_output_write`` / ``gfs_output_read`` in Gerris): create a file,
stream bytes into it, read it back after a restart.  Data goes through the
block device page by page, so snapshot cost scales with snapshot bytes at
I/O-bus latency — the bottleneck §1 complains about.
"""

from __future__ import annotations

from typing import Dict, List

from repro.errors import StorageError
from repro.storage.block import BlockDevice


class SimFile:
    """One file: an ordered list of page ids plus a byte length."""

    def __init__(self, name: str, device: BlockDevice):
        self.name = name
        self.device = device
        self.pages: List[int] = []
        self.length = 0

    def append(self, data: bytes) -> None:
        """Append bytes, filling pages; partial tail pages are rewritten."""
        page_size = self.device.page_size
        offset = self.length % page_size
        if offset and self.pages:
            # top up the partial tail page
            tail = self.device.read_page(self.pages[-1])[:offset]
            room = page_size - offset
            chunk, data = data[:room], data[room:]
            self.device.write_page(self.pages[-1], tail + chunk)
            self.length += len(chunk)
        while data:
            chunk, data = data[: page_size], data[page_size:]
            pid = self.device.alloc_page()
            self.device.write_page(pid, chunk)
            self.pages.append(pid)
            self.length += len(chunk)

    def read_all(self) -> bytes:
        """Stream the whole file back."""
        out = bytearray()
        for pid in self.pages:
            out.extend(self.device.read_page(pid))
        return bytes(out[: self.length])


class SimFileSystem:
    """A flat namespace of :class:`SimFile` objects on one device."""

    def __init__(self, device: BlockDevice):
        self.device = device
        self._files: Dict[str, SimFile] = {}

    def create(self, name: str, overwrite: bool = True) -> SimFile:
        """Create (or truncate) a file."""
        if name in self._files and not overwrite:
            raise StorageError(f"file {name!r} already exists")
        f = SimFile(name, self.device)
        self._files[name] = f
        return f

    def open(self, name: str) -> SimFile:
        try:
            return self._files[name]
        except KeyError:
            raise StorageError(f"no such file: {name!r}") from None

    def exists(self, name: str) -> bool:
        return name in self._files

    def delete(self, name: str) -> None:
        if name not in self._files:
            raise StorageError(f"no such file: {name!r}")
        del self._files[name]

    def listdir(self) -> List[str]:
        return sorted(self._files)
