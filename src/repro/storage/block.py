"""Page-granular block device with an I/O-bus cost model.

Cost of one page access: ``latency + page_size / bandwidth``.  The latency
term models the software stack (syscall, filesystem, driver) plus media
access; the bandwidth term is the transfer itself.  Pages are durable —
a block device survives crashes by definition (it *is* the paper's
"non-volatile storage medium on the I/O bus").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro.config import BlockDeviceSpec
from repro.errors import StorageError
from repro.nvbm.clock import Category, SimClock


@dataclass
class BlockStats:
    page_reads: int = 0
    page_writes: int = 0


class BlockDevice:
    """A durable array of fixed-size pages, charged at I/O-bus cost."""

    def __init__(self, spec: BlockDeviceSpec, clock: SimClock,
                 capacity_pages: int = 1 << 24):
        self.spec = spec
        self.clock = clock
        self.capacity_pages = capacity_pages
        self.stats = BlockStats()
        self._pages: Dict[int, bytes] = {}
        self._next_page = 0

    @property
    def page_size(self) -> int:
        return self.spec.page_size

    def _charge(self, latency_us: float) -> None:
        transfer_ns = self.spec.page_size / (self.spec.bandwidth_gbps * 1e9) * 1e9
        self.clock.advance(latency_us * 1e3 + transfer_ns, Category.IO)

    def alloc_page(self) -> int:
        """Reserve a fresh page id (no I/O charged: allocation is metadata)."""
        if self._next_page >= self.capacity_pages:
            raise StorageError(f"{self.spec.name}: device full")
        pid = self._next_page
        self._next_page += 1
        return pid

    def write_page(self, page_id: int, data: bytes) -> None:
        """Store one page (padded to page_size; oversize is an error)."""
        if page_id < 0 or page_id >= self._next_page:
            raise StorageError(f"{self.spec.name}: page {page_id} not allocated")
        if len(data) > self.spec.page_size:
            raise StorageError(
                f"{self.spec.name}: {len(data)} bytes exceeds page size "
                f"{self.spec.page_size}"
            )
        self.stats.page_writes += 1
        self._charge(self.spec.write_latency_us)
        self._pages[page_id] = data

    def read_page(self, page_id: int) -> bytes:
        """Load one page."""
        if page_id not in self._pages:
            raise StorageError(f"{self.spec.name}: page {page_id} never written")
        self.stats.page_reads += 1
        self._charge(self.spec.read_latency_us)
        return self._pages[page_id]

    def crash(self) -> None:
        """Block devices are durable: crash is a no-op (kept for symmetry)."""

    def bytes_used(self) -> int:
        return len(self._pages) * self.spec.page_size
