"""Interprocedural flush/publish obligation analysis (pmlint v2 core).

Where :mod:`repro.analysis.pmlint` checks each function body in isolation,
this pass evaluates an abstract *obligation state* along call chains: every
function in the scanned tree is taken as an entry point with a clean state,
and project calls discovered by :mod:`repro.analysis.callgraph` are inlined
(cycle-guarded, depth- and budget-capped) so that a store issued three
frames below a publish still reaches it.  The abstract state models what
the runtime tracker (:mod:`repro.analysis.tracker`) observes dynamically:

* ``dirty`` — NVBM stores whose cache lines have not been flushed, each
  carrying the full call-chain witness of how the store was reached;
* whether a ``flush()`` was seen earlier on the path (classifies a dirty
  publish as ``double-flush-elision`` — flushed once, re-stored, second
  flush elided — rather than ``missing-flush``);
* the *coverage window* — from the first dirty store to the next publish —
  and every crash site observed inside it (consumed by
  :mod:`repro.analysis.coverage`);
* migration-journal evidence: which locals have been observed
  ``published`` (method call, ``.state`` store, or a dominating
  ``.state == "published"`` guard), so retiring an entry that was never
  published is reported as ``publish-before-retire``.

Rules emitted here:

``missing-flush``
    a publish is reachable with dirty stores that were never preceded by a
    flush on the path (interprocedural version of pmlint's rule, with a
    call-chain witness).
``double-flush-elision``
    a publish is reachable with dirty stores that were all issued *after*
    a flush on the path — the "we already flushed this" bug.
``publish-before-retire``
    a migration-journal entry is retired on a path with no publish
    evidence for it (violates the publish-before-retire discipline that
    recovery depends on).
``raw-write``
    a store through the raw record accessors (``write`` /
    ``write_octant``) instead of the field-granular API.  Sanctioned
    exceptions carry ``# pmlint: allow[raw-write]: <reason>`` — the reason
    string is mandatory; a bare pragma is itself reported.

Control flow is branch-sensitive for ``if`` (both arms evaluated, states
joined: dirty and observed sites union, journal evidence intersects) and
linearized for loops (one body pass — the persistence call sites in this
tree are not loop-carried).  The deliberate omission: no "exits dirty"
rule.  A function may legitimately leave stores for its caller (or the
next epoch's persist) to flush; only a *publish* turns dirt into a bug.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.analysis.callgraph import (
    CallGraph, FunctionInfo, build_callgraph, default_roots,
)
from repro.analysis.pmlint import (
    IGNORE_PRAGMA, PUBLISH_SLOT_CONSTS, WRITE_ATTRS, _dotted,
    _is_null_handle_arg, _is_publish_slot_arg, _receiver_mentions,
)
from repro.nvbm import sites as default_sites_module

#: Raw record accessors: whole-record stores that bypass the field-granular
#: API.  ``new_octant`` is exempt — a fresh allocation has no old contents
#: to tear.
RAW_WRITE_ATTRS = ("write", "write_octant")

ALLOW_RAW_WRITE_PRAGMA = "pmlint: allow[raw-write]"
_RAW_PRAGMA_RE = re.compile(r"pmlint:\s*allow\[raw-write\]\s*:\s*(\S.*)")

#: The crash site RootSlots.swap fires between its two device stores; the
#: analyzer credits a swap-publish with it (the site is inside the arena,
#: below the API surface this pass models).
SWAP_INTERNAL_SITE = "roots.swap.mid"

#: Inlining limits.  Depth bounds one chain; the frame budget bounds the
#: whole evaluation of one root (multi-candidate calls fan out).
MAX_INLINE_DEPTH = 12
FRAME_BUDGET = 600


@dataclass
class Witness:
    """Where an event happened and how execution got there."""

    path: str
    line: int
    chain: Tuple[str, ...]  #: call-chain frames, root first

    def where(self) -> str:
        return f"{Path(self.path).name}:{self.line}"


@dataclass
class DataflowFinding:
    """One interprocedural finding with its call-chain witness."""

    rule: str
    path: str
    line: int
    message: str
    chain: Tuple[str, ...] = ()

    def describe(self) -> str:
        via = f"  [via {' -> '.join(self.chain)}]" if self.chain else ""
        return f"{self.path}:{self.line}: [{self.rule}] {self.message}{via}"

    def to_row(self) -> Dict[str, object]:
        return {"rule": self.rule, "path": self.path, "line": self.line,
                "message": self.message, "chain": list(self.chain)}

    def fingerprint(self) -> str:
        """Stable identity for baseline diffs: rule + file + innermost
        frame, without line numbers (insertions above must not churn)."""
        tail = self.chain[-1] if self.chain else ""
        tail = re.sub(r":\d+", "", tail)
        return f"{self.rule}//{Path(self.path).name}//{tail}"


@dataclass
class PathRecord:
    """One mutate→publish window discovered on some call chain."""

    root: str                  #: entry-point qualname
    first_dirty: Witness
    publish: Witness
    sites: Tuple[str, ...]     #: crash sites observed inside the window

    def key(self) -> Tuple[str, int, str, int]:
        return (self.first_dirty.path, self.first_dirty.line,
                self.publish.path, self.publish.line)


@dataclass
class RetireRecord:
    """One journal-entry retire observed on some call chain."""

    root: str
    witness: Witness
    var: str
    sites_before: Tuple[str, ...]  #: crash sites observed earlier on path

    def key(self) -> Tuple[str, int]:
        return (self.witness.path, self.witness.line)


@dataclass
class _StoreEvt:
    witness: Witness
    attr: str
    after_flush: bool


class _AbsState:
    """Abstract obligation state along one path."""

    __slots__ = ("dirty", "flush_seen", "first_dirty", "window_sites",
                 "sites_seen", "evidence")

    def __init__(self) -> None:
        self.dirty: List[_StoreEvt] = []
        self.flush_seen = False
        self.first_dirty: Optional[Witness] = None
        self.window_sites: List[str] = []
        self.sites_seen: List[str] = []
        self.evidence: set = set()      #: locals with publish evidence

    def copy(self) -> "_AbsState":
        out = _AbsState()
        out.dirty = list(self.dirty)
        out.flush_seen = self.flush_seen
        out.first_dirty = self.first_dirty
        out.window_sites = list(self.window_sites)
        out.sites_seen = list(self.sites_seen)
        out.evidence = set(self.evidence)
        return out

    def join(self, other: "_AbsState") -> None:
        """Merge ``other`` (the sibling branch) into self.

        Obligations are *may* facts — union keeps every possibly-dirty
        store and every possibly-reached site (a site behind an
        ``if injector`` guard does exist on the armed path the sweep
        exercises).  Journal evidence is a *must* fact — only what both
        branches established survives the join.
        """
        seen = {id(e) for e in self.dirty}
        self.dirty.extend(e for e in other.dirty if id(e) not in seen)
        self.flush_seen = self.flush_seen and other.flush_seen
        if self.first_dirty is None:
            self.first_dirty = other.first_dirty
        for s in other.window_sites:
            if s not in self.window_sites:
                self.window_sites.append(s)
        for s in other.sites_seen:
            if s not in self.sites_seen:
                self.sites_seen.append(s)
        self.evidence &= other.evidence


class _Analyzer:
    def __init__(self, graph: CallGraph, sites_module) -> None:
        self.graph = graph
        self.sites_module = sites_module
        #: (rule, path, line) -> finding; longest chain wins (fullest
        #: interprocedural context for the same defect).
        self._findings: Dict[Tuple[str, str, int], DataflowFinding] = {}
        self.path_records: List[PathRecord] = []
        self.retire_records: List[RetireRecord] = []
        self.stats = {"roots": 0, "frames": 0, "budget_exhausted": 0}
        self._budget = 0

    # -- pragma / source helpers ---------------------------------------------

    def _lines_for(self, info: FunctionInfo) -> List[str]:
        return info.source_lines

    def _line_has(self, info: FunctionInfo, lineno: int, pragma: str) -> bool:
        lines = self._lines_for(info)
        if 1 <= lineno <= len(lines) and pragma in lines[lineno - 1]:
            return True
        candidate = lineno - 1
        while 1 <= candidate <= len(lines):
            text = lines[candidate - 1].strip()
            if not text.startswith("#"):
                break
            if pragma in text:
                return True
            candidate -= 1
        return False

    def _raw_pragma_reason(self, info: FunctionInfo,
                           lineno: int) -> Optional[str]:
        """The reason string of an allow[raw-write] pragma at/above the
        line; '' when the pragma is present but bare; None when absent."""
        lines = self._lines_for(info)
        candidates = []
        if 1 <= lineno <= len(lines):
            candidates.append(lines[lineno - 1])
        above = lineno - 1
        while 1 <= above <= len(lines):
            text = lines[above - 1].strip()
            if not text.startswith("#"):
                break
            candidates.append(text)
            above -= 1
        for text in candidates:
            if ALLOW_RAW_WRITE_PRAGMA in text:
                m = _RAW_PRAGMA_RE.search(text)
                return m.group(1).strip() if m else ""
        return None

    def _emit(self, info: FunctionInfo, rule: str, witness: Witness,
              message: str) -> None:
        if self._line_has(info, witness.line, IGNORE_PRAGMA):
            return
        key = (rule, witness.path, witness.line)
        finding = DataflowFinding(rule=rule, path=witness.path,
                                  line=witness.line, message=message,
                                  chain=witness.chain)
        prior = self._findings.get(key)
        if prior is None or len(finding.chain) > len(prior.chain):
            self._findings[key] = finding

    # -- classification ------------------------------------------------------

    def _site_name(self, info: FunctionInfo, arg: ast.AST) -> str:
        if isinstance(arg, ast.Constant) and isinstance(arg.value, str):
            return arg.value
        minfo = self.graph.modules.get(info.module)
        if minfo is not None:
            if isinstance(arg, ast.Attribute) and \
                    isinstance(arg.value, ast.Name) and \
                    arg.value.id in minfo.sites_aliases:
                return getattr(self.sites_module, arg.attr, f"<{arg.attr}>")
            if isinstance(arg, ast.Name) and arg.id in minfo.sites_names:
                return getattr(self.sites_module, arg.id, f"<{arg.id}>")
        return "<dynamic>"

    def _classify(self, call: ast.Call) -> Optional[Tuple[str, dict]]:
        func = call.func
        if not isinstance(func, ast.Attribute):
            return None
        attr = func.attr
        recv = func.value
        if attr in ("flush", "flush_records") and \
                _receiver_mentions(recv, "nvbm"):
            # flush_records is the pipeline's selective flush: callers pass
            # the full dirty snapshot of the epoch being settled, so for
            # path-sensitive obligation tracking it discharges dirt the
            # same way the whole-arena flush does.
            return "flush", {}
        if attr in WRITE_ATTRS and _receiver_mentions(recv, "nvbm") \
                and not _receiver_mentions(recv, "roots"):
            return "store", {"attr": attr}
        if attr == "set" and _receiver_mentions(recv, "roots") and call.args:
            if _is_publish_slot_arg(call.args[0]) and (
                len(call.args) < 2 or not _is_null_handle_arg(call.args[1])
            ):
                slot = _dotted(call.args[0]) or "V_prev"
                return "publish", {"slot": slot, "swap": False}
            return None
        if attr == "swap" and _receiver_mentions(recv, "roots"):
            return "publish", {"slot": "swap", "swap": True}
        if attr == "site" and _receiver_mentions(recv, "injector"):
            return "site", {"arg": call.args[0] if call.args else None}
        if attr == "published" and not call.args:
            return "journal-publish", {"var": _dotted(recv)}
        if attr == "retired" and not call.args:
            return "journal-retire", {"var": _dotted(recv)}
        return None

    # -- event application ---------------------------------------------------

    def _apply_store(self, info: FunctionInfo, call: ast.Call, attr: str,
                     state: _AbsState, chain: Tuple[str, ...]) -> None:
        witness = Witness(info.path, call.lineno, chain)
        if attr in RAW_WRITE_ATTRS:
            reason = self._raw_pragma_reason(info, call.lineno)
            if reason is None:
                self._emit(
                    info, "raw-write", witness,
                    f"store through raw record accessor .{attr}() bypasses "
                    "the field-granular API (write_field/write_payload/"
                    "write_child_slot[s]); if the whole-record store is "
                    "intentional, annotate with "
                    f"'# {ALLOW_RAW_WRITE_PRAGMA}: <reason>'",
                )
            elif not reason:
                self._emit(
                    info, "raw-write-no-reason", witness,
                    f"allow[raw-write] pragma on .{attr}() has no reason "
                    "string — the reason is mandatory",
                )
        evt = _StoreEvt(witness=witness, attr=attr,
                        after_flush=state.flush_seen)
        state.dirty.append(evt)
        if state.first_dirty is None:
            state.first_dirty = witness
            state.window_sites = []

    def _apply_publish(self, info: FunctionInfo, call: ast.Call, opts: dict,
                       state: _AbsState, chain: Tuple[str, ...],
                       root: str) -> None:
        witness = Witness(info.path, call.lineno, chain)
        if opts.get("swap"):
            # RootSlots.swap fires roots.swap.mid between its two device
            # stores — inside the window by construction.
            if state.first_dirty is not None \
                    and SWAP_INTERNAL_SITE not in state.window_sites:
                state.window_sites.append(SWAP_INTERNAL_SITE)
            if SWAP_INTERNAL_SITE not in state.sites_seen:
                state.sites_seen.append(SWAP_INTERNAL_SITE)
        if state.dirty:
            never_flushed = [e for e in state.dirty if not e.after_flush]
            culprit = (never_flushed or state.dirty)[0]
            if never_flushed:
                rule = "missing-flush"
                msg = (
                    f"publish of {opts['slot']} reachable from the NVBM "
                    f"store at {culprit.witness.where()} with no "
                    "intervening flush() — the commit point may expose "
                    "unflushed cache lines"
                )
            else:
                rule = "double-flush-elision"
                msg = (
                    f"publish of {opts['slot']} reachable from the NVBM "
                    f"store at {culprit.witness.where()}; the path flushed "
                    "once before that store and the needed second flush "
                    "was elided"
                )
            self._emit(info, rule, witness,
                       msg + f" (store via {' -> '.join(culprit.witness.chain)})")
            state.dirty = []
        if state.first_dirty is not None:
            self.path_records.append(PathRecord(
                root=root, first_dirty=state.first_dirty, publish=witness,
                sites=tuple(state.window_sites),
            ))
            state.first_dirty = None
            state.window_sites = []

    def _apply_site(self, info: FunctionInfo, opts: dict,
                    state: _AbsState) -> None:
        if opts.get("arg") is None:
            return
        name = self._site_name(info, opts["arg"])
        if state.first_dirty is not None and name not in state.window_sites:
            state.window_sites.append(name)
        if name not in state.sites_seen:
            state.sites_seen.append(name)

    def _apply_retire(self, info: FunctionInfo, lineno: int, var: str,
                      state: _AbsState, chain: Tuple[str, ...],
                      root: str) -> None:
        witness = Witness(info.path, lineno, chain)
        if var not in state.evidence:
            self._emit(
                info, "publish-before-retire", witness,
                f"journal entry {var!r} retired on a path with no publish "
                "evidence (.published() call, state store, or a dominating "
                "state == \"published\" guard) — recovery would drop "
                "records the receiver never durably owned",
            )
        self.retire_records.append(RetireRecord(
            root=root, witness=witness, var=var,
            sites_before=tuple(state.sites_seen),
        ))

    # -- statement evaluation ------------------------------------------------

    def _stmt_calls(self, stmt: ast.stmt) -> List[ast.Call]:
        calls: List[ast.Call] = []

        def visit(node: ast.AST) -> None:
            for child in ast.iter_child_nodes(node):
                if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef,
                                      ast.ClassDef, ast.Lambda)):
                    continue
                if isinstance(child, ast.Call):
                    calls.append(child)
                visit(child)

        visit(stmt)
        calls.sort(key=lambda c: (c.lineno, c.col_offset))
        return calls

    def _eval_call(self, info: FunctionInfo, call: ast.Call,
                   state: _AbsState, chain: Tuple[str, ...],
                   root: str, depth: int) -> None:
        classified = self._classify(call)
        if classified is not None:
            kind, opts = classified
            if kind == "flush":
                state.dirty = []
                state.flush_seen = True
            elif kind == "store":
                self._apply_store(info, call, opts["attr"], state, chain)
            elif kind == "publish":
                self._apply_publish(info, call, opts, state, chain, root)
            elif kind == "site":
                self._apply_site(info, opts, state)
            elif kind == "journal-publish":
                state.evidence.add(opts["var"])
            elif kind == "journal-retire":
                self._apply_retire(info, call.lineno, opts["var"], state,
                                   chain, root)
            return
        if depth >= MAX_INLINE_DEPTH or self._budget <= 0:
            if self._budget <= 0:
                self.stats["budget_exhausted"] += 1
            return
        callees = [c for c in self.graph.resolve_call(info, call)
                   if c.qualname not in chain_quals(chain)]
        if not callees:
            return
        callsite = f"{Path(info.path).name}:{call.lineno}"
        if len(callees) == 1:
            callee = callees[0]
            self._eval_function(
                callee, state,
                chain + (f"{callee.qualname} (at {callsite})",),
                root, depth + 1,
            )
            return
        branches = []
        for callee in callees:
            sub = state.copy()
            self._eval_function(
                callee, sub,
                chain + (f"{callee.qualname} (at {callsite})",),
                root, depth + 1,
            )
            branches.append(sub)
        merged = branches[0]
        for sub in branches[1:]:
            merged.join(sub)
        _copy_into(merged, state)

    def _guard_evidence(self, test: ast.AST) -> List[str]:
        """Vars granted publish evidence in the true branch of this test."""
        out: List[str] = []
        if isinstance(test, ast.Compare) and len(test.ops) == 1 \
                and isinstance(test.ops[0], ast.Eq) \
                and isinstance(test.left, ast.Attribute) \
                and test.left.attr == "state":
            comp = test.comparators[0]
            if isinstance(comp, ast.Constant) and comp.value == "published":
                out.append(_dotted(test.left.value))
        return out

    def _eval_stmts(self, info: FunctionInfo, body: Sequence[ast.stmt],
                    state: _AbsState, chain: Tuple[str, ...],
                    root: str, depth: int) -> None:
        for stmt in body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef,
                                 ast.ClassDef)):
                continue
            if isinstance(stmt, ast.If):
                for call in self._stmt_calls_of_expr(stmt.test):
                    self._eval_call(info, call, state, chain, root, depth)
                then = state.copy()
                for var in self._guard_evidence(stmt.test):
                    then.evidence.add(var)
                self._eval_stmts(info, stmt.body, then, chain, root, depth)
                other = state.copy()
                self._eval_stmts(info, stmt.orelse, other, chain, root,
                                 depth)
                then.join(other)
                _copy_into(then, state)
                continue
            if isinstance(stmt, (ast.For, ast.AsyncFor, ast.While)):
                header = stmt.iter if isinstance(stmt, (ast.For, ast.AsyncFor)) \
                    else stmt.test
                for call in self._stmt_calls_of_expr(header):
                    self._eval_call(info, call, state, chain, root, depth)
                self._eval_stmts(info, stmt.body, state, chain, root, depth)
                self._eval_stmts(info, stmt.orelse, state, chain, root,
                                 depth)
                continue
            if isinstance(stmt, ast.Try):
                self._eval_stmts(info, stmt.body, state, chain, root, depth)
                for handler in stmt.handlers:
                    self._eval_stmts(info, handler.body, state, chain, root,
                                     depth)
                self._eval_stmts(info, stmt.orelse, state, chain, root,
                                 depth)
                self._eval_stmts(info, stmt.finalbody, state, chain, root,
                                 depth)
                continue
            if isinstance(stmt, (ast.With, ast.AsyncWith)):
                for item in stmt.items:
                    for call in self._stmt_calls_of_expr(item.context_expr):
                        self._eval_call(info, call, state, chain, root,
                                        depth)
                self._eval_stmts(info, stmt.body, state, chain, root, depth)
                continue
            if isinstance(stmt, ast.Assign):
                for call in self._stmt_calls(stmt):
                    self._eval_call(info, call, state, chain, root, depth)
                self._eval_journal_assign(info, stmt, state, chain, root)
                continue
            for call in self._stmt_calls(stmt):
                self._eval_call(info, call, state, chain, root, depth)

    def _stmt_calls_of_expr(self, expr: Optional[ast.AST]) -> List[ast.Call]:
        if expr is None:
            return []
        calls: List[ast.Call] = []

        def visit(node: ast.AST) -> None:
            for child in ast.iter_child_nodes(node):
                if isinstance(child, (ast.Lambda,)):
                    continue
                if isinstance(child, ast.Call):
                    calls.append(child)
                visit(child)

        if isinstance(expr, ast.Call):
            calls.append(expr)
        visit(expr)
        calls.sort(key=lambda c: (c.lineno, c.col_offset))
        return calls

    def _eval_journal_assign(self, info: FunctionInfo, stmt: ast.Assign,
                             state: _AbsState, chain: Tuple[str, ...],
                             root: str) -> None:
        if not (isinstance(stmt.value, ast.Constant)
                and isinstance(stmt.value.value, str)):
            return
        value = stmt.value.value
        for target in stmt.targets:
            if not (isinstance(target, ast.Attribute)
                    and target.attr == "state"):
                continue
            var = _dotted(target.value)
            # the journal primitives themselves (MigrationEntry.published /
            # .retired) are the event source, not a use of it
            if info.name in ("published", "retired"):
                continue
            if value == "published":
                state.evidence.add(var)
            elif value == "retired":
                self._apply_retire(info, stmt.lineno, var, state, chain,
                                   root)

    # -- entry points --------------------------------------------------------

    def _eval_function(self, info: FunctionInfo, state: _AbsState,
                       chain: Tuple[str, ...], root: str,
                       depth: int) -> None:
        self._budget -= 1
        self.stats["frames"] += 1
        self._eval_stmts(info, info.node.body, state, chain, root, depth)

    def analyze_root(self, qualname: str) -> None:
        info = self.graph.functions[qualname]
        self.stats["roots"] += 1
        self._budget = FRAME_BUDGET
        state = _AbsState()
        chain = (f"{info.qualname} ({info.where()})",)
        self._eval_function(info, state, chain, qualname, 0)

    def findings(self) -> List[DataflowFinding]:
        return sorted(self._findings.values(),
                      key=lambda f: (f.path, f.line, f.rule))


def chain_quals(chain: Tuple[str, ...]) -> set:
    """The qualnames already on a chain (cycle guard)."""
    return {frame.split(" (", 1)[0] for frame in chain}


def _copy_into(src: _AbsState, dst: _AbsState) -> None:
    dst.dirty = src.dirty
    dst.flush_seen = src.flush_seen
    dst.first_dirty = src.first_dirty
    dst.window_sites = src.window_sites
    dst.sites_seen = src.sites_seen
    dst.evidence = src.evidence


@dataclass
class AnalysisResult:
    """Everything one interprocedural run produced."""

    findings: List[DataflowFinding]
    path_records: List[PathRecord]
    retire_records: List[RetireRecord]
    graph: CallGraph
    stats: Dict[str, int] = field(default_factory=dict)

    def finding_rows(self) -> List[Dict[str, object]]:
        return [f.to_row() for f in self.findings]


def analyze_paths(paths: Sequence[Union[str, Path]],
                  sites_module=None) -> AnalysisResult:
    """Run the interprocedural pass over files/directories."""
    graph = build_callgraph(paths)
    analyzer = _Analyzer(graph, sites_module or default_sites_module)
    for qualname in sorted(graph.functions):
        analyzer.analyze_root(qualname)
    return AnalysisResult(
        findings=analyzer.findings(),
        path_records=analyzer.path_records,
        retire_records=analyzer.retire_records,
        graph=graph,
        stats=dict(analyzer.stats),
    )


def analyze_repo(root: Optional[Union[str, Path]] = None) -> AnalysisResult:
    """Analyze the installed ``repro`` package (default) or a given tree."""
    roots = [root] if root is not None else list(default_roots())
    return analyze_paths(roots)
