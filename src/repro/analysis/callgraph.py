"""Project-wide call graph for the interprocedural persistence analysis.

The dataflow pass (:mod:`repro.analysis.dataflow`) needs to follow flush /
publish obligations *across* function boundaries — ``persist`` flushes on
behalf of the stores ``merge_subtree`` issued three frames down.  This
module parses every ``*.py`` file under the analysis roots once and builds:

* a table of every function/method with its AST body, source lines and a
  stable qualified name (``repro.core.merge.merge_subtree``,
  ``repro.core.pmoctree.PMOctree.persist``);
* per-module import information (aliases of :mod:`repro.nvbm.sites`, names
  imported from project modules) so site constants and cross-module calls
  resolve;
* best-effort call resolution: a ``Call`` node maps to the project
  functions it may invoke.

Resolution is deliberately name-based (this is Python): a bare call
resolves to the same-module function or an imported project function; an
attribute call ``x.m(...)`` resolves to the enclosing class's ``m`` when
``x`` is ``self``, otherwise to every project method named ``m``.  Calls
with too many candidates, or whose name is on the :data:`NOISE` list of
ubiquitous collection/IO verbs, yield no edge — a missing edge makes the
analysis *less* interprocedural, never wrong about what it did see.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Tuple, Union

#: Attribute names never treated as project-call edges: collection and IO
#: verbs that would wire unrelated classes together, plus the persistence
#: primitives the dataflow pass classifies *before* consulting the graph.
NOISE = frozenset({
    # persistence primitives (classified as effects, not edges)
    "write", "write_octant", "new_octant", "write_field", "write_payload",
    "write_child_slot", "write_child_slots", "set_flags", "flush", "set",
    "swap", "site", "published", "retired",
    # collections / builtins / IO
    "append", "add", "extend", "insert", "remove", "discard", "pop",
    "clear", "update", "copy", "keys", "values", "items", "get",
    "setdefault", "sort", "reverse", "index", "count", "join", "split",
    "strip", "lstrip", "rstrip", "startswith", "endswith", "format",
    "encode", "decode", "read", "readline", "readlines", "close", "open",
    "mean", "sum", "min", "max", "any", "all", "difference_update",
    "intersection", "union", "issubset", "to_row", "describe", "warn",
    "debug", "info", "error", "exception", "group", "match", "search",
    "sub", "findall", "heapify", "heappush", "heappop", "exists",
    "is_dir", "is_file", "read_text", "write_text", "rglob", "glob",
    "advance", "now_ns", "inc", "dec", "observe", "span", "counter",
    "gauge", "histogram", "barrier", "random", "integers", "choice",
    "shuffle", "default_rng",
})

#: A call with more than this many candidate targets is left unresolved.
MAX_CANDIDATES = 6


@dataclass
class FunctionInfo:
    """One function or method definition in the scanned tree."""

    qualname: str                 #: module.[Class.]name
    module: str
    name: str
    cls: Optional[str]
    path: str
    lineno: int
    node: ast.AST                 #: the FunctionDef / AsyncFunctionDef
    source_lines: List[str] = field(repr=False, default_factory=list)

    def where(self) -> str:
        return f"{Path(self.path).name}:{self.lineno}"


@dataclass
class ModuleInfo:
    """Per-module context the dataflow pass needs."""

    module: str
    path: str
    source_lines: List[str] = field(repr=False, default_factory=list)
    #: local aliases of the repro.nvbm.sites module ("sites", "site_registry")
    sites_aliases: List[str] = field(default_factory=list)
    #: names imported directly from repro.nvbm.sites
    sites_names: List[str] = field(default_factory=list)
    #: from-imports of project callables: local name -> source module
    from_imports: Dict[str, str] = field(default_factory=dict)


SITES_MODULE = "repro.nvbm.sites"


def _module_name_for(path: Path) -> str:
    """Dotted module name: anchored at the ``repro`` package when the path
    runs through one, else the file stem (fixture directories)."""
    parts = list(path.with_suffix("").parts)
    for anchor in ("repro",):
        if anchor in parts:
            return ".".join(parts[parts.index(anchor):])
    return path.stem


class CallGraph:
    """Functions, modules and name indexes over one set of analysis roots."""

    def __init__(self) -> None:
        self.functions: Dict[str, FunctionInfo] = {}
        self.modules: Dict[str, ModuleInfo] = {}
        #: bare method name -> qualnames of methods with that name
        self._methods: Dict[str, List[str]] = {}
        #: (module, bare name) -> qualname of the module-level function
        self._module_funcs: Dict[Tuple[str, str], str] = {}
        #: method name within one class: (module, cls, name) -> qualname
        self._class_methods: Dict[Tuple[str, str, str], str] = {}
        self.parse_errors: List[Tuple[str, str]] = []

    # -- construction --------------------------------------------------------

    def add_module(self, path: Union[str, Path], source: str) -> None:
        path = str(path)
        try:
            tree = ast.parse(source, filename=path)
        except SyntaxError as exc:
            self.parse_errors.append((path, str(exc.msg)))
            return
        module = _module_name_for(Path(path))
        lines = source.splitlines()
        minfo = ModuleInfo(module=module, path=path, source_lines=lines)
        self._scan_imports(tree, minfo)
        self.modules[module] = minfo

        def visit(node: ast.AST, cls: Optional[str]) -> None:
            for child in ast.iter_child_nodes(node):
                if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    qual = ".".join(
                        p for p in (module, cls, child.name) if p
                    )
                    info = FunctionInfo(
                        qualname=qual, module=module, name=child.name,
                        cls=cls, path=path, lineno=child.lineno,
                        node=child, source_lines=lines,
                    )
                    self.functions[qual] = info
                    if cls is None:
                        self._module_funcs[(module, child.name)] = qual
                    else:
                        self._methods.setdefault(child.name, []).append(qual)
                        self._class_methods[(module, cls, child.name)] = qual
                    # nested defs are indexed too (rare, but cheap)
                    visit(child, cls)
                elif isinstance(child, ast.ClassDef):
                    visit(child, child.name)
                else:
                    visit(child, cls)

        visit(tree, None)

    def _scan_imports(self, tree: ast.Module, minfo: ModuleInfo) -> None:
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.name == SITES_MODULE:
                        minfo.sites_aliases.append(
                            alias.asname or alias.name.split(".")[-1]
                        )
            elif isinstance(node, ast.ImportFrom):
                if node.module == SITES_MODULE:
                    for alias in node.names:
                        minfo.sites_names.append(alias.asname or alias.name)
                elif node.module == "repro.nvbm":
                    for alias in node.names:
                        if alias.name == "sites":
                            minfo.sites_aliases.append(alias.asname or "sites")
                elif node.module:
                    for alias in node.names:
                        minfo.from_imports[alias.asname or alias.name] = \
                            node.module

    # -- resolution ----------------------------------------------------------

    def resolve_call(self, caller: FunctionInfo,
                     call: ast.Call) -> List[FunctionInfo]:
        """Project functions this call may invoke (possibly empty)."""
        func = call.func
        quals: List[str] = []
        if isinstance(func, ast.Name):
            name = func.id
            qual = self._module_funcs.get((caller.module, name))
            if qual is None:
                minfo = self.modules.get(caller.module)
                if minfo is not None:
                    src = minfo.from_imports.get(name)
                    if src is not None:
                        qual = self._module_funcs.get((src, name))
                        if qual is None and src in {
                            f.module for f in self.functions.values()
                        }:
                            qual = None
            if qual is None:
                # class instantiation: Name matching a known class resolves
                # to its __init__
                for (mod, cls, meth), q in self._class_methods.items():
                    if meth == "__init__" and cls == name and (
                        mod == caller.module
                        or self.modules.get(caller.module) is not None
                        and self.modules[caller.module].from_imports.get(name)
                        == mod
                    ):
                        quals.append(q)
            else:
                quals.append(qual)
        elif isinstance(func, ast.Attribute):
            name = func.attr
            if name in NOISE:
                return []
            if isinstance(func.value, ast.Name) and func.value.id == "self" \
                    and caller.cls is not None:
                own = self._class_methods.get(
                    (caller.module, caller.cls, name)
                )
                if own is not None:
                    return [self.functions[own]]
            # module-qualified call: sweep.trace_run(...), E.exp_fig10(...)
            if isinstance(func.value, ast.Name):
                minfo = self.modules.get(caller.module)
                if minfo is not None:
                    src = minfo.from_imports.get(func.value.id)
                    if src is not None:
                        qual = self._module_funcs.get((src, name))
                        if qual is not None:
                            return [self.functions[qual]]
            quals.extend(self._methods.get(name, []))
            if not quals:
                qual = self._module_funcs.get((caller.module, name))
                if qual is not None:
                    quals.append(qual)
        seen: List[FunctionInfo] = []
        for q in quals:
            info = self.functions.get(q)
            if info is not None and info not in seen:
                seen.append(info)
        if len(seen) > MAX_CANDIDATES:
            return []
        return seen

    def callers_of(self) -> Dict[str, int]:
        """qualname -> number of in-project call sites naming it (used to
        pick analysis roots; recomputed on demand, not cached)."""
        counts: Dict[str, int] = {q: 0 for q in self.functions}
        for info in self.functions.values():
            for node in ast.walk(info.node):
                if isinstance(node, ast.Call):
                    for callee in self.resolve_call(info, node):
                        if callee.qualname != info.qualname:
                            counts[callee.qualname] += 1
        return counts


def build_callgraph(paths: Iterable[Union[str, Path]]) -> CallGraph:
    """Parse every ``*.py`` under the given files/directories."""
    graph = CallGraph()
    for entry in paths:
        entry = Path(entry)
        files = sorted(entry.rglob("*.py")) if entry.is_dir() else [entry]
        for file in files:
            try:
                source = file.read_text(encoding="utf-8")
            except OSError as exc:
                graph.parse_errors.append((str(file), str(exc)))
                continue
            graph.add_module(file, source)
    return graph


def default_roots() -> Sequence[Path]:
    """The installed ``repro`` package (what ``analyze`` scans by default)."""
    import repro

    return [Path(repro.__file__).parent]
