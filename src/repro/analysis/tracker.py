"""Runtime persistence-ordering tracker (the pmemcheck/PMTest analogue).

The tracker is a shadow state installed into one or more
:class:`~repro.nvbm.arena.MemoryArena` objects (and their ``RootSlots``).
It observes every store, flush, free, publish and crash, keeps a per-handle
event trace, and classifies ordering violations the instant they occur:

``publish-before-flush``
    a *publish slot* (by default ``V_prev``, the §3.2 commit point) received
    a handle that has dirty cache lines and was **never** flushed.
``double-flush-elision``
    the published handle *was* flushed once, then stored to again, and the
    needed second flush was elided — the classic "we already flushed this"
    bug that a single-bit dirty flag cannot catch but an event trace can.
``publish-of-volatile``
    a publish slot received a DRAM handle: the persistent root would point
    into memory that any crash erases wholesale.
``free-of-published``
    an arena freed a handle currently held by a publish slot (GC reclaiming
    the persistent root out from under recovery).
``store-to-published``
    an in-place store to a currently-published handle — invariant I2 says
    records reachable from ``V_{i-1}`` are never written in place.

``cross-epoch-waf``
    (epoch happens-before checker) a store landed on a record that an
    *earlier, still-open* persist epoch snapshotted as pending-flush — a
    write-after-flush race that only an overlapped (asynchronous) persist
    pipeline can produce.  Epoch windows are opened/closed by the persist
    point (``on_epoch_open`` / ``on_epoch_close``); each window carries a
    vector-clock-style position ``(epoch, rank, record)`` — the epoch
    counter, the arena rank that opened it, and the snapshot of dirty
    record handles it is responsible for flushing.  A store is attributed
    to the *innermost* open window; touching a handle pending in any
    **outer** window means the newer epoch raced the older epoch's flush
    set.  On today's synchronous pipeline at most one window is ever open,
    so the checker is a structural no-op — it exists to gate the
    ROADMAP's pipelined-persistence work (Ben-David et al. delay-free
    epochs) from day one.

In ``strict`` mode (default) a violation raises
:class:`~repro.errors.OrderingViolationError` at the offending call, so the
failing stack trace points at the buggy store/publish, not at a later
recovery.  In non-strict mode violations accumulate in
:attr:`OrderingTracker.violations` for reporting.  ``strict_epochs``
controls the cross-epoch rule separately (the async pipeline will turn it
on in CI before the overlap lands).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Sequence, Set, Tuple

from repro.errors import OrderingViolationError
from repro.nvbm.pointers import NULL_HANDLE, is_dram

#: The slots whose stores are commit points.  ``V_curr`` is working-version
#: bookkeeping (rebuilt by recovery) and deliberately not a publish slot.
DEFAULT_PUBLISH_SLOTS = ("V_prev",)


@dataclass
class Violation:
    """One observed ordering violation."""

    kind: str
    handle: int
    slot: str = ""
    detail: str = ""

    def describe(self) -> str:
        where = f" via slot {self.slot!r}" if self.slot else ""
        return f"{self.kind}: handle {self.handle:#x}{where} — {self.detail}"

    def to_row(self) -> Dict[str, object]:
        return {
            "kind": self.kind,
            "handle": f"{self.handle:#x}",
            "slot": self.slot,
            "detail": self.detail,
        }


@dataclass
class _HandleState:
    """Shadow state of one record handle."""

    dirty: bool = False        #: has unflushed stores
    ever_flushed: bool = False
    trace: List[str] = field(default_factory=list)


@dataclass
class _EpochWindow:
    """One open persist epoch: its vector-clock position and flush set."""

    epoch: int                 #: monotonic epoch counter (the clock)
    rank: int                  #: arena rank that opened the window
    pending: Set[int]          #: dirty handles snapshotted at open —
    #: the records THIS epoch's flush is responsible for making durable
    #: A *sealed* window's snapshot is final (the asynchronous pipeline
    #: enqueued it): stores may no longer touch its pending set even while
    #: it is the innermost window.  Synchronous persist opens unsealed
    #: windows, whose own merge stores are legitimately attributed to them.
    sealed: bool = False

    def position(self, handle: int) -> Tuple[int, int, int]:
        return (self.epoch, self.rank, handle)


class OrderingTracker:
    """Shadow-state observer for persistence ordering.

    One tracker may observe several arenas (handles embed their arena id, so
    traces never collide).  Install with :func:`install_tracker`.
    """

    def __init__(self, publish_slots: Sequence[str] = DEFAULT_PUBLISH_SLOTS,
                 strict: bool = True, trace_limit: int = 64,
                 strict_epochs: bool = False):
        self.publish_slots: Set[str] = set(publish_slots)
        self.strict = strict
        self.strict_epochs = strict_epochs
        self.trace_limit = trace_limit
        self.violations: List[Violation] = []
        self._state: Dict[int, _HandleState] = {}
        self._published: Dict[str, int] = {}  # publish slot -> handle
        self._seq = 0
        self._epoch_clock = 0
        self._windows: List[_EpochWindow] = []  # open epochs, oldest first
        self.counts = {"stores": 0, "flushes": 0, "publishes": 0,
                       "frees": 0, "crashes": 0, "epochs": 0}

    # -- event helpers ------------------------------------------------------

    def _get(self, handle: int) -> _HandleState:
        st = self._state.get(handle)
        if st is None:
            st = self._state[handle] = _HandleState()
        return st

    def _record(self, handle: int, event: str) -> None:
        st = self._get(handle)
        if len(st.trace) < self.trace_limit:
            st.trace.append(f"{self._seq}:{event}")
        self._seq += 1

    def _violate(self, kind: str, handle: int, slot: str = "",
                 detail: str = "") -> None:
        v = Violation(kind=kind, handle=handle, slot=slot, detail=detail)
        self.violations.append(v)
        if self.strict:
            raise OrderingViolationError(v.describe())

    def trace_of(self, handle: int) -> Tuple[str, ...]:
        """The recorded event trace of one handle (debugging aid)."""
        st = self._state.get(handle)
        return tuple(st.trace) if st is not None else ()

    @property
    def published(self) -> Dict[str, int]:
        return dict(self._published)

    @property
    def open_epochs(self) -> Tuple[int, ...]:
        """Epoch numbers of the currently open persist windows, oldest
        first (the synchronous pipeline never has more than one)."""
        return tuple(w.epoch for w in self._windows)

    # -- epoch hooks --------------------------------------------------------

    def on_epoch_open(self, rank: int = 0, sealed: bool = False,
                      pending: Set[int] = None) -> int:
        """A persist epoch begins: snapshot the dirty set this epoch's
        flush is responsible for, and advance the epoch clock.

        The pipelined enqueue passes ``sealed=True`` (its snapshot is final
        the moment the epoch is queued — any later store hitting it is a
        cross-epoch race even before another window opens) and may pass the
        exact ``pending`` set it enqueued instead of the tracker's dirty
        snapshot."""
        self._epoch_clock += 1
        self.counts["epochs"] += 1
        if pending is None:
            pending = {h for h, st in self._state.items() if st.dirty}
        else:
            pending = set(pending)
        self._windows.append(
            _EpochWindow(epoch=self._epoch_clock, rank=rank,
                         pending=pending, sealed=sealed)
        )
        return self._epoch_clock

    def on_epoch_close(self, epoch: int = 0) -> None:
        """A persist epoch retired.  ``epoch`` of 0 closes the innermost
        window (the synchronous caller does not need to thread the id)."""
        if not self._windows:
            return
        if epoch == 0:
            self._windows.pop()
            return
        for i, win in enumerate(self._windows):
            if win.epoch == epoch:
                del self._windows[i]
                return

    def _check_epoch_store(self, handle: int) -> None:
        """A store is attributed to the innermost open window; landing on
        a handle an **outer** open window still has pending means the new
        epoch raced the old epoch's flush set.  Sealed windows (pipelined
        enqueues) are checkable even while innermost: their snapshot is
        final, so any store into it is a race with the in-flight drain."""
        for win in self._windows:
            if not (win.sealed or win is not self._windows[-1]):
                continue
            if handle in win.pending:
                current = (self._windows[-1].epoch if self._windows else 0)
                v = Violation(
                    kind="cross-epoch-waf", handle=handle,
                    detail=(
                        f"store from epoch {current} hit a record that "
                        f"open epoch {win.epoch} (rank {win.rank}) "
                        "snapshotted as pending-flush — write-after-flush "
                        f"race at position {win.position(handle)}"
                    ),
                )
                self.violations.append(v)
                if self.strict_epochs:
                    raise OrderingViolationError(v.describe())

    # -- arena hooks --------------------------------------------------------

    def on_store(self, handle: int, cached: bool = True) -> None:
        self.counts["stores"] += 1
        self._record(handle, "store")
        st = self._get(handle)
        if cached:
            st.dirty = True
            self._check_epoch_store(handle)
        for slot, published in self._published.items():
            if published == handle:
                self._violate(
                    "store-to-published", handle, slot,
                    "in-place store to a record the persistent version "
                    "reaches (I2: COW must copy it instead)",
                )

    def on_flush(self, handles: Iterable[int]) -> None:
        self.counts["flushes"] += 1
        for handle in handles:
            self._record(handle, "flush")
            st = self._get(handle)
            st.dirty = False
            st.ever_flushed = True
            for win in self._windows:
                win.pending.discard(handle)

    def on_publish(self, slot: str, handle: int) -> None:
        self.counts["publishes"] += 1
        if slot not in self.publish_slots:
            return
        if handle == NULL_HANDLE:
            self._published.pop(slot, None)
            return
        self._record(handle, f"publish[{slot}]")
        if is_dram(handle):
            self._violate(
                "publish-of-volatile", handle, slot,
                "persistent root slot points at a DRAM record",
            )
        st = self._get(handle)
        if st.dirty:
            if st.ever_flushed:
                self._violate(
                    "double-flush-elision", handle, slot,
                    "record was flushed once, re-stored, and published "
                    "without the needed second flush",
                )
            else:
                self._violate(
                    "publish-before-flush", handle, slot,
                    "record lines are still in the volatile cache at the "
                    "commit point",
                )
        self._published[slot] = handle

    def on_free(self, handle: int) -> None:
        self.counts["frees"] += 1
        self._record(handle, "free")
        for slot, published in self._published.items():
            if published == handle:
                self._violate(
                    "free-of-published", handle, slot,
                    "freed the record a persistent root slot still names",
                )
        # the slot may be recycled: a later store starts a fresh life —
        # and a freed record carries no flush obligation, so drop it from
        # every open epoch window (otherwise the recycled handle's first
        # store would read as a cross-epoch race with a dead record)
        for win in self._windows:
            win.pending.discard(handle)
        self._state.pop(handle, None)

    def on_crash(self) -> None:
        """Power loss: every dirty line is potentially gone; shadow state of
        unflushed stores is dropped (their records never became durable),
        and every open epoch window dies with the volatile state — the
        epoch that recovery re-drives opens a fresh window."""
        self.counts["crashes"] += 1
        for st in self._state.values():
            st.dirty = False
        self._windows.clear()

    # -- reporting ----------------------------------------------------------

    def report_rows(self) -> List[Dict[str, object]]:
        return [v.to_row() for v in self.violations]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"OrderingTracker(stores={self.counts['stores']}, "
            f"flushes={self.counts['flushes']}, "
            f"violations={len(self.violations)})"
        )


def install_tracker(*arenas, publish_slots: Sequence[str] = DEFAULT_PUBLISH_SLOTS,
                    strict: bool = True,
                    strict_epochs: bool = False) -> OrderingTracker:
    """Create one tracker and hook it into every given arena (and roots)."""
    tracker = OrderingTracker(publish_slots=publish_slots, strict=strict,
                              strict_epochs=strict_epochs)
    for arena in arenas:
        arena.tracer = tracker
        arena.roots.tracer = tracker
    return tracker


def uninstall_tracker(*arenas) -> None:
    """Detach any tracker from the given arenas."""
    for arena in arenas:
        arena.tracer = None
        arena.roots.tracer = None
