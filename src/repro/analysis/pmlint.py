"""pmlint: an AST static pass that knows the PM-octree persistence API.

The checker understands the NVBM API surface — ``MemoryArena.write`` /
``write_octant`` / ``new_octant``, the field-granular stores
(``write_field`` / ``write_payload`` / ``write_child_slot`` /
``write_child_slots`` / ``set_flags``, which are flush-tracked and
COW-checked exactly like full-record stores), ``RootSlots.set`` / ``swap``,
``flush()`` and ``injector.site(...)`` — and enforces three rules over
``src/repro``:

``missing-flush``
    Within a function, an NVBM store can reach a root-slot *publish* (a
    store to a publish slot such as ``SLOT_PREV``) with no intervening
    ``flush()``; or a publishing function exits with NVBM stores issued
    after its last ``flush()``.  Either way the commit point could expose a
    handle whose record lines are still in the volatile cache.
``bypass-cow``
    A function in ``core/`` stores to an existing NVBM record directly
    (``.nvbm.write`` / ``.nvbm.write_octant``) without going through
    ``PMOctree._ensure_writable`` — the copy-on-write discipline invariant
    I2 depends on.  Fresh allocations (``new_octant``) are exempt; reviewed
    exceptions carry a ``# pmlint: allow-direct-write`` pragma stating why.
``unknown-site``
    An ``injector.site(...)`` argument that the central registry
    (:mod:`repro.nvbm.sites`) does not know.  A typo here fails silently —
    the armed crash plan never fires.

The pass is intra-procedural and linearizes control flow in source order
(branches are scanned sequentially); that approximation is deliberate — the
persistence call sites in this codebase are straight-line, and a linter
must never hang on loops.  Lines containing ``pmlint: ignore`` suppress any
finding.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Tuple, Union

from repro.nvbm import sites as default_sites_module

#: attribute names whose call on an NVBM receiver counts as a store.
WRITE_ATTRS = ("write", "write_octant", "new_octant", "write_field",
               "write_payload", "write_child_slot", "write_child_slots",
               "set_flags")
#: attribute names that can mutate an *existing* record in place.
INPLACE_WRITE_ATTRS = ("write", "write_octant", "write_field",
                       "write_payload", "write_child_slot",
                       "write_child_slots", "set_flags")
#: names of the slot constants / literals whose store is a commit point.
PUBLISH_SLOT_CONSTS = ("SLOT_PREV",)
PUBLISH_SLOT_LITERALS = ("V_prev",)
NULL_HANDLE_NAMES = ("NULL_HANDLE",)
ALLOW_DIRECT_WRITE_PRAGMA = "pmlint: allow-direct-write"
IGNORE_PRAGMA = "pmlint: ignore"
SITES_MODULE = "repro.nvbm.sites"


@dataclass
class Finding:
    """One static-analysis finding."""

    rule: str
    path: str
    line: int
    message: str

    def describe(self) -> str:
        return f"{self.path}:{self.line}: [{self.rule}] {self.message}"

    def to_row(self) -> Dict[str, object]:
        return {"rule": self.rule, "path": self.path, "line": self.line,
                "message": self.message}


# --------------------------------------------------------------- AST helpers

def _dotted(node: ast.AST) -> str:
    """Best-effort dotted name of an expression ('self.nvbm.roots', ...)."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
    elif isinstance(node, ast.Call):
        parts.append("()")
    return ".".join(reversed(parts))


def _receiver_mentions(node: ast.AST, needle: str) -> bool:
    return needle in _dotted(node).split(".")


def _is_publish_slot_arg(arg: ast.AST) -> bool:
    if isinstance(arg, ast.Constant) and isinstance(arg.value, str):
        return arg.value in PUBLISH_SLOT_LITERALS
    if isinstance(arg, ast.Name):
        return arg.id in PUBLISH_SLOT_CONSTS
    if isinstance(arg, ast.Attribute):
        return arg.attr in PUBLISH_SLOT_CONSTS
    return False


def _is_null_handle_arg(arg: ast.AST) -> bool:
    if isinstance(arg, ast.Name):
        return arg.id in NULL_HANDLE_NAMES
    if isinstance(arg, ast.Attribute):
        return arg.attr in NULL_HANDLE_NAMES
    return isinstance(arg, ast.Constant) and arg.value == 0


def _linearize_calls(body: Sequence[ast.stmt]) -> List[ast.Call]:
    """Every Call node under ``body`` in source order, without descending
    into nested function/class definitions (they are separate scopes)."""
    calls: List[ast.Call] = []

    def visit(node: ast.AST) -> None:
        for child in ast.iter_child_nodes(node):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef,
                                  ast.ClassDef, ast.Lambda)):
                continue
            if isinstance(child, ast.Call):
                calls.append(child)
            visit(child)

    for stmt in body:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef,
                             ast.ClassDef)):
            continue  # nested scopes are checked separately
        visit(stmt)
    calls.sort(key=lambda c: (c.lineno, c.col_offset))
    return calls


# ------------------------------------------------------------------ the pass

class _ModuleChecker:
    def __init__(self, tree: ast.Module, path: str, source_lines: List[str],
                 sites_module) -> None:
        self.tree = tree
        self.path = path
        self.lines = source_lines
        self.sites_module = sites_module
        self.findings: List[Finding] = []
        self.in_core = "core" in Path(path).parts
        #: local alias names for the sites module / names imported from it
        self.sites_aliases: List[str] = []
        self.sites_names: List[str] = []
        self._scan_imports()

    # -- imports ------------------------------------------------------------

    def _scan_imports(self) -> None:
        for node in ast.walk(self.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.name == SITES_MODULE:
                        self.sites_aliases.append(
                            alias.asname or alias.name.split(".")[-1]
                        )
            elif isinstance(node, ast.ImportFrom):
                if node.module == SITES_MODULE:
                    for alias in node.names:
                        self.sites_names.append(alias.asname or alias.name)
                elif node.module == "repro.nvbm":
                    for alias in node.names:
                        if alias.name == "sites":
                            self.sites_aliases.append(alias.asname or "sites")

    # -- pragma handling ----------------------------------------------------

    def _line_has(self, lineno: int, pragma: str) -> bool:
        """True if the line, or the contiguous comment block directly above
        it, carries ``pragma`` (multi-line pragma comments are common)."""
        if 1 <= lineno <= len(self.lines) \
                and pragma in self.lines[lineno - 1]:
            return True
        candidate = lineno - 1
        while 1 <= candidate <= len(self.lines):
            text = self.lines[candidate - 1].strip()
            if not text.startswith("#"):
                break
            if pragma in text:
                return True
            candidate -= 1
        return False

    def _emit(self, rule: str, lineno: int, message: str) -> None:
        if self._line_has(lineno, IGNORE_PRAGMA):
            return
        self.findings.append(
            Finding(rule=rule, path=self.path, line=lineno, message=message)
        )

    # -- classification of one call -----------------------------------------

    def _classify(self, call: ast.Call) -> Optional[Tuple[str, dict]]:
        func = call.func
        if not isinstance(func, ast.Attribute):
            return None
        attr = func.attr
        recv = func.value
        if attr in ("flush", "flush_records") and \
                _receiver_mentions(recv, "nvbm"):
            # the pipeline's selective flush_records discharges the dirty
            # snapshot it is handed; for lint purposes it is a flush
            return "flush", {}
        if attr in WRITE_ATTRS and _receiver_mentions(recv, "nvbm") \
                and not _receiver_mentions(recv, "roots"):
            return "write", {"inplace": attr in INPLACE_WRITE_ATTRS}
        if attr == "set" and _receiver_mentions(recv, "roots") and call.args:
            if _is_publish_slot_arg(call.args[0]) and (
                len(call.args) < 2 or not _is_null_handle_arg(call.args[1])
            ):
                return "publish", {"slot": _dotted(call.args[0]) or "V_prev"}
            return None
        if attr == "swap" and _receiver_mentions(recv, "roots"):
            return "publish", {"slot": "swap"}
        if attr == "site" and _receiver_mentions(recv, "injector"):
            return "site", {}
        if attr == "_ensure_writable":
            return "ensure_writable", {}
        return None

    # -- rules --------------------------------------------------------------

    def check_scope(self, name: str, body: Sequence[ast.stmt]) -> None:
        events: List[Tuple[ast.Call, str, dict]] = []
        for call in _linearize_calls(body):
            classified = self._classify(call)
            if classified is not None:
                events.append((call, *classified))

        # missing-flush: NVBM store reaching a publish / publishing scope
        # exit with no intervening flush.
        pending: List[ast.Call] = []
        published = False
        for call, kind, _info in events:
            if kind == "write":
                pending.append(call)
            elif kind == "flush":
                pending.clear()
            elif kind == "publish":
                published = True
                if pending:
                    first = pending[0]
                    self._emit(
                        "missing-flush", call.lineno,
                        f"{name}: root-slot publish reachable from the NVBM "
                        f"store at line {first.lineno} with no intervening "
                        "flush() — the commit point may expose unflushed "
                        "cache lines",
                    )
                    pending.clear()
        if published and pending:
            self._emit(
                "missing-flush", pending[0].lineno,
                f"{name}: function publishes a root slot but exits with "
                "NVBM stores issued after its last flush()",
            )

        # bypass-cow: direct in-place NVBM stores in core/ without the COW
        # discipline.
        if self.in_core and name != "_ensure_writable":
            guarded = any(kind == "ensure_writable" for _, kind, _ in events)
            if not guarded:
                for call, kind, info in events:
                    if kind == "write" and info.get("inplace") \
                            and not self._line_has(
                                call.lineno, ALLOW_DIRECT_WRITE_PRAGMA):
                        self._emit(
                            "bypass-cow", call.lineno,
                            f"{name}: direct NVBM record store without "
                            "_ensure_writable (COW bypass; if the record is "
                            "provably fresh, annotate with "
                            f"'# {ALLOW_DIRECT_WRITE_PRAGMA}: <reason>')",
                        )

        # unknown-site: site names the registry does not know.
        for call, kind, _info in events:
            if kind == "site" and call.args:
                self._check_site_arg(name, call)

    def _check_site_arg(self, scope: str, call: ast.Call) -> None:
        arg = call.args[0]
        known = None
        shown = ""
        if isinstance(arg, ast.Constant) and isinstance(arg.value, str):
            shown = repr(arg.value)
            known = self.sites_module.is_known(arg.value)
        elif isinstance(arg, ast.Attribute) and \
                isinstance(arg.value, ast.Name) and \
                arg.value.id in self.sites_aliases:
            shown = _dotted(arg)
            known = hasattr(self.sites_module, arg.attr)
        elif isinstance(arg, ast.Name) and arg.id in self.sites_names:
            shown = arg.id
            known = hasattr(self.sites_module, arg.id)
        if known is False:
            self._emit(
                "unknown-site", call.lineno,
                f"{scope}: crash site {shown} is not in the registry "
                "(repro.nvbm.sites) — an armed plan for it never fires",
            )

    # -- driver -------------------------------------------------------------

    def run(self) -> List[Finding]:
        self.check_scope("<module>", self.tree.body)
        for node in ast.walk(self.tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                self.check_scope(node.name, node.body)
        return self.findings


# ----------------------------------------------------------------- public API

def lint_source(source: str, path: str = "<memory>",
                sites_module=None) -> List[Finding]:
    """Run every rule over one source string."""
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as exc:
        return [Finding(rule="syntax-error", path=path,
                        line=exc.lineno or 0, message=str(exc.msg))]
    checker = _ModuleChecker(
        tree, path, source.splitlines(),
        sites_module or default_sites_module,
    )
    return checker.run()


def lint_paths(paths: Iterable[Union[str, Path]],
               sites_module=None) -> List[Finding]:
    """Lint files and directories (recursing into ``*.py``)."""
    findings: List[Finding] = []
    for entry in paths:
        entry = Path(entry)
        files = sorted(entry.rglob("*.py")) if entry.is_dir() else [entry]
        for file in files:
            try:
                source = file.read_text(encoding="utf-8")
            except OSError as exc:
                findings.append(Finding(rule="io-error", path=str(file),
                                        line=0, message=str(exc)))
                continue
            findings.extend(lint_source(source, path=str(file),
                                        sites_module=sites_module))
    return findings


def lint_repo(root: Optional[Union[str, Path]] = None) -> List[Finding]:
    """Lint the installed ``repro`` package (default) or a given tree."""
    if root is None:
        import repro

        root = Path(repro.__file__).parent
    return lint_paths([root])
