"""Exhaustive crash-site sweep: arm every registered site, crash, recover.

For each name in the central registry (:mod:`repro.nvbm.sites`) the harness
builds a fresh PM-octree rig, runs a workload designed to visit every
declared site (COW updates, refinement, layout transformation with a moving
hot region, DRAM-pressure eviction, per-step persists), arms the site, and
— when the injected crash fires — applies power-loss semantics to both
arenas and asserts that ``pm_restore`` lands on a persisted state:

* the state of the **last completed persist**, when the crash fired before
  the commit point, or
* the state the working version had **at the instant of the crash**, when
  it fired after the atomic root publish (the new version committed).

Anything else — a ``ConsistencyError`` during recovery, a signature that
matches neither persist point, a tracker-recorded ordering violation — is a
finding.  Sites the default workload cannot reach (``roots.swap.mid``,
``replica.before_publish``) get dedicated drivers.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence

import numpy as np

from repro.config import DRAM_SPEC, NVBM_SPEC, PMOctreeConfig
from repro.core.api import pm_create, pm_restore
from repro.core.pmoctree import SLOT_CURR, SLOT_PREV
from repro.errors import ReproError, SimulatedCrash
from repro.nvbm import sites as site_registry
from repro.nvbm.arena import MemoryArena
from repro.nvbm.clock import SimClock
from repro.nvbm.failure import FailureInjector
from repro.nvbm.pointers import ARENA_DRAM, ARENA_NVBM
from repro.octree import morton

from repro.analysis.tracker import OrderingTracker, install_tracker


@dataclass
class SweepOutcome:
    """Result of arming one crash site."""

    site: str
    fired: bool
    recovered: Optional[bool]  #: None when the site never fired
    matched: str = ""          #: which persist point recovery landed on
    detail: str = ""
    violations: int = 0        #: ordering-tracker findings during the run

    @property
    def ok(self) -> bool:
        return self.violations == 0 and self.recovered in (True, None)

    def to_row(self) -> Dict[str, object]:
        return {
            "site": self.site,
            "fired": self.fired,
            "recovered": "-" if self.recovered is None else self.recovered,
            "matched": self.matched or "-",
            "violations": self.violations,
            "detail": self.detail or site_registry.describe(self.site),
        }


class _Rig:
    """A self-contained single-rank PM-octree test bench."""

    def __init__(self, dram_octants: int = 2048, nvbm_octants: int = 1 << 15,
                 dram_budget: int = 40, strict_epochs: bool = False,
                 max_inflight: int = 0):
        self.clock = SimClock()
        self.injector = FailureInjector()
        self.dram = MemoryArena(ARENA_DRAM, DRAM_SPEC, self.clock,
                                dram_octants)
        self.nvbm = MemoryArena(ARENA_NVBM, NVBM_SPEC, self.clock,
                                nvbm_octants, injector=self.injector)
        self.config = PMOctreeConfig(dram_capacity_octants=dram_budget,
                                     max_inflight_epochs=max_inflight)
        self.tree = pm_create(self.dram, self.nvbm, dim=2,
                              config=self.config, injector=self.injector)
        self.tracker = install_tracker(self.nvbm, strict=False,
                                       strict_epochs=strict_epochs)

    def crash(self, seed: int) -> None:
        self.dram.crash()
        self.nvbm.crash(np.random.default_rng(seed))

    def restore(self):
        self.injector.disarm()
        self.tree = pm_restore(self.dram, self.nvbm, dim=2,
                               config=self.config, injector=self.injector)
        return self.tree


def _signature(tree) -> Dict[int, tuple]:
    return {loc: tuple(tree.get_payload(loc)) for loc in tree.leaves()}


def _try_signature(tree) -> Optional[Dict[int, tuple]]:
    try:
        return _signature(tree)
    except ReproError:
        return None  # crash mid-operation can leave volatile index mid-edit


# ----------------------------------------------------------------- workload

def _setup_workload(rig: _Rig) -> List[int]:
    """Refine to 16 leaves and register a movable hot-region feature.

    Returns the one-element ``hot`` cell the step function rotates, so every
    layout transformation evicts the stale subtree and loads the fresh one.
    """
    tree = rig.tree
    for _ in range(2):
        for leaf in list(tree.leaves()):
            tree.refine(leaf)
    hot = [morton.loc_from_coords(1, (0, 0), 2)]
    tree.register_feature(
        lambda loc, p: loc != morton.ROOT_LOC
        and morton.ancestor_at(loc, 2, 1) == hot[0]
    )
    return hot


def _busy_step(rig: _Rig, hot: List[int], step: int, seed: int) -> None:
    """One time step touching COW, refinement, coarsening, eviction and the
    persist (so every partial-store crash site is reachable)."""
    tree = rig.tree
    leaves = sorted(tree.leaves())
    for i, leaf in enumerate(leaves[: 6 + step % 3]):
        tree.set_payload(leaf, (float(step), float(i), 0.0, 0.0))
    tree.refine(leaves[(seed + step) % len(leaves)])
    if step >= 4 and step % 2:
        # once the tree outgrew the DRAM budget, collapse one internal
        # octant whose children are all leaves, preferring an NVBM-resident
        # one so the partial-store coarsen path (and its coarsen.mid site)
        # is visited — earlier steps are left to pure growth so the COW
        # sites stay reachable too
        from repro.nvbm.pointers import is_nvbm

        candidates = sorted(
            (
                loc for loc in tree._index
                if loc not in tree._leaf_set
                and all(c in tree._leaf_set
                        for c in morton.children_of(loc, tree.dim))
            ),
            key=lambda loc: (not is_nvbm(tree._index[loc]), loc),
        )
        if candidates:
            tree.coarsen(candidates[0])
    hot[0] = morton.loc_from_coords(1, ((step + 1) % 2, 0), 2)
    tree.persist(transform=True)


def trace_run(steps: int = 10, seed: int = 7,
              strict_epochs: bool = False) -> "OrderingTracker":
    """Run the workload un-armed with the ordering tracker watching.

    Returns the tracker; a clean library leaves ``tracker.violations``
    empty.  This is the ``repro analyze --trace`` entry point.  The rig
    runs the *asynchronous* epoch pipeline (``max_inflight=1``) so persists
    genuinely overlap the next step's mutations; ``strict_epochs`` arms the
    cross-epoch write-after-flush rule over the sealed in-flight windows —
    the gate that proves overlapped epochs never intermix stores.
    """
    rig = _Rig(strict_epochs=strict_epochs, max_inflight=1)
    hot = _setup_workload(rig)
    rig.tree.persist(transform=True)
    for step in range(steps):
        _busy_step(rig, hot, step, seed)
    rig.tree.drain_persists()
    rig.tree.gc()
    return rig.tracker


# ------------------------------------------------------------ default driver

def _workload_driver(site: str, max_steps: int, seed: int) -> SweepOutcome:
    rig = _Rig()
    tree = rig.tree
    hot = _setup_workload(rig)
    tree.persist(transform=True)
    persisted_sig = _signature(tree)

    rig.injector.reset_hits()
    rig.injector.arm(site, at_hit=1)
    fired = False
    sig_at_crash: Optional[Dict[int, tuple]] = None
    try:
        for step in range(max_steps):
            _busy_step(rig, hot, step, seed)
            persisted_sig = _signature(tree)
    except SimulatedCrash:
        fired = True
        sig_at_crash = _try_signature(tree)

    violations = len(rig.tracker.violations)
    if not fired:
        return SweepOutcome(
            site=site, fired=False, recovered=None, violations=violations,
            detail=f"never reached in {max_steps} steps",
        )

    rig.crash(seed)
    try:
        restored = rig.restore()
        restored.check_invariants()
    except ReproError as exc:
        return SweepOutcome(site=site, fired=True, recovered=False,
                            violations=violations,
                            detail=f"recovery failed: {exc}")
    restored_sig = _signature(restored)
    if restored_sig == persisted_sig:
        matched = "last-persist"
    elif sig_at_crash is not None and restored_sig == sig_at_crash:
        matched = "committed-at-crash"
    else:
        return SweepOutcome(
            site=site, fired=True, recovered=False, violations=violations,
            detail="restored state matches neither persist point",
        )
    return SweepOutcome(site=site, fired=True, recovered=True,
                        matched=matched, violations=violations)


# ----------------------------------------------------------- special drivers

def _swap_driver(site: str, max_steps: int, seed: int) -> SweepOutcome:
    """roots.swap.mid: the exchange must be all-or-nothing."""
    rig = _Rig()
    tree = rig.tree
    for leaf in list(tree.leaves()):
        tree.refine(leaf)
    tree.persist(transform=False)
    # a raw root-slot exchange is itself a publish: discharge any write
    # obligations first (under the epoch pipeline, persist() alone only
    # *enqueues* the flush train)
    rig.nvbm.flush()
    persisted_sig = _signature(tree)
    before = (rig.nvbm.roots.get(SLOT_PREV), rig.nvbm.roots.get(SLOT_CURR))

    rig.injector.reset_hits()
    rig.injector.arm(site, at_hit=1)
    try:
        rig.nvbm.roots.swap(SLOT_PREV, SLOT_CURR)
    except SimulatedCrash:
        pass
    else:
        return SweepOutcome(site=site, fired=False, recovered=None,
                            detail="swap completed without visiting the site")
    after = (rig.nvbm.roots.get(SLOT_PREV), rig.nvbm.roots.get(SLOT_CURR))
    if after != before:
        return SweepOutcome(
            site=site, fired=True, recovered=False,
            detail=f"mid-swap crash tore the slots: {before} -> {after}",
        )
    rig.crash(seed)
    try:
        restored = rig.restore()
        restored.check_invariants()
    except ReproError as exc:
        return SweepOutcome(site=site, fired=True, recovered=False,
                            detail=f"recovery failed: {exc}")
    if _signature(restored) != persisted_sig:
        return SweepOutcome(site=site, fired=True, recovered=False,
                            detail="restored state lost the persisted step")
    return SweepOutcome(site=site, fired=True, recovered=True,
                        matched="last-persist",
                        violations=len(rig.tracker.violations))


def _replica_driver(site: str, max_steps: int, seed: int) -> SweepOutcome:
    """replica.before_publish: node-loss restore interrupted, then retried."""
    from repro.core.replication import ReplicaStore, restore_from_replica, \
        ship_delta

    rig = _Rig()
    tree = rig.tree
    for leaf in list(tree.leaves()):
        tree.refine(leaf)
    tree.persist(transform=False)
    persisted_sig = _signature(tree)
    replica = ReplicaStore()
    ship_delta(tree, replica)

    clock2 = SimClock()
    injector2 = FailureInjector()
    dram2 = MemoryArena(ARENA_DRAM, DRAM_SPEC, clock2, 2048)
    nvbm2 = MemoryArena(ARENA_NVBM, NVBM_SPEC, clock2, 1 << 15)
    injector2.arm(site, at_hit=1)
    try:
        restore_from_replica(replica, dram2, nvbm2, dim=2,
                             injector=injector2)
    except SimulatedCrash:
        pass
    else:
        return SweepOutcome(site=site, fired=False, recovered=None,
                            detail="replica restore never visited the site")
    # the half-materialised arena dies with the replacement node; the
    # replica survives on its peer, so the restore is simply retried
    nvbm2.crash(np.random.default_rng(seed))
    injector2.disarm()
    clock3 = SimClock()
    dram3 = MemoryArena(ARENA_DRAM, DRAM_SPEC, clock3, 2048)
    nvbm3 = MemoryArena(ARENA_NVBM, NVBM_SPEC, clock3, 1 << 15)
    try:
        restored = restore_from_replica(replica, dram3, nvbm3, dim=2)
        restored.check_invariants()
    except ReproError as exc:
        return SweepOutcome(site=site, fired=True, recovered=False,
                            detail=f"replica retry failed: {exc}")
    if _signature(restored) != persisted_sig:
        return SweepOutcome(site=site, fired=True, recovered=False,
                            detail="replica restore lost the persisted step")
    return SweepOutcome(site=site, fired=True, recovered=True,
                        matched="last-persist")


def _protocol_driver(site: str, max_steps: int, seed: int) -> SweepOutcome:
    """replica.ship.* / replica.resync.begin: crash inside the replication
    protocol, then verify both recovery paths still work.

    The host crashes mid-ship (before send / after the peer applied / after
    the ack / at the start of a resync).  The invariants: the host's local
    restore lands exactly on its last persisted version (shipping never
    gates the local commit), and a fresh session converges the replica so a
    replacement-node restore reproduces the same version.
    """
    from repro.core.replication import ReplicaSession, restore_from_replica

    rig = _Rig()
    tree = rig.tree
    for _ in range(2):
        for leaf in list(tree.leaves()):
            tree.refine(leaf)
    tree.persist(transform=False)
    session = ReplicaSession(tree)
    session.ship()  # replica holds version 1

    # a second persisted version, shipped with the site armed
    for i, leaf in enumerate(sorted(tree.leaves())[:4]):
        tree.set_payload(leaf, (float(i), 1.0, 0.0, 0.0))
    tree.persist(transform=False)
    persisted_sig = _signature(tree)
    replica = session.replica

    if site == site_registry.REPLICA_RESYNC_BEGIN:
        # Divergence needs a host whose session state died with it: crash
        # and restore first, then re-ship through a fresh session — the
        # peer's non-empty store classifies the delta as diverged.
        rig.crash(seed)
        tree = rig.restore()
        session = ReplicaSession(tree, replica=replica)

    rig.injector.reset_hits()
    rig.injector.arm(site, at_hit=1)
    fired = False
    try:
        session.ship()
    except SimulatedCrash:
        fired = True
    if not fired:
        return SweepOutcome(site=site, fired=False, recovered=None,
                            detail="ship never visited the site")

    # host power-loss mid-protocol: local restore must land on the persist
    rig.crash(seed)
    try:
        restored = rig.restore()
        restored.check_invariants()
    except ReproError as exc:
        return SweepOutcome(site=site, fired=True, recovered=False,
                            detail=f"recovery failed: {exc}")
    if _signature(restored) != persisted_sig:
        return SweepOutcome(
            site=site, fired=True, recovered=False,
            detail="local restore does not match the persisted version",
        )

    # the protocol must still converge the replica after the crash ...
    fresh = ReplicaSession(restored, replica=replica)
    try:
        fresh.ship()
    except ReproError as exc:
        return SweepOutcome(site=site, fired=True, recovered=False,
                            detail=f"post-crash ship failed: {exc}")
    if not fresh.protected:
        return SweepOutcome(site=site, fired=True, recovered=False,
                            detail="session not protected after re-ship")
    # ... so a replacement node can materialise the same version from it
    clock2 = SimClock()
    dram2 = MemoryArena(ARENA_DRAM, DRAM_SPEC, clock2, 2048)
    nvbm2 = MemoryArena(ARENA_NVBM, NVBM_SPEC, clock2, 1 << 15)
    try:
        from_replica = restore_from_replica(replica, dram2, nvbm2, dim=2)
        from_replica.check_invariants()
    except ReproError as exc:
        return SweepOutcome(site=site, fired=True, recovered=False,
                            detail=f"replica restore failed: {exc}")
    if _signature(from_replica) != persisted_sig:
        return SweepOutcome(
            site=site, fired=True, recovered=False,
            detail="replica restore does not match the persisted version",
        )
    return SweepOutcome(site=site, fired=True, recovered=True,
                        matched="last-persist",
                        violations=len(rig.tracker.violations))


def _migration_driver(site: str, max_steps: int, seed: int) -> SweepOutcome:
    """migrate.*: tear the publish-before-retire octant migration.

    A skewed 4-rank forest is repartitioned by work weight with the site
    armed; after the simulated power loss, :func:`recover_migration` must
    leave every octant in exactly one rank's store with its payload intact
    (rolling partial publishes back, re-driving missing retires), and a
    re-run of the repartition from the recovered pieces must complete and
    balance.
    """
    from repro.config import TITAN
    from repro.octree.linear import LinearOctree
    from repro.parallel.network import Network
    from repro.parallel.partition import (
        MigrationState,
        recover_migration,
        repartition,
    )
    from repro.parallel.simmpi import RankContext, SimCommunicator

    dim, max_level, nranks = 2, 2, 4
    rng = np.random.default_rng(seed)
    locs = sorted(
        (morton.loc_from_coords(max_level, (x, y), dim)
         for x in range(4) for y in range(4)),
        key=lambda loc: morton.zorder_key(loc, dim, max_level),
    )
    payloads = rng.random((len(locs), 4))
    truth = {loc: tuple(payloads[i]) for i, loc in enumerate(locs)}
    weight_of = {loc: float(1.0 + rng.integers(0, 5)) for loc in locs}
    # skewed ownership: rank 0 holds most of the curve, so the weighted cut
    # must ship multi-octant batches across every boundary
    bounds = [0, 10, 12, 14, 16]
    pieces = [
        LinearOctree(dim, locs[bounds[r]:bounds[r + 1]],
                     payloads[bounds[r]:bounds[r + 1]], max_level=max_level)
        for r in range(nranks)
    ]
    wlists = [
        np.array([weight_of[int(loc)] for loc in piece.locs])
        for piece in pieces
    ]
    ranks = [RankContext(rank=r, node=r) for r in range(nranks)]
    comm = SimCommunicator(ranks, Network(TITAN.network))
    injector = FailureInjector()
    injector.arm(site, at_hit=1)
    state = MigrationState()
    fired = False
    try:
        repartition(comm, pieces, weights=wlists, injector=injector,
                    state=state)
    except SimulatedCrash:
        fired = True
    if not fired:
        return SweepOutcome(site=site, fired=False, recovered=None,
                            detail="migration completed without visiting "
                                   "the site")

    # power loss mid-migration: the journal survives; recover from it
    injector.disarm()
    rec = recover_migration(state)
    seen: Dict[int, tuple] = {}
    for store in state.stores:
        for loc, row in store.items():
            if loc in seen:
                return SweepOutcome(
                    site=site, fired=True, recovered=False,
                    detail=f"octant {loc:#x} duplicated across ranks")
            seen[loc] = tuple(float(v) for v in row)
    if set(seen) != set(truth):
        return SweepOutcome(
            site=site, fired=True, recovered=False,
            detail=f"octants lost: {len(truth) - len(seen)} missing")
    torn = [loc for loc in truth if seen[loc] != truth[loc]]
    if torn:
        return SweepOutcome(site=site, fired=True, recovered=False,
                            detail=f"payload torn on {len(torn)} octants")
    if state.log.in_flight:
        return SweepOutcome(
            site=site, fired=True, recovered=False,
            detail=f"{len(state.log.in_flight)} batches left in flight")

    # the repartition is simply re-driven from the recovered pieces
    pieces2 = state.rebuild_pieces()
    wlists2 = [
        np.array([weight_of[int(loc)] for loc in piece.locs])
        for piece in pieces2
    ]
    try:
        res = repartition(comm, pieces2, weights=wlists2)
    except ReproError as exc:
        return SweepOutcome(site=site, fired=True, recovered=False,
                            detail=f"re-driven repartition failed: {exc}")
    if not res.balanced:
        return SweepOutcome(
            site=site, fired=True, recovered=False,
            detail=f"re-driven cut unbalanced: {res.imbalance_after:.3f}")
    if rec.redriven and rec.rolled_back:
        matched = "re-driven+rolled-back"
    elif rec.redriven:
        matched = "re-driven"
    else:
        matched = "rolled-back"
    return SweepOutcome(site=site, fired=True, recovered=True,
                        matched=matched)


def _media_driver(site: str, max_steps: int, seed: int) -> SweepOutcome:
    """media.*: crash inside the scrub/repair ladder, then restore.

    One published record gets a planted *stuck* line, so the scrub must
    walk the full repair ladder — rebuild from the replica (or a clean C0
    copy), relocate to fresh slots, atomically republish, retire the bad
    slot — with the site armed.  The media fault survives the power loss
    (the device object is the surviving hardware), so the media-aware
    restore must finish or redo the repair and land exactly on the
    persisted payloads:

    * ``media.repair.pre_publish`` — the old root is still published and
      still points at the faulty record; recovery re-detects and re-repairs.
    * ``media.repair.pre_retire`` — the repaired root is published; the
      condemned slot leaks until GC but the tree is already clean.
    * ``media.scrub.mid`` — the repair committed in full; recovery is a
      plain restore.
    """
    from repro.core.recovery import scrub
    from repro.core.replication import ReplicaStore, ship_delta
    from repro.nvbm.device import LINES_PER_RECORD, MediaFaultModel
    from repro.nvbm.pointers import index_of

    rig = _Rig()
    tree = rig.tree
    for _ in range(2):
        for leaf in list(tree.leaves()):
            tree.refine(leaf)
    tree.persist(transform=False)
    persisted_sig = _signature(tree)
    replica = ReplicaStore()
    ship_delta(tree, replica)

    root = rig.nvbm.roots.get(SLOT_PREV)
    published = sorted(tree.reachable_from(root))
    bad = published[seed % len(published)]
    model = MediaFaultModel(seed=seed)
    rig.nvbm.attach_fault_model(model)
    model.plant_stuck(index_of(bad) * LINES_PER_RECORD)

    rig.injector.reset_hits()
    rig.injector.arm(site, at_hit=1)
    fired = False
    try:
        scrub(tree, replica=replica)
    except SimulatedCrash:
        fired = True
    if not fired:
        return SweepOutcome(site=site, fired=False, recovered=None,
                            violations=len(rig.tracker.violations),
                            detail="scrub never visited the site")

    rig.crash(seed)
    rig.injector.disarm()
    violations = len(rig.tracker.violations)
    try:
        restored = pm_restore(rig.dram, rig.nvbm, dim=2, config=rig.config,
                              injector=rig.injector, replica=replica)
        restored.check_invariants()
    except ReproError as exc:
        return SweepOutcome(site=site, fired=True, recovered=False,
                            violations=violations,
                            detail=f"recovery failed: {exc}")
    if _signature(restored) != persisted_sig:
        return SweepOutcome(
            site=site, fired=True, recovered=False, violations=violations,
            detail="restored state does not match the persisted version",
        )
    return SweepOutcome(site=site, fired=True, recovered=True,
                        matched="last-persist", violations=violations)


def _recover_driver(site: str, max_steps: int, seed: int) -> SweepOutcome:
    """migrate.recover.mid: lose power *again* during migration recovery.

    First crash a migration mid-batch (so the journal holds both a
    published batch to re-drive and pending batches to roll back), then
    arm the recovery site and crash inside :func:`recover_migration`
    itself.  The second recovery run — un-armed — must finish the repair:
    both arms are idempotent, so a half-repaired journal is just re-walked
    and every octant still ends in exactly one rank's store.
    """
    from repro.config import TITAN
    from repro.octree.linear import LinearOctree
    from repro.parallel.network import Network
    from repro.parallel.partition import (
        MigrationState,
        recover_migration,
        repartition,
    )
    from repro.parallel.simmpi import RankContext, SimCommunicator

    dim, max_level, nranks = 2, 2, 4
    rng = np.random.default_rng(seed)
    locs = sorted(
        (morton.loc_from_coords(max_level, (x, y), dim)
         for x in range(4) for y in range(4)),
        key=lambda loc: morton.zorder_key(loc, dim, max_level),
    )
    payloads = rng.random((len(locs), 4))
    truth = {loc: tuple(payloads[i]) for i, loc in enumerate(locs)}
    weight_of = {loc: float(1.0 + rng.integers(0, 5)) for loc in locs}
    bounds = [0, 10, 12, 14, 16]
    pieces = [
        LinearOctree(dim, locs[bounds[r]:bounds[r + 1]],
                     payloads[bounds[r]:bounds[r + 1]], max_level=max_level)
        for r in range(nranks)
    ]
    wlists = [
        np.array([weight_of[int(loc)] for loc in piece.locs])
        for piece in pieces
    ]
    ranks = [RankContext(rank=r, node=r) for r in range(nranks)]
    comm = SimCommunicator(ranks, Network(TITAN.network))
    injector = FailureInjector()
    # tear the migration where the journal is at its most mixed: some
    # batches published, none retired
    injector.arm(site_registry.MIGRATE_PRE_RETIRE, at_hit=1)
    state = MigrationState()
    try:
        repartition(comm, pieces, weights=wlists, injector=injector,
                    state=state)
    except SimulatedCrash:
        pass
    else:
        return SweepOutcome(site=site, fired=False, recovered=None,
                            detail="setup migration completed without "
                                   "tearing")

    injector.disarm()
    injector.reset_hits()
    injector.arm(site, at_hit=1)
    fired = False
    try:
        recover_migration(state, injector=injector)
    except SimulatedCrash:
        fired = True
    if not fired:
        return SweepOutcome(site=site, fired=False, recovered=None,
                            detail="recovery completed without visiting "
                                   "the site")

    # second power loss survived: re-run recovery un-armed
    injector.disarm()
    recover_migration(state)
    seen: Dict[int, tuple] = {}
    for store in state.stores:
        for loc, row in store.items():
            if loc in seen:
                return SweepOutcome(
                    site=site, fired=True, recovered=False,
                    detail=f"octant {loc:#x} duplicated across ranks")
            seen[loc] = tuple(float(v) for v in row)
    if set(seen) != set(truth):
        return SweepOutcome(
            site=site, fired=True, recovered=False,
            detail=f"octants lost: {len(truth) - len(seen)} missing")
    torn = [loc for loc in truth if seen[loc] != truth[loc]]
    if torn:
        return SweepOutcome(site=site, fired=True, recovered=False,
                            detail=f"payload torn on {len(torn)} octants")
    if state.log.in_flight:
        return SweepOutcome(
            site=site, fired=True, recovered=False,
            detail=f"{len(state.log.in_flight)} batches left in flight")
    pieces2 = state.rebuild_pieces()
    wlists2 = [
        np.array([weight_of[int(loc)] for loc in piece.locs])
        for piece in pieces2
    ]
    try:
        res = repartition(comm, pieces2, weights=wlists2)
    except ReproError as exc:
        return SweepOutcome(site=site, fired=True, recovered=False,
                            detail=f"re-driven repartition failed: {exc}")
    if not res.balanced:
        return SweepOutcome(
            site=site, fired=True, recovered=False,
            detail=f"re-driven cut unbalanced: {res.imbalance_after:.3f}")
    return SweepOutcome(site=site, fired=True, recovered=True,
                        matched="recovery-re-driven")


def _epoch_driver(site: str, max_steps: int, seed: int) -> SweepOutcome:
    """epoch.*: tear the asynchronous persistence pipeline mid-flight.

    The rig runs pipelined (``max_inflight=1``).  Epoch A is persisted and
    fully drained (so a committed predecessor is always published), epoch B
    is enqueued and left *in flight*, then a third persist is issued with
    the site armed — its enqueue path walks every pipeline window in order
    (the overlap site while B still drains, the backpressure settle of B
    with its mid-drain and pre-publish sites, then epoch C's own merge and
    mid-enqueue site).  After the simulated power loss, recovery must land
    bit-for-bit on epoch B's state (B's drain committed before the tear) or
    epoch A's (it did not) — never a blend, never anything older.
    """
    rig = _Rig(max_inflight=1)
    tree = rig.tree
    for _ in range(2):
        for leaf in list(tree.leaves()):
            tree.refine(leaf)

    # epoch A: enqueued, then drained to completion -> published
    for i, leaf in enumerate(sorted(tree.leaves())[:4]):
        tree.set_payload(leaf, (1.0, float(i), 0.0, 0.0))
    tree.persist(transform=False)
    tree.drain_persists()
    sig_a = _signature(tree)

    # epoch B: enqueued, deliberately left in flight (the signature probe
    # runs unmetered so it does not burn down B's drain window)
    for i, leaf in enumerate(sorted(tree.leaves())[:4]):
        tree.set_payload(leaf, (2.0, float(i), 0.0, 0.0))
    tree.persist(transform=False)
    with tree.unmetered_inspection():
        sig_b = _signature(tree)

    # epoch C: persisted back-to-back so B is still in flight — its persist
    # call visits every armed pipeline site (overlap while B drains, B's
    # backpressure settle with the mid-drain and pre-publish sites, then
    # C's own mid-enqueue site)
    rig.injector.reset_hits()
    rig.injector.arm(site, at_hit=1)
    fired = False
    try:
        tree.persist(transform=False)
        tree.drain_persists()
    except SimulatedCrash:
        fired = True
    violations = len(rig.tracker.violations)
    if not fired:
        return SweepOutcome(site=site, fired=False, recovered=None,
                            violations=violations,
                            detail="pipelined persist never visited the site")

    rig.crash(seed)
    try:
        restored = rig.restore()
        restored.check_invariants()
    except ReproError as exc:
        return SweepOutcome(site=site, fired=True, recovered=False,
                            violations=violations,
                            detail=f"recovery failed: {exc}")
    restored_sig = _signature(restored)
    if restored_sig == sig_b:
        matched = "epoch-i"
    elif restored_sig == sig_a:
        matched = "epoch-i-1"
    else:
        return SweepOutcome(
            site=site, fired=True, recovered=False, violations=violations,
            detail="restored state is neither epoch i nor epoch i-1 — "
                   "a blend or an older version",
        )
    return SweepOutcome(site=site, fired=True, recovered=True,
                        matched=matched, violations=violations)


_DRIVERS: Dict[str, Callable[[str, int, int], SweepOutcome]] = {
    site_registry.EPOCH_OVERLAP_NEXT_STEP: _epoch_driver,
    site_registry.EPOCH_ENQUEUE_MID: _epoch_driver,
    site_registry.EPOCH_DRAIN_MID: _epoch_driver,
    site_registry.EPOCH_COMMIT_PRE_PUBLISH: _epoch_driver,
    site_registry.ROOTS_SWAP_MID: _swap_driver,
    site_registry.MIGRATE_PRE_PUBLISH: _migration_driver,
    site_registry.MIGRATE_MID_BATCH: _migration_driver,
    site_registry.MIGRATE_PRE_RETIRE: _migration_driver,
    site_registry.MIGRATE_RECOVER_MID: _recover_driver,
    site_registry.MEDIA_REPAIR_PRE_PUBLISH: _media_driver,
    site_registry.MEDIA_REPAIR_PRE_RETIRE: _media_driver,
    site_registry.MEDIA_SCRUB_MID: _media_driver,
    site_registry.REPLICA_BEFORE_PUBLISH: _replica_driver,
    site_registry.REPLICA_SHIP_BEFORE_SEND: _protocol_driver,
    site_registry.REPLICA_SHIP_AFTER_APPLY: _protocol_driver,
    site_registry.REPLICA_SHIP_BEFORE_ACK: _protocol_driver,
    site_registry.REPLICA_RESYNC_BEGIN: _protocol_driver,
}


# ----------------------------------------------------------------- public API

def sweep_site(site: str, max_steps: int = 8,
               seed: Optional[int] = None) -> SweepOutcome:
    """Arm one site, run its driver, verify recovery."""
    if seed is None:
        seed = sum(ord(c) for c in site) % 997
    driver = _DRIVERS.get(site, _workload_driver)
    return driver(site, max_steps, seed)


def sweep_all(names: Optional[Sequence[str]] = None,
              max_steps: int = 8) -> List[SweepOutcome]:
    """Sweep every registered site (or a given subset), in sorted order."""
    if names is None:
        names = sorted(site_registry.all_sites())
    return [sweep_site(name, max_steps=max_steps) for name in names]
