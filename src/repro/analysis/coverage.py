"""Crash-site coverage prover.

``analyze --sweep`` can only exercise sites someone remembered to declare;
this module closes the converse gap by *proving*, statically, that every
mutate→publish path the interprocedural pass discovered has a crash site
inside its window — so the sweep genuinely tears every commit protocol the
tree contains.

Inputs are the :class:`~repro.analysis.dataflow.AnalysisResult` path and
retire records:

* a **window** runs from the first unflushed NVBM store on a path to the
  publish that commits it.  The prover demands at least one site in the
  window that the central registry (:mod:`repro.nvbm.sites`) knows —
  ``sweep_all`` iterates the whole registry, so *registered* is the static
  proxy for *sweep-exercised* (the ``--sweep`` run then proves the site
  actually fires).  A window observed with an empty (or unregistered-only)
  site set on **any** call chain is an ``uncovered-path`` finding: there
  exists an entry point from which a crash between first-dirty and publish
  is never simulated.
* a **retire** of a migration-journal entry must likewise have a
  registered site earlier on its path (``uncovered-retire``): the
  publish-before-retire discipline is only testable if the sweep can lose
  power before the retire lands.

The prover also cross-references the registry against the site
declarations the call graph actually contains: a registered site that no
``injector.site(...)`` in the scanned tree declares can never fire and is
reported as ``unanchored-site`` (tests register ad-hoc names at runtime,
so this rule only makes sense over ``src/repro`` — which is what
``analyze`` scans).
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Set, Tuple

from repro.analysis.dataflow import AnalysisResult, DataflowFinding
from repro.nvbm import sites as default_sites_module


@dataclass
class WindowReport:
    """One unique mutate→publish window, aggregated over every call chain
    that reached it."""

    first_dirty: str            #: "file.py:line" of the first dirty store
    publish: str                #: "file.py:line" of the commit point
    sites: Tuple[str, ...]      #: union of registered sites seen inside
    covered: bool
    roots: Tuple[str, ...]      #: entry points that exhibited the window

    def to_row(self) -> Dict[str, object]:
        return {"first_dirty": self.first_dirty, "publish": self.publish,
                "sites": list(self.sites), "covered": self.covered,
                "roots": list(self.roots)}


@dataclass
class CoverageReport:
    """What the prover established about the scanned tree."""

    findings: List[DataflowFinding]
    windows: List[WindowReport]
    retires: List[Dict[str, object]]
    unanchored_sites: List[str]
    declared_sites: List[str]

    @property
    def uncovered(self) -> int:
        return sum(1 for w in self.windows if not w.covered)

    def finding_rows(self) -> List[Dict[str, object]]:
        return [f.to_row() for f in self.findings]

    def summary(self) -> Dict[str, object]:
        return {
            "windows": len(self.windows),
            "uncovered": self.uncovered,
            "retires": len(self.retires),
            "declared_sites": len(self.declared_sites),
            "unanchored_sites": list(self.unanchored_sites),
        }


def _declared_sites(result: AnalysisResult, sites_module) -> Set[str]:
    """Every site name an ``injector.site(...)`` call in the scanned tree
    declares (resolved through the sites module, same as the dataflow
    pass), plus the one RootSlots.swap fires internally."""
    declared: Set[str] = set()
    for info in result.graph.functions.values():
        minfo = result.graph.modules.get(info.module)
        for node in ast.walk(info.node):
            if not (isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Attribute)
                    and node.func.attr == "site" and node.args):
                continue
            arg = node.args[0]
            if isinstance(arg, ast.Constant) and isinstance(arg.value, str):
                declared.add(arg.value)
            elif minfo is not None and isinstance(arg, ast.Attribute) \
                    and isinstance(arg.value, ast.Name) \
                    and arg.value.id in minfo.sites_aliases:
                value = getattr(sites_module, arg.attr, None)
                if isinstance(value, str):
                    declared.add(value)
            elif minfo is not None and isinstance(arg, ast.Name) \
                    and arg.id in minfo.sites_names:
                value = getattr(sites_module, arg.id, None)
                if isinstance(value, str):
                    declared.add(value)
    return declared


def prove_coverage(result: AnalysisResult,
                   sites_module=None) -> CoverageReport:
    """Check every discovered window and retire for site coverage."""
    sites_module = sites_module or default_sites_module
    registered = sites_module.all_sites()
    findings: List[DataflowFinding] = []

    # -- windows -------------------------------------------------------------
    by_key: Dict[Tuple[str, int, str, int], dict] = {}
    for rec in result.path_records:
        entry = by_key.setdefault(rec.key(), {
            "sites": set(), "roots": set(), "bare": None,
        })
        entry["roots"].add(rec.root)
        good = [s for s in rec.sites if s in registered]
        entry["sites"].update(good)
        if not good and entry["bare"] is None:
            entry["bare"] = rec       # witness of the uncovered chain
    windows: List[WindowReport] = []
    for key in sorted(by_key):
        entry = by_key[key]
        bare = entry["bare"]
        covered = bare is None
        first_dirty = f"{Path(key[0]).name}:{key[1]}"
        publish = f"{Path(key[2]).name}:{key[3]}"
        windows.append(WindowReport(
            first_dirty=first_dirty, publish=publish,
            sites=tuple(sorted(entry["sites"])), covered=covered,
            roots=tuple(sorted(entry["roots"])),
        ))
        if not covered:
            findings.append(DataflowFinding(
                rule="uncovered-path", path=key[2], line=key[3],
                message=(
                    f"mutate->publish path (first dirty at {first_dirty}) "
                    "reaches its commit point with no registered crash "
                    f"site in the window when entered from {bare.root} — "
                    "the sweep never simulates a power loss here; declare "
                    "an injector.site(...) between the store and the "
                    "publish and register it in repro.nvbm.sites"
                ),
                chain=bare.publish.chain,
            ))

    # -- retires -------------------------------------------------------------
    retire_by_key: Dict[Tuple[str, int], dict] = {}
    for rec in result.retire_records:
        entry = retire_by_key.setdefault(rec.key(), {
            "sites": set(), "roots": set(), "bare": None,
        })
        entry["roots"].add(rec.root)
        good = [s for s in rec.sites_before if s in registered]
        entry["sites"].update(good)
        if not good and entry["bare"] is None:
            entry["bare"] = rec
    retires: List[Dict[str, object]] = []
    for key in sorted(retire_by_key):
        entry = retire_by_key[key]
        bare = entry["bare"]
        covered = bare is None
        where = f"{Path(key[0]).name}:{key[1]}"
        retires.append({
            "retire": where, "covered": covered,
            "sites": sorted(entry["sites"]),
            "roots": sorted(entry["roots"]),
        })
        if not covered:
            findings.append(DataflowFinding(
                rule="uncovered-retire", path=key[0], line=key[1],
                message=(
                    f"journal-entry retire at {where} has no registered "
                    f"crash site on its path when entered from {bare.root} "
                    "— the sweep can never lose power before this retire, "
                    "so the publish-before-retire bracket is untested"
                ),
                chain=bare.witness.chain,
            ))

    declared = _declared_sites(result, sites_module)
    unanchored = sorted(registered - declared)
    for name in unanchored:
        findings.append(DataflowFinding(
            rule="unanchored-site", path="<registry>", line=0,
            message=(
                f"registered crash site {name!r} is declared by no "
                "injector.site(...) in the scanned tree — armed plans for "
                "it never fire"
            ),
        ))

    findings.sort(key=lambda f: (f.rule, f.path, f.line))
    return CoverageReport(
        findings=findings, windows=windows, retires=retires,
        unanchored_sites=unanchored, declared_sites=sorted(declared),
    )
