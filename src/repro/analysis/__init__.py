"""Crash-consistency analysis: static checks, runtime ordering, crash sweeps.

The PM-octree correctness argument (docs/crash-consistency.md) rests on one
ordering invariant: *no root slot ever publishes a handle whose record lines
are still sitting unflushed in the volatile cache*.  This package proves the
invariant mechanically, three ways:

* :mod:`repro.analysis.pmlint` — an AST static pass over ``src/repro`` that
  knows the persistence API surface and flags code that can publish without
  an intervening ``flush()``, bypasses the COW discipline in ``core/``, or
  declares a crash site the registry does not know.
* :mod:`repro.analysis.tracker` — a shadow-state observer installed into
  :class:`~repro.nvbm.arena.MemoryArena` / ``RootSlots`` that records a
  per-handle event trace (store -> flush -> publish) and raises on ordering
  violations at the moment they happen.
* :mod:`repro.analysis.sweep` — an exhaustive harness that arms every
  registered crash site in turn and asserts recovery lands on a persisted
  state.

CLI: ``python -m repro analyze [--static|--trace|--sweep] [--json]``.
"""

from repro.analysis.pmlint import Finding, lint_paths, lint_repo, lint_source
from repro.analysis.sweep import SweepOutcome, sweep_all, sweep_site, trace_run
from repro.analysis.tracker import (
    OrderingTracker,
    Violation,
    install_tracker,
    uninstall_tracker,
)

__all__ = [
    "Finding",
    "OrderingTracker",
    "SweepOutcome",
    "Violation",
    "install_tracker",
    "lint_paths",
    "lint_repo",
    "lint_source",
    "sweep_all",
    "sweep_site",
    "trace_run",
    "uninstall_tracker",
]
