"""Crash-consistency analysis: static checks, runtime ordering, crash sweeps.

The PM-octree correctness argument (docs/crash-consistency.md) rests on one
ordering invariant: *no root slot ever publishes a handle whose record lines
are still sitting unflushed in the volatile cache*.  This package proves the
invariant mechanically, four ways:

* :mod:`repro.analysis.pmlint` — an AST static pass over ``src/repro`` that
  knows the persistence API surface and flags code that can publish without
  an intervening ``flush()``, bypasses the COW discipline in ``core/``, or
  declares a crash site the registry does not know.
* :mod:`repro.analysis.dataflow` (with :mod:`repro.analysis.callgraph`) —
  the interprocedural layer: flush/publish obligations are tracked as
  abstract state along inlined call chains, so a store three frames below
  a publish still reaches it, and every finding carries a call-chain
  witness.  :mod:`repro.analysis.coverage` builds on its path records to
  *prove* every discovered mutate→publish window (and journal retire)
  contains a registered, sweep-exercised crash site.
* :mod:`repro.analysis.tracker` — a shadow-state observer installed into
  :class:`~repro.nvbm.arena.MemoryArena` / ``RootSlots`` that records a
  per-handle event trace (store -> flush -> publish) and raises on ordering
  violations at the moment they happen; its epoch happens-before checker
  (``cross-epoch-waf``) gates the future pipelined-persistence work.
* :mod:`repro.analysis.sweep` — an exhaustive harness that arms every
  registered crash site in turn and asserts recovery lands on a persisted
  state.

CLI: ``python -m repro analyze [--static|--trace|--sweep|--interprocedural|
--coverage] [--strict-epochs] [--baseline FILE] [--json]``.
"""

from repro.analysis.callgraph import CallGraph, build_callgraph
from repro.analysis.coverage import CoverageReport, prove_coverage
from repro.analysis.dataflow import (
    AnalysisResult,
    DataflowFinding,
    analyze_paths,
    analyze_repo,
)
from repro.analysis.pmlint import Finding, lint_paths, lint_repo, lint_source
from repro.analysis.sweep import SweepOutcome, sweep_all, sweep_site, trace_run
from repro.analysis.tracker import (
    OrderingTracker,
    Violation,
    install_tracker,
    uninstall_tracker,
)

__all__ = [
    "AnalysisResult",
    "CallGraph",
    "CoverageReport",
    "DataflowFinding",
    "Finding",
    "OrderingTracker",
    "SweepOutcome",
    "Violation",
    "analyze_paths",
    "analyze_repo",
    "build_callgraph",
    "install_tracker",
    "lint_paths",
    "lint_repo",
    "lint_source",
    "prove_coverage",
    "sweep_all",
    "sweep_site",
    "trace_run",
    "uninstall_tracker",
]
