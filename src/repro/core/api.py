"""The Table-1 programming interface: orthogonal persistence for octrees.

Users of the library never manage NVBM allocations or persistent pointers;
they call four routines, mirroring how Gerris applications call
``gfs_output_write``/``gfs_output_read`` on snapshot files:

========================  ====================================================
``pm_create``             create a new PM-octree; returns the working tree
``pm_persistent``         create a persistent version of the octree
``pm_restore``            restore a PM-octree after a failure
``pm_delete``             delete all octants on NVBM and DRAM
========================  ====================================================
"""

from __future__ import annotations

from typing import Optional

from repro.config import PMOctreeConfig
from repro.nvbm.arena import MemoryArena
from repro.nvbm.failure import FailureInjector
from repro.core.pmoctree import PMOctree
from repro.core.recovery import attach_and_restore
from repro.octree.store import Payload, ZERO_PAYLOAD


def pm_create(dram: MemoryArena, nvbm: MemoryArena, dim: int = 2,
              config: Optional[PMOctreeConfig] = None,
              injector: Optional[FailureInjector] = None,
              root_payload: Payload = ZERO_PAYLOAD) -> PMOctree:
    """Create a new PM-octree rooted at a single leaf; returns ``V_i``."""
    return PMOctree(dram, nvbm, dim=dim, config=config, injector=injector,
                    root_payload=root_payload)


def pm_persistent(tree: PMOctree, transform: bool = True) -> int:
    """Create a persistent version of the octree (the §3.2 persist point).

    Returns the handle of the new persistent root.
    """
    return tree.persist(transform=transform)


def pm_restore(dram: MemoryArena, nvbm: MemoryArena, dim: int = 2,
               config: Optional[PMOctreeConfig] = None,
               injector: Optional[FailureInjector] = None,
               replica=None, transport=None) -> PMOctree:
    """Restore a PM-octree from the NVBM arena's persistent version.

    Use after a crash/restart on the same node: the NVBM arena object is the
    surviving device; DRAM contents are assumed lost.  ``replica`` (and an
    optional ``transport`` to charge the fetches through) lets the restore
    traversal's media-repair ladder rebuild records whose NVBM lines went
    bad — see :func:`repro.core.recovery.scrub`.
    """
    return attach_and_restore(dram, nvbm, dim=dim, config=config,
                              injector=injector, replica=replica,
                              transport=transport)


def pm_delete(tree: PMOctree) -> None:
    """Delete all octants on NVBM and DRAM and clear the persistent roots."""
    tree.delete_all()
