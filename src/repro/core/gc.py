"""Mark-and-sweep garbage collection over the NVBM arena (§3.2).

Deletion never frees NVBM slots directly — octants are only marked — so the
arena fills with superseded COW originals, coarsened children and records
orphaned by crashes (allocated but torn/never flushed).  GC reclaims
everything not reachable from the live roots:

* the persistent root ``V_{i-1}``,
* the working version (its NVBM handles in the index — this also covers the
  current root when it is a DRAM handle),
* the NVBM origins of DRAM-resident C0 octants (still needed as sharing
  targets at the next merge),
* the roots of in-flight pipeline epochs (enqueued but not yet published —
  reachable from no root slot, and possibly not from the index either once
  the next step coarsens; sweeping one would dangle its scheduled publish).

Under the epoch pipeline the published tree can lag the working version by
several epochs; rather than traversing each retained version (re-reading
every record unique to it), the mark *pins* the per-epoch deltas — COW
``superseded`` originals plus non-COW ``detached`` departures — which
reconstruct every retained version's reachable set from the working
version's by pure set union, with no device reads.

GC must not run during a merge (the structure is mid-flight); the paper
disables it there and so do we (:class:`repro.errors.GCDisabledError` is
raised by :meth:`repro.core.pmoctree.PMOctree.gc`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Set

from repro.nvbm.pointers import NULL_HANDLE, is_nvbm

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.pmoctree import PMOctree

from repro.core.pmoctree import SLOT_CURR, SLOT_PREV


@dataclass
class GCResult:
    """Outcome of one collection."""

    marked: int
    swept: int

    @property
    def reclaimed(self) -> int:
        return self.swept


def _mark(pmo: "PMOctree") -> Set[int]:
    """BFS over NVBM records from all live roots.

    Synchronous mode traverses both root slots: ``V_{i-1}`` and the working
    version share almost every record, so the visited set makes the second
    walk nearly free.  Under the epoch pipeline the published root lags the
    working version by up to ``max_inflight`` epochs and a traversal of the
    old tree would *re-read* every record unique to it — exactly the volume
    the deferred drain hides, cancelling the overlap win.  Instead the
    pipelined mark walks only the working version and **pins** the
    per-epoch deltas (COW originals and detached records): version *k*'s
    reachable set is the working version's plus the deltas of every later
    epoch, so the union is exact, with zero reads.
    """
    seen: Set[int] = set()
    roots = []
    pins: Set[int] = set()
    if pmo._pipeline is not None:
        # pin, don't traverse: old-version-only records plus the root
        # slots and in-flight roots themselves (their interiors are
        # covered by the working-version walk + the pins).  The union
        # happens *after* the walk — a pin that is also a working-version
        # record must still be traversed normally.
        raw = pmo._pipeline.pinned_handles()
        raw.extend(pmo._superseded)
        raw.extend(pmo._detached)
        raw.extend(pmo._pipeline.live_roots())
        for slot in (SLOT_PREV, SLOT_CURR):
            raw.append(pmo.nvbm.roots.get(slot))
        pins.update(h for h in raw
                    if h != NULL_HANDLE and is_nvbm(h)
                    and pmo.nvbm.contains(h))
    else:
        for slot in (SLOT_PREV, SLOT_CURR):
            h = pmo.nvbm.roots.get(slot)
            if h != NULL_HANDLE and is_nvbm(h):
                roots.append(h)
    roots.extend(h for h in pmo._index.values() if is_nvbm(h))
    roots.extend(h for h in pmo._origin.values() if is_nvbm(h))

    stack = [h for h in roots if pmo.nvbm.contains(h)]
    while stack:
        h = stack.pop()
        if h in seen:
            continue
        seen.add(h)
        rec = pmo.nvbm.read_octant(h)
        for ch in rec.live_children():
            if is_nvbm(ch) and ch not in seen and pmo.nvbm.contains(ch):
                stack.append(ch)
    seen |= pins
    return seen


def mark_and_sweep(pmo: "PMOctree") -> GCResult:
    """Free every NVBM record unreachable from the live roots."""
    marked = _mark(pmo)
    swept = 0
    for h in list(pmo.nvbm.live_handles()):
        if h not in marked:
            pmo.nvbm.free(h)
            swept += 1
    pmo.stats.gc_runs += 1
    pmo.stats.octants_reclaimed += swept
    return GCResult(marked=len(marked), swept=swept)
