"""Dynamic layout transformation with feature-directed sampling (§3.3).

History is a bad predictor under AMR — the interesting region moves between
steps — so PM-octree *pre-executes* application feature functions (the very
refine/coarsen/solve predicates the simulation already has) on a sample of
each candidate subtree to estimate which subtrees the next step will touch.

Candidate subtrees sit at level ``L_sub`` from eq. (1):

    L_sub = Depth_octree - floor(log_Fanout(Size_DRAM))

so a candidate is about the size C0 can hold.  The hottest NVBM candidate
replaces the coldest DRAM one whenever ``Ratio_access > T_transform``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Optional, Tuple

import numpy as np

from repro.nvbm import sites
from repro.nvbm.pointers import is_dram
from repro.octree import morton

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.pmoctree import PMOctree

from repro.core.merge import evict_subtree, load_subtree, subtree_locs


@dataclass
class TransformationResult:
    """What one detection/transformation pass did."""

    l_sub: int
    candidate_freqs: Dict[int, float] = field(default_factory=dict)
    loaded: List[int] = field(default_factory=list)
    evicted: List[int] = field(default_factory=list)

    @property
    def transformed(self) -> bool:
        return bool(self.loaded or self.evicted)


def subtree_level(pmo: "PMOctree") -> int:
    """Eq. (1): the level whose subtrees are about C0-sized."""
    depth = pmo.tree_depth()
    fanout = morton.fanout(pmo.dim)
    size_dram = max(2, pmo.config.dram_capacity_octants)
    l_sub = depth - int(math.floor(math.log(size_dram, fanout)))
    return max(0, min(depth, l_sub))


def candidate_roots(pmo: "PMOctree", l_sub: int) -> List[int]:
    """Existing octants at level ``l_sub`` (the transformation candidates)."""
    if l_sub == 0:
        return [morton.ROOT_LOC]
    return [
        loc for loc in pmo._index
        if morton.level_of(loc, pmo.dim) == l_sub
    ]


def sample_frequency(pmo: "PMOctree", root_loc: int,
                     rng: np.random.Generator) -> Tuple[float, int]:
    """Feature-directed access-frequency estimate for one subtree.

    Samples ``N_sample = min(n_sample_max, size)`` octants, pre-executes
    every registered feature function on them, and returns
    ``(total hits, subtree size)``.
    """
    locs = subtree_locs(pmo, root_loc)
    size = len(locs)
    if size == 0 or not pmo.features:
        return 0.0, size
    n = min(pmo.config.n_sample_max, size)
    picks = rng.choice(size, size=n, replace=False)
    hits = 0
    for i in picks:
        loc = locs[int(i)]
        payload = pmo.get_payload(loc)
        for fn in pmo.features:
            if fn(loc, payload):
                hits += 1
                break  # an octant is "of interest" once any feature fires
    # normalise to the whole subtree so different sample sizes compare
    return hits * (size / n), size


def detect_and_transform(pmo: "PMOctree",
                         rng: Optional[np.random.Generator] = None
                         ) -> TransformationResult:
    """Run transformation detection and re-layout PM-octree if warranted.

    Called after merges only (§3.3).  Greedy policy: repeatedly load the
    hottest NVBM candidate, evicting the coldest C0 subtree when DRAM is
    short, while ``Ratio_access`` clears ``T_transform``.
    """
    rng = rng or np.random.default_rng(pmo.config.seed + pmo.epoch)
    l_sub = subtree_level(pmo)
    result = TransformationResult(l_sub=l_sub)
    candidates = candidate_roots(pmo, l_sub)
    if not candidates:
        return result

    # Sampling cost is bounded (min(100, size) octants per candidate) and
    # does NOT grow with the mesh, so it gets its own clock phase — the
    # scaling harness must not multiply it by the element-scale factor.
    clock = pmo.nvbm.device.clock
    freqs: Dict[int, float] = {}
    sizes: Dict[int, int] = {}
    with clock.phase("sample"):
        for root in candidates:
            f, s = sample_frequency(pmo, root, rng)
            freqs[root] = f
            sizes[root] = s
    result.candidate_freqs = freqs

    # Greedy re-layout.  While free DRAM can hold a hot subtree, loading is
    # unconditional (more of V_i in DRAM is always better).  Once DRAM is
    # full, a swap happens only when Ratio_access = Freq^NVBM / Freq^DRAM
    # clears T_transform — the §3.3 detection condition.
    eps = 1e-12
    with clock.phase("transform"):
        while True:
            in_dram = {r for r in freqs if is_dram(pmo._index[r])}
            in_nvbm = [r for r in freqs if r not in in_dram]
            if not in_nvbm:
                break
            hot = max(in_nvbm, key=lambda r: freqs[r])
            if freqs[hot] <= 0:
                break
            free = pmo.c0_free
            if free < sizes[hot]:
                # must displace residents: only when clearly hotter
                cold_pool = sorted(in_dram, key=lambda r: freqs[r])
                while free < sizes[hot] and cold_pool:
                    victim = cold_pool.pop(0)
                    ratio = freqs[hot] / max(freqs[victim], eps)
                    if ratio <= pmo.config.t_transform:
                        break  # victim is not clearly colder
                    evict_subtree(pmo, victim)
                    pmo.stats.evictions += 1
                    pmo._obs_count("pm.evictions")
                    pmo._obs_count("pm.transform_evicted_subtrees")
                    result.evicted.append(victim)
                    free = pmo.c0_free
                if free < sizes[hot]:
                    # a hot subtree stays spilled to NVBM: the C0 budget is
                    # the bottleneck — the autotuner's grow signal
                    pmo.stats.hot_spills += 1
                    pmo._obs_count("pm.transform_hot_spills")
                    break  # cannot make room without an unjustified swap
            pmo.injector.site(sites.TRANSFORM_MID)
            if not load_subtree(pmo, hot):
                pmo.stats.hot_spills += 1
                pmo._obs_count("pm.transform_hot_spills")
                break  # still does not fit (capacity fragmentation)
            result.loaded.append(hot)
            pmo.stats.transformations += 1
            pmo._obs_count("pm.transformations")
            pmo._obs_count("pm.transform_loaded_subtrees")
    return result
