"""The PM-octree data structure.

Placement invariants (all checkable, see ``tests/core/test_invariants.py``):

I1. Octants of the working version ``V_i`` live either in a DRAM arena (the
    C0 sub-forest) or in an NVBM arena (C1); an octant is in DRAM iff one of
    its ancestors-or-self is a registered C0 subtree root, and C0 subtrees
    are *entirely* DRAM-resident.
I2. Every record reachable from the persistent root ``V_{i-1}`` is an NVBM
    record with ``epoch < current_epoch`` that has been flushed, and is
    never written in place.  (This is what makes recovery safe without
    per-store fences.)
I3. An NVBM record with ``epoch == current_epoch`` is reachable only from
    ``V_i`` and may be updated in place.
I4. Mutating a shared (I2) octant copies it — and its ancestor path up to
    the nearest in-place-writable octant — into fresh current-epoch records
    (Fig 4's propagation).

Versions share all octants that did not change since the last persist point,
which is where Fig 3's memory saving comes from.

Volatile acceleration structures (``_index``, ``_leaf_set``, C0 bookkeeping)
are rebuilt from records on recovery; correctness never depends on them
surviving a crash.
"""

from __future__ import annotations

import heapq
import struct
from contextlib import contextmanager, nullcontext
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterator, List, Optional, Set

import numpy as np

from repro.config import PMOctreeConfig
from repro.errors import ConsistencyError, GCDisabledError, ReproError
from repro.nvbm import sites
from repro.nvbm.arena import MemoryArena
from repro.nvbm.failure import FailureInjector
from repro.nvbm.pointers import NULL_HANDLE, is_dram, is_nvbm
from repro.nvbm.records import (FLAG_DELETED, FLAG_LEAF, PAYLOAD_SPAN,
                                OctantRecord)
from repro.octree import morton
from repro.octree.store import Payload, ZERO_PAYLOAD

#: Root-slot names in the NVBM arena.
SLOT_PREV = "V_prev"
SLOT_CURR = "V_curr"

FeatureFn = Callable[[int, Payload], bool]

_F64 = struct.Struct("<d")


@dataclass
class C0Stats:
    """Per-C0-subtree bookkeeping for the eviction/transformation policies."""

    size: int = 0          #: octants currently in this DRAM subtree
    accesses: int = 0      #: operations routed into it (LFU eviction key)
    #: every loc in this subtree, kept in step with refine/coarsen/merge so
    #: ``subtree_locs`` answers in O(size) instead of scanning the index
    locs: Set[int] = field(default_factory=set)


@dataclass
class PMStats:
    """Counters the evaluation section reports on."""

    cow_copies: int = 0
    inplace_updates: int = 0
    evictions: int = 0
    merges: int = 0
    persists: int = 0
    transformations: int = 0
    gc_runs: int = 0
    octants_reclaimed: int = 0
    marked_deleted: int = 0
    partial_reads: int = 0   #: field-granular record loads
    partial_writes: int = 0  #: field-granular record stores
    hot_spills: int = 0      #: transformation could not fit a hot subtree


class PMOctree:
    """Persistent merged octree over one DRAM and one NVBM arena.

    Implements the :class:`repro.octree.store.AdaptiveTree` protocol, so all
    meshing routines (balance, refinement engine, mesh extraction, solver)
    run on it unchanged.
    """

    #: attached repro.obs.Observability; class-level default because the
    #: recovery path (attach_and_restore) constructs instances via __new__
    obs = None
    #: bound pm.partial_* counters (attach_obs); class-level None for the
    #: same __new__ reason, and so the hot path is one attribute test
    _m_partial_reads = None
    _m_partial_writes = None
    #: attached EpochPipeline (asynchronous persistence); None means the
    #: synchronous persist path — class-level for the __new__ reason above
    _pipeline = None

    def __init__(self, dram: MemoryArena, nvbm: MemoryArena, dim: int = 2,
                 config: Optional[PMOctreeConfig] = None,
                 injector: Optional[FailureInjector] = None,
                 root_payload: Payload = ZERO_PAYLOAD):
        if dim not in (2, 3):
            raise ValueError(f"only dim 2 and 3 supported, got {dim}")
        self.dram = dram
        self.nvbm = nvbm
        self.dim = dim
        self.config = config or PMOctreeConfig()
        self.injector = injector or FailureInjector()
        if nvbm.roots.injector is None:
            nvbm.roots.injector = self.injector
        self.stats = PMStats()
        self.epoch = 1
        self.merging = False
        self.features: List[FeatureFn] = []
        #: attached remote replica (§3.4's V^P), shipped to at every persist
        self.replica = None
        self.on_replica_ship: Optional[Callable[[int], None]] = None
        #: attached ReplicaSession; when set, persist ships through the
        #: acknowledged retry/backoff protocol instead of a direct apply
        self.replicator = None

        # volatile acceleration state (rebuilt by recovery)
        self._index: Dict[int, int] = {}
        self._leaf_set: Set[int] = set()
        self._c0_roots: Dict[int, C0Stats] = {}
        self._origin: Dict[int, int] = {}
        self._dirty: Set[int] = set()
        self._superseded: List[int] = []
        #: NVBM records that left the working version *without* being COW
        #: originals (coarsened old-epoch children, merge-replaced origins).
        #: They are still reachable from published predecessor versions, so
        #: the pipelined GC pins them instead of re-traversing the old tree;
        #: only maintained when an epoch pipeline is attached (the
        #: synchronous mark walks V_{i-1} itself and needs no delta).
        self._detached: List[int] = []

        if self.config.max_inflight_epochs > 0:
            from repro.core.pipeline import EpochPipeline

            self._pipeline = EpochPipeline(
                self, max_inflight=self.config.max_inflight_epochs)

        # The initial tree is a single root leaf in DRAM (the whole tree is
        # C0 until pressure or a persist pushes octants to NVBM).
        root = OctantRecord(loc=morton.ROOT_LOC, level=0, epoch=self.epoch,
                            payload=root_payload)
        h = self.dram.new_octant(root)
        self._index[morton.ROOT_LOC] = h
        self._leaf_set.add(morton.ROOT_LOC)
        self._c0_roots[morton.ROOT_LOC] = C0Stats(size=1,
                                                  locs={morton.ROOT_LOC})
        self.nvbm.roots.set(SLOT_PREV, NULL_HANDLE)
        self.nvbm.roots.set(SLOT_CURR, h)

    # -------------------------------------------------------------- observability

    def attach_obs(self, obs) -> None:
        """Report ``pm.*`` counters and persist spans to an
        :class:`repro.obs.Observability` (see docs/observability.md)."""
        self.obs = obs
        self._m_partial_reads = obs.metrics.counter("pm.partial_reads")
        self._m_partial_writes = obs.metrics.counter("pm.partial_writes")

    def _count_partial_read(self) -> None:
        self.stats.partial_reads += 1
        if self._m_partial_reads is not None:
            self._m_partial_reads.inc()

    def _count_partial_write(self) -> None:
        self.stats.partial_writes += 1
        if self._m_partial_writes is not None:
            self._m_partial_writes.inc()

    def _obs_count(self, name: str, v: int = 1) -> None:
        if self.obs is not None:
            self.obs.metrics.counter(name).inc(v)

    def _obs_span(self, name: str, **labels):
        if self.obs is not None:
            return self.obs.tracer.span(name, **labels)
        return nullcontext()

    # ------------------------------------------------------------------ protocol

    def root_loc(self) -> int:
        return morton.ROOT_LOC

    def exists(self, loc: int) -> bool:
        return loc in self._index

    def is_leaf(self, loc: int) -> bool:
        return loc in self._leaf_set

    def leaves(self) -> Iterator[int]:
        return iter(list(self._leaf_set))

    def num_octants(self) -> int:
        return len(self._index)

    def num_leaves(self) -> int:
        return len(self._leaf_set)

    def handle_of(self, loc: int) -> int:
        try:
            return self._index[loc]
        except KeyError:
            raise ReproError(f"octant {loc:#x} not in PM-octree") from None

    def _arena_of(self, handle: int) -> MemoryArena:
        return self.dram if is_dram(handle) else self.nvbm

    def get_payload(self, loc: int) -> Payload:
        handle = self.handle_of(loc)
        self._touch_c0(loc, handle)
        self._count_partial_read()
        return self._arena_of(handle).read_payload(handle)

    def set_payload(self, loc: int, payload: Payload) -> None:
        handle = self.handle_of(loc)
        self._touch_c0(loc, handle)
        if is_dram(handle):
            self.dram.write_payload(handle, tuple(payload))
            self._count_partial_write()
            self._dirty.add(loc)
            self.stats.inplace_updates += 1
            self._obs_count("pm.inplace_updates")
            return
        handle = self._ensure_writable(loc)
        self.nvbm.write_payload(handle, tuple(payload))
        self._count_partial_write()
        self.injector.site(sites.PAYLOAD_PARTIAL)

    # ------------------------------------------------- field-granular access

    def get_field(self, loc: int, slot: int) -> float:
        """One payload slot — an 8-byte, single-line field read.

        The §5.4 economy applied *inside* the record: a solver probe of one
        quantity (e.g. a neighbor's VOF) loads and meters 8 bytes, not the
        whole 32-byte payload."""
        handle = self.handle_of(loc)
        self._touch_c0(loc, handle)
        self._count_partial_read()
        offset = PAYLOAD_SPAN[0] + 8 * slot
        data = self._arena_of(handle).read_field(handle, offset, 8)
        return _F64.unpack(data)[0]

    def set_field(self, loc: int, slot: int, value: float) -> None:
        """Store one payload slot in place (8-byte field-granular write).

        Same placement semantics as :meth:`set_payload` — DRAM octants
        update in place, shared NVBM octants copy-on-write first — but the
        store dirties only the single line the slot lives in."""
        handle = self.handle_of(loc)
        self._touch_c0(loc, handle)
        offset = PAYLOAD_SPAN[0] + 8 * slot
        data = _F64.pack(value)
        if is_dram(handle):
            self.dram.write_field(handle, offset, data)
            self._count_partial_write()
            self._dirty.add(loc)
            self.stats.inplace_updates += 1
            self._obs_count("pm.inplace_updates")
            return
        handle = self._ensure_writable(loc)
        self.nvbm.write_field(handle, offset, data)
        self._count_partial_write()
        self.injector.site(sites.PAYLOAD_PARTIAL)

    # ---------------------------------------------------- batched SoA access

    def _batch_handles(self, locs) -> list:
        """Resolve + touch handles for a batch, counting n partial reads."""
        handles = []
        for loc in locs:
            handle = self.handle_of(loc)
            self._touch_c0(loc, handle)
            handles.append(handle)
        n = len(handles)
        if n:
            self.stats.partial_reads += n
            if self._m_partial_reads is not None:
                self._m_partial_reads.inc(n)
        return handles

    def _split_read(self, handles, out, reader):
        dram_pos = [i for i, h in enumerate(handles) if is_dram(h)]
        if dram_pos:
            out[dram_pos] = reader(self.dram,
                                   [handles[i] for i in dram_pos])
        if len(dram_pos) != len(handles):
            nv_pos = [i for i, h in enumerate(handles) if not is_dram(h)]
            out[nv_pos] = reader(self.nvbm, [handles[i] for i in nv_pos])
        return out

    def batch_read_payloads(self, locs) -> np.ndarray:
        """Payload rows for ``locs`` as an ``(n, 4)`` float64 array.

        Metered exactly like ``n`` :meth:`get_payload` calls: same C0
        touch and ``pm.partial_reads`` totals, per-record media/CRC
        verification, and one summed device charge per arena (see
        :meth:`repro.nvbm.device.MemoryDevice.on_read_batch`)."""
        handles = self._batch_handles(locs)
        out = np.empty((len(handles), 4), dtype=np.float64)
        return self._split_read(
            handles, out, lambda arena, hs: arena.read_payload_batch(hs))

    def batch_read_fields(self, locs, slot: int) -> np.ndarray:
        """One payload slot per loc, metered exactly like ``n``
        :meth:`get_field` calls (8 bytes / 1 line each)."""
        offset = PAYLOAD_SPAN[0] + 8 * slot
        handles = self._batch_handles(locs)
        out = np.empty(len(handles), dtype=np.float64)
        return self._split_read(
            handles, out,
            lambda arena, hs: arena.read_f64_field_batch(hs, offset))

    def batch_set_payloads(self, items) -> None:
        """Apply ``(loc, payload)`` stores in order with batched charges.

        Each store runs the full scalar :meth:`set_payload` path — COW
        copies, injector sites, dirty tracking, pm counters, immediate
        data landing — inside the arenas'
        :meth:`~repro.nvbm.device.MemoryDevice.batched_writes` scopes, so
        only the device charges are aggregated (bit-identical totals)."""
        with self.dram.device.batched_writes(), \
                self.nvbm.device.batched_writes():
            for loc, payload in items:
                self.set_payload(loc, payload)

    def batch_set_fields(self, items, slot: int) -> None:
        """Apply ``(loc, value)`` single-slot stores in order with batched
        device charges (the field-granular analogue of
        :meth:`batch_set_payloads`)."""
        with self.dram.device.batched_writes(), \
                self.nvbm.device.batched_writes():
            for loc, value in items:
                self.set_field(loc, slot, value)

    def get_record(self, loc: int) -> OctantRecord:
        handle = self.handle_of(loc)
        return self._arena_of(handle).read_octant(handle)

    def find_leaf_at(self, point) -> int:
        """Leaf containing a point of the unit cube (point location)."""
        if len(point) != self.dim:
            raise ValueError(f"point must have {self.dim} coordinates")
        loc = morton.ROOT_LOC
        while loc not in self._leaf_set:
            level = morton.level_of(loc, self.dim)
            coords = morton.coords_of(loc, self.dim)
            idx = 0
            for axis in range(self.dim):
                mid = (2 * coords[axis] + 1) / (1 << (level + 1))
                if point[axis] >= mid:
                    idx |= 1 << axis
            loc = morton.child_of(loc, self.dim, idx)
        return loc

    # ------------------------------------------------------------- refine/coarsen

    def refine(self, loc: int) -> List[int]:
        """Split a leaf; children are placed with their parent (§3.2 routing:
        an octant goes to C0 or C1 "determined by its locational code")."""
        if loc not in self._leaf_set:
            raise ReproError(f"cannot refine non-leaf {loc:#x}")
        handle = self.handle_of(loc)
        self._touch_c0(loc, handle)
        if is_dram(handle):
            return self._refine_dram(loc, handle)
        return self._refine_nvbm(loc)

    def _refine_dram(self, loc: int, handle: int) -> List[int]:
        fanout = morton.fanout(self.dim)
        if not self._ensure_dram_capacity(fanout, protect=loc):
            # C0 cannot grow: this very subtree was evicted to NVBM.
            return self._refine_nvbm(loc)
        rec = self.dram.read_octant(handle)
        child_locs = morton.children_of(loc, self.dim)
        for i, cloc in enumerate(child_locs):
            ch = self.dram.new_octant(OctantRecord(
                loc=cloc, level=rec.level + 1, epoch=self.epoch,
                payload=tuple(rec.payload), parent=handle,
            ))
            rec.children[i] = ch
            self._index[cloc] = ch
            self._leaf_set.add(cloc)
        rec.set_leaf(False)
        self.dram.write_octant(handle, rec)
        self._leaf_set.discard(loc)
        self._dirty.add(loc)
        croot = self._c0_root_of(loc)
        if croot is not None:
            stats = self._c0_roots[croot]
            stats.size += fanout
            stats.locs.update(child_locs)
        self.stats.inplace_updates += 1
        self._obs_count("pm.inplace_updates")
        return child_locs

    def _refine_nvbm(self, loc: int) -> List[int]:
        handle = self._ensure_writable(loc)
        rec = self.nvbm.read_octant(handle)
        child_locs = morton.children_of(loc, self.dim)
        for i, cloc in enumerate(child_locs):
            ch = self.nvbm.new_octant(OctantRecord(
                loc=cloc, level=rec.level + 1, epoch=self.epoch,
                payload=tuple(rec.payload), parent=handle,
            ))
            rec.children[i] = ch
            self._index[cloc] = ch
            self._leaf_set.add(cloc)
        rec.set_leaf(False)
        # pmlint: allow[raw-write]: handle is the fresh COW copy from
        # _ensure_writable and every mutable field (all child slots plus
        # the leaf flag) changes — the whole-record store IS the minimal
        # update here, and field-granular stores would alter the charged
        # line counts the locked bench envelope records.
        self.nvbm.write_octant(handle, rec)
        self._leaf_set.discard(loc)
        return child_locs

    def coarsen(self, loc: int) -> None:
        """Remove the leaf children of ``loc`` from the working version.

        Shared children stay in NVBM untouched (V_{i-1} still references
        them); unshared NVBM children are only *marked* deleted — GC reclaims
        the slots later (§3.2's deferred deletion); DRAM children are freed
        immediately ("we can directly delete an octant in C0").
        """
        if loc in self._leaf_set:
            raise ReproError(f"cannot coarsen a leaf {loc:#x}")
        if loc not in self._index:
            raise ReproError(f"octant {loc:#x} not in PM-octree")
        child_locs = morton.children_of(loc, self.dim)
        for cloc in child_locs:
            if cloc not in self._leaf_set:
                raise ReproError(
                    f"cannot coarsen {loc:#x}: child {cloc:#x} is not a leaf"
                )
        handle = self.handle_of(loc)
        self._touch_c0(loc, handle)
        if is_dram(handle):
            rec = self.dram.read_octant(handle)
            for i, cloc in enumerate(child_locs):
                self.dram.free(self._index.pop(cloc))
                self._leaf_set.discard(cloc)
                origin = self._origin.pop(cloc, None)
                if origin is not None:
                    self._detach(origin)
                self._dirty.discard(cloc)
                rec.children[i] = NULL_HANDLE
            rec.set_leaf(True)
            self.dram.write_octant(handle, rec)
            self._dirty.add(loc)
            croot = self._c0_root_of(loc)
            if croot is not None:
                stats = self._c0_roots[croot]
                stats.size -= len(child_locs)
                stats.locs.difference_update(child_locs)
            self._leaf_set.add(loc)
            return
        handle = self._ensure_writable(loc)
        for cloc in child_locs:
            ch = self._index.pop(cloc)
            self._leaf_set.discard(cloc)
            if is_dram(ch):
                # Legal under I1: the child is itself a C0 subtree root
                # (e.g. a size-1 subtree brought in by load_subtree).  Its
                # DRAM record can be deleted directly; tear down the C0
                # bookkeeping with it and retire the NVBM origin the load
                # left behind, if it is ours to retire.
                self.dram.free(ch)
                self._c0_roots.pop(cloc, None)
                origin = self._origin.pop(cloc, None)
                self._dirty.discard(cloc)
                if (
                    origin is not None
                    and self.nvbm.contains(origin)
                    and self.nvbm.read_epoch(origin) == self.epoch
                ):
                    # current-epoch origin: V_{i-1} cannot reach it, so it
                    # is dead the moment its DRAM copy goes
                    flags = self.nvbm.read_flags(origin)
                    self.nvbm.set_flags(origin, flags | FLAG_DELETED)
                    self._count_partial_write()
                    self.stats.marked_deleted += 1
                    self._obs_count("pm.marked_deleted")
                elif origin is not None and self.nvbm.contains(origin):
                    # old-epoch origin: a published predecessor still
                    # references it — it merely left the working version
                    self._detach(origin)
                continue
            if self.nvbm.read_epoch(ch) == self.epoch:
                # the child is a leaf, so its flags are exactly FLAG_LEAF;
                # the deletion mark is a single-line absolute store
                self.nvbm.set_flags(ch, FLAG_LEAF | FLAG_DELETED)
                self._count_partial_write()
                self.stats.marked_deleted += 1
                self._obs_count("pm.marked_deleted")
            else:
                # old-epoch child: shared with V_{i-1}, which still needs
                # it — record the detach instead of marking
                self._detach(ch)
        self.injector.site(sites.COARSEN_MID)
        # the parent was a live internal octant (flags == 0): clear its
        # child slots and set the leaf bit without rewriting the record
        fanout = morton.fanout(self.dim)
        self.nvbm.write_child_slots(handle, 0, [NULL_HANDLE] * fanout)
        self.nvbm.set_flags(handle, FLAG_LEAF)
        self._count_partial_write()
        self._count_partial_write()
        self._leaf_set.add(loc)

    # --------------------------------------------------------------- COW machinery

    def _detach(self, handle: int) -> None:
        """Record that an NVBM handle left the working version while still
        (possibly) shared with a published predecessor.

        Only tracked under the epoch pipeline, where GC marks the old trees
        by delta-pinning rather than traversal.  Pinning is conservative —
        a handle that turns out to be current-epoch garbage just survives
        one extra collection — so callers need not spend metered reads on
        an exact epoch check.
        """
        if self._pipeline is not None:
            self._detached.append(handle)

    def _path_to(self, loc: int) -> List[int]:
        """Locational codes root -> loc."""
        path = [loc]
        while loc != morton.ROOT_LOC:
            loc = morton.parent_of(loc, self.dim)
            path.append(loc)
        path.reverse()
        return path

    def _is_writable(self, handle: int) -> bool:
        """In-place writable: DRAM, or an NVBM record of the current epoch."""
        if is_dram(handle):
            return True
        self._count_partial_read()
        return self.nvbm.read_epoch(handle) == self.epoch

    def _ensure_writable(self, loc: int) -> int:
        """Make the NVBM octant at ``loc`` in-place writable, copying the
        shared suffix of its root path (Fig 4).  Returns its handle."""
        handle = self._index[loc]
        if is_dram(handle):
            raise ConsistencyError(f"{loc:#x} is in DRAM; COW is for NVBM octants")
        self._count_partial_read()
        if self.nvbm.read_epoch(handle) == self.epoch:
            return handle
        path = self._path_to(loc)
        # deepest ancestor that is already writable
        first_shared = 0
        for i in range(len(path) - 1, -1, -1):
            h = self._index[path[i]]
            if i < len(path) - 1 and self._is_writable(h):
                first_shared = i + 1
                break
        else:
            first_shared = 0
        new_handle = NULL_HANDLE
        for i in range(first_shared, len(path)):
            ploc = path[i]
            old = self._index[ploc]
            rec = self.nvbm.read_octant(old)
            rec.epoch = self.epoch
            if i > first_shared:
                rec.parent = self._index[path[i - 1]]
            new = self.nvbm.new_octant(rec)
            self.stats.cow_copies += 1
            self._obs_count("pm.cow_copies")
            self._superseded.append(old)
            self._index[ploc] = new
            self.injector.site(sites.COW_AFTER_COPY)
            # hook the copy into its parent
            if i == first_shared:
                if ploc == morton.ROOT_LOC:
                    self.nvbm.roots.set(SLOT_CURR, new)
                else:
                    parent_loc = path[i - 1]
                    ph = self._index[parent_loc]
                    parena = self._arena_of(ph)
                    parena.write_child_slot(
                        ph, morton.child_index_of(ploc, self.dim), new
                    )
                    self._count_partial_write()
                    if is_dram(ph):
                        self._dirty.add(parent_loc)
            else:
                # parent is the copy we just made in the previous iteration:
                # fix its child slot in place (it is current-epoch).
                ph = self._index[path[i - 1]]
                self.nvbm.write_child_slot(
                    ph, morton.child_index_of(ploc, self.dim), new
                )
                self._count_partial_write()
            new_handle = new
        return new_handle

    # --------------------------------------------------------------- C0 management

    def _c0_root_of(self, loc: int) -> Optional[int]:
        """The registered C0 subtree root covering ``loc``, if any."""
        walk = loc
        while True:
            if walk in self._c0_roots:
                return walk
            if walk == morton.ROOT_LOC:
                return None
            walk = morton.parent_of(walk, self.dim)

    def _touch_c0(self, loc: int, handle: int) -> None:
        if is_dram(handle):
            croot = self._c0_root_of(loc)
            if croot is not None:
                self._c0_roots[croot].accesses += 1

    def dram_free_fraction(self) -> float:
        return self.dram.free_fraction

    @property
    def c0_capacity(self) -> int:
        """Octants C0 may hold: the configured budget, capped by the arena.

        This is the paper's "DRAM size configured for the C0 tree" knob
        (Fig 10) — the arena may be physically larger, but PM-octree only
        uses its budgeted share.
        """
        return min(self.dram.capacity, self.config.dram_capacity_octants)

    @property
    def c0_free(self) -> int:
        return max(0, self.c0_capacity - self.dram.used)

    def _ensure_dram_capacity(self, needed: int, protect: Optional[int] = None) -> bool:
        """Evict LFU C0 subtrees until ``needed`` slots are free.

        ``protect`` names a loc whose covering subtree should be evicted
        last.  Returns False when the protected subtree itself had to go
        (the caller must fall back to the NVBM path).
        """
        from repro.core.merge import evict_subtree

        threshold_free = max(
            needed,
            int(self.config.threshold_dram * self.c0_capacity),
        )
        protected_root = self._c0_root_of(protect) if protect is not None else None
        heap: Optional[List] = None
        while self.c0_free < threshold_free:
            if heap is None:
                # LFU priority queue, built once for the whole eviction
                # round: k evictions cost O(n + k log n) comparisons, not a
                # full re-sort per victim.  Roots that disappear under us
                # (nested evictions) are skipped as stale on pop.
                heap = [
                    (stats.accesses, root)
                    for root, stats in self._c0_roots.items()
                    if root != protected_root
                ]
                heapq.heapify(heap)
            while heap and heap[0][1] not in self._c0_roots:
                heapq.heappop(heap)
            if not heap:
                if protected_root is not None:
                    evict_subtree(self, protected_root)
                    self.stats.evictions += 1
                    self._obs_count("pm.evictions")
                    return False
                return self.c0_free >= needed
            _, victim = heapq.heappop(heap)
            evict_subtree(self, victim)
            self.stats.evictions += 1
            self._obs_count("pm.evictions")
        return True

    # ------------------------------------------------------------------- features

    def register_feature(self, fn: FeatureFn) -> None:
        """Register an application feature function (§3.3): a predicate over
        ``(loc, payload)`` marking octants the next routines will touch."""
        self.features.append(fn)

    # ------------------------------------------------------------------ lifecycle

    def persist(self, transform: bool = True,
                keep_resident: Optional[bool] = None) -> int:
        """§3.2 persist point: merge C0 into C1, flush, atomically publish.

        Returns the new persistent root handle.  With ``transform`` on, the
        dynamic layout transformation runs afterwards (§3.3: "only triggered
        after the completion of the merging operations") and hot C0 subtrees
        stay DRAM-resident across the persist (incremental copying) —
        ``keep_resident`` overrides that default.

        With ``config.max_inflight_epochs > 0`` this is the *enqueue* phase
        of the asynchronous epoch pipeline: the merge runs now (its state
        mutations must be visible), but the flush train drains in the
        background and the returned root is published at the drain's commit
        point — see :mod:`repro.core.pipeline`.
        """
        if self._pipeline is not None:
            with self._obs_span("pm.persist.enqueue", epoch=self.epoch):
                root = self._pipeline.enqueue(transform, keep_resident)
            self._obs_count("pm.persists")
            return root
        with self._obs_span("pm.persist", epoch=self.epoch):
            root = self._persist_impl(transform, keep_resident)
        self._obs_count("pm.persists")
        return root

    def drain_persists(self) -> None:
        """Barrier: wait out and settle every in-flight persist epoch.

        A no-op on the synchronous path.  Call before a final measurement,
        a planned shutdown, or anything that must observe the last persist
        as published.
        """
        if self._pipeline is not None:
            self._pipeline.drain_all()

    def _persist_impl(self, transform: bool,
                      keep_resident: Optional[bool]) -> int:
        from repro.core.merge import merge_all_c0
        from repro.core.transform import detect_and_transform

        if keep_resident is None:
            keep_resident = transform
        # Epoch happens-before bracket: the tracker (when installed)
        # snapshots this epoch's flush obligations at open and retires the
        # window after the epoch's last flush.  Synchronous today — the
        # pipelined-persistence work overlaps these windows, and the
        # tracker's cross-epoch-waf rule is armed from day one.
        tracer = getattr(self.nvbm, "tracer", None)
        epoch_open = getattr(tracer, "on_epoch_open", None)
        epoch_close = getattr(tracer, "on_epoch_close", None)
        epoch_window = epoch_open() if epoch_open is not None else 0
        try:
            self.injector.site(sites.PERSIST_BEGIN)
            self.merging = True
            try:
                root = merge_all_c0(self, keep_resident=keep_resident)
                if not is_nvbm(root):
                    raise ConsistencyError("root still volatile after merge")
                self.injector.site(sites.PERSIST_BEFORE_FLUSH)
                self.nvbm.flush()
                self.injector.site(sites.PERSIST_BEFORE_ROOT_SWAP)
                # THE commit point: one atomic 8-byte root-slot store.
                self.nvbm.roots.set(SLOT_PREV, root)
                self.injector.site(sites.PERSIST_AFTER_ROOT_SWAP)
            finally:
                self.merging = False
            self.epoch += 1
            self.stats.persists += 1
            if keep_resident and not transform and not self._c0_roots:
                # Static (brute-force) layout: when pressure evictions have
                # emptied C0, re-fill it with the first subtree that fits, by
                # locational-code order — no access-pattern knowledge (Fig 5a).
                self._load_static_chunk()
            # Mark records superseded by COW during the finished step: they
            # are V_{i-2}-only now and become GC food.
            for old in self._superseded:
                if self.nvbm.contains(old):
                    flags = self.nvbm.read_flags(old)
                    # pmlint: allow-direct-write — superseded records belong
                    # to V_{i-2} only; the freshly published root cannot
                    # reach them.
                    self.nvbm.set_flags(old, flags | FLAG_DELETED)
                    self._count_partial_write()
                    self.stats.marked_deleted += 1
                    self._obs_count("pm.marked_deleted")
            self._superseded.clear()
            self.nvbm.flush()
        finally:
            # a crash already tore the window down via on_crash; closing a
            # dead window id is a no-op
            if epoch_close is not None:
                epoch_close(epoch_window)
        if self.nvbm.free_fraction < self.config.threshold_nvbm:
            self.gc()
        if self.replicator is not None:
            # Acknowledged protocol path: may retry/backoff on the sim
            # clock and raises ReplicationTimeoutError if the peer stays
            # unreachable — the local persist above already committed.
            report = self.replicator.ship()
            if self.on_replica_ship is not None:
                self.on_replica_ship(report.bytes_shipped)
        elif self.replica is not None:
            # §3.4: "when the crashed node will not be available, delta
            # octants need to be copied to other compute nodes"
            from repro.core.replication import ship_delta

            shipped = ship_delta(self, self.replica)
            if self.on_replica_ship is not None:
                self.on_replica_ship(shipped)
        if transform:
            detect_and_transform(self)
        return root

    def enable_replication(self, replica=None,
                           on_ship: Optional[Callable[[int], None]] = None):
        """Turn on remote replication (the §3.4 user-enabled feature).

        ``replica`` defaults to a fresh :class:`~repro.core.replication.
        ReplicaStore`; ``on_ship`` receives the shipped byte count at each
        persist so the caller can charge its network model.  Returns the
        replica for placement on a peer (see ``choose_replica_peer``).
        """
        from repro.core.replication import ReplicaStore

        self.replica = replica if replica is not None else ReplicaStore()
        self.on_replica_ship = on_ship
        return self.replica

    def attach_replication_session(self, session,
                                   on_ship: Optional[Callable[[int], None]]
                                   = None):
        """Replicate through an acknowledged :class:`ReplicaSession`.

        Unlike :meth:`enable_replication` (direct apply, perfect network),
        every persist now runs the sequenced retry/backoff protocol; a
        persistently unreachable peer surfaces as
        :class:`~repro.errors.ReplicationTimeoutError` from ``persist()``.
        """
        self.replicator = session
        self.replica = session.replica
        if on_ship is not None:
            self.on_replica_ship = on_ship
        return session

    def _load_static_chunk(self) -> None:
        """Load the first budget-sized subtree (by locational code) into C0."""
        from repro.core.merge import load_subtree

        # one deepest-first pass computes every subtree's size; the descent
        # below then looks sizes up instead of rescanning the index per level
        sizes: Dict[int, int] = {}
        for loc in sorted(self._index,
                          key=lambda l: -morton.level_of(l, self.dim)):
            sizes[loc] = 1 + sum(
                sizes.get(c, 0) for c in morton.children_of(loc, self.dim)
            )
        loc = morton.ROOT_LOC
        while True:
            if sizes.get(loc, 0) <= self.c0_free:
                load_subtree(self, loc)
                return
            if loc in self._leaf_set:
                return
            children = [
                c for c in morton.children_of(loc, self.dim)
                if c in self._index
            ]
            if not children:
                return
            loc = children[0]

    def gc(self):
        """Run mark-and-sweep (refused mid-merge, §3.2)."""
        from repro.core.gc import mark_and_sweep

        if self.merging:
            raise GCDisabledError("GC is disabled while a merge is in flight")
        with self._obs_span("pm.gc"):
            res = mark_and_sweep(self)
        self._obs_count("pm.gc_runs")
        self._obs_count("pm.octants_reclaimed", res.swept)
        return res

    def restore(self):
        """Recover from the last persist point (see repro.core.recovery)."""
        from repro.core.recovery import restore_inplace

        return restore_inplace(self)

    def delete_all(self) -> None:
        """pm_delete: drop every octant on both arenas and reset roots."""
        if self._pipeline is not None:
            self._pipeline.reset()
        for h in list(self.dram.live_handles()):
            self.dram.free(h)
        for h in list(self.nvbm.live_handles()):
            self.nvbm.free(h)
        self.nvbm.roots.set(SLOT_PREV, NULL_HANDLE)
        self.nvbm.roots.set(SLOT_CURR, NULL_HANDLE)
        self._index.clear()
        self._leaf_set.clear()
        self._c0_roots.clear()
        self._origin.clear()
        self._dirty.clear()
        self._superseded.clear()
        self._detached.clear()

    # ------------------------------------------------------------------ inspection

    @contextmanager
    def unmetered_inspection(self):
        """Suspend device metering on both arenas for the enclosed block.

        Structural queries (:meth:`overlap_ratio`, :meth:`check_invariants`,
        :meth:`reachable_from`) are measurement probes, not simulated work:
        charging their traversals to the :class:`SimClock` and the device
        counters made every metrics sample an observer-effect bug that
        inflated the bench numbers.  Data access is unaffected — only the
        meter pauses.
        """
        with self.dram.device.unmetered(), self.nvbm.device.unmetered():
            yield

    def reachable_from(self, root_handle: int) -> Set[int]:
        """NVBM handles reachable from an NVBM root (DRAM pointers skipped)."""
        seen: Set[int] = set()
        if not is_nvbm(root_handle):
            return seen
        with self.unmetered_inspection():
            stack = [root_handle]
            while stack:
                h = stack.pop()
                if h in seen or not self.nvbm.contains(h):
                    continue
                seen.add(h)
                rec = self.nvbm.read_octant(h)
                for ch in rec.live_children():
                    if is_nvbm(ch):
                        stack.append(ch)
        return seen

    def overlap_ratio(self) -> float:
        """|octants shared by V_{i-1} and V_i| / |octants of V_i| (§3.1).

        A C0 octant whose DRAM copy is still clean counts as shared: its
        NVBM origin serves V_{i-1} and will be re-linked (not rewritten) at
        the next merge, so only one persistent record exists for it.
        """
        with self.unmetered_inspection():
            prev_root = self.nvbm.roots.get(SLOT_PREV)
            if self._pipeline is not None:
                # the newest snapshot may still be draining: V_{i-1} is the
                # last *enqueued* version, not necessarily the published one
                inflight = self._pipeline.live_roots()
                if inflight:
                    prev_root = inflight[-1]
            if prev_root == NULL_HANDLE:
                return 0.0
            prev = self.reachable_from(prev_root)
            shared = sum(
                1 for h in self._index.values() if is_nvbm(h) and h in prev
            )
            for loc, origin in self._origin.items():
                if loc not in self._dirty and origin in prev:
                    shared += 1
            return shared / max(1, len(self._index))

    def memory_usage_octants(self) -> int:
        """Total live records across both arenas (Fig 3's memory usage)."""
        return self.dram.used + self.nvbm.used

    def c0_size(self) -> int:
        return sum(s.size for s in self._c0_roots.values())

    def tree_depth(self) -> int:
        return max(
            (morton.level_of(leaf, self.dim) for leaf in self._leaf_set), default=0
        )

    def check_invariants(self) -> None:
        """Verify I1-I3 plus index/record agreement (test helper)."""
        with self.unmetered_inspection():
            self._check_invariants_impl()

    def _check_invariants_impl(self) -> None:
        for loc, handle in self._index.items():
            arena = self._arena_of(handle)
            rec = arena.read_octant(handle)
            if rec.loc != loc:
                raise ConsistencyError(f"index {loc:#x} -> record {rec.loc:#x}")
            if rec.is_deleted:
                raise ConsistencyError(f"live index entry {loc:#x} marked deleted")
            in_c0 = self._c0_root_of(loc) is not None
            if in_c0 != is_dram(handle):
                raise ConsistencyError(
                    f"I1 violated at {loc:#x}: c0={in_c0}, dram={is_dram(handle)}"
                )
            if rec.is_leaf != (loc in self._leaf_set):
                raise ConsistencyError(f"leaf flag mismatch at {loc:#x}")
        for root, stats in self._c0_roots.items():
            actual: Set[int] = set()
            stack = [root]
            while stack:
                walk = stack.pop()
                if walk not in self._index:
                    continue
                actual.add(walk)
                if walk not in self._leaf_set:
                    stack.extend(morton.children_of(walk, self.dim))
            if stats.locs != actual:
                raise ConsistencyError(
                    f"C0 loc set stale at root {root:#x}: tracked "
                    f"{len(stats.locs)} locs, tree has {len(actual)}"
                )
            if stats.size != len(actual):
                raise ConsistencyError(
                    f"C0 size stale at root {root:#x}: tracked {stats.size}, "
                    f"tree has {len(actual)}"
                )
        prev_root = self.nvbm.roots.get(SLOT_PREV)
        if prev_root != NULL_HANDLE:
            for h in self.reachable_from(prev_root):
                rec = self.nvbm.read_octant(h)
                if rec.epoch >= self.epoch:
                    raise ConsistencyError(
                        f"I2 violated: persistent record {h:#x} has epoch "
                        f"{rec.epoch} >= current {self.epoch}"
                    )
