"""Merging of PM-octree components (§3.2) and C0 loading.

Two triggers merge a C0 subtree out to NVBM:

1. DRAM pressure (``threshold_DRAM``): the least-frequently-accessed C0
   subtree is evicted.
2. The persist point: all of C0 merges so the whole working version becomes
   NVBM-resident before the atomic root publish.

The merge is a postorder sweep with *sharing detection*: a DRAM octant whose
payload never changed and whose merged children are exactly its NVBM
origin's children re-links to the origin record instead of writing a new
one.  That is what keeps NVBM write volume proportional to what actually
changed ("PM-octree only needs to write new and updated octants", §5.4) and
drives the Fig 3 overlap ratios.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, List

from repro.errors import ConsistencyError
from repro.nvbm import sites
from repro.nvbm.pointers import NULL_HANDLE, is_dram
from repro.nvbm.records import OctantRecord
from repro.octree import morton

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.pmoctree import PMOctree

from repro.core.pmoctree import SLOT_CURR, C0Stats


def _postorder_locs(pmo: "PMOctree", root_loc: int) -> List[int]:
    """Children-before-parents order over the working tree below root_loc."""
    out: List[int] = []
    stack = [(root_loc, False)]
    while stack:
        loc, expanded = stack.pop()
        if loc not in pmo._index:
            continue
        if expanded or loc in pmo._leaf_set:
            out.append(loc)
        else:
            stack.append((loc, True))
            stack.extend(
                (c, False) for c in morton.children_of(loc, pmo.dim)
            )
    return out


def merge_subtree(pmo: "PMOctree", root_loc: int,
                  keep_resident: bool = False) -> int:
    """Write the DRAM subtree at ``root_loc`` into NVBM; return its handle.

    Does *not* splice the result into the parent — callers do that.

    With ``keep_resident`` False (eviction), the DRAM records are freed and
    the index migrates to the NVBM handles.  With True (the persist-point
    path), the subtree *stays* in DRAM and only its NVBM shadow is brought
    up to date — the §3.3 "octants are copied ... incrementally" behaviour:
    a subtree that stays hot across persist points is never recopied, only
    its dirty octants are written out.
    """
    if root_loc not in pmo._c0_roots:
        raise ConsistencyError(f"{root_loc:#x} is not a C0 subtree root")
    merged: Dict[int, int] = {}
    shared = 0
    for loc in _postorder_locs(pmo, root_loc):
        handle = pmo._index[loc]
        if not is_dram(handle):
            raise ConsistencyError(
                f"I1 violated: {loc:#x} inside C0 subtree but not in DRAM"
            )
        rec = pmo.dram.read_octant(handle)
        child_handles = [
            merged[c] if c in merged else NULL_HANDLE
            for c in morton.children_of(loc, pmo.dim)
        ] + [NULL_HANDLE] * (8 - morton.fanout(pmo.dim))
        origin = pmo._origin.get(loc)
        if (
            origin is not None
            and loc not in pmo._dirty
            and pmo.nvbm.contains(origin)
        ):
            origin_rec = pmo.nvbm.read_octant(origin)
            if origin_rec.children == child_handles:
                merged[loc] = origin  # unchanged: share with V_{i-1}
                shared += 1
                continue
        new_rec = OctantRecord(
            loc=rec.loc,
            level=rec.level,
            flags=rec.flags,
            epoch=pmo.epoch,
            payload=tuple(rec.payload),
            parent=NULL_HANDLE,  # advisory; fixed below for children
            children=child_handles,
        )
        merged[loc] = pmo.nvbm.new_octant(new_rec)
        if origin is not None:
            # the shadow was rewritten: the old origin leaves the working
            # version but published predecessors may still reference it
            pmo._detach(origin)
        pmo.injector.site(sites.MERGE_OCTANT)
    pmo.stats.merges += 1
    pmo._obs_count("pm.merges")
    pmo._obs_count("pm.merge_octants_shared", shared)
    pmo._obs_count("pm.merge_octants_written", len(merged) - shared)
    if not keep_resident:
        # C0 -> C1 migration: the subtree leaves DRAM for NVBM
        pmo._obs_count("pm.c0_to_c1_octants", len(merged))

    if keep_resident:
        # the DRAM copies stay; the NVBM shadow becomes their new origin
        for loc, nv_handle in merged.items():
            pmo._origin[loc] = nv_handle
            pmo._dirty.discard(loc)
        stats = pmo._c0_roots[root_loc]
        stats.size = len(merged)
        stats.locs = set(merged)
    else:
        # eviction: release DRAM and point the working version at NVBM
        for loc, nv_handle in merged.items():
            dram_handle = pmo._index[loc]
            pmo.dram.free(dram_handle)
            pmo._index[loc] = nv_handle
            pmo._origin.pop(loc, None)
            pmo._dirty.discard(loc)
        del pmo._c0_roots[root_loc]
    return merged[root_loc]


def splice_into_parent(pmo: "PMOctree", root_loc: int, new_handle: int) -> None:
    """Point the working version's parent of ``root_loc`` at ``new_handle``.

    A single child-slot store (one cache line), not a record rewrite.
    """
    if root_loc == morton.ROOT_LOC:
        pmo.nvbm.roots.set(SLOT_CURR, new_handle)
        return
    parent_loc = morton.parent_of(root_loc, pmo.dim)
    child_idx = morton.child_index_of(root_loc, pmo.dim)
    ph = pmo._index[parent_loc]
    if is_dram(ph):
        pmo.dram.write_child_slot(ph, child_idx, new_handle)
        pmo._count_partial_write()
        pmo._dirty.add(parent_loc)
        return
    ph = pmo._ensure_writable(parent_loc)
    pmo.nvbm.write_child_slot(ph, child_idx, new_handle)
    pmo._count_partial_write()


def evict_subtree(pmo: "PMOctree", root_loc: int) -> int:
    """DRAM-pressure eviction: merge one C0 subtree and splice it back."""
    pmo.injector.site(sites.EVICT_BEGIN)
    new_handle = merge_subtree(pmo, root_loc)
    splice_into_parent(pmo, root_loc, new_handle)
    return new_handle


def merge_all_c0(pmo: "PMOctree", keep_resident: bool = False) -> int:
    """Persist-point merge: every C0 subtree's NVBM shadow is brought up to
    date (and, unless ``keep_resident``, C0 is dissolved).

    Returns the NVBM handle of the complete persistent tree's root.
    """
    for root_loc in sorted(pmo._c0_roots, key=lambda leaf: morton.level_of(leaf, pmo.dim)):
        new_handle = merge_subtree(pmo, root_loc, keep_resident=keep_resident)
        splice_into_parent(pmo, root_loc, new_handle)
        pmo.injector.site(sites.MERGE_SUBTREE_DONE)
    root = pmo._index[morton.ROOT_LOC]
    if is_dram(root):
        # the root itself stayed resident; its shadow was published to the
        # current-root slot by splice_into_parent
        root = pmo.nvbm.roots.get(SLOT_CURR)
    return root


def subtree_locs(pmo: "PMOctree", root_loc: int) -> List[int]:
    """All working-version locs at or below ``root_loc``.

    O(size of the answer): a registered C0 root answers from its maintained
    loc set, everything else by walking the tree — never a full index scan.
    """
    if root_loc == morton.ROOT_LOC:
        return list(pmo._index)
    stats = pmo._c0_roots.get(root_loc)
    if stats is not None:
        return list(stats.locs)
    out: List[int] = []
    stack = [root_loc]
    while stack:
        loc = stack.pop()
        if loc not in pmo._index:
            continue
        out.append(loc)
        if loc not in pmo._leaf_set:
            stack.extend(morton.children_of(loc, pmo.dim))
    return out


def load_subtree(pmo: "PMOctree", root_loc: int) -> bool:
    """Bring the NVBM subtree at ``root_loc`` into DRAM as a C0 subtree.

    Returns False (and does nothing) when it does not fit in free DRAM.
    Nested C0 subtrees below ``root_loc`` are evicted first so the loaded
    subtree is contiguous in DRAM (invariant I1).
    """
    handle = pmo._index.get(root_loc)
    if handle is None:
        raise ConsistencyError(f"{root_loc:#x} not in working version")
    # evict any C0 subtree nested below the target
    level = morton.level_of(root_loc, pmo.dim)
    nested = [
        c0
        for c0 in pmo._c0_roots
        if c0 != root_loc
        and morton.level_of(c0, pmo.dim) > level
        and morton.ancestor_at(c0, pmo.dim, level) == root_loc
    ]
    for c0 in nested:
        evict_subtree(pmo, c0)
        pmo.stats.evictions += 1
        pmo._obs_count("pm.evictions")
    handle = pmo._index[root_loc]
    if is_dram(handle):
        return True  # already resident (was a nested-or-equal C0 root)
    locs = subtree_locs(pmo, root_loc)
    if len(locs) > pmo.c0_free:
        return False
    # copy top-down so parents exist before children
    locs.sort(key=lambda leaf: morton.level_of(leaf, pmo.dim))
    copied: Dict[int, int] = {}
    for loc in locs:
        nv = pmo._index[loc]
        rec = pmo.nvbm.read_octant(nv)
        new_rec = rec.copy()
        new_rec.parent = copied.get(
            morton.parent_of(loc, pmo.dim), NULL_HANDLE
        ) if loc != morton.ROOT_LOC else NULL_HANDLE
        new_rec.children = [NULL_HANDLE] * 8
        new_rec.epoch = pmo.epoch
        dh = pmo.dram.new_octant(new_rec)
        copied[loc] = dh
        pmo._origin[loc] = nv
        if loc != root_loc:
            ph = copied[morton.parent_of(loc, pmo.dim)]
            pmo.dram.write_child_slot(
                ph, morton.child_index_of(loc, pmo.dim), dh
            )
            pmo._count_partial_write()
        pmo.injector.site(sites.LOAD_OCTANT)
    for loc, dh in copied.items():
        pmo._index[loc] = dh
    pmo._c0_roots[root_loc] = C0Stats(size=len(locs), locs=set(locs))
    # C1 -> C0 migration: the subtree became DRAM-resident
    pmo._obs_count("pm.c1_to_c0_octants", len(locs))
    splice_into_parent(pmo, root_loc, copied[root_loc])
    return True
