"""PM-octree: the paper's contribution (§3).

A persistent merged octree keeps two versions: ``V_{i-1}``, the last
consistent tree, entirely in NVBM; and ``V_i``, the working tree, split into
a hot DRAM-resident part ``C0`` and a cold NVBM part ``C1``.  Unchanged
octants are shared between versions; mutations of shared octants go through
copy-on-write; the persist point is a single atomic root-slot update, so no
per-store fencing is needed.  Failure recovery is "mark V_i-only octants
deleted and return ADDR(V_{i-1})" — near-instantaneous compared to re-reading
a snapshot file.
"""

from repro.core.pmoctree import C0Stats, PMOctree, PMStats
from repro.core.api import pm_create, pm_delete, pm_persistent, pm_restore
from repro.core.gc import GCResult, mark_and_sweep
from repro.core.transform import TransformationResult, detect_and_transform
from repro.core.replication import ReplicaStore

__all__ = [
    "C0Stats",
    "GCResult",
    "PMOctree",
    "PMStats",
    "ReplicaStore",
    "TransformationResult",
    "detect_and_transform",
    "mark_and_sweep",
    "pm_create",
    "pm_delete",
    "pm_persistent",
    "pm_restore",
]
