"""Automatic C0 DRAM-budget tuning (the paper's §6 future work).

    "As future work, we plan to automate the setting of DRAM size for the
    C0 tree in order to provide better memory efficiency under high
    concurrency."

The controller watches, at each persist point, how PM-octree is using its
budget and adjusts ``dram_capacity_octants`` within an allowed band:

* **grow** when the budget is the bottleneck — eviction merges fired, or
  the transformation could not fit a hot subtree (hot spill), and NVBM
  writes per step are high;
* **shrink** when C0 is underutilised (resident set well below budget) so
  the DRAM goes back to the pool other ranks on the node draw from — the
  "high concurrency" motivation;
* otherwise hold.

Classic additive-increase / multiplicative-decrease keeps it stable: growth
is a fixed step, shrink is proportional, and both are clamped to
``[min_budget, max_budget]``.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import TYPE_CHECKING, List, Optional

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.pmoctree import PMOctree


@dataclass
class TuneDecision:
    """One observation step's outcome."""

    step: int
    budget_before: int
    budget_after: int
    evictions_delta: int
    nvbm_writes_delta: int
    c0_size: int
    action: str  # "grow" | "shrink" | "hold"
    hot_spills_delta: int = 0


@dataclass
class C0AutoTuner:
    """AIMD controller over the C0 budget.

    Attach one per PM-octree and call :meth:`observe` right after each
    persist; the tuner rewrites ``pmo.config`` with the new budget.
    """

    min_budget: int = 32
    max_budget: int = 1 << 20
    grow_step: int = 64          #: additive increase (octants)
    shrink_factor: float = 0.75  #: multiplicative decrease
    #: shrink when the resident set uses less than this fraction of budget
    low_watermark: float = 0.5
    #: eviction churn only justifies growth when it actually cost NVBM
    #: traffic: at least this many NVBM writes since the last observation
    write_pressure: int = 8
    history: List[TuneDecision] = field(default_factory=list)
    _last_evictions: int = 0
    _last_nvbm_writes: int = 0
    _last_hot_spills: int = 0
    _steps: int = 0

    def observe(self, pmo: "PMOctree") -> TuneDecision:
        """Inspect the last step's behaviour and retune the budget."""
        self._steps += 1
        evictions = pmo.stats.evictions
        nvbm_writes = pmo.nvbm.device.stats.writes
        hot_spills = pmo.stats.hot_spills
        d_evict = evictions - self._last_evictions
        d_writes = nvbm_writes - self._last_nvbm_writes
        d_spills = hot_spills - self._last_hot_spills
        self._last_evictions = evictions
        self._last_nvbm_writes = nvbm_writes
        self._last_hot_spills = hot_spills

        budget = pmo.config.dram_capacity_octants
        c0 = pmo.dram.used
        max_allowed = min(self.max_budget, pmo.dram.capacity)

        pressured = (d_evict > 0 and d_writes >= self.write_pressure) \
            or d_spills > 0
        if pressured and budget < max_allowed:
            # the budget forced merges out (and the churn cost real NVBM
            # writes), or the transformation could not fit a hot subtree:
            # give C0 more room
            new_budget = min(max_allowed, budget + self.grow_step)
            action = "grow"
        elif d_evict == 0 and c0 < self.low_watermark * budget \
                and budget > self.min_budget:
            # plenty of slack: hand DRAM back to the node's pool
            new_budget = max(
                self.min_budget, c0 + self.grow_step,
                int(budget * self.shrink_factor),
            )
            new_budget = min(new_budget, budget)  # never grow on this path
            action = "shrink" if new_budget < budget else "hold"
        else:
            new_budget = budget
            action = "hold"

        if new_budget != budget:
            pmo.config = replace(pmo.config, dram_capacity_octants=new_budget)
        decision = TuneDecision(
            step=self._steps,
            budget_before=budget,
            budget_after=new_budget,
            evictions_delta=d_evict,
            nvbm_writes_delta=d_writes,
            c0_size=c0,
            action=action,
            hot_spills_delta=d_spills,
        )
        self.history.append(decision)
        return decision

    @property
    def current_budget(self) -> Optional[int]:
        return self.history[-1].budget_after if self.history else None


def autotuned_persistence(tuner: C0AutoTuner, transform: bool = True):
    """A DropletSimulation persistence hook that persists, then retunes."""

    def hook(sim) -> None:
        sim.tree.persist(transform=transform, keep_resident=True)
        tuner.observe(sim.tree)

    return hook
