"""Failure recovery (§3.4).

``pm_restore`` makes the working version identical to the last persistent
version: discard all volatile state, point ``V_i`` back at ``ADDR(V_{i-1})``,
and rebuild the (volatile) lookup structures by one traversal.  Octants that
only the crashed working version referenced are left for GC — recovery does
not wait for them, which is why it is near-instantaneous.

The traversal doubles as a consistency audit: invariant I2 guarantees every
record reachable from the persistent root was flushed before the root was
published and never mutated since, so any torn/deleted/mislinked record here
is a real bug and raises :class:`~repro.errors.ConsistencyError`.  The crash
tests hammer exactly this.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Optional, Tuple

from repro.config import PMOctreeConfig
from repro.errors import (
    ConsistencyError,
    RecoveryError,
    ReplicationTimeoutError,
    ReproError,
)
from repro.nvbm.arena import MemoryArena
from repro.nvbm.failure import FailureInjector
from repro.nvbm.pointers import NULL_HANDLE, is_nvbm
from repro.octree import morton

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.pmoctree import PMOctree

from repro.core.pmoctree import SLOT_CURR, SLOT_PREV


def restore_inplace(pmo: "PMOctree") -> int:
    """Reset ``pmo`` to its last persistent version; returns octant count."""
    pmo.merging = False
    root = pmo.nvbm.roots.get(SLOT_PREV)
    if root == NULL_HANDLE:
        raise RecoveryError("no persistent version exists (never persisted)")
    if not is_nvbm(root):
        raise ConsistencyError("persistent root is not an NVBM handle")
    pmo.nvbm.roots.set(SLOT_CURR, root)

    # Drop every volatile structure; anything DRAM-resident is gone anyway
    # after a real crash (callers crash the arenas first), and a voluntary
    # rollback must discard it too.
    for h in list(pmo.dram.live_handles()):
        pmo.dram.free(h)
    pmo._index.clear()
    pmo._leaf_set.clear()
    pmo._c0_roots.clear()
    pmo._origin.clear()
    pmo._dirty.clear()
    pmo._superseded.clear()

    max_epoch = 0
    stack = [(root, morton.ROOT_LOC, 0)]
    count = 0
    while stack:
        handle, expect_loc, expect_level = stack.pop()
        if not pmo.nvbm.contains(handle):
            raise ConsistencyError(
                f"persistent tree references unallocated record {handle:#x}"
            )
        rec = pmo.nvbm.read_octant(handle)
        if rec.loc != expect_loc or rec.level != expect_level:
            raise ConsistencyError(
                f"record {handle:#x} claims loc={rec.loc:#x}/L{rec.level}, "
                f"expected {expect_loc:#x}/L{expect_level}"
            )
        if rec.is_deleted:
            raise ConsistencyError(
                f"persistent tree references deleted record {handle:#x}"
            )
        max_epoch = max(max_epoch, rec.epoch)
        pmo._index[expect_loc] = handle
        if rec.is_leaf:
            pmo._leaf_set.add(expect_loc)
        else:
            for idx, ch in enumerate(rec.children[: morton.fanout(pmo.dim)]):
                if ch == NULL_HANDLE:
                    raise ConsistencyError(
                        f"internal record {handle:#x} has a null child slot"
                    )
                if not is_nvbm(ch):
                    raise ConsistencyError(
                        f"persistent record {handle:#x} points into DRAM"
                    )
                stack.append(
                    (ch, morton.child_of(expect_loc, pmo.dim, idx),
                     expect_level + 1)
                )
        count += 1
    pmo.epoch = max_epoch + 1
    return count


def attach_and_restore(dram: MemoryArena, nvbm: MemoryArena, dim: int = 2,
                       config: Optional[PMOctreeConfig] = None,
                       injector: Optional[FailureInjector] = None) -> "PMOctree":
    """Build a PMOctree around surviving arenas after a process restart.

    This is the "crashed node rebooted and reruns the application" path: the
    NVBM arena still holds the persistent tree; the returned PM-octree is
    restored from it without constructing a fresh root.
    """
    from repro.core.pmoctree import PMOctree

    pmo = PMOctree.__new__(PMOctree)
    pmo.dram = dram
    pmo.nvbm = nvbm
    if dim not in (2, 3):
        raise ValueError(f"only dim 2 and 3 supported, got {dim}")
    pmo.dim = dim
    pmo.config = config or PMOctreeConfig()
    pmo.injector = injector or FailureInjector()
    if nvbm.roots.injector is None:
        nvbm.roots.injector = pmo.injector
    from repro.core.pmoctree import PMStats

    pmo.stats = PMStats()
    pmo.epoch = 1
    pmo.merging = False
    pmo.features = []
    pmo.replica = None
    pmo.on_replica_ship = None
    pmo.replicator = None
    pmo._index = {}
    pmo._leaf_set = set()
    pmo._c0_roots = {}
    pmo._origin = {}
    pmo._dirty = set()
    pmo._superseded = []
    restore_inplace(pmo)
    return pmo


# ------------------------------------------------------- multi-failure recovery


@dataclass
class Recovered:
    """A host loss was survived; the tree is live again.

    ``protected`` reports whether re-replication onto a fresh peer
    succeeded — recovery *always* attempts it (a recovered-but-unprotected
    host is one failure away from data loss), but no live peer on another
    node, or an unreachable one, leaves the host temporarily unprotected.
    """

    kind: str                      #: "local" (NVBM survived) or "replica"
    host_rank: int                 #: rank serving the tree after recovery
    tree: "PMOctree"
    protected: bool
    replica_peer: Optional[int] = None  #: peer now holding V^P, if any
    session: Optional[object] = None    #: live ReplicaSession, if protected
    detail: str = ""

    @property
    def degraded(self) -> bool:
        return False


@dataclass
class Degraded:
    """Typed unrecoverable-by-replication outcome (never a stack trace).

    Both the host's NVBM and its replica are gone (concurrent host+peer
    loss, or host loss with no replica shipped yet): the caller must fall
    back to a snapshot-style restart — re-running the application from its
    last external checkpoint or from scratch — which is a *policy*
    decision, so it is reported, not raised.
    """

    reason: str
    lost_ranks: Tuple[int, ...] = field(default_factory=tuple)
    snapshot_restart: bool = True

    @property
    def degraded(self) -> bool:
        return True


def reprotect(cluster, tree, host_rank: int, policy=None,
              break_acks: bool = False):
    """Mandatory post-recovery re-replication onto a freshly chosen peer.

    Returns ``(session, peer_rank, detail)``; session/peer are ``None``
    when no live peer exists on another node or the full ship could not be
    acknowledged (the host then runs unprotected until the next persist
    retries through the attached session or the caller re-calls this).
    """
    from repro.core.replication import (
        FaultyTransport,
        PerfectTransport,
        ReplicaSession,
        choose_replica_peer,
    )
    from repro.parallel.faults import FaultyNetwork

    peer = choose_replica_peer(cluster, host_rank)
    if peer is None:
        return None, None, "no live peer on another node"
    clock = cluster.ranks[host_rank].clock
    if isinstance(cluster.network, FaultyNetwork):
        transport = FaultyTransport(cluster.network, host_rank, peer,
                                    clock=clock)
    else:
        transport = PerfectTransport()
    session = ReplicaSession(tree, transport=transport, clock=clock,
                             policy=policy, break_acks=break_acks)
    tree.attach_replication_session(session)
    try:
        session.ship()
    except ReplicationTimeoutError as exc:
        return None, None, f"re-replication to rank {peer} timed out: {exc}"
    return session, peer, f"replica re-established on rank {peer}"


def recover_host(cluster, host_rank: int, *,
                 replica=None, replica_peer: Optional[int] = None,
                 host_node_returns: bool = False,
                 new_host: Optional[int] = None,
                 dim: int = 2, config: Optional[PMOctreeConfig] = None,
                 policy=None, break_acks: bool = False):
    """Drive recovery of one lost host through every §3.4 scenario.

    * ``host_node_returns=True`` — the node rebooted: its NVBM backing
      survived, restore in place (scenario 1) even if the replica is also
      gone (host-loss-then-replica-loss).
    * host gone for good, replica alive on ``replica_peer`` — materialise
      the replica on ``new_host`` (default: the peer itself), scenario 2.
    * host gone *and* replica unavailable (peer dead, or nothing shipped)
      — :class:`Degraded`, never an unhandled exception.

    Every successful path ends with mandatory re-replication
    (:func:`reprotect`): the system must re-enter a protected state or
    explicitly report that it could not.
    """
    lost = tuple(r.rank for r in cluster.ranks if not r.alive)

    if host_node_returns:
        ctx = cluster.revive_rank(host_rank)
        try:
            tree = attach_and_restore(ctx.resources["dram"],
                                      ctx.resources["nvbm"],
                                      dim=dim, config=config)
        except ReproError as exc:
            return Degraded(reason=f"local NVBM restore failed: {exc}",
                            lost_ranks=lost)
        kind, serving = "local", host_rank
    else:
        peer_alive = (replica_peer is not None
                      and cluster.ranks[replica_peer].alive)
        if replica is None or not replica.records or not peer_alive:
            why = ("replica peer died with the host"
                   if replica is not None and replica.records
                   else "no replica was ever shipped")
            return Degraded(
                reason=f"host rank {host_rank} lost and {why}",
                lost_ranks=lost,
            )
        serving = new_host if new_host is not None else replica_peer
        ctx = cluster.ranks[serving]
        if not ctx.alive:
            return Degraded(
                reason=f"replacement host rank {serving} is dead",
                lost_ranks=lost,
            )
        try:
            tree = restore_from_replica_arenas(replica, ctx, dim=dim,
                                               config=config)
        except ReproError as exc:
            return Degraded(reason=f"replica materialisation failed: {exc}",
                            lost_ranks=lost)
        kind = "replica"

    session, peer, detail = reprotect(cluster, tree, serving,
                                      policy=policy, break_acks=break_acks)
    return Recovered(kind=kind, host_rank=serving, tree=tree,
                     protected=session is not None, replica_peer=peer,
                     session=session, detail=detail)


def restore_from_replica_arenas(replica, ctx, dim: int = 2,
                                config: Optional[PMOctreeConfig] = None):
    """Materialise ``replica`` into a rank context's own arenas."""
    from repro.core.replication import restore_from_replica

    return restore_from_replica(replica, ctx.resources["dram"],
                                ctx.resources["nvbm"], dim=dim, config=config)
