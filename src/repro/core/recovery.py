"""Failure recovery (§3.4).

``pm_restore`` makes the working version identical to the last persistent
version: discard all volatile state, point ``V_i`` back at ``ADDR(V_{i-1})``,
and rebuild the (volatile) lookup structures by one traversal.  Octants that
only the crashed working version referenced are left for GC — recovery does
not wait for them, which is why it is near-instantaneous.

The traversal doubles as a consistency audit: invariant I2 guarantees every
record reachable from the persistent root was flushed before the root was
published and never mutated since, so any torn/deleted/mislinked record here
is a real bug and raises :class:`~repro.errors.ConsistencyError`.  The crash
tests hammer exactly this.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

from repro.config import PMOctreeConfig
from repro.errors import ConsistencyError, RecoveryError
from repro.nvbm.arena import MemoryArena
from repro.nvbm.failure import FailureInjector
from repro.nvbm.pointers import NULL_HANDLE, is_nvbm
from repro.octree import morton

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.pmoctree import PMOctree

from repro.core.pmoctree import SLOT_CURR, SLOT_PREV


def restore_inplace(pmo: "PMOctree") -> int:
    """Reset ``pmo`` to its last persistent version; returns octant count."""
    pmo.merging = False
    root = pmo.nvbm.roots.get(SLOT_PREV)
    if root == NULL_HANDLE:
        raise RecoveryError("no persistent version exists (never persisted)")
    if not is_nvbm(root):
        raise ConsistencyError("persistent root is not an NVBM handle")
    pmo.nvbm.roots.set(SLOT_CURR, root)

    # Drop every volatile structure; anything DRAM-resident is gone anyway
    # after a real crash (callers crash the arenas first), and a voluntary
    # rollback must discard it too.
    for h in list(pmo.dram.live_handles()):
        pmo.dram.free(h)
    pmo._index.clear()
    pmo._leaf_set.clear()
    pmo._c0_roots.clear()
    pmo._origin.clear()
    pmo._dirty.clear()
    pmo._superseded.clear()

    max_epoch = 0
    stack = [(root, morton.ROOT_LOC, 0)]
    count = 0
    while stack:
        handle, expect_loc, expect_level = stack.pop()
        if not pmo.nvbm.contains(handle):
            raise ConsistencyError(
                f"persistent tree references unallocated record {handle:#x}"
            )
        rec = pmo.nvbm.read_octant(handle)
        if rec.loc != expect_loc or rec.level != expect_level:
            raise ConsistencyError(
                f"record {handle:#x} claims loc={rec.loc:#x}/L{rec.level}, "
                f"expected {expect_loc:#x}/L{expect_level}"
            )
        if rec.is_deleted:
            raise ConsistencyError(
                f"persistent tree references deleted record {handle:#x}"
            )
        max_epoch = max(max_epoch, rec.epoch)
        pmo._index[expect_loc] = handle
        if rec.is_leaf:
            pmo._leaf_set.add(expect_loc)
        else:
            for idx, ch in enumerate(rec.children[: morton.fanout(pmo.dim)]):
                if ch == NULL_HANDLE:
                    raise ConsistencyError(
                        f"internal record {handle:#x} has a null child slot"
                    )
                if not is_nvbm(ch):
                    raise ConsistencyError(
                        f"persistent record {handle:#x} points into DRAM"
                    )
                stack.append(
                    (ch, morton.child_of(expect_loc, pmo.dim, idx),
                     expect_level + 1)
                )
        count += 1
    pmo.epoch = max_epoch + 1
    return count


def attach_and_restore(dram: MemoryArena, nvbm: MemoryArena, dim: int = 2,
                       config: Optional[PMOctreeConfig] = None,
                       injector: Optional[FailureInjector] = None) -> "PMOctree":
    """Build a PMOctree around surviving arenas after a process restart.

    This is the "crashed node rebooted and reruns the application" path: the
    NVBM arena still holds the persistent tree; the returned PM-octree is
    restored from it without constructing a fresh root.
    """
    from repro.core.pmoctree import PMOctree

    pmo = PMOctree.__new__(PMOctree)
    pmo.dram = dram
    pmo.nvbm = nvbm
    if dim not in (2, 3):
        raise ValueError(f"only dim 2 and 3 supported, got {dim}")
    pmo.dim = dim
    pmo.config = config or PMOctreeConfig()
    pmo.injector = injector or FailureInjector()
    if nvbm.roots.injector is None:
        nvbm.roots.injector = pmo.injector
    from repro.core.pmoctree import PMStats

    pmo.stats = PMStats()
    pmo.epoch = 1
    pmo.merging = False
    pmo.features = []
    pmo.replica = None
    pmo.on_replica_ship = None
    pmo._index = {}
    pmo._leaf_set = set()
    pmo._c0_roots = {}
    pmo._origin = {}
    pmo._dirty = set()
    pmo._superseded = []
    restore_inplace(pmo)
    return pmo
