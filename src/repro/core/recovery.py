"""Failure recovery (§3.4).

``pm_restore`` makes the working version identical to the last persistent
version: discard all volatile state, point ``V_i`` back at ``ADDR(V_{i-1})``,
and rebuild the (volatile) lookup structures by one traversal.  Octants that
only the crashed working version referenced are left for GC — recovery does
not wait for them, which is why it is near-instantaneous.

The traversal doubles as a consistency audit: invariant I2 guarantees every
record reachable from the persistent root was flushed before the root was
published and never mutated since, so any torn/deleted/mislinked record here
is a real bug and raises :class:`~repro.errors.ConsistencyError`.  The crash
tests hammer exactly this.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Optional, Tuple

from repro.config import OCTANT_RECORD_SIZE, PMOctreeConfig
from repro.errors import (
    ConsistencyError,
    MediaError,
    MediaUnrepairableError,
    RecoveryError,
    ReplicationTimeoutError,
    ReproError,
)
from repro.nvbm import sites
from repro.nvbm.arena import MemoryArena
from repro.nvbm.clock import Category
from repro.nvbm.device import LINES_PER_RECORD
from repro.nvbm.failure import FailureInjector
from repro.nvbm.pointers import NULL_HANDLE, is_dram, is_nvbm
from repro.nvbm.records import OctantRecord, pack_record, unpack_record
from repro.octree import morton

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.pmoctree import PMOctree

from repro.core.pmoctree import SLOT_CURR, SLOT_PREV

#: Bounded read-retry budget: how many times the first rung of the repair
#: ladder re-reads a faulting record before escalating to a rebuild.
MEDIA_READ_RETRIES = 3


def restore_inplace(pmo: "PMOctree", replica=None, transport=None) -> int:
    """Reset ``pmo`` to its last persistent version; returns octant count.

    Media-aware: when the restore traversal surfaces a
    :class:`~repro.errors.MediaError` (rotted/stuck/worn lines, failed CRC),
    a :func:`scrub` pass runs the repair ladder — optionally rebuilding from
    ``replica`` over ``transport`` — and the traversal retries.  If the
    ladder runs out of redundancy a typed
    :class:`~repro.errors.MediaUnrepairableError` carries the lost loc set.
    """
    for _ in range(MEDIA_READ_RETRIES):
        try:
            return _restore_traverse(pmo)
        except MediaError:
            report = scrub(pmo, replica=replica, transport=transport)
            if report.unrepaired:
                raise MediaUnrepairableError(pmo.nvbm.name,
                                             report.unrepaired) from None
    return _restore_traverse(pmo)


def _restore_traverse(pmo: "PMOctree") -> int:
    pmo.merging = False
    if pmo._pipeline is not None:
        # in-flight epochs died with the volatile caches; their publishes
        # never happened and must not be replayed against the restored tree
        pmo._pipeline.reset()
    root = pmo.nvbm.roots.get(SLOT_PREV)
    if root == NULL_HANDLE:
        raise RecoveryError("no persistent version exists (never persisted)")
    if not is_nvbm(root):
        raise ConsistencyError("persistent root is not an NVBM handle")
    pmo.nvbm.roots.set(SLOT_CURR, root)

    # Drop every volatile structure; anything DRAM-resident is gone anyway
    # after a real crash (callers crash the arenas first), and a voluntary
    # rollback must discard it too.
    for h in list(pmo.dram.live_handles()):
        pmo.dram.free(h)
    pmo._index.clear()
    pmo._leaf_set.clear()
    pmo._c0_roots.clear()
    pmo._origin.clear()
    pmo._dirty.clear()
    pmo._superseded.clear()
    pmo._detached.clear()

    max_epoch = 0
    stack = [(root, morton.ROOT_LOC, 0)]
    count = 0
    while stack:
        handle, expect_loc, expect_level = stack.pop()
        if not pmo.nvbm.contains(handle):
            raise ConsistencyError(
                f"persistent tree references unallocated record {handle:#x}"
            )
        rec = pmo.nvbm.read_octant(handle)
        if rec.loc != expect_loc or rec.level != expect_level:
            raise ConsistencyError(
                f"record {handle:#x} claims loc={rec.loc:#x}/L{rec.level}, "
                f"expected {expect_loc:#x}/L{expect_level}"
            )
        if rec.is_deleted:
            raise ConsistencyError(
                f"persistent tree references deleted record {handle:#x}"
            )
        max_epoch = max(max_epoch, rec.epoch)
        pmo._index[expect_loc] = handle
        if rec.is_leaf:
            pmo._leaf_set.add(expect_loc)
        else:
            for idx, ch in enumerate(rec.children[: morton.fanout(pmo.dim)]):
                if ch == NULL_HANDLE:
                    raise ConsistencyError(
                        f"internal record {handle:#x} has a null child slot"
                    )
                if not is_nvbm(ch):
                    raise ConsistencyError(
                        f"persistent record {handle:#x} points into DRAM"
                    )
                stack.append(
                    (ch, morton.child_of(expect_loc, pmo.dim, idx),
                     expect_level + 1)
                )
        count += 1
    pmo.epoch = max_epoch + 1
    return count


def attach_and_restore(dram: MemoryArena, nvbm: MemoryArena, dim: int = 2,
                       config: Optional[PMOctreeConfig] = None,
                       injector: Optional[FailureInjector] = None,
                       replica=None, transport=None) -> "PMOctree":
    """Build a PMOctree around surviving arenas after a process restart.

    This is the "crashed node rebooted and reruns the application" path: the
    NVBM arena still holds the persistent tree; the returned PM-octree is
    restored from it without constructing a fresh root.
    """
    from repro.core.pmoctree import PMOctree

    pmo = PMOctree.__new__(PMOctree)
    pmo.dram = dram
    pmo.nvbm = nvbm
    if dim not in (2, 3):
        raise ValueError(f"only dim 2 and 3 supported, got {dim}")
    pmo.dim = dim
    pmo.config = config or PMOctreeConfig()
    pmo.injector = injector or FailureInjector()
    if nvbm.roots.injector is None:
        nvbm.roots.injector = pmo.injector
    from repro.core.pmoctree import PMStats

    pmo.stats = PMStats()
    pmo.epoch = 1
    pmo.merging = False
    pmo.features = []
    pmo.replica = None
    pmo.on_replica_ship = None
    pmo.replicator = None
    pmo._index = {}
    pmo._leaf_set = set()
    pmo._c0_roots = {}
    pmo._origin = {}
    pmo._dirty = set()
    pmo._superseded = []
    pmo._detached = []
    if pmo.config.max_inflight_epochs > 0:
        from repro.core.pipeline import EpochPipeline

        pmo._pipeline = EpochPipeline(
            pmo, max_inflight=pmo.config.max_inflight_epochs)
    restore_inplace(pmo, replica=replica, transport=transport)
    return pmo


# ------------------------------------------------------- multi-failure recovery


@dataclass
class Recovered:
    """A host loss was survived; the tree is live again.

    ``protected`` reports whether re-replication onto a fresh peer
    succeeded — recovery *always* attempts it (a recovered-but-unprotected
    host is one failure away from data loss), but no live peer on another
    node, or an unreachable one, leaves the host temporarily unprotected.
    """

    kind: str                      #: "local" (NVBM survived) or "replica"
    host_rank: int                 #: rank serving the tree after recovery
    tree: "PMOctree"
    protected: bool
    replica_peer: Optional[int] = None  #: peer now holding V^P, if any
    session: Optional[object] = None    #: live ReplicaSession, if protected
    detail: str = ""

    @property
    def degraded(self) -> bool:
        return False


@dataclass
class Degraded:
    """Typed unrecoverable-by-replication outcome (never a stack trace).

    Both the host's NVBM and its replica are gone (concurrent host+peer
    loss, or host loss with no replica shipped yet): the caller must fall
    back to a snapshot-style restart — re-running the application from its
    last external checkpoint or from scratch — which is a *policy*
    decision, so it is reported, not raised.
    """

    reason: str
    lost_ranks: Tuple[int, ...] = field(default_factory=tuple)
    snapshot_restart: bool = True
    #: locational codes of subtrees the media repair ladder could not
    #: rebuild (empty unless the degradation was caused by unrepairable
    #: NVBM media faults — see :func:`scrub`).
    lost_locs: Tuple[int, ...] = field(default_factory=tuple)

    @property
    def degraded(self) -> bool:
        return True


def reprotect(cluster, tree, host_rank: int, policy=None,
              break_acks: bool = False):
    """Mandatory post-recovery re-replication onto a freshly chosen peer.

    Returns ``(session, peer_rank, detail)``; session/peer are ``None``
    when no live peer exists on another node or the full ship could not be
    acknowledged (the host then runs unprotected until the next persist
    retries through the attached session or the caller re-calls this).
    """
    from repro.core.replication import (
        FaultyTransport,
        PerfectTransport,
        ReplicaSession,
        choose_replica_peer,
    )
    from repro.parallel.faults import FaultyNetwork

    peer = choose_replica_peer(cluster, host_rank)
    if peer is None:
        return None, None, "no live peer on another node"
    clock = cluster.ranks[host_rank].clock
    if isinstance(cluster.network, FaultyNetwork):
        transport = FaultyTransport(cluster.network, host_rank, peer,
                                    clock=clock)
    else:
        transport = PerfectTransport()
    session = ReplicaSession(tree, transport=transport, clock=clock,
                             policy=policy, break_acks=break_acks)
    tree.attach_replication_session(session)
    try:
        session.ship()
    except ReplicationTimeoutError as exc:
        return None, None, f"re-replication to rank {peer} timed out: {exc}"
    return session, peer, f"replica re-established on rank {peer}"


def recover_host(cluster, host_rank: int, *,
                 replica=None, replica_peer: Optional[int] = None,
                 host_node_returns: bool = False,
                 new_host: Optional[int] = None,
                 dim: int = 2, config: Optional[PMOctreeConfig] = None,
                 policy=None, break_acks: bool = False):
    """Drive recovery of one lost host through every §3.4 scenario.

    * ``host_node_returns=True`` — the node rebooted: its NVBM backing
      survived, restore in place (scenario 1) even if the replica is also
      gone (host-loss-then-replica-loss).
    * host gone for good, replica alive on ``replica_peer`` — materialise
      the replica on ``new_host`` (default: the peer itself), scenario 2.
    * host gone *and* replica unavailable (peer dead, or nothing shipped)
      — :class:`Degraded`, never an unhandled exception.

    Every successful path ends with mandatory re-replication
    (:func:`reprotect`): the system must re-enter a protected state or
    explicitly report that it could not.
    """
    lost = tuple(r.rank for r in cluster.ranks if not r.alive)

    if host_node_returns:
        ctx = cluster.revive_rank(host_rank)
        peer_alive = (replica_peer is not None
                      and cluster.ranks[replica_peer].alive)
        try:
            tree = attach_and_restore(
                ctx.resources["dram"], ctx.resources["nvbm"],
                dim=dim, config=config,
                replica=replica if peer_alive else None,
            )
        except MediaUnrepairableError as exc:
            return Degraded(
                reason=f"NVBM media unrepairable on rank {host_rank}: {exc}",
                lost_ranks=lost, lost_locs=exc.lost_locs,
            )
        except ReproError as exc:
            return Degraded(reason=f"local NVBM restore failed: {exc}",
                            lost_ranks=lost)
        kind, serving = "local", host_rank
    else:
        peer_alive = (replica_peer is not None
                      and cluster.ranks[replica_peer].alive)
        if replica is None or not replica.records or not peer_alive:
            why = ("replica peer died with the host"
                   if replica is not None and replica.records
                   else "no replica was ever shipped")
            return Degraded(
                reason=f"host rank {host_rank} lost and {why}",
                lost_ranks=lost,
            )
        serving = new_host if new_host is not None else replica_peer
        ctx = cluster.ranks[serving]
        if not ctx.alive:
            return Degraded(
                reason=f"replacement host rank {serving} is dead",
                lost_ranks=lost,
            )
        try:
            tree = restore_from_replica_arenas(replica, ctx, dim=dim,
                                               config=config)
        except ReproError as exc:
            return Degraded(reason=f"replica materialisation failed: {exc}",
                            lost_ranks=lost)
        kind = "replica"

    session, peer, detail = reprotect(cluster, tree, serving,
                                      policy=policy, break_acks=break_acks)
    return Recovered(kind=kind, host_rank=serving, tree=tree,
                     protected=session is not None, replica_peer=peer,
                     session=session, detail=detail)


def restore_from_replica_arenas(replica, ctx, dim: int = 2,
                                config: Optional[PMOctreeConfig] = None):
    """Materialise ``replica`` into a rank context's own arenas."""
    from repro.core.replication import restore_from_replica

    return restore_from_replica(replica, ctx.resources["dram"],
                                ctx.resources["nvbm"], dim=dim, config=config)


# ----------------------------------------------------------- media repair ladder


@dataclass
class ScrubReport:
    """Outcome of one :func:`scrub` pass over the published tree."""

    scanned: int = 0
    #: fault kind -> detections ("rot"/"wear"/"stuck"/"transient"/"crc")
    detected: Dict[str, int] = field(default_factory=dict)
    repaired_retry: int = 0     #: cleared by the bounded re-read rung
    repaired_local: int = 0     #: rebuilt from a clean C0 (DRAM) copy
    repaired_replica: int = 0   #: rebuilt from the remote replica
    relocated: int = 0          #: records moved to fresh slots
    retired_lines: int = 0      #: cache lines permanently taken out of rotation
    unrepaired: Tuple[int, ...] = ()  #: subtree-root locs with no redundancy left

    @property
    def detected_total(self) -> int:
        return sum(self.detected.values())

    @property
    def ok(self) -> bool:
        return not self.unrepaired


def _read_retrying(pmo: "PMOctree", handle: int):
    """First rung: bounded re-read.  Returns ``(record, first_error)``.

    A transient upset clears on re-read; everything else keeps raising and
    the last error escapes to the caller after the budget is spent.
    """
    exc: Optional[MediaError] = None
    for _ in range(MEDIA_READ_RETRIES):
        try:
            return pmo.nvbm.read_octant(handle), exc
        except MediaError as e:  # noqa: PERF203 - retry loop is the point
            exc = e
    raise exc


def _note_detected(pmo: "PMOctree", report: ScrubReport, kind: str) -> None:
    report.detected[kind] = report.detected.get(kind, 0) + 1
    if pmo.obs is not None:
        pmo.obs.metrics.counter("media.ue_detected", kind=kind).inc()


def _rebuild_source(pmo: "PMOctree", path, replica, transport):
    """Find replacement bytes for the faulty record at ``path[-1]``.

    Preference order mirrors cost: a clean local C0 copy of the same
    version (free), then the remote replica (fetch charged to the clock as
    network traffic).  Returns ``(bytes, source)`` or ``(None, None)``.
    """
    loc, bad, _rec = path[-1]
    # A C0-resident copy that is *clean* since its load is byte-equivalent
    # to the published record for every field recovery checks (payload,
    # flags, epoch; leaf => no children).  Internal octants' child handles
    # differ between the DRAM and NVBM images, so only leaves qualify.
    h = pmo._index.get(loc)
    if (h is not None and is_dram(h) and pmo._origin.get(loc) == bad
            and loc not in pmo._dirty):
        rec = pmo.dram.read_octant(h)
        if rec.is_leaf:
            rec = rec.copy()
            if len(path) > 1:
                rec.parent = path[-2][1]
            # the copy must stay publishable under I2 (epoch < current)
            rec.epoch = min(rec.epoch, pmo.epoch - 1)
            return pack_record(rec), "local"
    if replica is not None:
        src = replica.records.get(bad)
        if src is not None and unpack_record(src).loc == loc:
            if transport is not None:
                delivered = False
                for _ in range(MEDIA_READ_RETRIES):
                    d = transport.send_data(OCTANT_RECORD_SIZE)
                    if d.cost_ns:
                        pmo.nvbm.device.clock.advance(d.cost_ns, Category.COMM)
                    if d.delivered:
                        delivered = True
                        break
                if not delivered:
                    return None, None
            return src, "replica"
    return None, None


def _relocate_and_republish(pmo: "PMOctree", path, src_bytes: bytes,
                            kind: str, report: ScrubReport) -> None:
    """Rungs 3-4: relocate the root->bad chain to fresh slots and republish.

    The faulty record's bytes are replaced by ``src_bytes``; every ancestor
    is copied (good media, re-linked to the fresh chain) so the repair
    commits through the same single atomic root-slot store the persist
    point uses — a crash anywhere in here leaves either the old root (bad
    record still faulty, repair re-runs) or the new root (repair complete).
    Epochs are preserved: the repaired tree is still version V_{i-1}.

    ``path`` frames (``[loc, handle, record]``) are remapped in place so the
    caller's traversal continues over the relocated chain.
    """
    nvbm = pmo.nvbm
    dim = pmo.dim
    old_handles = [h for _, h, _ in path]
    bad_old = old_handles[-1]
    recs: List[OctantRecord] = [rec.copy() for _, _, rec in path[:-1]]
    recs.append(unpack_record(src_bytes))
    new_handles = [nvbm.alloc() for _ in path]
    for i, rec in enumerate(recs):
        if i > 0:
            rec.parent = new_handles[i - 1]
        if i < len(recs) - 1:
            ci = morton.child_index_of(path[i + 1][0], dim)
            rec.children[ci] = new_handles[i + 1]
        # pmlint: allow[raw-write]: relocation materialises a whole fresh
        # record in a never-written slot; there is no old image to patch
        # field-granularly.
        # pmlint: allow-direct-write — new_handles[i] was allocated three
        # lines up; a freshly allocated slot has no published image to COW.
        nvbm.write_octant(new_handles[i], rec)
    # Working-version splice: if the current epoch already COW'd the bad
    # record's parent, that in-place-writable copy still points at the slot
    # being condemned — redirect it before the flush so the next persist
    # cannot publish a dangling child.
    if len(path) > 1:
        ploc = path[-2][0]
        w = pmo._index.get(ploc)
        ci = morton.child_index_of(path[-1][0], dim)
        if (w is not None and is_nvbm(w)
                and w not in (old_handles[-2], new_handles[-2])
                and nvbm.read_epoch(w) == pmo.epoch
                and nvbm.read_octant(w).children[ci] == bad_old):
            # pmlint: allow-direct-write — w's epoch equals the current
            # epoch (checked above): it is the working version's own COW
            # copy, legally in-place writable, never published.
            nvbm.write_child_slot(w, ci, new_handles[-1])
    nvbm.flush()
    pmo.injector.site(sites.MEDIA_REPAIR_PRE_PUBLISH)
    nvbm.roots.set(SLOT_PREV, new_handles[0])
    if nvbm.roots.get(SLOT_CURR) == old_handles[0]:
        nvbm.roots.set(SLOT_CURR, new_handles[0])
    pmo.injector.site(sites.MEDIA_REPAIR_PRE_RETIRE)
    if kind in ("stuck", "wear"):
        # the medium itself is bad: take the slot's lines out of rotation
        nvbm.retire(bad_old)
        report.retired_lines += LINES_PER_RECORD
        pmo._obs_count("media.retired_lines", LINES_PER_RECORD)
    else:
        # rot/CRC corruption: a rewrite refreshes the cells, slot reusable
        nvbm.free(bad_old)
    # remap the volatile acceleration structures onto the fresh chain
    remap = dict(zip(old_handles, new_handles))
    for i, frame in enumerate(path):
        if pmo._index.get(frame[0]) == frame[1]:
            pmo._index[frame[0]] = new_handles[i]
    for loc, origin in list(pmo._origin.items()):
        if origin in remap:
            pmo._origin[loc] = remap[origin]
    for frame, nh, rec in zip(path, new_handles, recs):
        frame[1] = nh
        frame[2] = rec
    report.relocated += 1
    pmo._obs_count("media.relocated")


def scrub(pmo: "PMOctree", replica=None, transport=None) -> ScrubReport:
    """Background scrub: read-verify every published record, repair faults.

    Walks the persistent tree (``V_prev``) top-down on the simulated clock,
    driving each detected fault through the repair ladder:

    1. bounded re-read (clears transient upsets);
    2. rebuild from a clean local C0 copy or from ``replica`` (fetch
       charged to ``transport``/the clock);
    3. relocate the record to a fresh slot and atomically republish;
    4. retire stuck/worn lines through the allocator's retired-set.

    Records with no redundancy left are reported (not raised) in
    ``ScrubReport.unrepaired`` — their subtrees are unreadable, and the
    caller decides whether that degrades the run.
    """
    report = ScrubReport()
    root = pmo.nvbm.roots.get(SLOT_PREV)
    if root == NULL_HANDLE or not is_nvbm(root):
        return report
    unrepaired: List[int] = []
    with pmo._obs_span("media.scrub"):
        _scrub_visit(pmo, [[morton.ROOT_LOC, root, None]], replica,
                     transport, report, unrepaired)
    report.unrepaired = tuple(sorted(unrepaired))
    pmo._obs_count("media.scrubs")
    return report


def _scrub_visit(pmo: "PMOctree", path, replica, transport,
                 report: ScrubReport, unrepaired: List[int]) -> None:
    """Verify the record at ``path[-1]`` and recurse over its children."""
    loc, handle, _ = path[-1]
    report.scanned += 1
    try:
        rec, first_exc = _read_retrying(pmo, handle)
        if first_exc is not None:
            _note_detected(pmo, report, first_exc.kind)
            report.repaired_retry += 1
            pmo._obs_count("media.ue_repaired")
        path[-1][2] = rec
    except MediaError as exc:
        _note_detected(pmo, report, exc.kind)
        src, source = _rebuild_source(pmo, path, replica, transport)
        if src is None:
            # no redundancy: the whole subtree under loc is unreadable
            unrepaired.append(loc)
            return
        with pmo._obs_span("media.repair", kind=exc.kind):
            _relocate_and_republish(pmo, path, src, exc.kind, report)
        if source == "replica":
            report.repaired_replica += 1
        else:
            report.repaired_local += 1
        pmo._obs_count("media.ue_repaired")
        pmo.injector.site(sites.MEDIA_SCRUB_MID)
        rec = path[-1][2]
    if rec.is_leaf:
        return
    for idx, ch in enumerate(rec.children[: morton.fanout(pmo.dim)]):
        if ch == NULL_HANDLE or not is_nvbm(ch):
            continue
        path.append([morton.child_of(loc, pmo.dim, idx), ch, None])
        _scrub_visit(pmo, path, replica, transport, report, unrepaired)
        path.pop()
