"""The asynchronous epoch pipeline: delay-free persistence for PM-octree.

Synchronous persist (:meth:`repro.core.pmoctree.PMOctree._persist_impl`)
stops the world: the epoch's merge *and* its flush train run on the compute
path, so NVBM write latency lands directly on the step makespan.  The C0
working set exists precisely so it does not have to — step *i+1* computes on
DRAM while step *i*'s flush train drains in the background (Ben-David et
al.'s delay-free epochs; Blelloch et al.'s parallel persistent memory
model).  This module is that overlap, split into two phases:

**enqueue** (compute path, cheap)
    The C0 merge runs immediately — its *state* mutations must be visible
    to step i+1 — but the NVBM write time it would have charged is
    redirected into a per-epoch :class:`DrainCost` accumulator
    (:meth:`repro.nvbm.device.MemoryDevice.deferred_writes`).  The epoch's
    durability obligations (the dirty-record snapshot, the root to publish,
    the superseded records to mark) are captured in an
    :class:`InFlightEpoch` and queued.  The tree's epoch counter advances
    at enqueue, so step i+1's mutations COW the queued records instead of
    rewriting them in place — the snapshot is immutable from the moment it
    is taken.

**drain** (background device time)
    A single FIFO flush engine: epoch i's drain completes at
    ``ready_i = max(enqueue_now, ready_{i-1}) + cost_i`` on the simulated
    clock.  The durability *actions* — selective flush of the snapshot,
    the atomic root-slot publish (THE commit point), the superseded
    marking, the closing flush — execute when the pipeline settles the
    epoch, under :meth:`unmetered` (their time was already accounted by
    the cost model).  Settling happens lazily: at the next enqueue for
    every epoch whose ``ready_ns`` has passed (it genuinely overlapped),
    via **backpressure** when the bounded in-flight window is full (the
    clock advances to the oldest epoch's ``ready_ns``; the wait is a
    *stall*, charged under the ``persist.drain`` phase), or via
    :meth:`drain_all` at a barrier.

Because a queued epoch's stores still sit in the volatile write-back cache
until its settle, a crash mid-flight tears them and the root slot still
names the previous published epoch — recovery deterministically lands on
epoch *i* or *i−1*, never a blend.  The registered crash sites
(``epoch.enqueue.mid``, ``epoch.drain.mid``, ``epoch.commit.pre_publish``,
``epoch.overlap.next_step``) pin exactly those windows for the sweep.

``overlap_fraction = 1 - stall_ns / drain_ns`` is the headline gauge: the
fraction of total drain time that disappeared behind compute.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Deque, List, Optional

from repro.errors import ConsistencyError
from repro.nvbm import sites
from repro.nvbm.arena import FENCE_NS
from repro.nvbm.clock import Category
from repro.nvbm.pointers import is_nvbm
from repro.nvbm.records import FLAG_DELETED

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.pmoctree import PMOctree


@dataclass
class DrainCost:
    """Mutable accumulator for deferred NVBM write time (one epoch)."""

    ns: float = 0.0


@dataclass
class InFlightEpoch:
    """One queued epoch: its durability obligations and schedule."""

    epoch: int            #: the PM-octree epoch this drain will publish
    root: int             #: NVBM root handle to publish at the commit point
    pending: List[int]    #: dirty-record snapshot the drain must flush
    superseded: List[int]  #: COW originals to mark deleted *after* publish
    #: non-COW departures from the working version (coarsened old-epoch
    #: children, merge-replaced origins) — GC pins, never marked deleted
    detached: List[int] = field(default_factory=list)
    enqueue_ns: float = 0.0  #: sim time the epoch was enqueued
    ready_ns: float = 0.0    #: sim time its background drain completes
    cost_ns: float = 0.0     #: total device time of the drain train
    window: int = 0       #: tracker epoch-window id (0 when no tracker)


@dataclass
class PipelineStats:
    """Counters the bench and property tests read."""

    enqueued: int = 0
    drained: int = 0
    stall_ns: float = 0.0   #: clock time spent waiting on the drain engine
    drain_ns: float = 0.0   #: total background drain time scheduled
    max_inflight_seen: int = 0
    backpressure_waits: int = 0


class EpochPipeline:
    """Bounded in-flight epoch queue for one :class:`PMOctree`.

    ``max_inflight`` bounds the number of epochs whose drains may be
    outstanding at once; an enqueue finding the window full stalls the
    compute clock until the oldest epoch's drain completes.
    """

    def __init__(self, pmo: "PMOctree", max_inflight: int = 1):
        if max_inflight < 1:
            raise ValueError(
                f"max_inflight must be >= 1, got {max_inflight}"
            )
        self.pmo = pmo
        self.max_inflight = max_inflight
        self.stats = PipelineStats()
        self._queue: Deque[InFlightEpoch] = deque()
        #: when the single FIFO flush engine frees up (sim ns)
        self._engine_free_ns = 0.0

    # -- introspection -----------------------------------------------------

    @property
    def inflight(self) -> int:
        return len(self._queue)

    def live_roots(self) -> List[int]:
        """Roots of in-flight epochs — GC must treat these as live.

        An unpublished epoch's root is reachable from no root slot and
        (after coarsening in the next step) possibly not from the index
        either; sweeping it would dangle the publish still scheduled for
        it.
        """
        return [e.root for e in self._queue]

    def pinned_handles(self) -> List[int]:
        """Records unique to still-committed predecessor trees.

        Version *k*'s reachable set is the working version's plus the
        per-epoch deltas (COW ``superseded`` plus non-COW ``detached``) of
        every epoch from *k+1* on — COW never mutates an old record in
        place, so anything that left the working set is in exactly one
        delta.  GC pins this union instead of traversing from the old
        published root, which is what keeps the pipelined mark as cheap as
        the synchronous one (no second walk of a 99%-shared tree).
        """
        pins: List[int] = []
        for e in self._queue:
            pins.extend(e.superseded)
            pins.extend(e.detached)
        return pins

    def overlap_fraction(self) -> float:
        """Fraction of scheduled drain time hidden behind compute."""
        if self.stats.drain_ns <= 0:
            return 0.0
        return max(0.0, 1.0 - self.stats.stall_ns / self.stats.drain_ns)

    # -- the compute-path phase --------------------------------------------

    def enqueue(self, transform: bool = True,
                keep_resident: Optional[bool] = None) -> int:
        """Snapshot/enqueue phase of one persist point; returns the new
        persistent root handle (publication happens at the drain)."""
        from repro.core.merge import merge_all_c0
        from repro.core.pmoctree import SLOT_PREV  # noqa: F401 (docs)
        from repro.core.transform import detect_and_transform

        pmo = self.pmo
        if keep_resident is None:
            keep_resident = transform
        # Settle every epoch whose background drain already completed, so
        # the queue holds only genuinely in-flight work; a crash at the
        # overlap site then tears exactly the epochs that were still
        # draining.
        self._settle_due()
        if self._queue:
            pmo.injector.site(sites.EPOCH_OVERLAP_NEXT_STEP)
        self._backpressure()

        cost = DrainCost()
        pmo.injector.site(sites.PERSIST_BEGIN)
        pmo.merging = True
        try:
            with pmo.nvbm.device.deferred_writes(cost):
                root = merge_all_c0(pmo, keep_resident=keep_resident)
            if not is_nvbm(root):
                raise ConsistencyError("root still volatile after merge")
        finally:
            pmo.merging = False
        pmo.injector.site(sites.EPOCH_ENQUEUE_MID)

        pending = pmo.nvbm.dirty_handles()
        superseded = list(pmo._superseded)
        detached = list(pmo._detached)
        pmo._superseded.clear()
        pmo._detached.clear()
        tracer = getattr(pmo.nvbm, "tracer", None)
        epoch_open = getattr(tracer, "on_epoch_open", None)
        window = (
            epoch_open(sealed=True, pending=pending)
            if epoch_open is not None else 0
        )
        epoch = pmo.epoch
        pmo.epoch += 1
        pmo.stats.persists += 1

        # The drain train's device time: the deferred merge writes, a fence
        # for the snapshot flush, the 8-byte publish, one single-line store
        # per superseded mark, and the closing fence.
        write_ns = pmo.nvbm.device.spec.write_latency_ns
        cost_ns = (
            cost.ns + FENCE_NS + write_ns
            + len(superseded) * write_ns + FENCE_NS
        )
        clock = pmo.nvbm.device.clock
        ready = max(clock.now_ns, self._engine_free_ns) + cost_ns
        self._engine_free_ns = ready
        self._queue.append(InFlightEpoch(
            epoch=epoch, root=root, pending=pending, superseded=superseded,
            detached=detached, enqueue_ns=clock.now_ns, ready_ns=ready,
            cost_ns=cost_ns, window=window,
        ))
        self.stats.enqueued += 1
        self.stats.drain_ns += cost_ns
        self.stats.max_inflight_seen = max(self.stats.max_inflight_seen,
                                           len(self._queue))

        if keep_resident and not transform and not pmo._c0_roots:
            pmo._load_static_chunk()
        if pmo.nvbm.free_fraction < pmo.config.threshold_nvbm:
            pmo.gc()
        if pmo.replicator is not None:
            report = pmo.replicator.ship()
            if pmo.on_replica_ship is not None:
                pmo.on_replica_ship(report.bytes_shipped)
        elif pmo.replica is not None:
            from repro.core.replication import ship_delta

            shipped = ship_delta(pmo, pmo.replica)
            if pmo.on_replica_ship is not None:
                pmo.on_replica_ship(shipped)
        if transform:
            detect_and_transform(pmo)
        return root

    # -- the background phase ----------------------------------------------

    def _settle_due(self) -> None:
        """Settle every queued epoch whose drain already completed."""
        clock = self.pmo.nvbm.device.clock
        while self._queue and self._queue[0].ready_ns <= clock.now_ns:
            self._settle(self._queue.popleft())

    def _backpressure(self) -> None:
        """Stall until the in-flight window has room for one more epoch."""
        clock = self.pmo.nvbm.device.clock
        while len(self._queue) >= self.max_inflight:
            entry = self._queue.popleft()
            wait = entry.ready_ns - clock.now_ns
            if wait > 0:
                with clock.phase("persist.drain"):
                    clock.advance(wait, Category.MEM_NVBM)
                self.stats.stall_ns += wait
                self.stats.backpressure_waits += 1
            self._settle(entry)

    def drain_all(self) -> None:
        """Barrier: wait out and settle every in-flight epoch.

        Residual waits count as stalls — at a barrier there is no compute
        left to hide them behind.
        """
        clock = self.pmo.nvbm.device.clock
        while self._queue:
            entry = self._queue.popleft()
            wait = entry.ready_ns - clock.now_ns
            if wait > 0:
                with clock.phase("persist.drain"):
                    clock.advance(wait, Category.MEM_NVBM)
                self.stats.stall_ns += wait
            self._settle(entry)
        self._publish_gauges()

    def _settle(self, entry: InFlightEpoch) -> None:
        """Execute one epoch's durability actions (its time is already on
        the clock via the cost model, so the actions run unmetered)."""
        from repro.core.pmoctree import SLOT_PREV

        pmo = self.pmo
        nvbm = pmo.nvbm
        with self.pmo._obs_span("pm.persist.drain", epoch=entry.epoch):
            with nvbm.device.unmetered():
                half = len(entry.pending) // 2
                if half:
                    nvbm.flush_records(entry.pending[:half])
                pmo.injector.site(sites.EPOCH_DRAIN_MID)
                nvbm.flush_records(entry.pending[half:])
                pmo.injector.site(sites.EPOCH_COMMIT_PRE_PUBLISH)
                # THE commit point: one atomic 8-byte root-slot store.
                nvbm.roots.set(SLOT_PREV, entry.root)
                # Superseded records were reachable from the root published
                # a moment ago's *predecessor*; only now that V_{i-1} moved
                # past them may they be marked as GC food.
                marked = []
                for old in entry.superseded:
                    if nvbm.contains(old):
                        flags = nvbm.read_flags(old)
                        # pmlint: allow-direct-write — superseded records
                        # belong to retired versions only; the freshly
                        # published root cannot reach them.
                        nvbm.set_flags(old, flags | FLAG_DELETED)
                        pmo.stats.marked_deleted += 1
                        pmo._obs_count("pm.marked_deleted")
                        marked.append(old)
                nvbm.flush_records(marked)
        tracer = getattr(nvbm, "tracer", None)
        epoch_close = getattr(tracer, "on_epoch_close", None)
        if epoch_close is not None and entry.window:
            epoch_close(entry.window)
        self.stats.drained += 1
        self._publish_gauges()

    def _publish_gauges(self) -> None:
        obs = self.pmo.obs
        if obs is not None:
            obs.metrics.gauge("pipeline.overlap_fraction").set(
                self.overlap_fraction())
            obs.metrics.gauge("pipeline.stall_ns").set(self.stats.stall_ns)
            obs.metrics.gauge("pipeline.inflight").set(len(self._queue))

    # -- crash / teardown ---------------------------------------------------

    def reset(self) -> None:
        """Drop all in-flight state (a crash voided it with the caches)."""
        self._queue.clear()
        self._engine_free_ns = self.pmo.nvbm.device.clock.now_ns
