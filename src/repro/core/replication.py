"""Remote replicas of the persistent version (§3.4, second scenario).

When a crashed node never comes back, the local NVBM is gone with it, so
PM-octree can keep a replica ``V_{i-1}^P`` of the persistent version on a
peer node.  Only *deltas* are shipped per persist — the records the peer has
not seen yet — which is cheap because the overlap ratio between adjacent
persistent versions is high (Fig 3).

Recovering onto a replacement node materialises the replica into a fresh
NVBM arena.  Handles embed the arena they belong to, so every parent/child
pointer must be rewritten for the new arena — the pointer-swizzling chore
§1 says the library must hide from application developers.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, Optional, Set, Tuple

from repro.config import OCTANT_RECORD_SIZE, PMOctreeConfig
from repro.errors import RecoveryError
from repro.nvbm import sites
from repro.nvbm.arena import MemoryArena
from repro.nvbm.failure import FailureInjector
from repro.nvbm.pointers import NULL_HANDLE
from repro.nvbm.records import unpack_record

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.pmoctree import PMOctree

from repro.core.pmoctree import SLOT_PREV


def choose_replica_peer(cluster, host_rank: int) -> Optional[int]:
    """Pick where to place ``V_{i-1}^P`` (the paper's §6 deferred feature).

    "V^P is stored on other compute nodes or staging nodes selected by job
    schedulers according to their NVBM utilization" — so: among alive ranks
    on *different nodes* than the host, choose the one whose NVBM arena has
    the most free space.  Returns None when no such rank exists (single-node
    cluster or everyone else dead), in which case replication degrades to
    host-only persistence.
    """
    host_node = cluster.ranks[host_rank].node
    best = None
    best_free = -1.0
    for ctx in cluster.ranks:
        if not ctx.alive or ctx.node == host_node:
            continue
        nvbm = ctx.resources.get("nvbm")
        if nvbm is None:
            continue
        if nvbm.free_fraction > best_free:
            best_free = nvbm.free_fraction
            best = ctx.rank
    return best


class ReplicaStore:
    """Holds record images of a persistent version, keyed by origin handle."""

    def __init__(self) -> None:
        self.records: Dict[int, bytes] = {}
        self.root: int = NULL_HANDLE

    @property
    def known_handles(self) -> Set[int]:
        return set(self.records)

    def bytes_stored(self) -> int:
        return len(self.records) * OCTANT_RECORD_SIZE


def compute_delta(pmo: "PMOctree", replica: ReplicaStore) -> Tuple[Dict[int, bytes], int]:
    """Records of the current persistent version the replica lacks.

    Returns ``(records, root_handle)``.  Raises when nothing was persisted.
    """
    root = pmo.nvbm.roots.get(SLOT_PREV)
    if root == NULL_HANDLE:
        raise RecoveryError("nothing persisted yet; no delta to replicate")
    reachable = pmo.reachable_from(root)
    delta = {
        h: pmo.nvbm.read(h)
        for h in reachable
        if h not in replica.records
    }
    return delta, root


def ship_delta(pmo: "PMOctree", replica: ReplicaStore) -> int:
    """Apply the delta to the replica; returns bytes shipped.

    The caller charges the returned byte count to its network model — the
    replica object itself is placement-agnostic.
    """
    delta, root = compute_delta(pmo, replica)
    replica.records.update(delta)
    replica.root = root
    # Drop replica records no longer part of the persistent version (the
    # peer garbage-collects too, or the replica would grow without bound).
    reachable = pmo.reachable_from(root)
    for h in list(replica.records):
        if h not in reachable:
            del replica.records[h]
    return len(delta) * OCTANT_RECORD_SIZE


def restore_from_replica(replica: ReplicaStore, dram: MemoryArena,
                         nvbm: MemoryArena, dim: int = 2,
                         config: Optional[PMOctreeConfig] = None,
                         injector: Optional[FailureInjector] = None
                         ) -> "PMOctree":
    """Materialise a replica into fresh arenas on a replacement node.

    Every record is re-allocated in the new NVBM arena and its parent/child
    handles are swizzled through the old->new translation table; then the
    normal restore path takes over.
    """
    from repro.core.recovery import attach_and_restore

    if replica.root == NULL_HANDLE or not replica.records:
        raise RecoveryError("replica is empty; cannot recover from it")
    translation: Dict[int, int] = {
        old: nvbm.alloc() for old in replica.records
    }

    def swizzle(handle: int) -> int:
        if handle == NULL_HANDLE:
            return NULL_HANDLE
        # Pointers into lost DRAM or to records outside the replica cannot
        # be followed on the new node; recovery never needs them.
        return translation.get(handle, NULL_HANDLE)

    for old, data in replica.records.items():
        rec = unpack_record(data)
        rec.parent = swizzle(rec.parent)
        rec.children = [swizzle(c) for c in rec.children]
        # pmlint: allow-direct-write — every target slot was freshly
        # allocated above; nothing persistent can reach it yet.
        nvbm.write_octant(translation[old], rec)
    nvbm.flush()
    if injector is not None:
        injector.site(sites.REPLICA_BEFORE_PUBLISH)
    new_root = translation[replica.root]
    nvbm.roots.set(SLOT_PREV, new_root)
    return attach_and_restore(dram, nvbm, dim=dim, config=config,
                              injector=injector)
