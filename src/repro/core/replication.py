"""Remote replicas of the persistent version (§3.4, second scenario).

When a crashed node never comes back, the local NVBM is gone with it, so
PM-octree can keep a replica ``V_{i-1}^P`` of the persistent version on a
peer node.  Only *deltas* are shipped per persist — the records the peer has
not seen yet — which is cheap because the overlap ratio between adjacent
persistent versions is high (Fig 3).

Shipping is a real protocol, not a function call: a
:class:`ReplicaSession` sequences every delta, requires an acknowledgement
from the peer, retries with exponential backoff (charged to the simulated
clock) when the network loses the delta or the ack, is idempotent under
duplicate delivery, and falls back to a full resync when the peer's state
chain diverges from what the host expects.  See
``docs/fault-tolerance.md`` for the protocol state machine.

Recovering onto a replacement node materialises the replica into a fresh
NVBM arena.  Handles embed the arena they belong to, so every parent/child
pointer must be rewritten for the new arena — the pointer-swizzling chore
§1 says the library must hide from application developers.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, Optional, Set, Tuple

from repro.config import OCTANT_RECORD_SIZE, PMOctreeConfig
from repro.errors import RecoveryError, ReplicationTimeoutError
from repro.nvbm import sites
from repro.nvbm.arena import MemoryArena
from repro.nvbm.clock import Category, SimClock
from repro.nvbm.failure import FailureInjector
from repro.nvbm.pointers import NULL_HANDLE
from repro.nvbm.records import unpack_record
from repro.parallel.faults import ACK_BYTES, Delivery, FaultyNetwork

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.pmoctree import PMOctree

from repro.core.pmoctree import SLOT_PREV

#: Wire overhead of one DELTA message (seq, base root, new root, counts).
DELTA_HEADER_BYTES = 64


def choose_replica_peer(cluster, host_rank: int) -> Optional[int]:
    """Pick where to place ``V_{i-1}^P`` (the paper's §6 deferred feature).

    "V^P is stored on other compute nodes or staging nodes selected by job
    schedulers according to their NVBM utilization" — so: among alive ranks
    on *different nodes* than the host, choose the one whose NVBM arena has
    the most free space.  Returns None when no such rank exists (single-node
    cluster or everyone else dead), in which case replication degrades to
    host-only persistence.
    """
    host_node = cluster.ranks[host_rank].node
    best = None
    best_free = -1.0
    for ctx in cluster.ranks:
        if not ctx.alive or ctx.node == host_node:
            continue
        nvbm = ctx.resources.get("nvbm")
        if nvbm is None:
            continue
        if nvbm.free_fraction > best_free:
            best_free = nvbm.free_fraction
            best = ctx.rank
    return best


class ReplicaStore:
    """Holds record images of a persistent version, keyed by origin handle.

    The store is the *peer side* of the replication protocol: it tracks the
    monotonic sequence number of the last applied delta and only accepts a
    delta whose base root matches its current root — out-of-order or
    replayed messages are classified instead of blindly applied.
    """

    def __init__(self) -> None:
        self.records: Dict[int, bytes] = {}
        self.root: int = NULL_HANDLE
        #: sequence number of the last applied delta (0 = nothing applied)
        self.applied_seq: int = 0

    @property
    def known_handles(self) -> Set[int]:
        return set(self.records)

    def bytes_stored(self) -> int:
        return len(self.records) * OCTANT_RECORD_SIZE

    # -- protocol peer side --------------------------------------------------

    def classify(self, seq: int, base_root: int, new_root: int) -> str:
        """Triage one incoming DELTA header without touching state.

        * ``"duplicate"`` — this exact delta was already applied (a
          retransmit after a lost ack, or a network duplicate): re-ack.
        * ``"apply"`` — next in sequence and chained on our root: apply.
        * ``"diverged"`` — anything else; the sender must full-resync.
        """
        if seq <= self.applied_seq:
            return "duplicate" if new_root == self.root else "diverged"
        if seq == self.applied_seq + 1 and base_root == self.root:
            return "apply"
        return "diverged"

    def apply_delta(self, seq: int, base_root: int,
                    records: Dict[int, bytes], new_root: int,
                    reachable: Set[int]) -> str:
        """Idempotently apply one DELTA message; returns the classification."""
        status = self.classify(seq, base_root, new_root)
        if status != "apply":
            return status
        self.records.update(records)
        self.root = new_root
        # Drop records no longer part of the persistent version (the peer
        # garbage-collects too, or the replica would grow without bound).
        for h in list(self.records):
            if h not in reachable:
                del self.records[h]
        self.applied_seq = seq
        return "applied"

    def force_sync(self, seq: int, records: Dict[int, bytes],
                   root: int) -> None:
        """Full resync: replace the entire store (divergence recovery)."""
        self.records = dict(records)
        self.root = root
        self.applied_seq = seq


def compute_delta(pmo: "PMOctree", replica: ReplicaStore
                  ) -> Tuple[Dict[int, bytes], int, Set[int]]:
    """Records of the current persistent version the replica lacks.

    Returns ``(records, root_handle, reachable)`` — the reachable set is
    computed exactly once here and reused by the caller for replica GC
    (recomputing it per ship was a measurable waste; the regression test
    counts the traversals).  Raises when nothing was persisted.
    """
    root = pmo.nvbm.roots.get(SLOT_PREV)
    if root == NULL_HANDLE:
        raise RecoveryError("nothing persisted yet; no delta to replicate")
    reachable = pmo.reachable_from(root)
    delta = {
        h: pmo.nvbm.read(h)
        for h in reachable
        if h not in replica.records
    }
    return delta, root, reachable


def ship_delta(pmo: "PMOctree", replica: ReplicaStore) -> int:
    """Apply the delta to the replica directly; returns bytes shipped.

    This is the *perfect-network* path (one process, no loss): the caller
    charges the returned byte count to its network model.  Over a lossy
    network use :class:`ReplicaSession`, which adds sequencing, acks and
    retry/backoff on top of the same delta computation.
    """
    delta, root, reachable = compute_delta(pmo, replica)
    replica.records.update(delta)
    replica.root = root
    for h in list(replica.records):
        if h not in reachable:
            del replica.records[h]
    replica.applied_seq += 1
    return len(delta) * OCTANT_RECORD_SIZE


# --------------------------------------------------------------------- protocol


@dataclass(frozen=True)
class RetryPolicy:
    """Retry/backoff tunables for one replication session.

    All times are simulated nanoseconds; every wait is charged to the
    session clock so retry behaviour is visible in the makespan, not
    hidden in wall time.
    """

    ack_timeout_ns: float = 20_000.0
    base_backoff_ns: float = 50_000.0
    backoff_factor: float = 2.0
    max_retries: int = 8

    def backoff_ns(self, attempt: int) -> float:
        """Backoff charged after the ``attempt``-th failed try (1-based)."""
        return self.base_backoff_ns * self.backoff_factor ** (attempt - 1)


@dataclass
class ShipReport:
    """What one acknowledged ship actually took."""

    seq: int
    bytes_shipped: int
    records: int
    attempts: int
    resynced: bool
    duplicates_ignored: int
    wait_ns: float  #: timeout + backoff time charged to the sim clock


@dataclass
class SessionStats:
    ships: int = 0
    retries: int = 0
    resyncs: int = 0
    acks_lost: int = 0
    deltas_lost: int = 0
    duplicates_ignored: int = 0
    bytes_shipped: int = 0
    wait_ns: float = 0.0


class PerfectTransport:
    """Loss-free transport (single-process tests, staging links)."""

    def __init__(self, cost_ns_per_byte: float = 0.0):
        self.cost_ns_per_byte = cost_ns_per_byte

    def send_data(self, nbytes: int) -> Delivery:
        return Delivery(delivered=True, copies=1,
                        cost_ns=nbytes * self.cost_ns_per_byte)

    def send_ack(self) -> Delivery:
        return Delivery(delivered=True, copies=1,
                        cost_ns=ACK_BYTES * self.cost_ns_per_byte)


class FaultyTransport:
    """Host<->peer link over a :class:`FaultyNetwork`.

    Data messages travel host->peer; acks travel peer->host on the
    *reverse* link, so asymmetric fault plans behave correctly.
    """

    def __init__(self, network: FaultyNetwork, host_rank: int,
                 peer_rank: int, clock: Optional[SimClock] = None):
        self.network = network
        self.host_rank = host_rank
        self.peer_rank = peer_rank
        self.clock = clock

    def _now(self) -> float:
        return self.clock.now_ns if self.clock is not None else 0.0

    def send_data(self, nbytes: int) -> Delivery:
        return self.network.send(self.host_rank, self.peer_rank, nbytes,
                                 self._now())

    def send_ack(self) -> Delivery:
        return self.network.send(self.peer_rank, self.host_rank, ACK_BYTES,
                                 self._now())


class ReplicaSession:
    """Sequenced, acknowledged, idempotent delta shipping to one peer.

    Host-side state is volatile (it dies with the host process): the
    monotonic ``next_seq`` and ``peer_root`` — the persistent root the host
    believes the peer holds.  A freshly constructed session therefore
    assumes nothing (``peer_root = NULL``); if the peer's store is actually
    non-empty the first DELTA is classified ``diverged`` and the session
    falls back to a full resync, which is always safe.

    One ``ship()`` = one state-machine run::

        IDLE -> SEND_DELTA -> WAIT_ACK -> DONE
                   ^  |            |
                   |  +- diverged -+--> RESYNC (full records) -> WAIT_ACK
                   +--- timeout: backoff, retry (bounded) ------+

    Every lost delta or lost ack charges ``ack_timeout + backoff`` to the
    simulated clock; exhausting ``max_retries`` raises
    :class:`~repro.errors.ReplicationTimeoutError` — the host's own
    persistent version is unaffected, only remote protection stalls.

    ``break_acks=True`` makes the host ignore every acknowledgement — a
    deliberately broken protocol used to validate that the chaos harness
    detects replication that cannot converge.  Never set it outside tests.
    """

    def __init__(self, pmo: "PMOctree", replica: Optional[ReplicaStore] = None,
                 transport=None, clock: Optional[SimClock] = None,
                 policy: Optional[RetryPolicy] = None,
                 injector: Optional[FailureInjector] = None,
                 break_acks: bool = False):
        self.pmo = pmo
        self.replica = replica if replica is not None else ReplicaStore()
        self.transport = transport or PerfectTransport()
        self.clock = clock if clock is not None else pmo.nvbm.device.clock
        self.policy = policy or RetryPolicy()
        self.injector = injector or pmo.injector
        self.break_acks = break_acks
        self.next_seq = 1
        self.peer_root = NULL_HANDLE
        self.stats = SessionStats()
        #: bound obs handles (attach_obs); None in normal operation
        self._m_ships = None
        self._m_retries = None
        self._m_resyncs = None
        self._m_acks_lost = None
        self._m_deltas_lost = None
        self._m_dups = None
        self._m_bytes = None
        self._m_wait_ns = None
        self._m_attempts = None
        self._obs = None

    def attach_obs(self, obs, peer: str = "peer") -> None:
        """Bind protocol counters from an :class:`repro.obs.Observability`.

        Every :class:`SessionStats` field gets a mirrored counter labeled by
        ``peer`` so multi-session rigs stay distinguishable, plus a histogram
        of attempts-per-acknowledged-ship.
        """
        m = obs.metrics
        self._m_ships = m.counter("replication.ships", peer=peer)
        self._m_retries = m.counter("replication.retries", peer=peer)
        self._m_resyncs = m.counter("replication.resyncs", peer=peer)
        self._m_acks_lost = m.counter("replication.acks_lost", peer=peer)
        self._m_deltas_lost = m.counter("replication.deltas_lost", peer=peer)
        self._m_dups = m.counter("replication.duplicates_ignored", peer=peer)
        self._m_bytes = m.counter("replication.bytes_shipped", peer=peer)
        self._m_wait_ns = m.counter("replication.wait_ns", peer=peer)
        self._m_attempts = m.histogram("replication.ship_attempts",
                                       buckets=(1.0, 2.0, 4.0, 8.0, 16.0),
                                       peer=peer)
        self._obs = obs

    # -- helpers -------------------------------------------------------------

    def _charge(self, ns: float) -> None:
        if ns > 0 and self.clock is not None:
            self.clock.advance(ns, Category.COMM)

    @property
    def protected(self) -> bool:
        """True when the peer holds the host's current persistent version."""
        current = self.pmo.nvbm.roots.get(SLOT_PREV)
        return current != NULL_HANDLE and self.peer_root == current

    # -- the protocol --------------------------------------------------------

    def ship(self) -> ShipReport:
        """Ship the current persistent version until the peer acks it.

        Raises :class:`~repro.errors.ReplicationTimeoutError` after
        ``max_retries`` unacknowledged attempts, and
        :class:`~repro.errors.RecoveryError` when nothing was persisted.
        """
        delta, root, reachable = compute_delta(self.pmo, self.replica)
        if root == self.peer_root and self.replica.root == root:
            # peer already holds this exact version: nothing to ship
            return ShipReport(seq=self.next_seq - 1, bytes_shipped=0,
                              records=0, attempts=0, resynced=False,
                              duplicates_ignored=0, wait_ns=0.0)
        seq = self.next_seq
        base = self.peer_root
        records = delta
        resync = False
        resynced = False
        attempts = 0
        dups = 0
        wait_ns = 0.0
        last_reason = "delta lost"
        while attempts <= self.policy.max_retries:
            attempts += 1
            nbytes = len(records) * OCTANT_RECORD_SIZE + DELTA_HEADER_BYTES
            self.injector.site(sites.REPLICA_SHIP_BEFORE_SEND)
            d = self.transport.send_data(nbytes)
            self._charge(d.cost_ns)
            if d.delivered:
                status = self._peer_receive(seq, base, records, root,
                                            reachable, resync)
                if d.copies > 1:
                    for _ in range(d.copies - 1):
                        second = self._peer_receive(seq, base, records, root,
                                                    reachable, resync)
                        if second == "duplicate":
                            dups += 1
                if status in ("applied", "duplicate"):
                    self.injector.site(sites.REPLICA_SHIP_AFTER_APPLY)
                    ack = self.transport.send_ack()
                    self._charge(ack.cost_ns)
                    if ack.delivered and not self.break_acks:
                        self.injector.site(sites.REPLICA_SHIP_BEFORE_ACK)
                        self.peer_root = root
                        self.next_seq = seq + 1
                        shipped = len(records) * OCTANT_RECORD_SIZE
                        self.stats.ships += 1
                        self.stats.bytes_shipped += shipped
                        self.stats.duplicates_ignored += dups
                        if self._m_ships is not None:
                            self._m_ships.inc()
                            self._m_bytes.inc(shipped)
                            self._m_dups.inc(dups)
                            self._m_attempts.observe(attempts)
                        return ShipReport(
                            seq=seq, bytes_shipped=shipped,
                            records=len(records), attempts=attempts,
                            resynced=resynced, duplicates_ignored=dups,
                            wait_ns=wait_ns,
                        )
                    self.stats.acks_lost += 1
                    if self._m_acks_lost is not None:
                        self._m_acks_lost.inc()
                    last_reason = "ack lost"
                else:  # diverged: switch to a full resync and resend now
                    self.injector.site(sites.REPLICA_RESYNC_BEGIN)
                    resync = resynced = True
                    self.stats.resyncs += 1
                    if self._m_resyncs is not None:
                        self._m_resyncs.inc()
                    records = {h: self.pmo.nvbm.read(h) for h in reachable}
                    continue  # the NACK came back; no timeout to wait out
            else:
                self.stats.deltas_lost += 1
                if self._m_deltas_lost is not None:
                    self._m_deltas_lost.inc()
                last_reason = f"delta lost ({d.reason})" if d.reason \
                    else "delta lost"
            pause = self.policy.ack_timeout_ns + self.policy.backoff_ns(attempts)
            self._charge(pause)
            wait_ns += pause
            self.stats.retries += 1
            self.stats.wait_ns += pause
            if self._m_retries is not None:
                self._m_retries.inc()
                self._m_wait_ns.inc(pause)
        raise ReplicationTimeoutError(seq, attempts, last_reason)

    def _peer_receive(self, seq: int, base: int, records: Dict[int, bytes],
                      root: int, reachable: Set[int], resync: bool) -> str:
        """Deliver one DELTA/RESYNC message to the peer store."""
        if resync:
            status = self.replica.classify(seq, base, root)
            if status == "duplicate":
                return "duplicate"
            self.replica.force_sync(seq, records, root)
            return "applied"
        return self.replica.apply_delta(seq, base, records, root, reachable)


def restore_from_replica(replica: ReplicaStore, dram: MemoryArena,
                         nvbm: MemoryArena, dim: int = 2,
                         config: Optional[PMOctreeConfig] = None,
                         injector: Optional[FailureInjector] = None
                         ) -> "PMOctree":
    """Materialise a replica into fresh arenas on a replacement node.

    Every record is re-allocated in the new NVBM arena and its parent/child
    handles are swizzled through the old->new translation table; then the
    normal restore path takes over.
    """
    from repro.core.recovery import attach_and_restore

    if replica.root == NULL_HANDLE or not replica.records:
        raise RecoveryError("replica is empty; cannot recover from it")
    translation: Dict[int, int] = {
        old: nvbm.alloc() for old in replica.records
    }

    def swizzle(handle: int) -> int:
        if handle == NULL_HANDLE:
            return NULL_HANDLE
        # Pointers into lost DRAM or to records outside the replica cannot
        # be followed on the new node; recovery never needs them.
        return translation.get(handle, NULL_HANDLE)

    for old, data in replica.records.items():
        rec = unpack_record(data)
        rec.parent = swizzle(rec.parent)
        rec.children = [swizzle(c) for c in rec.children]
        # pmlint: allow-direct-write — every target slot was freshly
        # allocated above; nothing persistent can reach it yet.
        # pmlint: allow[raw-write]: materialising a replica record fills
        # every byte of a just-allocated slot — there is no smaller field
        # set to store.
        nvbm.write_octant(translation[old], rec)
    nvbm.flush()
    if injector is not None:
        injector.site(sites.REPLICA_BEFORE_PUBLISH)
    new_root = translation[replica.root]
    nvbm.roots.set(SLOT_PREV, new_root)
    return attach_and_restore(dram, nvbm, dim=dim, config=config,
                              injector=injector)
