"""Configuration objects: device characteristics, cluster and network specs.

The numeric defaults come straight from the paper:

* Table 2 — DRAM 60 ns read / 60 ns write, endurance > 1e16 writes/bit;
  NVBM 100 ns read / 150 ns write, endurance 1e6–1e8 writes/bit.
* §5.1 — Titan: 16-core AMD Opteron 6274 per node, 32 GB DRAM per node,
  Gemini interconnect.

Network numbers for Gemini are public approximations (the paper does not
give them): ~1.5 µs MPI latency, ~6 GB/s injection bandwidth per node.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

#: Size in bytes of one packed octant record in an arena (see
#: :mod:`repro.nvbm.records`).
OCTANT_RECORD_SIZE = 128

#: CPU cache-line size used by the latency model: each touched line of a
#: record costs one device access.
CACHE_LINE_SIZE = 64

KB = 1024
MB = 1024 * KB
GB = 1024 * MB


@dataclass(frozen=True)
class DeviceSpec:
    """Latency/endurance characteristics of one memory technology."""

    name: str
    read_latency_ns: float
    write_latency_ns: float
    endurance_writes: float  #: per-cell write budget before wear-out
    volatile: bool

    def scaled(self, factor: float) -> "DeviceSpec":
        """Return a spec with both latencies multiplied by ``factor``.

        Used by sensitivity/ablation benches that explore slower or faster
        NVBM parts than Table 2's defaults.
        """
        return replace(
            self,
            read_latency_ns=self.read_latency_ns * factor,
            write_latency_ns=self.write_latency_ns * factor,
        )


#: Table 2, DRAM column.
DRAM_SPEC = DeviceSpec(
    name="DRAM",
    read_latency_ns=60.0,
    write_latency_ns=60.0,
    endurance_writes=1e16,
    volatile=True,
)

#: Table 2, NVBM column (write latency 2.5x DRAM as §1 states).
NVBM_SPEC = DeviceSpec(
    name="NVBM",
    read_latency_ns=100.0,
    write_latency_ns=150.0,
    endurance_writes=1e7,  # midpoint of 1e6 - 1e8
    volatile=False,
)


@dataclass(frozen=True)
class BlockDeviceSpec:
    """A page-granular storage device behind an I/O bus (for the baselines)."""

    name: str
    page_size: int
    read_latency_us: float  #: fixed per-page access latency
    write_latency_us: float
    bandwidth_gbps: float  #: sustained streaming bandwidth, GB/s


#: Spinning disk (what Etree was designed for).
DISK_SPEC = BlockDeviceSpec(
    name="HDD", page_size=4 * KB, read_latency_us=5000.0,
    write_latency_us=5000.0, bandwidth_gbps=0.15,
)

#: NVBM exposed behind a filesystem interface (§5.1: Etree octants are
#: "stored in NVBM and accessed via file-system interface").  Per-page
#: latency is the software-stack overhead of the filesystem path (a DAX-
#: style pmem filesystem, ~1 us per page op); the medium itself is fast.
NVBM_FS_SPEC = BlockDeviceSpec(
    name="NVBM-fs", page_size=4 * KB, read_latency_us=0.8,
    write_latency_us=1.0, bandwidth_gbps=8.0,
)

#: Shared parallel filesystem for in-core snapshots in the recovery study.
PFS_SPEC = BlockDeviceSpec(
    name="PFS", page_size=1 * MB, read_latency_us=500.0,
    write_latency_us=800.0, bandwidth_gbps=2.0,
)


@dataclass(frozen=True)
class NetworkSpec:
    """Point-to-point cost model for the interconnect: ``t = latency + bytes/bw``."""

    name: str
    latency_us: float
    bandwidth_gbps: float

    def transfer_ns(self, nbytes: int) -> float:
        """Time in ns to move ``nbytes`` point-to-point."""
        if nbytes <= 0:
            return 0.0
        return self.latency_us * 1e3 + nbytes / (self.bandwidth_gbps * 1e9) * 1e9


#: Titan's Gemini 3-D torus (approximate public numbers).
GEMINI_SPEC = NetworkSpec(name="Gemini", latency_us=1.5, bandwidth_gbps=6.0)

#: Kamiak's 56 Gb/s InfiniBand (§5.6).
INFINIBAND_SPEC = NetworkSpec(name="InfiniBand-FDR", latency_us=1.0, bandwidth_gbps=7.0)


@dataclass(frozen=True)
class ClusterSpec:
    """Node-level description of the machine the simulator models."""

    name: str
    cores_per_node: int
    dram_per_node: int  #: bytes
    nvbm_per_node: int  #: bytes
    network: NetworkSpec
    dram: DeviceSpec = DRAM_SPEC
    nvbm: DeviceSpec = NVBM_SPEC


TITAN = ClusterSpec(
    name="Titan",
    cores_per_node=16,
    dram_per_node=32 * GB,
    nvbm_per_node=128 * GB,
    network=GEMINI_SPEC,
)

KAMIAK = ClusterSpec(
    name="Kamiak",
    cores_per_node=20,
    dram_per_node=64 * GB,
    nvbm_per_node=128 * GB,
    network=INFINIBAND_SPEC,
)


@dataclass(frozen=True)
class PMOctreeConfig:
    """Tunables of the PM-octree algorithms (§3).

    ``dram_capacity_octants`` bounds the C0 tree; ``threshold_dram`` /
    ``threshold_nvbm`` are the free-space fractions below which eviction
    merging / on-demand GC trigger; ``t_transform`` is the Ratio_access
    threshold for a layout transformation; ``n_sample_max`` caps the
    feature-directed sample size (``N_sample = min(100, size)`` in §3.3);
    ``max_inflight_epochs`` bounds the asynchronous persist pipeline's
    in-flight window (0 = synchronous stop-the-world persist, the
    byte-identical legacy behaviour; >= 1 enables background epoch drains
    with backpressure, see :mod:`repro.core.pipeline`).
    """

    dram_capacity_octants: int = 4096
    nvbm_capacity_octants: int = 1 << 20
    threshold_dram: float = 0.10
    threshold_nvbm: float = 0.10
    t_transform: float = 1.5
    n_sample_max: int = 100
    replication: bool = False
    max_inflight_epochs: int = 0
    seed: int = 2017


@dataclass
class SolverConfig:
    """Parameters of the droplet-ejection workload (§5.1).

    The domain is a unit box containing a liquid jet emerging from a nozzle;
    a Rayleigh-Plateau perturbation grows until the jet pinches off into
    droplets.  ``min_level``/``max_level`` bound the adaptive resolution,
    mirroring the paper's four-orders-of-magnitude scale separation in a
    form a simulator can afford.
    """

    dim: int = 2
    min_level: int = 2
    max_level: int = 7
    nozzle_radius: float = 0.06
    #: Protrusion of the jet at t=0 — tall enough that the coarse-level
    #: interface sampling sees it from the very first adaptation pass.
    initial_tip: float = 0.15
    jet_speed: float = 1.0
    perturbation_amplitude: float = 0.25
    perturbation_wavelength: float = 0.22
    breakup_time: float = 0.55
    #: When the nozzle stops feeding; droplets emitted before it continue to
    #: rise and leave the domain, after which the mesh goes quiescent (the
    #: high-overlap regime of Fig 3).  inf = eject forever.
    shutoff_time: float = float("inf")
    dt: float = 0.01
    interface_band: float = 0.5  #: refine within this many cell-widths of the interface
    seed: int = 2017
