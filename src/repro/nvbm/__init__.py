"""NVBM emulation substrate.

The paper emulates NVBM by adding RDTSCP spin-loop delays to loads/stores on
real DRAM (§5.1).  This package is the software analogue: every octant-record
access goes through a :class:`~repro.nvbm.arena.MemoryArena` whose
:class:`~repro.nvbm.device.MemoryDevice` advances a simulated clock by the
Table-2 latencies and counts accesses for endurance accounting.  Unlike the
paper's emulator, the arena also models the *volatile CPU write-back cache*:
stores that were never flushed are dropped — or torn at cache-line
granularity — when a crash is injected, so the consistency claims of
PM-octree are exercised for real instead of assumed.
"""

from repro.nvbm.clock import Category, SimClock
from repro.nvbm.device import MemoryDevice
from repro.nvbm.records import (
    FLAG_DELETED,
    FLAG_LEAF,
    NULL_HANDLE,
    OctantRecord,
    pack_record,
    unpack_record,
)
from repro.nvbm.pointers import (
    ARENA_DRAM,
    ARENA_NVBM,
    arena_of,
    index_of,
    is_dram,
    is_null,
    is_nvbm,
    make_handle,
)
from repro.nvbm.allocator import RecordAllocator
from repro.nvbm.arena import MemoryArena, RootSlots
from repro.nvbm import sites
from repro.nvbm.failure import (
    CrashPlan,
    FailureInjector,
    UnknownCrashSiteWarning,
)

__all__ = [
    "ARENA_DRAM",
    "ARENA_NVBM",
    "Category",
    "CrashPlan",
    "FailureInjector",
    "UnknownCrashSiteWarning",
    "sites",
    "FLAG_DELETED",
    "FLAG_LEAF",
    "MemoryArena",
    "MemoryDevice",
    "NULL_HANDLE",
    "OctantRecord",
    "RecordAllocator",
    "RootSlots",
    "SimClock",
    "arena_of",
    "index_of",
    "is_dram",
    "is_null",
    "is_nvbm",
    "make_handle",
    "pack_record",
    "unpack_record",
]
