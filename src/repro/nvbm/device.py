"""Memory-device latency and wear model.

A :class:`MemoryDevice` does no storage itself — it is the *meter* through
which an arena charges simulated time and counts accesses.  The latency model
follows the paper's emulator: a fixed per-access latency (Table 2), charged
once per cache line touched, which is how a CPU actually issues the traffic.
"""

from __future__ import annotations

import math
import zlib
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Dict, Iterator, Optional, Set

import numpy as np

from repro.config import CACHE_LINE_SIZE, OCTANT_RECORD_SIZE, DeviceSpec
from repro.errors import UncorrectableError
from repro.nvbm.clock import Category, SimClock

#: Cache lines per octant record — wear and media faults are tracked at this
#: granularity (a *global line id* is ``slot * LINES_PER_RECORD + line``).
LINES_PER_RECORD = OCTANT_RECORD_SIZE // CACHE_LINE_SIZE


def lines_spanned(offset: int, nbytes: int) -> int:
    """Cache lines the byte range ``[offset, offset + nbytes)`` touches.

    This is what a CPU actually pays for a field access: a 1-byte flag at
    offset 9 costs one line, a 32-byte payload at offset 16 costs one line,
    a full 128-byte record costs two.
    """
    if nbytes <= 0:
        return 1
    first = offset // CACHE_LINE_SIZE
    last = (offset + nbytes - 1) // CACHE_LINE_SIZE
    return last - first + 1


@dataclass
class DeviceStats:
    """Raw access counters for one device."""

    reads: int = 0
    writes: int = 0
    bytes_read: int = 0
    bytes_written: int = 0
    lines_read: int = 0
    lines_written: int = 0

    @property
    def lines_touched(self) -> int:
        return self.lines_read + self.lines_written

    def merged_with(self, other: "DeviceStats") -> "DeviceStats":
        return DeviceStats(
            reads=self.reads + other.reads,
            writes=self.writes + other.writes,
            bytes_read=self.bytes_read + other.bytes_read,
            bytes_written=self.bytes_written + other.bytes_written,
            lines_read=self.lines_read + other.lines_read,
            lines_written=self.lines_written + other.lines_written,
        )


class MediaFaultModel:
    """Deterministic, seeded model of NVBM media faults surfacing on read.

    The medium itself is no longer assumed perfect: reads of a cache line
    can return an *uncorrectable error* (UE) — the DIMM's internal ECC
    detected corruption it could not fix.  Four mechanisms are modelled,
    each driven purely by the simulated clock and a seeded hash (no
    wall-clock, no ambient ``random``), so a given (seed, access sequence)
    always produces the same faults:

    ``stuck``
        A line from a chaos-supplied plan (:meth:`plant_stuck`) fails every
        read until the slot is retired.  Rewrites do not help.
    ``rot``
        Background bit-rot.  Each line gets a per-generation exponential
        age-to-failure deadline drawn from ``rot_mtbf_ns``; once the sim
        clock passes it, reads fail until the line is rewritten (a write
        refreshes the cells and redraws the deadline).  Chaos can also
        plant an immediate rot (:meth:`plant_rot`).
    ``wear``
        Endurance exhaustion.  Each line draws a deterministic write-count
        limit around ``wear_fraction * spec.endurance_writes``; once its
        tracked wear crosses the limit, reads fail permanently — the line
        must be retired.
    ``transient``
        A one-off upset with probability ``transient_rate`` per read; the
        next read of the same line succeeds (bounded re-read clears it).

    All mechanisms default *off* (rate/fraction 0.0 and nothing planted);
    a constructed-but-idle model injects nothing.
    """

    def __init__(self, seed: int, rot_mtbf_ns: float = 0.0,
                 wear_fraction: float = 0.0, transient_rate: float = 0.0):
        self.seed = int(seed)
        self.rot_mtbf_ns = float(rot_mtbf_ns)
        self.wear_fraction = float(wear_fraction)
        self.transient_rate = float(transient_rate)
        self._stuck: Set[int] = set()
        self._rotted: Set[int] = set()   # chaos-planted, cleared by rewrite
        self._gen: Dict[int, int] = {}   # rewrite generation per line
        self._born_ns: Dict[int, float] = {}
        self._reads: Dict[int, int] = {}
        self._endurance = 0
        self._attach_ns = 0.0

    def _u(self, tag: str, *ints) -> float:
        """Deterministic uniform in [0, 1) from the seed and integer keys."""
        key = f"{tag}:{self.seed}:" + ":".join(str(i) for i in ints)
        return zlib.crc32(key.encode("ascii")) / 2**32

    # -- chaos plan hooks --------------------------------------------------

    def plant_stuck(self, gline: int) -> None:
        """Mark a global line as stuck: every read fails until retirement."""
        self._stuck.add(int(gline))

    def plant_rot(self, gline: int) -> None:
        """Rot a global line immediately (cleared by the next rewrite)."""
        self._rotted.add(int(gline))

    # -- device callbacks --------------------------------------------------

    def note_write(self, gline: int, now_ns: float) -> None:
        """A metered write refreshed this line's cells."""
        self._rotted.discard(gline)
        self._gen[gline] = self._gen.get(gline, 0) + 1
        self._born_ns[gline] = now_ns

    def check(self, gline: int, now_ns: float, wear: int) -> Optional[str]:
        """Return the fault kind a read of ``gline`` hits now, or ``None``."""
        if gline in self._stuck:
            return "stuck"
        if gline in self._rotted:
            return "rot"
        if self.wear_fraction > 0.0 and self._endurance > 0:
            limit = self._endurance * self.wear_fraction
            limit *= 1.0 + 0.5 * self._u("wl", gline)
            if wear > limit:
                return "wear"
        if self.rot_mtbf_ns > 0.0:
            gen = self._gen.get(gline, 0)
            u = self._u("rot", gline, gen)
            deadline = self._born_ns.get(gline, self._attach_ns)
            deadline += self.rot_mtbf_ns * -math.log(1.0 - u)
            if now_ns >= deadline:
                return "rot"
        if self.transient_rate > 0.0:
            n = self._reads.get(gline, 0)
            self._reads[gline] = n + 1
            if self._u("tr", gline, n) < self.transient_rate:
                return "transient"
        return None


class _WriteBatch:
    """Accumulated charges for one :meth:`MemoryDevice.batched_writes` scope."""

    __slots__ = ("count", "nbytes", "lines", "clock_ns", "sink_ns", "sink",
                 "line_ids")

    def __init__(self):
        self.count = 0
        self.nbytes = 0
        self.lines = 0
        self.clock_ns = 0.0
        self.sink_ns = 0.0
        self.sink = None
        self.line_ids: list = []


class MemoryDevice:
    """Charges a :class:`SimClock` for accesses and tracks per-line wear.

    Parameters
    ----------
    spec:
        Latency/endurance characteristics (e.g. :data:`repro.config.NVBM_SPEC`).
    clock:
        The simulated clock to charge.  A rank's arenas share one clock.
    track_wear:
        When true, keeps a per-cache-line write counter so benches can report
        endurance headroom (writes/line vs ``spec.endurance_writes``) and the
        media-fault model can trigger wear-out faults.  Wear is indexed by
        *global line id* (``slot * LINES_PER_RECORD + line``): a multi-line
        write ages every line it spans, not just the record's first.
    """

    def __init__(self, spec: DeviceSpec, clock: SimClock, track_wear: bool = True):
        self.spec = spec
        self.clock = clock
        self.stats = DeviceStats()
        self.track_wear = track_wear
        #: attached MediaFaultModel, or None (the common, zero-overhead case)
        self.fault_model: Optional[MediaFaultModel] = None
        self._wear = np.zeros(0, dtype=np.int64)
        self._category = Category.MEM_DRAM if spec.volatile else Category.MEM_NVBM
        #: depth of nested unmetered() sections; >0 suppresses all charging
        self._unmetered = 0
        #: active deferred-writes sink, or None.  When set, the *clock*
        #: charge of each write is redirected into the sink instead of
        #: advancing the clock — stats, wear, obs and the fault model still
        #: update, because the stores really happen (write-back model); only
        #: their device time is deferred, to be drained later as background
        #: work by the epoch pipeline.  Reads stay synchronous.
        self._deferred_sink = None
        #: active batched-writes accumulator, or None (see batched_writes)
        self._write_batch = None
        # bound metric handles (attach_obs); None keeps the hot path a
        # single attribute test per access
        self._m_reads = None
        self._m_writes = None
        self._m_bytes_read = None
        self._m_bytes_written = None
        self._m_lines = None

    def attach_obs(self, obs, device: str = None) -> None:
        """Bind access counters from an :class:`repro.obs.Observability`."""
        label = device if device is not None else self.spec.name
        m = obs.metrics
        self._m_reads = m.counter("device.reads", device=label)
        self._m_writes = m.counter("device.writes", device=label)
        self._m_bytes_read = m.counter("device.bytes_read", device=label)
        self._m_bytes_written = m.counter("device.bytes_written", device=label)
        self._m_lines = m.counter("device.lines_touched", device=label)

    def _lines(self, nbytes: int) -> int:
        return max(1, -(-nbytes // CACHE_LINE_SIZE))

    @contextmanager
    def unmetered(self) -> Iterator[None]:
        """Suppress all charging (clock, stats, wear, obs) inside the block.

        This is the *inspection* mode: structural queries such as
        ``overlap_ratio()`` or ``check_invariants()`` read the same records
        the application does, but they are measurement probes, not simulated
        work — metering them would make every metrics sample an
        observer-effect bug.  Nesting is allowed; writes inside an unmetered
        block still land (the data path is unaffected, only the meter is).
        """
        self._unmetered += 1
        try:
            yield
        finally:
            self._unmetered -= 1

    @contextmanager
    def deferred_writes(self, sink) -> Iterator[None]:
        """Redirect write *time* into ``sink`` for the duration of the block.

        ``sink`` is any object with a mutable ``ns`` attribute (the epoch
        pipeline passes a :class:`~repro.core.pipeline.DrainCost`).  Inside
        the block each metered write accumulates ``lines * write_latency_ns``
        onto ``sink.ns`` instead of advancing the clock; everything else
        about the write (stats, wear, obs counters, fault-model refresh) is
        unchanged.  Reads are unaffected — a compute-path read of a cached
        record is synchronous whether or not its store has drained.

        Nesting replaces the sink for the inner block and restores the
        outer one on exit.
        """
        prev = self._deferred_sink
        self._deferred_sink = sink
        try:
            yield
        finally:
            self._deferred_sink = prev

    @contextmanager
    def batched_writes(self) -> Iterator[None]:
        """Aggregate the device charges of every metered write in the block.

        The SoA write-back path wraps its scatter loop in this scope: each
        ``on_write`` inside it accumulates its count/bytes/lines, its
        latency (``lines * write_latency_ns``, routed to the active
        deferred sink or the clock exactly as the unbatched write would
        be), and its spanned global line ids — then one commit at scope
        exit applies the summed stats, a single clock advance (or sink
        add), one obs increment per counter, and a vectorised wear update.
        All latencies are integer nanoseconds far below 2**53, so the
        single summed advance is bit-identical to the per-write advance
        sequence; totals, wear histograms and fault-model refreshes are
        order-free.  The data path is untouched — stores still land
        immediately, so crash/tear semantics are unchanged.  The only
        observable drift is *within* the scope: the clock lags the scalar
        trajectory until commit, which matters only to a rot-enabled fault
        model sampling ``now_ns`` mid-batch (see docs/performance.md).

        Nested scopes join the outermost batch.
        """
        if self._write_batch is not None:
            yield
            return
        batch = _WriteBatch()
        self._write_batch = batch
        try:
            yield
        finally:
            self._write_batch = None
            self._commit_write_batch(batch)

    def _commit_write_batch(self, b: _WriteBatch) -> None:
        if not b.count:
            return
        self.stats.writes += b.count
        self.stats.bytes_written += b.nbytes
        self.stats.lines_written += b.lines
        if b.sink is not None and b.sink_ns:
            b.sink.ns += b.sink_ns
        if b.clock_ns:
            self.clock.advance(b.clock_ns, self._category)
        if self._m_writes is not None:
            self._m_writes.inc(b.count)
            self._m_bytes_written.inc(b.nbytes)
            self._m_lines.inc(b.lines)
        if self.track_wear and b.line_ids:
            ids = np.asarray(b.line_ids, dtype=np.int64)
            end = int(ids.max()) + 1
            if end > self._wear.size:
                grown = np.zeros(max(end, 2 * self._wear.size, 1024),
                                 dtype=np.int64)
                grown[: self._wear.size] = self._wear
                self._wear = grown
            np.add.at(self._wear, ids, 1)
            if self.fault_model is not None:
                now = self.clock.now_ns
                for g in b.line_ids:
                    self.fault_model.note_write(g, now)

    def on_read_batch(self, count: int, nbytes: int, lines: int) -> None:
        """Charge ``count`` reads totalling ``nbytes`` bytes / ``lines``
        cache lines in one call.

        Semantically the sum of ``count`` :meth:`on_read` calls: identical
        stats totals, one clock advance of the summed latency (exact —
        every per-read charge is an integer number of nanoseconds, so the
        float sum associates), one obs increment per counter.
        """
        if self._unmetered or count <= 0:
            return
        self.stats.reads += count
        self.stats.bytes_read += nbytes
        self.stats.lines_read += lines
        self.clock.advance(lines * self.spec.read_latency_ns, self._category)
        if self._m_reads is not None:
            self._m_reads.inc(count)
            self._m_bytes_read.inc(nbytes)
            self._m_lines.inc(lines)

    def on_read(self, nbytes: int, lines: int = 0) -> None:
        """Charge one read of ``nbytes`` (one latency per cache line).

        ``lines`` overrides the line count for field-granular accesses whose
        spanned lines differ from ``ceil(nbytes / 64)`` (an unaligned field
        can straddle a boundary; a sub-line field still costs a full line).
        """
        if self._unmetered:
            return
        if lines <= 0:
            lines = self._lines(nbytes)
        self.stats.reads += 1
        self.stats.bytes_read += nbytes
        self.stats.lines_read += lines
        self.clock.advance(lines * self.spec.read_latency_ns, self._category)
        if self._m_reads is not None:
            self._m_reads.inc()
            self._m_bytes_read.inc(nbytes)
            self._m_lines.inc(lines)

    def on_write(self, nbytes: int, slot: int = -1, lines: int = 0,
                 line0: int = 0) -> None:
        """Charge one write of ``nbytes``; age every spanned line of ``slot``.

        ``line0`` is the first record-relative cache line the write touches
        (0 for whole-record writes; field writes pass ``offset // 64``).
        Each of the ``lines`` spanned lines gets its own wear bump — a
        2-line record write ages both lines, a 1-byte flag flip only the
        line holding it.
        """
        if self._unmetered:
            return
        if lines <= 0:
            lines = self._lines(nbytes)
        if self._write_batch is not None:
            b = self._write_batch
            b.count += 1
            b.nbytes += nbytes
            b.lines += lines
            ns = lines * self.spec.write_latency_ns
            sink = self._deferred_sink
            if sink is not None:
                if b.sink is not None and b.sink is not sink:
                    b.sink.ns += b.sink_ns
                    b.sink_ns = 0.0
                b.sink = sink
                b.sink_ns += ns
            else:
                b.clock_ns += ns
            if self.track_wear and slot >= 0:
                base = slot * LINES_PER_RECORD + line0
                b.line_ids.extend(range(base, base + lines))
            return
        self.stats.writes += 1
        self.stats.bytes_written += nbytes
        self.stats.lines_written += lines
        if self._deferred_sink is not None:
            self._deferred_sink.ns += lines * self.spec.write_latency_ns
        else:
            self.clock.advance(lines * self.spec.write_latency_ns,
                               self._category)
        if self._m_writes is not None:
            self._m_writes.inc()
            self._m_bytes_written.inc(nbytes)
            self._m_lines.inc(lines)
        if self.track_wear and slot >= 0:
            base = slot * LINES_PER_RECORD + line0
            end = base + lines
            if end > self._wear.size:
                grown = np.zeros(max(end, 2 * self._wear.size, 1024), dtype=np.int64)
                grown[: self._wear.size] = self._wear
                self._wear = grown
            self._wear[base:end] += 1
            if self.fault_model is not None:
                now = self.clock.now_ns
                for g in range(base, end):
                    self.fault_model.note_write(g, now)

    # -- media faults ------------------------------------------------------

    def attach_fault_model(self, model: MediaFaultModel) -> None:
        """Arm a media-fault model against this device's lines."""
        model._endurance = self.spec.endurance_writes
        model._attach_ns = self.clock.now_ns
        self.fault_model = model

    def check_media(self, slot: int, line0: int = 0, lines: int = 0) -> None:
        """Raise :class:`UncorrectableError` if a metered read of ``slot``'s
        lines ``[line0, line0 + lines)`` hits a media fault.

        Free when no fault model is attached (single attribute test) and
        skipped entirely inside :meth:`unmetered` inspection blocks —
        measurement probes never trip media faults.
        """
        fm = self.fault_model
        if fm is None or self._unmetered:
            return
        if lines <= 0:
            lines = LINES_PER_RECORD
        base = slot * LINES_PER_RECORD + line0
        now = self.clock.now_ns
        for g in range(base, base + lines):
            wear = int(self._wear[g]) if g < self._wear.size else 0
            kind = fm.check(g, now, wear)
            if kind is not None:
                raise UncorrectableError(self.spec.name, slot, kind, lines=(g,))

    # -- wear reporting ----------------------------------------------------

    def wear_max(self) -> int:
        """Highest write count seen on any single cache line."""
        return int(self._wear.max()) if self._wear.size else 0

    def wear_total(self) -> int:
        return int(self._wear.sum()) if self._wear.size else 0

    def wear_headroom(self) -> float:
        """Fraction of the endurance budget left on the most-worn line."""
        if self.spec.endurance_writes <= 0:
            return 0.0
        return 1.0 - self.wear_max() / self.spec.endurance_writes

    def reset_stats(self) -> None:
        self.stats = DeviceStats()
        self._wear = np.zeros(0, dtype=np.int64)
