"""Memory-device latency and wear model.

A :class:`MemoryDevice` does no storage itself — it is the *meter* through
which an arena charges simulated time and counts accesses.  The latency model
follows the paper's emulator: a fixed per-access latency (Table 2), charged
once per cache line touched, which is how a CPU actually issues the traffic.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass
from typing import Iterator

import numpy as np

from repro.config import CACHE_LINE_SIZE, DeviceSpec
from repro.nvbm.clock import Category, SimClock


def lines_spanned(offset: int, nbytes: int) -> int:
    """Cache lines the byte range ``[offset, offset + nbytes)`` touches.

    This is what a CPU actually pays for a field access: a 1-byte flag at
    offset 9 costs one line, a 32-byte payload at offset 16 costs one line,
    a full 128-byte record costs two.
    """
    if nbytes <= 0:
        return 1
    first = offset // CACHE_LINE_SIZE
    last = (offset + nbytes - 1) // CACHE_LINE_SIZE
    return last - first + 1


@dataclass
class DeviceStats:
    """Raw access counters for one device."""

    reads: int = 0
    writes: int = 0
    bytes_read: int = 0
    bytes_written: int = 0
    lines_read: int = 0
    lines_written: int = 0

    @property
    def lines_touched(self) -> int:
        return self.lines_read + self.lines_written

    def merged_with(self, other: "DeviceStats") -> "DeviceStats":
        return DeviceStats(
            reads=self.reads + other.reads,
            writes=self.writes + other.writes,
            bytes_read=self.bytes_read + other.bytes_read,
            bytes_written=self.bytes_written + other.bytes_written,
            lines_read=self.lines_read + other.lines_read,
            lines_written=self.lines_written + other.lines_written,
        )


class MemoryDevice:
    """Charges a :class:`SimClock` for accesses and tracks per-slot wear.

    Parameters
    ----------
    spec:
        Latency/endurance characteristics (e.g. :data:`repro.config.NVBM_SPEC`).
    clock:
        The simulated clock to charge.  A rank's arenas share one clock.
    track_wear:
        When true, keeps a per-record write counter so benches can report
        endurance headroom (writes/slot vs ``spec.endurance_writes``).
    """

    def __init__(self, spec: DeviceSpec, clock: SimClock, track_wear: bool = True):
        self.spec = spec
        self.clock = clock
        self.stats = DeviceStats()
        self.track_wear = track_wear
        self._wear = np.zeros(0, dtype=np.int64)
        self._category = Category.MEM_DRAM if spec.volatile else Category.MEM_NVBM
        #: depth of nested unmetered() sections; >0 suppresses all charging
        self._unmetered = 0
        # bound metric handles (attach_obs); None keeps the hot path a
        # single attribute test per access
        self._m_reads = None
        self._m_writes = None
        self._m_bytes_read = None
        self._m_bytes_written = None
        self._m_lines = None

    def attach_obs(self, obs, device: str = None) -> None:
        """Bind access counters from an :class:`repro.obs.Observability`."""
        label = device if device is not None else self.spec.name
        m = obs.metrics
        self._m_reads = m.counter("device.reads", device=label)
        self._m_writes = m.counter("device.writes", device=label)
        self._m_bytes_read = m.counter("device.bytes_read", device=label)
        self._m_bytes_written = m.counter("device.bytes_written", device=label)
        self._m_lines = m.counter("device.lines_touched", device=label)

    def _lines(self, nbytes: int) -> int:
        return max(1, -(-nbytes // CACHE_LINE_SIZE))

    @contextmanager
    def unmetered(self) -> Iterator[None]:
        """Suppress all charging (clock, stats, wear, obs) inside the block.

        This is the *inspection* mode: structural queries such as
        ``overlap_ratio()`` or ``check_invariants()`` read the same records
        the application does, but they are measurement probes, not simulated
        work — metering them would make every metrics sample an
        observer-effect bug.  Nesting is allowed; writes inside an unmetered
        block still land (the data path is unaffected, only the meter is).
        """
        self._unmetered += 1
        try:
            yield
        finally:
            self._unmetered -= 1

    def on_read(self, nbytes: int, lines: int = 0) -> None:
        """Charge one read of ``nbytes`` (one latency per cache line).

        ``lines`` overrides the line count for field-granular accesses whose
        spanned lines differ from ``ceil(nbytes / 64)`` (an unaligned field
        can straddle a boundary; a sub-line field still costs a full line).
        """
        if self._unmetered:
            return
        if lines <= 0:
            lines = self._lines(nbytes)
        self.stats.reads += 1
        self.stats.bytes_read += nbytes
        self.stats.lines_read += lines
        self.clock.advance(lines * self.spec.read_latency_ns, self._category)
        if self._m_reads is not None:
            self._m_reads.inc()
            self._m_bytes_read.inc(nbytes)
            self._m_lines.inc(lines)

    def on_write(self, nbytes: int, slot: int = -1, lines: int = 0) -> None:
        """Charge one write of ``nbytes``; bump wear for ``slot`` if tracked."""
        if self._unmetered:
            return
        if lines <= 0:
            lines = self._lines(nbytes)
        self.stats.writes += 1
        self.stats.bytes_written += nbytes
        self.stats.lines_written += lines
        self.clock.advance(lines * self.spec.write_latency_ns, self._category)
        if self._m_writes is not None:
            self._m_writes.inc()
            self._m_bytes_written.inc(nbytes)
            self._m_lines.inc(lines)
        if self.track_wear and slot >= 0:
            if slot >= self._wear.size:
                grown = np.zeros(max(slot + 1, 2 * self._wear.size, 1024), dtype=np.int64)
                grown[: self._wear.size] = self._wear
                self._wear = grown
            self._wear[slot] += 1

    # -- wear reporting ----------------------------------------------------

    def wear_max(self) -> int:
        """Highest write count seen on any single record slot."""
        return int(self._wear.max()) if self._wear.size else 0

    def wear_total(self) -> int:
        return int(self._wear.sum()) if self._wear.size else 0

    def wear_headroom(self) -> float:
        """Fraction of the endurance budget left on the most-worn slot."""
        if self.spec.endurance_writes <= 0:
            return 0.0
        return 1.0 - self.wear_max() / self.spec.endurance_writes

    def reset_stats(self) -> None:
        self.stats = DeviceStats()
        self._wear = np.zeros(0, dtype=np.int64)
