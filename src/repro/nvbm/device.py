"""Memory-device latency and wear model.

A :class:`MemoryDevice` does no storage itself — it is the *meter* through
which an arena charges simulated time and counts accesses.  The latency model
follows the paper's emulator: a fixed per-access latency (Table 2), charged
once per cache line touched, which is how a CPU actually issues the traffic.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.config import CACHE_LINE_SIZE, DeviceSpec
from repro.nvbm.clock import Category, SimClock


@dataclass
class DeviceStats:
    """Raw access counters for one device."""

    reads: int = 0
    writes: int = 0
    bytes_read: int = 0
    bytes_written: int = 0

    def merged_with(self, other: "DeviceStats") -> "DeviceStats":
        return DeviceStats(
            reads=self.reads + other.reads,
            writes=self.writes + other.writes,
            bytes_read=self.bytes_read + other.bytes_read,
            bytes_written=self.bytes_written + other.bytes_written,
        )


class MemoryDevice:
    """Charges a :class:`SimClock` for accesses and tracks per-slot wear.

    Parameters
    ----------
    spec:
        Latency/endurance characteristics (e.g. :data:`repro.config.NVBM_SPEC`).
    clock:
        The simulated clock to charge.  A rank's arenas share one clock.
    track_wear:
        When true, keeps a per-record write counter so benches can report
        endurance headroom (writes/slot vs ``spec.endurance_writes``).
    """

    def __init__(self, spec: DeviceSpec, clock: SimClock, track_wear: bool = True):
        self.spec = spec
        self.clock = clock
        self.stats = DeviceStats()
        self.track_wear = track_wear
        self._wear = np.zeros(0, dtype=np.int64)
        self._category = Category.MEM_DRAM if spec.volatile else Category.MEM_NVBM
        # bound metric handles (attach_obs); None keeps the hot path a
        # single attribute test per access
        self._m_reads = None
        self._m_writes = None
        self._m_bytes_read = None
        self._m_bytes_written = None

    def attach_obs(self, obs, device: str = None) -> None:
        """Bind access counters from an :class:`repro.obs.Observability`."""
        label = device if device is not None else self.spec.name
        m = obs.metrics
        self._m_reads = m.counter("device.reads", device=label)
        self._m_writes = m.counter("device.writes", device=label)
        self._m_bytes_read = m.counter("device.bytes_read", device=label)
        self._m_bytes_written = m.counter("device.bytes_written", device=label)

    def _lines(self, nbytes: int) -> int:
        return max(1, -(-nbytes // CACHE_LINE_SIZE))

    def on_read(self, nbytes: int) -> None:
        """Charge one read of ``nbytes`` (one latency per cache line)."""
        self.stats.reads += 1
        self.stats.bytes_read += nbytes
        self.clock.advance(
            self._lines(nbytes) * self.spec.read_latency_ns, self._category
        )
        if self._m_reads is not None:
            self._m_reads.inc()
            self._m_bytes_read.inc(nbytes)

    def on_write(self, nbytes: int, slot: int = -1) -> None:
        """Charge one write of ``nbytes``; bump wear for ``slot`` if tracked."""
        self.stats.writes += 1
        self.stats.bytes_written += nbytes
        self.clock.advance(
            self._lines(nbytes) * self.spec.write_latency_ns, self._category
        )
        if self._m_writes is not None:
            self._m_writes.inc()
            self._m_bytes_written.inc(nbytes)
        if self.track_wear and slot >= 0:
            if slot >= self._wear.size:
                grown = np.zeros(max(slot + 1, 2 * self._wear.size, 1024), dtype=np.int64)
                grown[: self._wear.size] = self._wear
                self._wear = grown
            self._wear[slot] += 1

    # -- wear reporting ----------------------------------------------------

    def wear_max(self) -> int:
        """Highest write count seen on any single record slot."""
        return int(self._wear.max()) if self._wear.size else 0

    def wear_total(self) -> int:
        return int(self._wear.sum()) if self._wear.size else 0

    def wear_headroom(self) -> float:
        """Fraction of the endurance budget left on the most-worn slot."""
        if self.spec.endurance_writes <= 0:
            return 0.0
        return 1.0 - self.wear_max() / self.spec.endurance_writes

    def reset_stats(self) -> None:
        self.stats = DeviceStats()
        self._wear = np.zeros(0, dtype=np.int64)
