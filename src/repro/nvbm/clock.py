"""Simulated time.

All performance numbers the benchmarks report are *simulated* nanoseconds
accumulated on a :class:`SimClock`, broken down by :class:`Category` so the
harness can reproduce the paper's per-routine breakdowns (Figs 7 and 8b).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Dict, Iterator
from contextlib import contextmanager


class Category(str, Enum):
    """What a slice of simulated time was spent on."""

    MEM_DRAM = "mem_dram"
    MEM_NVBM = "mem_nvbm"
    COMPUTE = "compute"
    COMM = "comm"
    IO = "io"


@dataclass
class SimClock:
    """Accumulates simulated nanoseconds, split by category and by *phase*.

    A phase is an application-level label (``construct``, ``refine``,
    ``balance``, ``partition``, ``solve``, ``persist`` ...) pushed with
    :meth:`phase`; categories are orthogonal (where the time physically
    went).  Both tables are needed: Fig 7/8b break time down by routine,
    Fig 11 reasons about NVBM time specifically.
    """

    now_ns: float = 0.0
    by_category: Dict[str, float] = field(default_factory=dict)
    by_phase: Dict[str, float] = field(default_factory=dict)
    _phase_stack: list = field(default_factory=list)

    def advance(self, ns: float, category: Category = Category.COMPUTE) -> None:
        """Move simulated time forward by ``ns`` nanoseconds."""
        if ns < 0:
            raise ValueError(f"cannot advance clock by negative time: {ns}")
        self.now_ns += ns
        key = category.value
        self.by_category[key] = self.by_category.get(key, 0.0) + ns
        if self._phase_stack:
            ph = self._phase_stack[-1]
            self.by_phase[ph] = self.by_phase.get(ph, 0.0) + ns

    @contextmanager
    def phase(self, name: str) -> Iterator[None]:
        """Attribute all time advanced inside the block to phase ``name``."""
        self._phase_stack.append(name)
        try:
            yield
        finally:
            self._phase_stack.pop()

    def category_ns(self, category: Category) -> float:
        return self.by_category.get(category.value, 0.0)

    def phase_ns(self, name: str) -> float:
        return self.by_phase.get(name, 0.0)

    @property
    def now_s(self) -> float:
        return self.now_ns * 1e-9

    def snapshot(self) -> "ClockSnapshot":
        """Capture current totals; subtract two snapshots to time a region."""
        return ClockSnapshot(
            now_ns=self.now_ns,
            by_category=dict(self.by_category),
            by_phase=dict(self.by_phase),
        )

    def reset(self) -> None:
        self.now_ns = 0.0
        self.by_category.clear()
        self.by_phase.clear()


@dataclass(frozen=True)
class ClockSnapshot:
    """Immutable copy of a clock's totals at one instant."""

    now_ns: float
    by_category: Dict[str, float]
    by_phase: Dict[str, float]

    def elapsed_since(self, earlier: "ClockSnapshot") -> float:
        return self.now_ns - earlier.now_ns
