"""Memory arenas: record-addressed DRAM and NVBM with crash semantics.

An arena is the byte store behind one memory technology on one node.  Octant
records are addressed by *handles* (:mod:`repro.nvbm.pointers`), each access
is charged to the simulated clock by the arena's
:class:`~repro.nvbm.device.MemoryDevice`, and — the part the paper's
emulator could not exercise — stores to a non-volatile arena first land in a
volatile write-back cache whose lines are dropped or torn on a crash.

Crash model
-----------
* A **volatile** arena loses everything: backing store, cache, allocations.
* A **non-volatile** arena keeps its backing store.  Each dirty cached record
  is persisted *per 64-byte line* with independent probability 1/2 (the CPU
  may have evicted any subset of lines, in any order) and the cache is then
  discarded.  Allocator metadata is assumed persistent, as a real NVBM
  allocator's would be; slots holding torn or never-persisted records are
  reclaimed by PM-octree's mark-and-sweep GC after recovery.
* :meth:`MemoryArena.flush` persists all dirty lines (the analogue of a
  ``clflush``/``mfence`` sequence at a persist point), and root-slot updates
  are 8-byte atomic write-throughs — the *only* ordered write PM-octree
  needs (§3).
"""

from __future__ import annotations

from typing import Dict, Iterator, Optional

import numpy as np

from repro.config import CACHE_LINE_SIZE, OCTANT_RECORD_SIZE, DeviceSpec
from repro.errors import ConsistencyError, InvalidHandleError, MediaError
from repro.nvbm.allocator import RecordAllocator
from repro.nvbm.clock import SimClock
from repro.nvbm.device import MemoryDevice, lines_spanned
from repro.nvbm.pointers import arena_of, index_of, make_handle
from repro.nvbm.records import (
    EPOCH_SPAN,
    FLAGS_SPAN,
    PAYLOAD_SPAN,
    OctantRecord,
    child_span,
    pack_handles,
    pack_payload,
    pack_record,
    record_crc,
    unpack_epoch,
    unpack_payload,
    unpack_record,
)

#: Cost of the ordering instruction sequence at a flush/persist point.
FENCE_NS = 250.0

_LINES_PER_RECORD = OCTANT_RECORD_SIZE // CACHE_LINE_SIZE
_ALL_LINES_MASK = (1 << _LINES_PER_RECORD) - 1


def _line_mask(offset: int, nbytes: int) -> int:
    """Bitmask of the record cache lines ``[offset, offset + nbytes)`` spans."""
    first = offset // CACHE_LINE_SIZE
    last = (offset + max(1, nbytes) - 1) // CACHE_LINE_SIZE
    mask = 0
    for line in range(first, last + 1):
        mask |= 1 << line
    return mask


class RootSlots:
    """Named 8-byte persistent slots for ``ADDR(V_i)`` / ``ADDR(V_{i-1})``.

    Updates are write-through and atomic: an 8-byte aligned store is atomic
    on x86, which is the primitive PM-octree's persist-point swap relies on.

    ``injector`` (optional) makes :meth:`swap` crash-testable: the site
    ``roots.swap.mid`` fires between the two device stores, *before* either
    slot value changes — the model's claim is that the exchange is
    all-or-nothing, so a mid-swap crash must leave both slots untouched.
    ``tracer`` (optional, see :mod:`repro.analysis.tracker`) observes every
    slot publish for ordering verification.
    """

    def __init__(self, device: MemoryDevice, injector=None):
        self._device = device
        self._slots: Dict[str, int] = {}
        self.injector = injector
        self.tracer = None

    def get(self, name: str) -> int:
        self._device.on_read(8)
        return self._slots.get(name, 0)

    def set(self, name: str, handle: int) -> None:
        self._device.on_write(8)
        self._slots[name] = handle
        if self.tracer is not None:
            self.tracer.on_publish(name, handle)

    def swap(self, a: str, b: str) -> None:
        """Atomically exchange two root slots (the §3.2 persist point)."""
        va, vb = self._slots.get(a, 0), self._slots.get(b, 0)
        self._device.on_write(8)
        if self.injector is not None:
            from repro.nvbm.sites import ROOTS_SWAP_MID

            self.injector.site(ROOTS_SWAP_MID)
        self._device.on_write(8)
        self._slots[a], self._slots[b] = vb, va
        if self.tracer is not None:
            self.tracer.on_publish(a, vb)
            self.tracer.on_publish(b, va)

    def names(self) -> Iterator[str]:
        return iter(self._slots)


class MemoryArena:
    """Record-granular memory of one technology (DRAM or NVBM) on one node."""

    def __init__(
        self,
        arena_id: int,
        spec: DeviceSpec,
        clock: SimClock,
        capacity_octants: int,
        name: Optional[str] = None,
        wear_leveling: bool = False,
        injector=None,
    ):
        self.arena_id = arena_id
        self.spec = spec
        self.name = name or spec.name
        self.device = MemoryDevice(spec, clock)
        #: optional ordering observer (see repro.analysis.tracker); checked
        #: on every store/flush/free, None in normal operation.
        self.tracer = None
        #: bound obs counters (attach_obs); None in normal operation
        self._m_stores = None
        self._m_flush_calls = None
        self._m_flush_records = None
        self._m_allocs = None
        self._m_frees = None
        if wear_leveling:
            from repro.nvbm.allocator import WearLevelingAllocator

            self.allocator = WearLevelingAllocator(capacity_octants,
                                                   name=self.name)
        else:
            self.allocator = RecordAllocator(capacity_octants, name=self.name)
        self._backing: Dict[int, bytes] = {}
        self._cache: Dict[int, bytes] = {}
        #: per-record CRC seal, kept *out-of-band* (idx -> CRC32 over the
        #: record bytes) the way a DIMM keeps ECC metadata in extra device
        #: bits: the byte stream an application stores is exactly what the
        #: medium holds, so the per-line crash-tear model stays honest.
        #: Sealing happens at :meth:`flush` (the only point the bytes are
        #: known durable); a crash voids the seal of anything that was
        #: dirty — torn records carry no integrity claim and are left to GC.
        self._sealed: Dict[int, int] = {}
        #: per-record bitmask of *dirty* cache lines (non-volatile arenas
        #: only).  A full-record store dirties every line; a field store
        #: dirties only the lines it spans — the crash model tears exactly
        #: these, so a torn partial store is modelled faithfully.
        self._dirty_lines: Dict[int, int] = {}
        # Root slots only make sense on a persistent arena but are harmless
        # on DRAM (they just vanish with everything else on a crash).
        self.roots = RootSlots(self.device, injector=injector)

    def attach_obs(self, obs) -> None:
        """Bind record-level counters (and the device's access counters)
        from an :class:`repro.obs.Observability`, labeled by arena name."""
        self.device.attach_obs(obs, device=self.name)
        m = obs.metrics
        self._m_stores = m.counter("arena.stores", arena=self.name)
        self._m_flush_calls = m.counter("arena.flush_calls", arena=self.name)
        self._m_flush_records = m.counter("arena.flush_records",
                                          arena=self.name)
        self._m_allocs = m.counter("arena.allocs", arena=self.name)
        self._m_frees = m.counter("arena.frees", arena=self.name)

    # -- capacity ----------------------------------------------------------

    @property
    def capacity(self) -> int:
        return self.allocator.capacity

    @property
    def used(self) -> int:
        return self.allocator.used

    @property
    def free_fraction(self) -> float:
        return self.allocator.free_fraction

    # -- raw record access ---------------------------------------------------

    def _check(self, handle: int) -> int:
        if arena_of(handle) != self.arena_id:
            raise InvalidHandleError(
                f"handle {handle:#x} does not belong to arena {self.name!r}"
            )
        idx = index_of(handle)
        if not self.allocator.is_allocated(idx):
            raise InvalidHandleError(f"{self.name}: handle {handle:#x} is not allocated")
        return idx

    def alloc(self) -> int:
        """Allocate a record slot and return its handle (contents undefined)."""
        if self._m_allocs is not None:
            self._m_allocs.inc()
        return make_handle(self.arena_id, self.allocator.alloc())

    def free(self, handle: int) -> None:
        """Release a record slot (GC only, per §3.2's deferred deletion)."""
        idx = self._check(handle)
        if self.tracer is not None:
            self.tracer.on_free(handle)
        if self._m_frees is not None:
            self._m_frees.inc()
        self.allocator.free(idx)
        self._backing.pop(idx, None)
        self._cache.pop(idx, None)
        self._dirty_lines.pop(idx, None)
        self._sealed.pop(idx, None)

    def retire(self, handle: int) -> None:
        """Release a record slot *and* take its media out of rotation.

        Used by the repair ladder when a slot's lines are stuck or worn out:
        the slot is deallocated like :meth:`free` but the allocator's
        retired-set guarantees it is never handed out again.
        """
        idx = self._check(handle)
        if self.tracer is not None:
            self.tracer.on_free(handle)
        if self._m_frees is not None:
            self._m_frees.inc()
        self.allocator.retire(idx)
        self._backing.pop(idx, None)
        self._cache.pop(idx, None)
        self._dirty_lines.pop(idx, None)
        self._sealed.pop(idx, None)

    def attach_fault_model(self, model) -> None:
        """Arm a :class:`repro.nvbm.device.MediaFaultModel` on this arena."""
        self.device.attach_fault_model(model)

    def _verify_media(self, idx: int, line0: int, nlines: int,
                      data: bytes) -> None:
        """Media-fault + CRC checks for a metered read served from backing.

        Verification itself charges nothing (it models the DIMM's per-line
        ECC riding along with the read); only the faults it *surfaces* cost
        anything, via the repair ladder's retries and rebuild traffic.
        """
        dev = self.device
        if dev._unmetered:
            return
        if dev.fault_model is not None:
            dev.check_media(idx, line0, nlines)
        crc = self._sealed.get(idx)
        if crc is not None and record_crc(data) != crc:
            base = idx * _LINES_PER_RECORD
            raise MediaError(
                self.name, idx, "crc",
                lines=tuple(range(base, base + _LINES_PER_RECORD)),
                detail="sealed record failed CRC verification",
            )

    def read(self, handle: int) -> bytes:
        """Load a record, read-your-writes through the cache.

        A read served by the *backing store* (the medium, not the volatile
        write-back cache) passes through media-fault and CRC verification;
        see :meth:`_verify_media`.
        """
        idx = self._check(handle)
        self.device.on_read(OCTANT_RECORD_SIZE)
        data = self._cache.get(idx)
        if data is None:
            data = self._backing.get(idx)
            if data is not None and (
                self.device.fault_model is not None or idx in self._sealed
            ):
                self._verify_media(idx, 0, _LINES_PER_RECORD, data)
        if data is None:
            raise ConsistencyError(
                f"{self.name}: handle {handle:#x} allocated but never written "
                "(likely a dangling pointer into torn/unflushed memory)"
            )
        return data

    def write(self, handle: int, data: bytes) -> None:
        """Store a record.  On NVBM the store lands in the volatile cache."""
        idx = self._check(handle)
        if len(data) != OCTANT_RECORD_SIZE:
            raise ValueError(f"record must be {OCTANT_RECORD_SIZE} bytes")
        self.device.on_write(OCTANT_RECORD_SIZE, slot=idx)
        if self.tracer is not None:
            self.tracer.on_store(handle, cached=not self.spec.volatile)
        if self._m_stores is not None:
            self._m_stores.inc()
        if self.spec.volatile:
            self._backing[idx] = data
        else:
            self._cache[idx] = data
            self._dirty_lines[idx] = _ALL_LINES_MASK

    # -- field-granular access ------------------------------------------------
    #
    # The §5.4 economy ("PM-octree only needs to write new and updated
    # octants") extends *inside* the record: a payload update, a child-slot
    # splice or a flag flip touches one cache line, not the whole 128-byte
    # record.  These methods pack/unpack only the requested field and charge
    # the device for exactly the lines the field spans.

    def _base_bytes(self, idx: int, handle: int) -> bytes:
        data = self._cache.get(idx)
        if data is None:
            data = self._backing.get(idx)
        if data is None:
            raise ConsistencyError(
                f"{self.name}: handle {handle:#x} allocated but never written "
                "(field access needs an existing record)"
            )
        return data

    def read_field(self, handle: int, offset: int, size: int) -> bytes:
        """Load ``size`` bytes at ``offset`` of a record, charging only the
        cache lines the span touches (read-your-writes through the cache).

        A backing-served field read checks media faults on the spanned
        lines and CRC-verifies the *covering record* (the CRC's unit of
        protection is the whole 128-byte record)."""
        idx = self._check(handle)
        nlines = lines_spanned(offset, size)
        self.device.on_read(size, lines=nlines)
        data = self._cache.get(idx)
        if data is None:
            data = self._backing.get(idx)
            if data is not None and (
                self.device.fault_model is not None or idx in self._sealed
            ):
                self._verify_media(idx, offset // CACHE_LINE_SIZE,
                                   nlines, data)
        if data is None:
            raise ConsistencyError(
                f"{self.name}: handle {handle:#x} allocated but never written "
                "(field access needs an existing record)"
            )
        return data[offset:offset + size]

    def write_field(self, handle: int, offset: int, data: bytes) -> None:
        """Store a field in place; on NVBM only the spanned lines turn dirty.

        The untouched lines of the record keep whatever durability state
        they had: a crash after a partial store can tear the *stored* lines
        (each persists independently with probability 1/2) but never the
        rest of the record.
        """
        idx = self._check(handle)
        size = len(data)
        if offset < 0 or offset + size > OCTANT_RECORD_SIZE:
            raise ValueError(
                f"field [{offset}, {offset + size}) outside the record"
            )
        base = self._base_bytes(idx, handle)
        merged = base[:offset] + data + base[offset + size:]
        self.device.on_write(size, slot=idx,
                             lines=lines_spanned(offset, size),
                             line0=offset // CACHE_LINE_SIZE)
        if self.tracer is not None:
            self.tracer.on_store(handle, cached=not self.spec.volatile)
        if self._m_stores is not None:
            self._m_stores.inc()
        if self.spec.volatile:
            self._backing[idx] = merged
        else:
            self._cache[idx] = merged
            self._dirty_lines[idx] = (
                self._dirty_lines.get(idx, 0) | _line_mask(offset, size)
            )

    # typed field convenience -------------------------------------------------

    def read_payload(self, handle: int):
        """The 4-float payload alone (one cache line, not two)."""
        return unpack_payload(self.read_field(handle, *PAYLOAD_SPAN))

    def write_payload(self, handle: int, payload) -> None:
        self.write_field(handle, PAYLOAD_SPAN[0], pack_payload(payload))

    # batched field reads ---------------------------------------------------
    #
    # The SoA gather path loads one field (or the payload) of many records
    # at once.  Each record still goes through the scalar read's validity
    # check and — when served from the backing store — media-fault/CRC
    # verification, in order; only the *device charge* is batched, as one
    # ``on_read_batch`` carrying the exact per-element totals (n reads,
    # n * size bytes, n * lines_spanned lines).  Verification runs before
    # the charge, so under a rot-enabled fault model the deadline check
    # sees a clock that lags the scalar trajectory by at most the batch's
    # own read latency; every other device observable is identical.

    def _read_field_chunks(self, handles, offset: int, size: int) -> bytes:
        nlines = lines_spanned(offset, size)
        line0 = offset // CACHE_LINE_SIZE
        verify = self.device.fault_model is not None
        cache = self._cache
        backing = self._backing
        sealed = self._sealed
        chunks = []
        for handle in handles:
            idx = self._check(handle)
            data = cache.get(idx)
            if data is None:
                data = backing.get(idx)
                if data is not None and (verify or idx in sealed):
                    self._verify_media(idx, line0, nlines, data)
            if data is None:
                raise ConsistencyError(
                    f"{self.name}: handle {handle:#x} allocated but never "
                    "written (field access needs an existing record)"
                )
            chunks.append(data[offset:offset + size])
        self.device.on_read_batch(len(chunks), size * len(chunks),
                                  nlines * len(chunks))
        return b"".join(chunks)

    def read_payload_batch(self, handles) -> np.ndarray:
        """Payload rows of many records as an ``(n, 4)`` float64 array.

        Metering-equivalent to ``n`` :meth:`read_payload` calls."""
        off, size = PAYLOAD_SPAN
        blob = self._read_field_chunks(handles, off, size)
        return np.frombuffer(blob, dtype="<f8").reshape(-1, 4)

    def read_f64_field_batch(self, handles, offset: int) -> np.ndarray:
        """One float64 field at ``offset`` from each record.

        Metering-equivalent to ``n`` ``read_field(handle, offset, 8)``
        calls (the field-granular single-slot read)."""
        blob = self._read_field_chunks(handles, offset, 8)
        return np.frombuffer(blob, dtype="<f8")

    def read_epoch(self, handle: int) -> int:
        return unpack_epoch(self.read_field(handle, *EPOCH_SPAN))

    def read_flags(self, handle: int) -> int:
        return self.read_field(handle, *FLAGS_SPAN)[0]

    def set_flags(self, handle: int, flags: int) -> None:
        """Store the one-byte flags field (a single-line flag flip)."""
        self.write_field(handle, FLAGS_SPAN[0], bytes((flags & 0xFF,)))

    def write_child_slot(self, handle: int, index: int, child: int) -> None:
        """Splice one child handle in place (an 8-byte, single-line store)."""
        offset, _size = child_span(index)
        self.write_field(handle, offset, pack_handles((child,)))

    def write_child_slots(self, handle: int, index: int, children) -> None:
        """Store contiguous child slots ``[index, index + len(children))``."""
        offset, _size = child_span(index, len(children))
        self.write_field(handle, offset, pack_handles(children))

    def contains(self, handle: int) -> bool:
        """True when the handle is a live allocation in this arena."""
        return (
            arena_of(handle) == self.arena_id
            and self.allocator.is_allocated(index_of(handle))
        )

    # -- octant-level convenience -------------------------------------------

    def read_octant(self, handle: int) -> OctantRecord:
        return unpack_record(self.read(handle))

    def write_octant(self, handle: int, rec: OctantRecord) -> None:
        self.write(handle, pack_record(rec))

    def new_octant(self, rec: OctantRecord) -> int:
        """Allocate and store a fresh octant; return its handle."""
        handle = self.alloc()
        self.write(handle, pack_record(rec))
        return handle

    # -- durability ----------------------------------------------------------

    @property
    def dirty_records(self) -> int:
        return len(self._cache)

    def dirty_handles(self) -> list:
        """Handles of every record currently dirty in the write-back cache.

        The epoch pipeline snapshots this at enqueue time: the set is
        exactly what the drain phase must make durable before the epoch's
        root may be published.
        """
        return [make_handle(self.arena_id, idx) for idx in self._cache]

    def flush(self) -> None:
        """Persist every dirty cached record (persist-point fence).

        On a non-volatile arena this is also the *sealing* point: every
        record reaching the medium gets a CRC stamped into the out-of-band
        seal table.  Only a completed flush seals — bytes torn onto the
        medium by a crash carry no integrity claim.
        """
        if not self.device._unmetered:
            self.device.clock.advance(FENCE_NS, self.device._category)
        if self.tracer is not None:
            self.tracer.on_flush(
                [make_handle(self.arena_id, idx) for idx in self._cache]
            )
        # unmetered means *all* charging is suppressed, stats included: the
        # epoch pipeline pre-charges its fences through the drain cost model
        # and replays the flush here only for its durability effect.
        if self._m_flush_calls is not None and not self.device._unmetered:
            self._m_flush_calls.inc()
            self._m_flush_records.inc(len(self._cache))
        self._backing.update(self._cache)
        if not self.spec.volatile:
            for idx, data in self._cache.items():
                self._sealed[idx] = record_crc(data)
        self._cache.clear()
        self._dirty_lines.clear()

    def flush_records(self, handles) -> None:
        """Persist (and seal) exactly the given records, leaving the rest
        of the write-back cache dirty.

        The selective analogue of :meth:`flush` for the epoch pipeline: an
        in-flight epoch drains only the records *it* snapshotted, so a
        later epoch's still-cooking stores are not prematurely persisted
        (which would re-order durability across epochs).  Handles that are
        no longer cached (already flushed, or freed by GC) are skipped.
        """
        idxs = [index_of(h) for h in handles
                if arena_of(h) == self.arena_id and index_of(h) in self._cache]
        if not self.device._unmetered:
            self.device.clock.advance(FENCE_NS, self.device._category)
        if self.tracer is not None:
            self.tracer.on_flush(
                [make_handle(self.arena_id, idx) for idx in idxs]
            )
        if self._m_flush_calls is not None and not self.device._unmetered:
            self._m_flush_calls.inc()
            self._m_flush_records.inc(len(idxs))
        for idx in idxs:
            data = self._cache.pop(idx)
            self._backing[idx] = data
            if not self.spec.volatile:
                self._sealed[idx] = record_crc(data)
            self._dirty_lines.pop(idx, None)

    def crash(self, rng: Optional[np.random.Generator] = None) -> None:
        """Apply power-loss semantics (see module docstring)."""
        if self.tracer is not None:
            self.tracer.on_crash()
        if self.spec.volatile:
            self._backing.clear()
            self._cache.clear()
            self.allocator.reset()
            self._sealed.clear()
            self.roots._slots.clear()
            return
        rng = rng or np.random.default_rng()
        for idx, data in self._cache.items():
            # a dirty record's on-medium bytes are now an unordered merge of
            # old and new lines — whatever seal the old bytes carried no
            # longer describes what is actually stored
            self._sealed.pop(idx, None)
            old = self._backing.get(idx, b"\x00" * OCTANT_RECORD_SIZE)
            # only *dirty* lines are in flight; clean cached lines already
            # equal the backing store, so a partial store can tear at most
            # the lines it actually touched
            mask = self._dirty_lines.get(idx, _ALL_LINES_MASK)
            pieces = []
            for line in range(_LINES_PER_RECORD):
                lo, hi = line * CACHE_LINE_SIZE, (line + 1) * CACHE_LINE_SIZE
                dirty = mask & (1 << line)
                pieces.append(
                    data[lo:hi] if dirty and rng.random() < 0.5 else old[lo:hi]
                )
            merged = b"".join(pieces)
            if merged != old:
                self._backing[idx] = merged
        self._cache.clear()
        self._dirty_lines.clear()

    # -- introspection ---------------------------------------------------------

    def live_handles(self) -> Iterator[int]:
        """All allocated handles (GC sweep order)."""
        for idx in self.allocator.live_indices():
            yield make_handle(self.arena_id, int(idx))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"MemoryArena({self.name}, used={self.used}/{self.capacity}, "
            f"dirty={self.dirty_records})"
        )
