"""Handle (persistent-pointer) encoding.

The paper's §1 third challenge is "special pointers" that cross the
DRAM/NVBM boundary: a persistent octant may point at a volatile one and vice
versa, and recovery must fix them up.  We make the boundary explicit in the
pointer representation: a *handle* is a 64-bit integer whose top 16 bits name
the arena (1 = DRAM, 2 = NVBM) and whose low 48 bits are a record index
within that arena.  Handle 0 is NULL.

After a crash every DRAM handle embedded in a surviving NVBM record is a
dangling pointer by construction; :mod:`repro.core.recovery` finds and
re-swizzles them, exactly the bookkeeping the paper's library hides from
application developers.
"""

from __future__ import annotations

NULL_HANDLE = 0

ARENA_DRAM = 1
ARENA_NVBM = 2

_INDEX_BITS = 48
_INDEX_MASK = (1 << _INDEX_BITS) - 1


def make_handle(arena_id: int, index: int) -> int:
    """Build a handle from an arena tag and a record index."""
    if arena_id <= 0 or arena_id > 0xFFFF:
        raise ValueError(f"invalid arena id {arena_id}")
    if index < 0 or index > _INDEX_MASK:
        raise ValueError(f"record index out of range: {index}")
    return (arena_id << _INDEX_BITS) | index


def arena_of(handle: int) -> int:
    """Arena tag of a non-null handle."""
    return handle >> _INDEX_BITS


def index_of(handle: int) -> int:
    """Record index of a non-null handle."""
    return handle & _INDEX_MASK


def is_null(handle: int) -> bool:
    return handle == NULL_HANDLE


def is_dram(handle: int) -> bool:
    return handle != NULL_HANDLE and arena_of(handle) == ARENA_DRAM


def is_nvbm(handle: int) -> bool:
    return handle != NULL_HANDLE and arena_of(handle) == ARENA_NVBM
