"""Fixed-size octant record format.

Octants stored in an arena are 128-byte packed records — the byte-level
layout a C implementation would use — so that writes have a realistic size
(two cache lines), torn writes can be modelled at line granularity, and
capacity thresholds (``threshold_DRAM`` / ``threshold_NVBM``) are meaningful.

Layout (little-endian, 120 bytes payload padded to 128):

====== ===== =====================================================
offset bytes field
====== ===== =====================================================
0      8     locational code (level-prefixed Morton key)
8      1     level
9      1     flags (FLAG_LEAF, FLAG_DELETED)
10     2     padding
12     4     epoch (version counter at creation; drives COW sharing)
16     32    payload: 4 float64 (solver fields, e.g. vof/p/u/v)
48     8     parent handle
56     64    8 child handles (quadtree uses the first 4)
====== ===== =====================================================
"""

from __future__ import annotations

import struct
import zlib
from dataclasses import dataclass, field, replace
from typing import List, Tuple

from repro.config import OCTANT_RECORD_SIZE
from repro.nvbm.pointers import NULL_HANDLE

FLAG_LEAF = 0x1
FLAG_DELETED = 0x2

_STRUCT = struct.Struct("<QBBHI4dQ8Q")
_PAD = OCTANT_RECORD_SIZE - _STRUCT.size
assert _PAD >= 0, "record layout exceeds OCTANT_RECORD_SIZE"
_PAD_BYTES = b"\x00" * _PAD

#: Number of payload float slots per octant.
PAYLOAD_SLOTS = 4

#: Maximum children per octant record (octree fanout).
MAX_CHILDREN = 8

# -- field spans -------------------------------------------------------------
#
# ``(offset, size)`` of each field inside the packed record.  The
# field-granular access layer (:meth:`repro.nvbm.arena.MemoryArena.
# read_field` / ``write_field``) uses these to touch — and charge the
# device for — only the cache lines a field actually spans.

LOC_SPAN = (0, 8)
LEVEL_SPAN = (8, 1)
FLAGS_SPAN = (9, 1)
EPOCH_SPAN = (12, 4)
PAYLOAD_SPAN = (16, 8 * PAYLOAD_SLOTS)
PARENT_SPAN = (48, 8)
CHILDREN_OFFSET = 56

_PAYLOAD_STRUCT = struct.Struct("<4d")
_HANDLE_STRUCT = struct.Struct("<Q")
_EPOCH_STRUCT = struct.Struct("<I")

# -- end-to-end record integrity ---------------------------------------------
#
# The 8 pad bytes after the packed struct carry a CRC32 over bytes
# ``[0, 120)``, written ("sealed") when a record's lines are flushed to the
# medium and checked on every metered read of a sealed record.  An unsealed
# record (still write-back-cached, or torn by a crash before its sealing
# flush) carries no integrity claim — recovery never trusts those bytes
# anyway (they are unreachable from the published root or garbage awaiting
# GC).  The CRC models the DIMM's per-line ECC *detection* capability
# end-to-end at record granularity; verification itself is free (hardware
# piggyback), only repair traffic is metered.

#: ``(offset, size)`` of the CRC32 field inside the padded record.
CRC_SPAN = (_STRUCT.size, 4)
assert CRC_SPAN[0] + CRC_SPAN[1] <= OCTANT_RECORD_SIZE

_CRC_STRUCT = struct.Struct("<I")


def record_crc(data: bytes) -> int:
    """CRC32 over the covered prefix (everything before the CRC field)."""
    return zlib.crc32(data[: CRC_SPAN[0]]) & 0xFFFFFFFF


def seal_record(data: bytes) -> bytes:
    """Return ``data`` with its CRC field stamped from the current bytes."""
    off, size = CRC_SPAN
    return data[:off] + _CRC_STRUCT.pack(record_crc(data)) + data[off + size:]


def verify_record(data: bytes) -> bool:
    """True iff a sealed record's bytes still match its stamped CRC."""
    off, size = CRC_SPAN
    (stored,) = _CRC_STRUCT.unpack(data[off: off + size])
    return stored == record_crc(data)


def child_span(index: int, count: int = 1) -> Tuple[int, int]:
    """Byte span of ``count`` contiguous child-handle slots from ``index``."""
    if not 0 <= index < index + count <= MAX_CHILDREN:
        raise ValueError(f"child slots [{index}, {index + count}) out of range")
    return (CHILDREN_OFFSET + 8 * index, 8 * count)


def pack_payload(payload) -> bytes:
    """Serialize the 4-float payload field alone."""
    return _PAYLOAD_STRUCT.pack(*payload)


def unpack_payload(data: bytes) -> Tuple[float, float, float, float]:
    return _PAYLOAD_STRUCT.unpack(data)


def pack_handles(handles) -> bytes:
    """Serialize contiguous 8-byte handles (child slots, parent)."""
    return b"".join(_HANDLE_STRUCT.pack(h) for h in handles)


def unpack_epoch(data: bytes) -> int:
    return _EPOCH_STRUCT.unpack(data)[0]


@dataclass
class OctantRecord:
    """Unpacked view of one octant record.

    Mutating a view does nothing until it is written back through an arena;
    this mirrors the load/modify/store cycle of the real data structure.
    """

    loc: int = 0
    level: int = 0
    flags: int = FLAG_LEAF
    epoch: int = 0
    payload: Tuple[float, float, float, float] = (0.0, 0.0, 0.0, 0.0)
    parent: int = NULL_HANDLE
    children: List[int] = field(default_factory=lambda: [NULL_HANDLE] * MAX_CHILDREN)

    @property
    def is_leaf(self) -> bool:
        return bool(self.flags & FLAG_LEAF)

    @property
    def is_deleted(self) -> bool:
        return bool(self.flags & FLAG_DELETED)

    def set_leaf(self, leaf: bool) -> None:
        if leaf:
            self.flags |= FLAG_LEAF
        else:
            self.flags &= ~FLAG_LEAF

    def set_deleted(self, deleted: bool) -> None:
        if deleted:
            self.flags |= FLAG_DELETED
        else:
            self.flags &= ~FLAG_DELETED

    def live_children(self) -> List[int]:
        """Non-null child handles."""
        return [c for c in self.children if c != NULL_HANDLE]

    def copy(self) -> "OctantRecord":
        return replace(self, payload=tuple(self.payload), children=list(self.children))


def pack_record(rec: OctantRecord) -> bytes:
    """Serialize to the fixed 128-byte wire format."""
    if len(rec.children) != MAX_CHILDREN:
        raise ValueError(f"record must carry {MAX_CHILDREN} child slots")
    return (
        _STRUCT.pack(
            rec.loc,
            rec.level,
            rec.flags,
            0,
            rec.epoch,
            *rec.payload,
            rec.parent,
            *rec.children,
        )
        + _PAD_BYTES
    )


def unpack_record(data: bytes) -> OctantRecord:
    """Deserialize a 128-byte record."""
    if len(data) != OCTANT_RECORD_SIZE:
        raise ValueError(f"expected {OCTANT_RECORD_SIZE} bytes, got {len(data)}")
    fields = _STRUCT.unpack(data[: _STRUCT.size])
    loc, level, flags, _pad, epoch = fields[:5]
    payload = fields[5:9]
    parent = fields[9]
    children = list(fields[10:18])
    return OctantRecord(
        loc=loc,
        level=level,
        flags=flags,
        epoch=epoch,
        payload=payload,
        parent=parent,
        children=children,
    )
