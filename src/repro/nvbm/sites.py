"""Central registry of crash-site names.

Every ``injector.site("...")`` call in the library must use a name declared
here.  Before this registry existed, sites were bare string literals
scattered through :mod:`repro.core`; a typo in either the declaring code or
the arming test failed *silently* — the crash plan simply never fired and
the test passed without testing anything.  Now:

* code references the constants below (so a typo is an ``AttributeError``),
* :meth:`repro.nvbm.failure.FailureInjector.arm` warns when handed a name
  that is not registered, and
* the static checker (:mod:`repro.analysis.pmlint`) flags any site literal
  in ``src/repro`` that the registry does not know.

Tests that need ad-hoc sites can :func:`register` them first.
"""

from __future__ import annotations

from typing import Dict, FrozenSet

# -- copy-on-write ----------------------------------------------------------
COW_AFTER_COPY = "cow.after_copy"

# -- C0 merging / eviction / loading ---------------------------------------
MERGE_OCTANT = "merge.octant"
MERGE_SUBTREE_DONE = "merge.subtree_done"
EVICT_BEGIN = "evict.begin"
LOAD_OCTANT = "load.octant"

# -- field-granular (partial) stores -----------------------------------------
COARSEN_MID = "coarsen.mid"
PAYLOAD_PARTIAL = "payload.partial_store"

# -- dynamic layout transformation ------------------------------------------
TRANSFORM_MID = "transform.mid"

# -- the persist point -------------------------------------------------------
PERSIST_BEGIN = "persist.begin"
PERSIST_BEFORE_FLUSH = "persist.before_flush"
PERSIST_BEFORE_ROOT_SWAP = "persist.before_root_swap"
PERSIST_AFTER_ROOT_SWAP = "persist.after_root_swap"

# -- root-slot machinery -----------------------------------------------------
ROOTS_SWAP_MID = "roots.swap.mid"

# -- octant migration (repartitioning) ---------------------------------------
MIGRATE_PRE_PUBLISH = "migrate.pre_publish"
MIGRATE_MID_BATCH = "migrate.mid_batch"
MIGRATE_PRE_RETIRE = "migrate.pre_retire"

#: The migration protocol's sites in protocol order (sweep/chaos iterate
#: these; recovery must re-drive or roll back cleanly at each).
MIGRATE_SITES = (MIGRATE_PRE_PUBLISH, MIGRATE_MID_BATCH, MIGRATE_PRE_RETIRE)

# -- replication --------------------------------------------------------------
REPLICA_BEFORE_PUBLISH = "replica.before_publish"
REPLICA_SHIP_BEFORE_SEND = "replica.ship.before_send"
REPLICA_SHIP_AFTER_APPLY = "replica.ship.after_apply"
REPLICA_SHIP_BEFORE_ACK = "replica.ship.before_ack"
REPLICA_RESYNC_BEGIN = "replica.resync.begin"

#: name -> what crashing there exercises (the sweep harness reports these).
DESCRIPTIONS: Dict[str, str] = {
    COW_AFTER_COPY: "right after one COW copy, before its parent is re-linked",
    MERGE_OCTANT: "after each octant written during a C0 merge",
    MERGE_SUBTREE_DONE: "after one C0 subtree finished merging and splicing",
    EVICT_BEGIN: "start of a DRAM-pressure eviction",
    LOAD_OCTANT: "after each octant copied into DRAM by a C0 load",
    COARSEN_MID: "mid NVBM coarsen: children unlinked and marked, parent "
                 "slots/flags not yet stored",
    PAYLOAD_PARTIAL: "right after an in-place partial payload store, its "
                     "dirty line still unflushed",
    TRANSFORM_MID: "mid layout transformation, between evictions and loads",
    PERSIST_BEGIN: "entry of the persist point, before the C0 merge",
    PERSIST_BEFORE_FLUSH: "working version merged, nothing flushed yet",
    PERSIST_BEFORE_ROOT_SWAP: "flushed, an instant before the atomic publish",
    PERSIST_AFTER_ROOT_SWAP: "an instant after the atomic publish",
    ROOTS_SWAP_MID: "between the two device stores of a root-slot swap",
    MIGRATE_PRE_PUBLISH: "migration batch journalled at the sender, nothing "
                         "published at the receiver yet",
    MIGRATE_MID_BATCH: "mid migration batch: some octants published at the "
                       "receiver, none retired at the sender",
    MIGRATE_PRE_RETIRE: "migration batch fully published at the receiver, "
                        "sender octants not yet retired",
    REPLICA_BEFORE_PUBLISH: "replica materialised and flushed, root not set",
    REPLICA_SHIP_BEFORE_SEND: "delta computed and sequenced, nothing sent",
    REPLICA_SHIP_AFTER_APPLY: "peer applied the delta, ack not yet delivered",
    REPLICA_SHIP_BEFORE_ACK: "ack delivered, host success not yet recorded",
    REPLICA_RESYNC_BEGIN: "peer state diverged, full resync about to start",
}


def all_sites() -> FrozenSet[str]:
    """The current registry contents (including test-registered names)."""
    return frozenset(DESCRIPTIONS)


def is_known(name: str) -> bool:
    return name in DESCRIPTIONS


def register(name: str, description: str = "ad-hoc site") -> str:
    """Add a site at runtime (for tests and downstream extensions)."""
    if not name or not isinstance(name, str):
        raise ValueError(f"crash-site name must be a non-empty string: {name!r}")
    DESCRIPTIONS.setdefault(name, description)
    return name


def unregister(name: str) -> None:
    """Remove a runtime-registered site (tests cleaning up after themselves)."""
    DESCRIPTIONS.pop(name, None)


def describe(name: str) -> str:
    return DESCRIPTIONS.get(name, "<unregistered>")
