"""Central registry of crash-site names.

Every ``injector.site("...")`` call in the library must use a name declared
here.  Before this registry existed, sites were bare string literals
scattered through :mod:`repro.core`; a typo in either the declaring code or
the arming test failed *silently* — the crash plan simply never fired and
the test passed without testing anything.  Now:

* code references the constants below (so a typo is an ``AttributeError``),
* :meth:`repro.nvbm.failure.FailureInjector.arm` warns when handed a name
  that is not registered, and
* the static checker (:mod:`repro.analysis.pmlint`) flags any site literal
  in ``src/repro`` that the registry does not know.

Tests that need ad-hoc sites can :func:`register` them first.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, Optional

# -- copy-on-write ----------------------------------------------------------
COW_AFTER_COPY = "cow.after_copy"

# -- C0 merging / eviction / loading ---------------------------------------
MERGE_OCTANT = "merge.octant"
MERGE_SUBTREE_DONE = "merge.subtree_done"
EVICT_BEGIN = "evict.begin"
LOAD_OCTANT = "load.octant"

# -- field-granular (partial) stores -----------------------------------------
COARSEN_MID = "coarsen.mid"
PAYLOAD_PARTIAL = "payload.partial_store"

# -- dynamic layout transformation ------------------------------------------
TRANSFORM_MID = "transform.mid"

# -- the persist point -------------------------------------------------------
PERSIST_BEGIN = "persist.begin"
PERSIST_BEFORE_FLUSH = "persist.before_flush"
PERSIST_BEFORE_ROOT_SWAP = "persist.before_root_swap"
PERSIST_AFTER_ROOT_SWAP = "persist.after_root_swap"

# -- root-slot machinery -----------------------------------------------------
ROOTS_SWAP_MID = "roots.swap.mid"

# -- the asynchronous epoch pipeline ------------------------------------------
EPOCH_ENQUEUE_MID = "epoch.enqueue.mid"
EPOCH_DRAIN_MID = "epoch.drain.mid"
EPOCH_COMMIT_PRE_PUBLISH = "epoch.commit.pre_publish"
EPOCH_OVERLAP_NEXT_STEP = "epoch.overlap.next_step"

#: The epoch pipeline's sites in protocol order (sweep/chaos iterate these;
#: recovery must land on exactly epoch i or i-1 at each — never a blend).
EPOCH_SITES = (EPOCH_OVERLAP_NEXT_STEP, EPOCH_ENQUEUE_MID, EPOCH_DRAIN_MID,
               EPOCH_COMMIT_PRE_PUBLISH)

# -- octant migration (repartitioning) ---------------------------------------
MIGRATE_PRE_PUBLISH = "migrate.pre_publish"
MIGRATE_MID_BATCH = "migrate.mid_batch"
MIGRATE_PRE_RETIRE = "migrate.pre_retire"
MIGRATE_RECOVER_MID = "migrate.recover.mid"

#: The migration protocol's sites in protocol order (sweep/chaos iterate
#: these; recovery must re-drive or roll back cleanly at each).
MIGRATE_SITES = (MIGRATE_PRE_PUBLISH, MIGRATE_MID_BATCH, MIGRATE_PRE_RETIRE)

# -- media repair (scrub / relocate / retire) ---------------------------------
MEDIA_REPAIR_PRE_PUBLISH = "media.repair.pre_publish"
MEDIA_REPAIR_PRE_RETIRE = "media.repair.pre_retire"
MEDIA_SCRUB_MID = "media.scrub.mid"

#: The repair ladder's sites in protocol order (sweep/chaos iterate these;
#: a crash at any of them must leave a consistent, recoverable tree).
MEDIA_SITES = (MEDIA_REPAIR_PRE_PUBLISH, MEDIA_REPAIR_PRE_RETIRE,
               MEDIA_SCRUB_MID)

# -- replication --------------------------------------------------------------
REPLICA_BEFORE_PUBLISH = "replica.before_publish"
REPLICA_SHIP_BEFORE_SEND = "replica.ship.before_send"
REPLICA_SHIP_AFTER_APPLY = "replica.ship.after_apply"
REPLICA_SHIP_BEFORE_ACK = "replica.ship.before_ack"
REPLICA_RESYNC_BEGIN = "replica.resync.begin"

#: name -> what crashing there exercises (the sweep harness reports these).
DESCRIPTIONS: Dict[str, str] = {
    COW_AFTER_COPY: "right after one COW copy, before its parent is re-linked",
    MERGE_OCTANT: "after each octant written during a C0 merge",
    MERGE_SUBTREE_DONE: "after one C0 subtree finished merging and splicing",
    EVICT_BEGIN: "start of a DRAM-pressure eviction",
    LOAD_OCTANT: "after each octant copied into DRAM by a C0 load",
    COARSEN_MID: "mid NVBM coarsen: children unlinked and marked, parent "
                 "slots/flags not yet stored",
    PAYLOAD_PARTIAL: "right after an in-place partial payload store, its "
                     "dirty line still unflushed",
    TRANSFORM_MID: "mid layout transformation, between evictions and loads",
    PERSIST_BEGIN: "entry of the persist point, before the C0 merge",
    PERSIST_BEFORE_FLUSH: "working version merged, nothing flushed yet",
    PERSIST_BEFORE_ROOT_SWAP: "flushed, an instant before the atomic publish",
    PERSIST_AFTER_ROOT_SWAP: "an instant after the atomic publish",
    ROOTS_SWAP_MID: "between the two device stores of a root-slot swap",
    EPOCH_ENQUEUE_MID: "mid epoch enqueue: working version merged into the "
                       "write-back cache, epoch not yet queued",
    EPOCH_DRAIN_MID: "mid epoch drain: part of the epoch's records flushed "
                     "to the medium, the rest still cached",
    EPOCH_COMMIT_PRE_PUBLISH: "epoch fully flushed, an instant before the "
                              "root-slot publish that commits it",
    EPOCH_OVERLAP_NEXT_STEP: "next step's enqueue reached while the previous "
                             "epoch is still in flight",
    MIGRATE_PRE_PUBLISH: "migration batch journalled at the sender, nothing "
                         "published at the receiver yet",
    MIGRATE_MID_BATCH: "mid migration batch: some octants published at the "
                       "receiver, none retired at the sender",
    MIGRATE_PRE_RETIRE: "migration batch fully published at the receiver, "
                        "sender octants not yet retired",
    MIGRATE_RECOVER_MID: "mid migration recovery: some journal batches "
                         "re-driven or rolled back, the rest untouched",
    MEDIA_REPAIR_PRE_PUBLISH: "repair chain relocated and flushed, root "
                              "republish not yet stored",
    MEDIA_REPAIR_PRE_RETIRE: "repaired root republished, bad record not yet "
                             "retired/freed",
    MEDIA_SCRUB_MID: "mid scrub pass: some bad records repaired and "
                     "republished, the rest still faulty",
    REPLICA_BEFORE_PUBLISH: "replica materialised and flushed, root not set",
    REPLICA_SHIP_BEFORE_SEND: "delta computed and sequenced, nothing sent",
    REPLICA_SHIP_AFTER_APPLY: "peer applied the delta, ack not yet delivered",
    REPLICA_SHIP_BEFORE_ACK: "ack delivered, host success not yet recorded",
    REPLICA_RESYNC_BEGIN: "peer state diverged, full resync about to start",
}


@dataclass(frozen=True)
class SiteMeta:
    """Static metadata the coverage prover cross-references.

    ``module`` is the module whose code declares the site (where the
    ``injector.site(...)`` call lives); ``bracket`` names the protocol
    window the site tears:

    * ``mutate-publish`` — between the first dirty NVBM store and the
      root-slot publish that commits it;
    * ``publish-point`` — inside the persist commit sequence itself;
    * ``publish-retire`` — between a migration batch's publish and the
      sender-side retire (including the recovery re-drive);
    * ``protocol`` — inside a replication message exchange.
    """

    name: str
    description: str
    module: str = ""
    bracket: str = "mutate-publish"


#: name -> static metadata (owning module, expected bracket).
METADATA: Dict[str, SiteMeta] = {}


def _declare(name: str, module: str, bracket: str) -> None:
    METADATA[name] = SiteMeta(name=name, description=DESCRIPTIONS[name],
                              module=module, bracket=bracket)


for _name, _module, _bracket in (
    (COW_AFTER_COPY, "repro.core.pmoctree", "mutate-publish"),
    (MERGE_OCTANT, "repro.core.merge", "mutate-publish"),
    (MERGE_SUBTREE_DONE, "repro.core.merge", "mutate-publish"),
    (EVICT_BEGIN, "repro.core.merge", "mutate-publish"),
    (LOAD_OCTANT, "repro.core.merge", "mutate-publish"),
    (COARSEN_MID, "repro.core.pmoctree", "mutate-publish"),
    (PAYLOAD_PARTIAL, "repro.core.pmoctree", "mutate-publish"),
    (TRANSFORM_MID, "repro.core.transform", "mutate-publish"),
    (PERSIST_BEGIN, "repro.core.pmoctree", "publish-point"),
    (PERSIST_BEFORE_FLUSH, "repro.core.pmoctree", "publish-point"),
    (PERSIST_BEFORE_ROOT_SWAP, "repro.core.pmoctree", "publish-point"),
    (PERSIST_AFTER_ROOT_SWAP, "repro.core.pmoctree", "publish-point"),
    (ROOTS_SWAP_MID, "repro.nvbm.arena", "publish-point"),
    (EPOCH_ENQUEUE_MID, "repro.core.pipeline", "publish-point"),
    (EPOCH_DRAIN_MID, "repro.core.pipeline", "publish-point"),
    (EPOCH_COMMIT_PRE_PUBLISH, "repro.core.pipeline", "publish-point"),
    (EPOCH_OVERLAP_NEXT_STEP, "repro.core.pipeline", "publish-point"),
    (MIGRATE_PRE_PUBLISH, "repro.parallel.partition", "publish-retire"),
    (MIGRATE_MID_BATCH, "repro.parallel.partition", "publish-retire"),
    (MIGRATE_PRE_RETIRE, "repro.parallel.partition", "publish-retire"),
    (MIGRATE_RECOVER_MID, "repro.parallel.partition", "publish-retire"),
    (MEDIA_REPAIR_PRE_PUBLISH, "repro.core.recovery", "mutate-publish"),
    (MEDIA_REPAIR_PRE_RETIRE, "repro.core.recovery", "publish-retire"),
    (MEDIA_SCRUB_MID, "repro.core.recovery", "mutate-publish"),
    (REPLICA_BEFORE_PUBLISH, "repro.core.replication", "mutate-publish"),
    (REPLICA_SHIP_BEFORE_SEND, "repro.core.replication", "protocol"),
    (REPLICA_SHIP_AFTER_APPLY, "repro.core.replication", "protocol"),
    (REPLICA_SHIP_BEFORE_ACK, "repro.core.replication", "protocol"),
    (REPLICA_RESYNC_BEGIN, "repro.core.replication", "protocol"),
):
    _declare(_name, _module, _bracket)
del _name, _module, _bracket


def all_sites() -> FrozenSet[str]:
    """The current registry contents (including test-registered names)."""
    return frozenset(DESCRIPTIONS)


def is_known(name: str) -> bool:
    return name in DESCRIPTIONS


def register(name: str, description: str = "ad-hoc site", *,
             module: str = "", bracket: str = "mutate-publish") -> str:
    """Add a site at runtime (for tests and downstream extensions)."""
    if not name or not isinstance(name, str):
        raise ValueError(f"crash-site name must be a non-empty string: {name!r}")
    DESCRIPTIONS.setdefault(name, description)
    METADATA.setdefault(name, SiteMeta(name=name,
                                       description=DESCRIPTIONS[name],
                                       module=module, bracket=bracket))
    return name


def unregister(name: str) -> None:
    """Remove a runtime-registered site (tests cleaning up after themselves)."""
    DESCRIPTIONS.pop(name, None)
    METADATA.pop(name, None)


def describe(name: str) -> str:
    return DESCRIPTIONS.get(name, "<unregistered>")


def meta(name: str) -> Optional[SiteMeta]:
    """Static metadata for one site, or None when unregistered."""
    return METADATA.get(name)
