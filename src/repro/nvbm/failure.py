"""Deterministic crash injection.

The §5.6 experiments "kill the processes at time step 20"; the consistency
tests go further and kill *inside* individual PM-octree operations (mid-merge,
mid-COW-propagation, between a record store and the root swap).  Code under
test declares named crash *sites*; a test arms a :class:`CrashPlan` naming a
site and the hit count at which to fire, and the injector raises
:class:`~repro.errors.SimulatedCrash` there.  The owner of the arenas then
calls their ``crash()`` methods to apply power-loss semantics before
attempting recovery.
"""

from __future__ import annotations

import os
import warnings
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.errors import SimulatedCrash, UnknownCrashSiteError
from repro.nvbm import sites as site_registry


class UnknownCrashSiteWarning(UserWarning):
    """An armed crash-site name is not in :mod:`repro.nvbm.sites`.

    A typo'd site name is otherwise a silent no-op: the plan never fires and
    the arming test "passes" without exercising anything.
    """


def _strict_sites() -> bool:
    """Whether arming an unknown site should raise instead of warn.

    An explicit ``REPRO_STRICT_SITES`` value wins (``1``/``true`` →
    strict, ``0``/``false``/empty → permissive); otherwise strict mode is
    on whenever a pytest test is executing (``PYTEST_CURRENT_TEST``) —
    ``repro analyze`` sets the variable itself.  Library consumers outside
    those contexts keep the historical warn-only behaviour.
    """
    explicit = os.environ.get("REPRO_STRICT_SITES")
    if explicit is not None:
        return explicit.strip().lower() in ("1", "true", "yes", "on")
    return "PYTEST_CURRENT_TEST" in os.environ


@dataclass
class CrashPlan:
    """When an armed site fires, in order of precedence:

    * ``every_hit`` — every execution of the site fires (the plan is never
      exhausted; chaos trials crash the same site repeatedly);
    * ``hits`` — an explicit 1-based hit list, e.g. ``(2, 5)``; the plan is
      exhausted after its largest hit;
    * ``at_hit`` — the classic single 1-based hit count.
    """

    site: str
    at_hit: int = 1
    hits: Optional[tuple] = None
    every_hit: bool = False

    def __post_init__(self) -> None:
        if self.at_hit < 1:
            raise ValueError("at_hit is 1-based and must be >= 1")
        if self.hits is not None:
            self.hits = tuple(sorted(set(int(h) for h in self.hits)))
            if not self.hits or self.hits[0] < 1:
                raise ValueError("hits must be a non-empty list of ints >= 1")

    def fires_at(self, hit: int) -> bool:
        if self.every_hit:
            return True
        if self.hits is not None:
            return hit in self.hits
        return hit == self.at_hit

    def exhausted_after(self, hit: int) -> bool:
        """True when no later hit can fire (plan can be dropped)."""
        if self.every_hit:
            return False
        if self.hits is not None:
            return hit >= self.hits[-1]
        return hit >= self.at_hit


class FailureInjector:
    """Registry of armed crash plans and per-site hit counters.

    A disarmed injector is free: :meth:`site` is a counter bump and a dict
    miss.  Sites are plain strings like ``"merge.mid"`` or
    ``"persist.before_root_swap"``; the list of sites a structure exposes is
    part of its testable surface.
    """

    def __init__(self) -> None:
        self._plans: Dict[str, CrashPlan] = {}
        self.hits: Dict[str, int] = {}
        self.fired: List[str] = []

    def arm(self, site: str, at_hit: int = 1, *,
            hits: Optional[Sequence[int]] = None,
            every_hit: bool = False) -> None:
        """Schedule a crash at visits of ``site``.

        ``at_hit`` fires once at the given 1-based visit; ``hits`` fires at
        each listed visit (e.g. ``hits=[2, 5]``); ``every_hit=True`` fires
        at *every* visit until the site is disarmed — chaos trials use the
        latter two to crash the same site more than once in one run.

        Overwrite semantics: at most one plan exists per site.  Arming a
        site that already has a plan **replaces** the old plan entirely
        (its remaining hits are forgotten); it never merges hit lists.
        Use :meth:`disarm` first if the replacement should be explicit.

        When ``site`` is not in the central registry
        (:mod:`repro.nvbm.sites`) the plan would never fire: under pytest
        or ``repro analyze`` (see :func:`_strict_sites`) this **raises**
        :class:`~repro.errors.UnknownCrashSiteError`; elsewhere it warns.
        """
        if not site_registry.is_known(site):
            message = (
                f"arming unknown crash site {site!r}; it is not in "
                "repro.nvbm.sites and will never fire unless code declares "
                "it — register() it if intentional"
            )
            if _strict_sites():
                raise UnknownCrashSiteError(message)
            warnings.warn(message, UnknownCrashSiteWarning, stacklevel=2)
        self._plans[site] = CrashPlan(
            site, at_hit, hits=tuple(hits) if hits is not None else None,
            every_hit=every_hit,
        )

    def disarm(self, site: Optional[str] = None) -> None:
        """Remove one plan, or all plans when ``site`` is None."""
        if site is None:
            self._plans.clear()
        else:
            self._plans.pop(site, None)

    def site(self, name: str) -> None:
        """Declare a crash site; raises SimulatedCrash when an armed plan fires."""
        self.hits[name] = self.hits.get(name, 0) + 1
        plan = self._plans.get(name)
        if plan is not None and plan.fires_at(self.hits[name]):
            if plan.exhausted_after(self.hits[name]):
                del self._plans[name]
            self.fired.append(name)
            raise SimulatedCrash(name)

    def reset_hits(self) -> None:
        self.hits.clear()

    def reset(self) -> None:
        """Return to the freshly-constructed state: no plans, counters or
        history.  Harnesses call this between experiment repetitions so hit
        counts (and the ``fired`` log) do not leak across runs."""
        self._plans.clear()
        self.hits.clear()
        self.fired.clear()

    @property
    def armed_sites(self) -> List[str]:
        return sorted(self._plans)


#: A process-wide injector used when callers do not supply their own.
_default_injector = FailureInjector()


def default_injector() -> FailureInjector:
    """The shared injector (convenient for examples; tests pass their own)."""
    return _default_injector
