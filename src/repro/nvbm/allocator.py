"""Record allocators for memory arenas.

:class:`RecordAllocator` is a plain LIFO free-list allocator.  §3.2's
deletion optimisation — deleted NVBM octants are only *marked* and their
slots recycled by GC later — maps to :meth:`RecordAllocator.free` being
called by the garbage collector, never by the deletion path itself.

LIFO recycling concentrates writes on a few slots, which is exactly wrong
for a medium with a 1e6-1e8 writes/bit endurance budget (Table 2).
:class:`WearLevelingAllocator` recycles FIFO instead, rotating allocations
across the whole slot space so per-cell wear approaches the theoretical
minimum (total writes / capacity).  The endurance ablation benchmark
measures the difference.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Iterator, List, Set

import numpy as np

from repro.errors import InvalidHandleError, OutOfMemoryError


class RecordAllocator:
    """Allocates integer record indices in ``[0, capacity)``.

    Freed indices are recycled LIFO, which concentrates reuse on a small set
    of slots; the wear tracker in :class:`repro.nvbm.device.MemoryDevice`
    makes that policy's endurance cost observable.
    """

    def __init__(self, capacity: int, name: str = "arena"):
        if capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity}")
        self.capacity = capacity
        self.name = name
        self._bump = 0
        self._free: List[int] = []
        self._allocated = np.zeros(capacity, dtype=bool)
        self._retired: Set[int] = set()

    @property
    def used(self) -> int:
        """Number of live (allocated) record slots."""
        return self._bump - len(self._free) - len(self._retired)

    @property
    def retired(self) -> int:
        """Number of slots permanently taken out of rotation (bad media)."""
        return len(self._retired)

    @property
    def free_fraction(self) -> float:
        """Fraction of total capacity still available (drives thresholds)."""
        return 1.0 - (self.used + len(self._retired)) / self.capacity

    def alloc(self) -> int:
        """Return a fresh record index; raise OutOfMemoryError when full."""
        while True:
            if self._free:
                idx = self._free.pop()
            elif self._bump < self.capacity:
                idx = self._bump
                self._bump += 1
            else:
                raise OutOfMemoryError(self.name, self.capacity)
            if idx not in self._retired:
                break
        self._allocated[idx] = True
        return idx

    def free(self, index: int) -> None:
        """Return an index to the free list."""
        self._validate(index)
        self._allocated[index] = False
        self._free.append(index)

    def retire(self, index: int) -> None:
        """Permanently remove a slot whose media went bad.

        The slot is deallocated but *never* recycled: it joins the retired
        set that every alloc path skips.  Capacity shrinks accordingly
        (``free_fraction`` treats retired slots as spent).
        """
        self._validate(index)
        self._allocated[index] = False
        self._retired.add(index)

    def is_retired(self, index: int) -> bool:
        return index in self._retired

    def is_allocated(self, index: int) -> bool:
        return 0 <= index < self.capacity and bool(self._allocated[index])

    def _validate(self, index: int) -> None:
        if not (0 <= index < self.capacity):
            raise InvalidHandleError(f"{self.name}: index {index} out of range")
        if not self._allocated[index]:
            raise InvalidHandleError(f"{self.name}: index {index} is not allocated")

    def live_indices(self) -> Iterator[int]:
        """Iterate over currently-allocated indices (for GC sweeps)."""
        return iter(np.flatnonzero(self._allocated[: self._bump]))

    def reset(self) -> None:
        """Drop all allocations (used when a volatile arena loses power)."""
        self._bump = 0
        self._free.clear()
        self._allocated[:] = False
        self._retired.clear()


class WearLevelingAllocator(RecordAllocator):
    """FIFO-recycling allocator that spreads writes across all slots.

    Allocation order: unexhausted fresh slots round-robin with the
    longest-freed slots, so a slot freed now is the *last* candidate for
    reuse.  Over a steady churn of N-slot working set in a C-slot arena the
    max per-slot wear approaches total_writes/C instead of
    total_writes/N — extending device lifetime by ~C/N (the §1 endurance
    motivation).
    """

    def __init__(self, capacity: int, name: str = "arena"):
        super().__init__(capacity, name)
        self._fifo: Deque[int] = deque()

    def alloc(self) -> int:
        # prefer never-used slots first: they have zero wear by definition
        while True:
            if self._bump < self.capacity:
                idx = self._bump
                self._bump += 1
            elif self._fifo:
                idx = self._fifo.popleft()
            else:
                raise OutOfMemoryError(self.name, self.capacity)
            if idx not in self._retired:
                break
        self._allocated[idx] = True
        return idx

    def free(self, index: int) -> None:
        self._validate(index)
        self._allocated[index] = False
        self._fifo.append(index)

    @property
    def used(self) -> int:
        return int(self._allocated.sum())

    def reset(self) -> None:
        super().reset()
        self._fifo.clear()
