"""Lightweight trace spans on the simulated clock.

A span is one timed region — a simulation phase, a persist point, one
``ship()`` run — with a name, labels, and ``start_ns``/``end_ns`` read from
the :class:`~repro.nvbm.clock.SimClock` the tracer is bound to.  Spans nest
(``parent_id``), so an exported trace reconstructs the call tree:

    step > persist > pm.persist

Like the metrics registry, the tracer never reads wall time: span durations
are *simulated* nanoseconds, so a trace is deterministic for a fixed seed
and directly comparable to the paper's per-routine breakdowns.
"""

from __future__ import annotations

import json
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Dict, IO, Iterator, List, Optional


@dataclass
class Span:
    """One timed region on the simulated clock."""

    span_id: int
    parent_id: Optional[int]
    name: str
    start_ns: float
    end_ns: Optional[float] = None
    labels: Dict[str, Any] = field(default_factory=dict)

    @property
    def open(self) -> bool:
        return self.end_ns is None

    @property
    def duration_ns(self) -> float:
        if self.end_ns is None:
            raise ValueError(f"span {self.name!r} is still open")
        return self.end_ns - self.start_ns

    def to_row(self) -> Dict[str, Any]:
        return {
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "name": self.name,
            "start_ns": self.start_ns,
            "end_ns": self.end_ns,
            "duration_ns": None if self.end_ns is None else self.duration_ns,
            "labels": dict(self.labels),
        }


class Tracer:
    """Records nested spans against one simulated clock."""

    def __init__(self, clock=None, keep: int = 100_000):
        self.clock = clock
        self.keep = keep
        self.spans: List[Span] = []
        self._stack: List[int] = []
        self._next_id = 1
        self.dropped = 0

    def bind_clock(self, clock) -> None:
        self.clock = clock

    @contextmanager
    def span(self, name: str, **labels) -> Iterator[Span]:
        """Open a span for the ``with`` block; closes even on exceptions."""
        if self.clock is None:
            raise ValueError(
                "tracer has no SimClock bound; call bind_clock() first"
            )
        sp = Span(
            span_id=self._next_id,
            parent_id=self._stack[-1] if self._stack else None,
            name=name,
            start_ns=self.clock.now_ns,
            labels=labels,
        )
        self._next_id += 1
        if len(self.spans) < self.keep:
            self.spans.append(sp)
        else:
            self.dropped += 1
        self._stack.append(sp.span_id)
        try:
            yield sp
        finally:
            self._stack.pop()
            sp.end_ns = self.clock.now_ns

    # -- queries -------------------------------------------------------------

    def named(self, name: str) -> List[Span]:
        return [s for s in self.spans if s.name == name]

    def total_ns(self, name: str) -> float:
        """Summed duration of all *closed* spans with this name."""
        return sum(s.duration_ns for s in self.named(name) if not s.open)

    def children_of(self, span: Span) -> List[Span]:
        return [s for s in self.spans if s.parent_id == span.span_id]

    # -- export --------------------------------------------------------------

    def to_jsonl(self) -> str:
        return "\n".join(
            json.dumps(s.to_row(), sort_keys=True) for s in self.spans
        )

    def export_jsonl(self, fh: IO[str]) -> int:
        """Write one JSON object per span line; returns the span count."""
        out = self.to_jsonl()
        if out:
            fh.write(out + "\n")
        return len(self.spans)
