"""Wiring helpers: attach one Observability to a built rig.

Components expose an optional ``obs`` attachment point (arena/device,
PM-octree, replication session, simulation driver); these helpers flip them
all on in one call and snapshot derived state (wear histograms, per-rank
phase timers) into the registry.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterable

if TYPE_CHECKING:  # pragma: no cover
    from repro.obs import Observability


def observe_arena(obs: "Observability", arena) -> None:
    """Attach counters to one arena and its device."""
    arena.attach_obs(obs)


def observe_tree(obs: "Observability", tree) -> None:
    """Attach PM-octree counters (no-op for baseline trees)."""
    if hasattr(tree, "attach_obs"):
        tree.attach_obs(obs)


def observe_session(obs: "Observability", session) -> None:
    """Attach replication-protocol counters to a ReplicaSession."""
    session.attach_obs(obs)


def observe_simulation(obs: "Observability", sim) -> None:
    """Attach phase/step spans to a simulation driver."""
    sim.obs = obs


def observe_rig(obs: "Observability", *, arenas: Iterable = (),
                tree=None, session=None, sim=None) -> "Observability":
    """Attach everything at once; returns ``obs`` for chaining."""
    for arena in arenas:
        observe_arena(obs, arena)
    if tree is not None:
        observe_tree(obs, tree)
    if session is not None:
        observe_session(obs, session)
    if sim is not None:
        observe_simulation(obs, sim)
    return obs


def snapshot_wear(obs: "Observability", device, device_label: str) -> None:
    """Record the device's per-slot write counts as an endurance histogram.

    One observation per *slot* (its current write count), so the histogram
    answers "how many slots have seen ~2^k writes" — the endurance-headroom
    distribution the bench envelope tracks.
    """
    hist = obs.metrics.histogram("device.wear_writes_per_slot",
                                 device=device_label)
    wear = device._wear
    for writes in wear[wear > 0]:
        hist.observe(float(writes))
    obs.metrics.gauge("device.wear_max", device=device_label).set(
        device.wear_max())
    obs.metrics.gauge("device.wear_headroom", device=device_label).set(
        device.wear_headroom())


def snapshot_clock(obs: "Observability", clock, rank=None) -> None:
    """Record one clock's per-phase and per-category totals as gauges."""
    labels = {} if rank is None else {"rank": rank}
    for phase, ns in clock.by_phase.items():
        obs.metrics.gauge("clock.phase_ns", phase=phase, **labels).set(ns)
    for category, ns in clock.by_category.items():
        obs.metrics.gauge("clock.category_ns", category=category,
                          **labels).set(ns)
    obs.metrics.gauge("clock.now_ns", **labels).set(clock.now_ns)
