"""Unified observability: metrics + trace spans on the simulated clock.

One :class:`Observability` bundles a :class:`~repro.obs.metrics.
MetricsRegistry` and a :class:`~repro.obs.trace.Tracer` bound to the same
:class:`~repro.nvbm.clock.SimClock`.  Attach it to a rig with the helpers
in :mod:`repro.obs.instrument` and every layer starts reporting:

* ``nvbm``: per-device read/write/byte counters, flush counts, wear
* ``core``: COW copies, in-place updates, C0<->C1 migrations, GC, persists
* ``replication``: ships, retries, resyncs, lost acks/deltas, wait time
* ``parallel``: per-rank per-phase timers
* ``solver``: step/refine/balance/solve/persist spans

Everything is timestamped on simulated nanoseconds — this package performs
**no wall-clock reads** (guarded by a test), so metric streams and traces
are deterministic and machine-independent.
"""

from __future__ import annotations

from typing import IO

from repro.obs.metrics import (  # noqa: F401
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from repro.obs.trace import Span, Tracer  # noqa: F401
from repro.obs.instrument import (  # noqa: F401
    observe_arena,
    observe_rig,
    observe_session,
    observe_simulation,
    observe_tree,
    snapshot_clock,
    snapshot_wear,
)


class Observability:
    """Metrics registry + tracer sharing one simulated clock."""

    def __init__(self, clock=None):
        self.clock = clock
        self.metrics = MetricsRegistry(clock)
        self.tracer = Tracer(clock)

    def bind_clock(self, clock) -> None:
        """Bind (or re-bind) the simulated clock everything stamps from."""
        self.clock = clock
        self.metrics.bind_clock(clock)
        self.tracer.bind_clock(clock)

    def export_jsonl(self, metrics_fh: IO[str] = None,
                     trace_fh: IO[str] = None) -> None:
        """Dump metrics and/or spans as JSON lines."""
        if metrics_fh is not None:
            self.metrics.export_jsonl(metrics_fh)
        if trace_fh is not None:
            self.tracer.export_jsonl(trace_fh)
