"""Unified metrics registry: counters, gauges and histograms.

Every sample is timestamped on the **simulated** clock — the registry holds
a :class:`~repro.nvbm.clock.SimClock` and stamps ``clock.now_ns`` at each
update.  There are deliberately no wall-clock reads anywhere in this
package: the paper's evaluation (Figs 3-11, Table 2) is a story of
simulated quantities, and mixing in host time would make the benchmark
envelope non-deterministic across machines.

Metric names are dot-separated (``device.writes``, ``pm.cow_copies``,
``replication.retries``); labels qualify one time series within a name
(``device=nvbm``, ``rank=3``, ``phase=solve``).  The full namespace is
documented in ``docs/observability.md``.
"""

from __future__ import annotations

import json
from typing import Any, Dict, IO, Iterator, List, Optional, Sequence, Tuple

#: Default histogram bucket upper bounds: powers of two, wide enough for
#: per-slot wear counts and protocol attempt counts alike.
DEFAULT_BUCKETS: Tuple[float, ...] = tuple(float(1 << i) for i in range(0, 21, 2))

LabelSet = Tuple[Tuple[str, str], ...]


def _labelset(labels: Dict[str, Any]) -> LabelSet:
    """Canonical (sorted, stringified) form of a label mapping."""
    return tuple(sorted((k, str(v)) for k, v in labels.items()))


class _Metric:
    """Shared bookkeeping: identity and last-update stamping."""

    kind = "metric"

    def __init__(self, name: str, labels: LabelSet,
                 registry: "MetricsRegistry"):
        self.name = name
        self.labels = labels
        self._registry = registry
        self.updated_ns: float = 0.0

    def _stamp(self) -> None:
        clock = self._registry.clock
        if clock is not None:
            self.updated_ns = clock.now_ns

    def sample(self) -> Dict[str, Any]:  # pragma: no cover - overridden
        raise NotImplementedError


class Counter(_Metric):
    """Monotonically increasing count (accesses, copies, retries...)."""

    kind = "counter"

    def __init__(self, name: str, labels: LabelSet,
                 registry: "MetricsRegistry"):
        super().__init__(name, labels, registry)
        self.value: float = 0

    def inc(self, v: float = 1) -> None:
        if v < 0:
            raise ValueError(f"counter {self.name} cannot decrease (v={v})")
        self.value += v
        self._stamp()

    def sample(self) -> Dict[str, Any]:
        return {"name": self.name, "type": self.kind,
                "labels": dict(self.labels), "value": self.value,
                "updated_ns": self.updated_ns}


class Gauge(_Metric):
    """Point-in-time value (free fraction, phase time, makespan)."""

    kind = "gauge"

    def __init__(self, name: str, labels: LabelSet,
                 registry: "MetricsRegistry"):
        super().__init__(name, labels, registry)
        self.value: float = 0

    def set(self, v: float) -> None:
        self.value = v
        self._stamp()

    def add(self, v: float) -> None:
        self.value += v
        self._stamp()

    def sample(self) -> Dict[str, Any]:
        return {"name": self.name, "type": self.kind,
                "labels": dict(self.labels), "value": self.value,
                "updated_ns": self.updated_ns}


class Histogram(_Metric):
    """Distribution over fixed bucket bounds (wear, attempts, sizes).

    ``bucket_counts[i]`` counts observations ``<= bounds[i]``; one overflow
    bucket counts the rest.  Cumulative counts are computed on export.
    """

    kind = "histogram"

    def __init__(self, name: str, labels: LabelSet,
                 registry: "MetricsRegistry",
                 buckets: Sequence[float] = DEFAULT_BUCKETS):
        super().__init__(name, labels, registry)
        self.bounds: Tuple[float, ...] = tuple(sorted(buckets))
        if not self.bounds:
            raise ValueError("histogram needs at least one bucket bound")
        self.bucket_counts: List[int] = [0] * (len(self.bounds) + 1)
        self.count: int = 0
        self.sum: float = 0.0
        self.min: Optional[float] = None
        self.max: Optional[float] = None

    def observe(self, v: float, n: int = 1) -> None:
        """Record ``n`` observations of value ``v``."""
        if n <= 0:
            return
        for i, bound in enumerate(self.bounds):
            if v <= bound:
                self.bucket_counts[i] += n
                break
        else:
            self.bucket_counts[-1] += n
        self.count += n
        self.sum += v * n
        self.min = v if self.min is None else min(self.min, v)
        self.max = v if self.max is None else max(self.max, v)
        self._stamp()

    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else 0.0

    def sample(self) -> Dict[str, Any]:
        return {"name": self.name, "type": self.kind,
                "labels": dict(self.labels),
                "count": self.count, "sum": self.sum,
                "min": self.min, "max": self.max,
                "buckets": [
                    {"le": b, "count": c}
                    for b, c in zip(self.bounds, self.bucket_counts)
                ] + [{"le": None, "count": self.bucket_counts[-1]}],
                "updated_ns": self.updated_ns}


class MetricsRegistry:
    """Get-or-create store of metrics, keyed by ``(name, labelset)``.

    The registry enforces one *kind* per name: registering ``pm.merges`` as
    a counter and later asking for a gauge of the same name is a bug, not a
    new time series.
    """

    def __init__(self, clock=None):
        self.clock = clock
        self._metrics: Dict[Tuple[str, LabelSet], _Metric] = {}
        self._kinds: Dict[str, str] = {}

    def bind_clock(self, clock) -> None:
        """Late-bind the simulated clock (harnesses that build it later)."""
        self.clock = clock

    def _get_or_create(self, cls, name: str, labels: Dict[str, Any],
                       **kwargs) -> _Metric:
        key = (name, _labelset(labels))
        metric = self._metrics.get(key)
        if metric is not None:
            if not isinstance(metric, cls):
                raise ValueError(
                    f"metric {name!r} already registered as {metric.kind}, "
                    f"not {cls.kind}"
                )
            return metric
        known = self._kinds.get(name)
        if known is not None and known != cls.kind:
            raise ValueError(
                f"metric name {name!r} is a {known}; cannot also be a "
                f"{cls.kind}"
            )
        metric = cls(name, key[1], self, **kwargs)
        self._metrics[key] = metric
        self._kinds[name] = cls.kind
        return metric

    def counter(self, name: str, **labels) -> Counter:
        return self._get_or_create(Counter, name, labels)

    def gauge(self, name: str, **labels) -> Gauge:
        return self._get_or_create(Gauge, name, labels)

    def histogram(self, name: str, buckets: Sequence[float] = DEFAULT_BUCKETS,
                  **labels) -> Histogram:
        return self._get_or_create(Histogram, name, labels, buckets=buckets)

    # -- queries -------------------------------------------------------------

    def get(self, name: str, **labels) -> Optional[_Metric]:
        return self._metrics.get((name, _labelset(labels)))

    def series(self, name: str) -> Iterator[_Metric]:
        """All time series registered under one name."""
        for (n, _), metric in self._metrics.items():
            if n == name:
                yield metric

    def total(self, name: str) -> float:
        """Sum of a counter/gauge across its label sets (0.0 when absent)."""
        return float(sum(
            m.value for m in self.series(name)
            if isinstance(m, (Counter, Gauge))
        ))

    def values(self, name: str) -> Dict[LabelSet, float]:
        """``{labelset: value}`` for one counter/gauge name."""
        return {
            m.labels: m.value for m in self.series(name)
            if isinstance(m, (Counter, Gauge))
        }

    def __len__(self) -> int:
        return len(self._metrics)

    # -- export --------------------------------------------------------------

    def samples(self) -> List[Dict[str, Any]]:
        """One dict per time series, sorted by (name, labels)."""
        return [
            self._metrics[key].sample()
            for key in sorted(self._metrics)
        ]

    def to_jsonl(self) -> str:
        return "\n".join(
            json.dumps(s, sort_keys=True) for s in self.samples()
        )

    def export_jsonl(self, fh: IO[str]) -> int:
        """Write one JSON object per line; returns the series count."""
        out = self.to_jsonl()
        if out:
            fh.write(out + "\n")
        return len(self._metrics)
