"""PM-octree: persistent merged octrees on non-volatile byte-addressable memory.

A reproduction of Nguyen, Tan & Zhang, *Large-Scale Adaptive Mesh
Simulations Through Non-Volatile Byte-Addressable Memory* (SC '17).

Public surface (see README.md for a tour):

* :mod:`repro.core` — the PM-octree data structure and its Table-1 API
  (``pm_create`` / ``pm_persistent`` / ``pm_restore`` / ``pm_delete``).
* :mod:`repro.nvbm` — the NVBM substrate: simulated clock, latency/wear
  device model, record arenas with crash semantics, failure injection.
* :mod:`repro.octree` — technology-neutral meshing (Morton codes, 2:1
  balancing, refinement engine, mesh extraction) over the
  :class:`~repro.octree.store.AdaptiveTree` protocol.
* :mod:`repro.baselines` — the in-core (Gerris-style) and out-of-core
  (Etree-style) comparison octrees.
* :mod:`repro.solver` — the droplet-ejection workload driving §5.
* :mod:`repro.parallel` — the simulated cluster and scaling driver.
* :mod:`repro.harness` — one experiment runner per table/figure.
"""

__version__ = "1.0.0"

from repro.config import (
    DRAM_SPEC,
    NVBM_SPEC,
    PMOctreeConfig,
    SolverConfig,
)
from repro.core import pm_create, pm_delete, pm_persistent, pm_restore
from repro.core.pmoctree import PMOctree
from repro.nvbm.arena import MemoryArena
from repro.nvbm.clock import SimClock
from repro.nvbm.pointers import ARENA_DRAM, ARENA_NVBM

__all__ = [
    "ARENA_DRAM",
    "ARENA_NVBM",
    "DRAM_SPEC",
    "MemoryArena",
    "NVBM_SPEC",
    "PMOctree",
    "PMOctreeConfig",
    "SimClock",
    "SolverConfig",
    "__version__",
    "pm_create",
    "pm_delete",
    "pm_persistent",
    "pm_restore",
]
