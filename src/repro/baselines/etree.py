"""Out-of-core baseline: an Etree-style paged linear octree.

Leaf octants are 128-byte records packed 32-to-a-page on a block device; a
B-tree (also on the device) maps each leaf's Morton Z-value to its
``(page, slot)``.  This reproduces the three §5.4 costs:

1. octants are not byte-addressable — the minimum I/O unit is a 4 KB page,
   so one octant update is a page read-modify-write;
2. finding an octant takes a B-tree descent (several page reads);
3. the octree is *linear* — no parent/child/neighbor pointers — so existence
   checks during balancing are index searches rather than pointer chases.

Durability is free (a block device survives crashes), which is why §5.6
reports instant single-node recovery for Etree — and no recovery at all when
the node's device is lost, absent replication.
"""

from __future__ import annotations

from typing import Iterator, List, Optional

from repro.config import OCTANT_RECORD_SIZE
from repro.errors import ReproError, StorageError
from repro.nvbm.records import OctantRecord, pack_record, unpack_record
from repro.octree import morton
from repro.octree.store import Payload, ZERO_PAYLOAD
from repro.storage.block import BlockDevice
from repro.storage.btree import BTree

#: Morton keys are computed at this fixed resolution so they stay stable as
#: the tree refines (Etree's "maximum depth" parameter).
ETREE_MAX_LEVEL = 16


class EtreeOctree:
    """AdaptiveTree over paged storage with a B-tree Z-value index."""

    def __init__(self, device: BlockDevice, dim: int = 2,
                 root_payload: Payload = ZERO_PAYLOAD):
        if dim not in (2, 3):
            raise ValueError(f"only dim 2 and 3 supported, got {dim}")
        self.device = device
        self.dim = dim
        self.slots_per_page = device.page_size // OCTANT_RECORD_SIZE
        if self.slots_per_page < 1:
            raise StorageError("page too small for an octant record")
        self.index = BTree(device, cache_internal=True)
        self._free_slots: List[int] = []
        self._fill_page: Optional[int] = None
        self._fill_used = 0
        self._count = 0
        self._store(OctantRecord(loc=morton.ROOT_LOC, level=0,
                                 payload=root_payload))

    # -- slot management -----------------------------------------------------

    def _key(self, loc: int) -> int:
        return morton.zorder_key(loc, self.dim, ETREE_MAX_LEVEL)

    def _loc_from_key(self, key: int, level: int) -> int:
        """Reconstruct a locational code from its Z key and level — the
        index alone names every leaf, no page read needed to enumerate."""
        aligned = key >> 6
        return (aligned >> (self.dim * (ETREE_MAX_LEVEL - level))) | (
            1 << (self.dim * level)
        )

    def _alloc_slot(self) -> int:
        if self._free_slots:
            return self._free_slots.pop()
        if self._fill_page is None or self._fill_used == self.slots_per_page:
            self._fill_page = self.device.alloc_page()
            self.device.write_page(self._fill_page, b"\x00" * self.device.page_size)
            self._fill_used = 0
        ref = self._fill_page * self.slots_per_page + self._fill_used
        self._fill_used += 1
        return ref

    def _write_slot(self, ref: int, rec: OctantRecord) -> None:
        page, slot = divmod(ref, self.slots_per_page)
        data = bytearray(self.device.read_page(page))  # page-granular RMW
        off = slot * OCTANT_RECORD_SIZE
        data[off: off + OCTANT_RECORD_SIZE] = pack_record(rec)
        self.device.write_page(page, bytes(data))

    def _read_slot(self, ref: int) -> OctantRecord:
        page, slot = divmod(ref, self.slots_per_page)
        data = self.device.read_page(page)
        off = slot * OCTANT_RECORD_SIZE
        return unpack_record(data[off: off + OCTANT_RECORD_SIZE])

    def _store(self, rec: OctantRecord) -> None:
        ref = self._alloc_slot()
        self._write_slot(ref, rec)
        # value packs (slot ref, level): the level lets leaf enumeration
        # reconstruct locational codes straight from the index
        self.index.put(self._key(rec.loc), (ref << 6) | rec.level)
        self._count += 1

    def _lookup(self, loc: int) -> Optional[int]:
        if morton.level_of(loc, self.dim) > ETREE_MAX_LEVEL:
            return None
        packed = self.index.get(self._key(loc))
        return None if packed is None else packed >> 6

    def _remove(self, loc: int) -> None:
        ref = self._lookup(loc)
        if ref is None:
            raise ReproError(f"octant {loc:#x} not stored")
        self.index.delete(self._key(loc))
        self._free_slots.append(ref)
        self._count -= 1

    # -- AdaptiveTree protocol --------------------------------------------------

    def root_loc(self) -> int:
        return morton.ROOT_LOC

    def exists(self, loc: int) -> bool:
        """Stored leaf, or implied internal octant (has stored descendants)."""
        if self._lookup(loc) is not None:
            return True
        return self._has_descendant(loc)

    def _has_descendant(self, loc: int) -> bool:
        level = morton.level_of(loc, self.dim)
        if level >= ETREE_MAX_LEVEL:
            return False
        lo = self._key(morton.child_of(loc, self.dim, 0))
        # last possible descendant key: deepest rightmost cell under loc
        span = ETREE_MAX_LEVEL - level
        aligned = (loc - (1 << (self.dim * level))) << (self.dim * span)
        hi = ((aligned + (1 << (self.dim * span)) - 1) << 6) | 0x3F
        for _k, _v in self.index.range(lo, hi):
            return True
        return False

    def is_leaf(self, loc: int) -> bool:
        return self._lookup(loc) is not None

    def leaves(self) -> Iterator[int]:
        for key, packed in list(self.index.items()):
            yield self._loc_from_key(key, packed & 0x3F)

    def num_octants(self) -> int:
        """Stored octants (leaves; internal octants are implicit)."""
        return self._count

    def num_leaves(self) -> int:
        return self._count

    def get_payload(self, loc: int) -> Payload:
        ref = self._lookup(loc)
        if ref is None:
            raise ReproError(f"octant {loc:#x} not stored (only leaves are)")
        return self._read_slot(ref).payload

    def set_payload(self, loc: int, payload: Payload) -> None:
        ref = self._lookup(loc)
        if ref is None:
            raise ReproError(f"octant {loc:#x} not stored (only leaves are)")
        rec = self._read_slot(ref)
        rec.payload = tuple(payload)
        self._write_slot(ref, rec)

    def refine(self, loc: int) -> List[int]:
        ref = self._lookup(loc)
        if ref is None:
            raise ReproError(f"cannot refine non-leaf {loc:#x}")
        rec = self._read_slot(ref)
        if rec.level >= ETREE_MAX_LEVEL:
            raise ReproError(f"max Etree depth {ETREE_MAX_LEVEL} reached")
        self._remove(loc)
        child_locs = morton.children_of(loc, self.dim)
        for cloc in child_locs:
            self._store(OctantRecord(
                loc=cloc, level=rec.level + 1, payload=tuple(rec.payload),
            ))
        return child_locs

    def coarsen(self, loc: int) -> None:
        child_locs = morton.children_of(loc, self.dim)
        recs = []
        for cloc in child_locs:
            ref = self._lookup(cloc)
            if ref is None:
                raise ReproError(
                    f"cannot coarsen {loc:#x}: child {cloc:#x} is not a leaf"
                )
            recs.append(self._read_slot(ref))
        for cloc in child_locs:
            self._remove(cloc)
        n = len(recs)
        mean_payload = tuple(
            sum(r.payload[i] for r in recs) / n for i in range(4)
        )
        self._store(OctantRecord(
            loc=loc, level=morton.level_of(loc, self.dim),
            payload=mean_payload,
        ))

    # -- recovery ---------------------------------------------------------------

    def recover_check(self) -> int:
        """Post-crash sanity pass: Etree data is durable by construction, so
        recovery is just verifying the index walks (§5.6: "the program can
        immediately access octants").  Returns the leaf count."""
        n = 0
        for _ in self.leaves():
            n += 1
        if n != self._count:
            raise ReproError("index count does not match stored leaves")
        return n
