"""The paper's two comparison points (§5.1).

* :class:`~repro.baselines.incore.InCoreOctree` — Gerris' existing design:
  an ephemeral pointer octree entirely in DRAM, persisted by writing a
  snapshot *file* through a filesystem every k time steps.  Fast meshing,
  slow checkpoints, recovery = re-read the whole snapshot.
* :class:`~repro.baselines.etree.EtreeOctree` — the out-of-core design: all
  octants live in 4 KB pages on a block device behind a B-tree index keyed
  by Morton Z-value.  Always durable, but every octant access pays index
  descents and page-granular read-modify-writes, and 2:1 balancing has no
  pointers to lean on.
"""

from repro.baselines.incore import InCoreOctree
from repro.baselines.etree import EtreeOctree

__all__ = ["EtreeOctree", "InCoreOctree"]
