"""In-core baseline: Gerris' ephemeral octree + snapshot-file checkpoints.

All octants live in DRAM; meshing is as fast as memory allows.  Data
reliability comes from periodically serialising the whole tree into a
snapshot file (``gfs_output_write``), and recovery reads it back
(``gfs_simulation_read``) — full-tree I/O both ways, which is the cost
PM-octree's §5.6 numbers are compared against.
"""

from __future__ import annotations

import struct
from typing import List, Optional

from repro.errors import RecoveryError
from repro.nvbm.arena import MemoryArena
from repro.octree import morton
from repro.octree.tree import PointerOctree
from repro.storage.filesystem import SimFileSystem

#: Snapshot record: loc (Q), flags (B), 4 payload doubles.
_SNAP = struct.Struct("<QB4d")
_HEADER = struct.Struct("<4sBQ")
_MAGIC = b"GFS1"


class InCoreOctree(PointerOctree):
    """Pointer octree in DRAM with file-based checkpoint/restore."""

    def __init__(self, arena: MemoryArena, dim: int = 2, **kwargs):
        if not arena.spec.volatile:
            raise ValueError("the in-core baseline keeps its octree in DRAM")
        super().__init__(arena, dim=dim, **kwargs)

    # -- checkpointing -------------------------------------------------------

    def checkpoint(self, fs: SimFileSystem, name: str) -> int:
        """Serialise every octant into a snapshot file; returns bytes written."""
        from repro.octree.traversal import preorder

        chunks: List[bytes] = []
        count = 0
        for loc in preorder(self):
            rec = self.get_record(loc)
            chunks.append(_SNAP.pack(rec.loc, rec.flags, *rec.payload))
            count += 1
        blob = _HEADER.pack(_MAGIC, self.dim, count) + b"".join(chunks)
        f = fs.create(name)
        f.append(blob)
        return len(blob)

    @classmethod
    def restore_from(cls, fs: SimFileSystem, name: str, arena: MemoryArena
                     ) -> "InCoreOctree":
        """Rebuild the tree from a snapshot file (the §5.6 recovery path)."""
        try:
            blob = fs.open(name).read_all()
        except Exception as exc:
            raise RecoveryError(f"cannot open snapshot {name!r}: {exc}") from exc
        if len(blob) < _HEADER.size:
            raise RecoveryError(f"snapshot {name!r} is truncated")
        magic, dim, count = _HEADER.unpack_from(blob, 0)
        if magic != _MAGIC:
            raise RecoveryError(f"snapshot {name!r} has bad magic {magic!r}")
        expected = _HEADER.size + count * _SNAP.size
        if len(blob) < expected:
            raise RecoveryError(
                f"snapshot {name!r} is truncated: {len(blob)} < {expected}"
            )
        entries = []
        off = _HEADER.size
        for _ in range(count):
            fields = _SNAP.unpack_from(blob, off)
            off += _SNAP.size
            entries.append((fields[0], fields[1], fields[2:6]))
        tree = cls(arena, dim=dim)
        # parents come before children in the preorder dump
        from repro.nvbm.records import FLAG_LEAF

        for loc, flags, payload in entries:
            if loc != morton.ROOT_LOC and not tree.exists(loc):
                raise RecoveryError(
                    f"snapshot {name!r} lists orphan octant {loc:#x}"
                )
            if not (flags & FLAG_LEAF):
                tree.refine(loc)
            tree.set_payload(loc, payload)
        return tree


class CheckpointPolicy:
    """"Save a snapshot every ``interval`` steps" (the paper uses 10)."""

    def __init__(self, fs: SimFileSystem, interval: int = 10,
                 basename: str = "snapshot"):
        if interval < 1:
            raise ValueError("interval must be >= 1")
        self.fs = fs
        self.interval = interval
        self.basename = basename
        self.last_step: Optional[int] = None

    def file_for(self, step: int) -> str:
        return f"{self.basename}.gfs"

    def maybe_checkpoint(self, tree: InCoreOctree, step: int) -> int:
        """Checkpoint when the step hits the cadence; returns bytes written."""
        if step % self.interval != 0:
            return 0
        written = tree.checkpoint(self.fs, self.file_for(step))
        self.last_step = step
        return written

    def latest(self) -> str:
        if self.last_step is None:
            raise RecoveryError("no checkpoint has been written yet")
        return self.file_for(self.last_step)
