"""Command-line interface: run the workloads and experiments from a shell.

    python -m repro simulate --backend pm-octree --steps 50
    python -m repro experiment fig10
    python -m repro recover
    python -m repro analyze --static --trace --sweep
    python -m repro chaos --trials 25 --seed 0
    python -m repro export-vtk --out mesh.vtk --steps 40
    python -m repro list

Every command prints the same tables the benchmark suite asserts on.
``analyze`` and ``chaos`` exit non-zero on any finding, so CI can gate
on them.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.harness import experiments as E
from repro.harness.report import print_table
from repro.parallel.runtime import Backend

#: experiment name -> (runner, short description)
EXPERIMENTS = {
    "table2": (E.exp_table2, "Table 2: device characteristics"),
    "fig3": (E.exp_fig3, "Fig 3: overlap ratio & memory per 1000 octants"),
    "fig5": (E.exp_fig5, "Fig 5: locality-oblivious vs aware layout"),
    "fig6": (E.exp_weak_scaling, "Fig 6/7: weak scaling + breakdown"),
    "fig8": (E.exp_strong_scaling, "Fig 8/9: strong scaling"),
    "fig10": (E.exp_fig10, "Fig 10: DRAM size for the C0 tree"),
    "fig11": (E.exp_fig11, "Fig 11: dynamic transformation"),
    "recovery": (E.exp_recovery, "§5.6: failure recovery"),
    "write-intensity": (E.exp_write_intensity, "§1: write intensity"),
    "ablation": (E.exp_ablation_sampling, "sampling-policy ablation"),
}


def _cmd_list(_args) -> int:
    print_table(
        "available experiments",
        ["name", "description"],
        [(name, desc) for name, (_fn, desc) in sorted(EXPERIMENTS.items())],
    )
    return 0


def _cmd_experiment(args) -> int:
    try:
        fn, desc = EXPERIMENTS[args.name]
    except KeyError:
        print(f"unknown experiment {args.name!r}; try `python -m repro list`",
              file=sys.stderr)
        return 2
    print(f"running {desc} ...")
    result = fn()
    _render_result(args.name, result)
    return 0


def _render_result(name: str, result) -> None:
    if name == "table2":
        print_table("Table 2", ["device", "read ns", "write ns", "endurance"],
                    result)
    elif name == "fig3":
        rows = result[:: max(1, len(result) // 15)]
        print_table(
            "Fig 3", ["step", "overlap", "octants", "KB/1000"],
            [(r.step, r.overlap_ratio, r.octants, r.kb_per_1000_octants)
             for r in rows],
        )
    elif name == "fig5":
        print_table("Fig 5", ["layout", "NVBM writes"], [
            ("oblivious", result.writes_oblivious),
            ("aware", result.writes_aware),
            ("% more", f"{result.pct_more_writes:.0f}%"),
        ])
    elif name in ("fig6", "fig8"):
        points = E.WEAK_POINTS if name == "fig6" else E.STRONG_POINTS
        rows = []
        for i, p in enumerate(points):
            rows.append([p] + [
                result[b][i].makespan_s for b in result
            ])
        print_table(
            "execution time (simulated s)",
            ["P"] + [b.value for b in result],
            rows,
        )
    elif name == "fig10":
        print_table("Fig 10", ["configuration", "budget", "time (s)", "merges"],
                    [(r.label, r.dram_budget_octants, r.makespan_s, r.merges)
                     for r in result])
    elif name == "fig11":
        print_table(
            "Fig 11",
            ["elements", "w/o (s)", "w/ (s)", "time cut", "write cut"],
            [(f"{r.target_elements:.3g}", r.time_without_s, r.time_with_s,
              f"{r.time_reduction_pct:.1f}%", f"{r.write_reduction_pct:.1f}%")
             for r in result],
        )
    elif name == "recovery":
        print_table("§5.6", ["implementation", "same node (s)", "new node (s)"], [
            ("in-core", result.incore_same_node_s, result.incore_new_node_s),
            ("PM-octree", result.pm_same_node_s, result.pm_new_node_s),
            ("out-of-core", result.ooc_same_node_s, "unrecoverable"),
        ])
    elif name == "write-intensity":
        print_table("§1", ["metric", "value"], [
            ("avg write %", f"{result.avg_pct:.1f}"),
            ("max write %", f"{result.max_pct:.1f}"),
        ])
    elif name == "ablation":
        print_table("ablation", ["policy", "NVBM writes", "time (s)"],
                    [(r.policy, r.nvbm_writes, r.makespan_s) for r in result])


def _make_tree(backend: Backend, max_level: int):
    from repro.config import (
        DRAM_SPEC, NVBM_FS_SPEC, NVBM_SPEC, PMOctreeConfig,
    )
    from repro.nvbm.arena import MemoryArena
    from repro.nvbm.clock import SimClock
    from repro.nvbm.pointers import ARENA_DRAM, ARENA_NVBM
    from repro.storage.block import BlockDevice
    from repro.storage.filesystem import SimFileSystem

    clock = SimClock()
    if backend is Backend.PM_OCTREE:
        from repro.core import pm_create

        dram = MemoryArena(ARENA_DRAM, DRAM_SPEC, clock, 1 << 16)
        nvbm = MemoryArena(ARENA_NVBM, NVBM_SPEC, clock, 1 << 20)
        tree = pm_create(dram, nvbm, dim=2,
                         config=PMOctreeConfig(dram_capacity_octants=1 << 16))
        persistence = lambda sim: tree.persist()
    elif backend is Backend.IN_CORE:
        from repro.baselines.incore import CheckpointPolicy, InCoreOctree

        dram = MemoryArena(ARENA_DRAM, DRAM_SPEC, clock, 1 << 18)
        fs = SimFileSystem(BlockDevice(NVBM_FS_SPEC, clock))
        tree = InCoreOctree(dram, dim=2)
        policy = CheckpointPolicy(fs)
        persistence = lambda sim: policy.maybe_checkpoint(tree, sim.step_count)
    else:
        from repro.baselines.etree import EtreeOctree

        tree = EtreeOctree(BlockDevice(NVBM_FS_SPEC, clock), dim=2)
        persistence = None
    return clock, tree, persistence


def _cmd_simulate(args) -> int:
    from repro.config import SolverConfig
    from repro.solver.simulation import DropletSimulation

    backend = Backend(args.backend)
    clock, tree, persistence = _make_tree(backend, args.max_level)
    solver = SolverConfig(dim=2, min_level=2, max_level=args.max_level,
                          dt=0.01)
    sim = DropletSimulation(tree, solver, clock=clock,
                            persistence=persistence)
    reports = sim.run(args.steps)
    rows = [
        (r.step, f"{r.t:.2f}", r.leaves, r.droplets)
        for r in reports[:: max(1, len(reports) // 12)]
    ]
    print_table(f"droplet ejection on {backend.value}",
                ["step", "t", "leaves", "droplets"], rows)
    print(f"\nsimulated execution time: {clock.now_s:.4f} s")
    return 0


def _cmd_recover(_args) -> int:
    res = E.exp_recovery()
    _render_result("recovery", res)
    return 0


def _baseline_diff(baseline_path: str, fingerprints: List[str]) -> List[dict]:
    """Diff current finding fingerprints against a committed baseline.

    Returns one row per difference: ``new`` findings (not in the baseline —
    a regression) and ``stale`` baseline entries (fixed findings whose
    baseline line must be deleted so the debt cannot silently come back).
    An empty list means the tree matches the baseline exactly.
    """
    import json

    with open(baseline_path) as fh:
        base = json.load(fh)
    known = list(base.get("fingerprints", []))
    current = list(fingerprints)
    rows = []
    for fp in sorted(set(current) - set(known)):
        rows.append({"status": "new", "fingerprint": fp,
                     "detail": "finding not in baseline — fix it or add it "
                               "to the baseline with a review"})
    for fp in sorted(set(known) - set(current)):
        rows.append({"status": "stale", "fingerprint": fp,
                     "detail": "baseline entry no longer observed — delete "
                               "it from the baseline"})
    return rows


def _export_metrics(sections: dict, out_path: str) -> None:
    """Export finding counts as obs metrics (one counter per section/rule).

    The analyzer is offline — there is no simulated clock — so samples carry
    ``updated_ns == 0``; CI dashboards key on the label set, not the stamp.
    """
    from repro.obs import MetricsRegistry

    reg = MetricsRegistry()
    for name, rows in sections.items():
        if name == "sweep":
            reg.counter("analysis.sweep.sites").inc(len(rows))
            failures = sum(1 for r in rows if r.get("recovered") is False)
            reg.counter("analysis.sweep.failures").inc(failures)
            continue
        # a zero-valued total per section distinguishes "ran clean"
        # from "section never ran" in the exported stream
        reg.counter("analysis.findings.total", section=name).inc(len(rows))
        for r in rows:
            rule = str(r.get("rule") or r.get("kind") or r.get("status")
                       or name)
            reg.counter("analysis.findings", section=name, rule=rule).inc()
    with open(out_path, "w") as fh:
        reg.export_jsonl(fh)


def _cmd_analyze(args) -> int:
    """Crash-consistency analysis: pmlint / dataflow / coverage / trace /
    site sweep, plus optional baseline gating and metrics export."""
    import os

    # A typo'd crash-site name armed during analysis must fail the run,
    # not silently never fire (FailureInjector strict mode).
    os.environ.setdefault("REPRO_STRICT_SITES", "1")

    from repro.analysis import (
        analyze_paths, analyze_repo, lint_paths, lint_repo, prove_coverage,
        sweep_all, trace_run,
    )
    from repro.harness.report import render_json

    run_all = not (args.static or args.trace or args.sweep
                   or args.interprocedural or args.coverage)
    sections = {}
    ok = True
    #: interprocedural + coverage findings are the baseline-gated set;
    #: when --baseline is given the diff decides pass/fail for them.
    gated = []
    coverage_summary = None
    epoch_count = None

    if args.static or run_all:
        if args.path:
            findings = lint_paths(args.path)
        else:
            findings = lint_repo()
        sections["static"] = [f.to_row() for f in findings]
        ok = ok and not findings

    result = None
    if args.interprocedural or args.coverage or run_all:
        if args.path:
            result = analyze_paths(args.path)
        else:
            result = analyze_repo()

    if args.interprocedural or run_all:
        sections["interprocedural"] = [f.to_row() for f in result.findings]
        gated.extend(result.findings)

    if args.coverage or run_all:
        report = prove_coverage(result)
        sections["coverage"] = report.finding_rows()
        coverage_summary = report.summary()
        gated.extend(report.findings)

    if args.baseline:
        diff = _baseline_diff(args.baseline,
                              [f.fingerprint() for f in gated])
        sections["baseline"] = diff
        ok = ok and not diff
    else:
        ok = ok and not gated

    if args.trace or run_all:
        tracker = trace_run(steps=args.steps,
                            strict_epochs=args.strict_epochs)
        rows = tracker.report_rows()
        sections["trace"] = [r for r in rows
                             if r["kind"] != "cross-epoch-waf"]
        sections["epochs"] = [r for r in rows
                              if r["kind"] == "cross-epoch-waf"]
        epoch_count = tracker.counts["epochs"]
        ok = ok and not tracker.violations

    if args.sweep or run_all:
        outcomes = sweep_all(max_steps=args.steps)
        sections["sweep"] = [o.to_row() for o in outcomes]
        ok = ok and all(o.ok for o in outcomes)

    if args.metrics_out:
        _export_metrics(sections, args.metrics_out)

    if args.json:
        print(render_json(sections, ok))
        return 0 if ok else 1

    if "static" in sections:
        rows = sections["static"]
        if rows:
            print_table("pmlint findings", ["rule", "where", "message"],
                        [(r["rule"], f"{r['path']}:{r['line']}", r["message"])
                         for r in rows])
        else:
            print("pmlint: clean (0 findings)")
    if "interprocedural" in sections:
        rows = sections["interprocedural"]
        if rows:
            print_table(
                "dataflow findings", ["rule", "where", "witness chain"],
                [(r["rule"], f"{r['path']}:{r['line']}",
                  " -> ".join(r["chain"]) or "-") for r in rows],
            )
            for r in rows:
                print(f"  {r['path']}:{r['line']}: {r['message']}")
        else:
            print("dataflow: clean (0 findings)")
    if "coverage" in sections:
        rows = sections["coverage"]
        if rows:
            print_table(
                "coverage findings", ["rule", "where", "message"],
                [(r["rule"], f"{r['path']}:{r['line']}", r["message"])
                 for r in rows],
            )
        else:
            s = coverage_summary or {}
            print(f"coverage: proven — {s.get('windows', 0)} "
                  f"mutate->publish window(s) and {s.get('retires', 0)} "
                  "retire(s) all contain a registered crash site "
                  f"({s.get('declared_sites', 0)} sites anchored)")
    if "baseline" in sections:
        rows = sections["baseline"]
        if rows:
            print_table("baseline drift", ["status", "fingerprint", "detail"],
                        [(r["status"], r["fingerprint"], r["detail"])
                         for r in rows])
        else:
            print("baseline: matches (no new or stale findings)")
    if "trace" in sections:
        rows = sections["trace"] + sections["epochs"]
        if rows:
            print_table("ordering violations",
                        ["kind", "handle", "slot", "detail"],
                        [(r["kind"], r["handle"], r["slot"], r["detail"])
                         for r in rows])
        else:
            epochs = (f", {epoch_count} persist epoch(s) opened+closed"
                      if epoch_count is not None else "")
            strict = " [strict-epochs]" if args.strict_epochs else ""
            print(f"ordering trace: clean (0 violations{epochs}){strict}")
    if "sweep" in sections:
        print_table(
            "crash-site sweep",
            ["site", "fired", "recovered", "matched", "detail"],
            [(r["site"], r["fired"], r["recovered"], r["matched"],
              r["detail"]) for r in sections["sweep"]],
        )
        bad = [r for r in sections["sweep"] if r["recovered"] is False]
        print(f"\nsweep: {len(sections['sweep'])} sites, "
              f"{len(bad)} recovery failure(s)")
    return 0 if ok else 1


def _cmd_chaos(args) -> int:
    """Seeded chaos run: random fault schedules, recovery invariants."""
    from repro.harness.chaos import run_chaos
    from repro.harness.report import render_json

    report = run_chaos(trials=args.trials, seed=args.seed, steps=args.steps,
                       break_acks=args.break_acks, only_trial=args.trial,
                       media=args.media, pipeline=args.pipeline)

    if args.json:
        sections = {
            "trials": [t.to_row() for t in report.trials],
            "reproducer": ([report.reproducer]
                           if report.reproducer is not None else []),
        }
        print(render_json(sections, report.ok))
        return 0 if report.ok else 1

    print_table(
        f"chaos (seed={report.seed}, {len(report.trials)} trials)",
        ["trial", "outcome", "steps", "recoveries", "retries", "resyncs",
         "wait (ms)", "events"],
        [(r["trial"], r["outcome"], r["steps"], r["recoveries"],
          r["retries"], r["resyncs"], r["wait_ms"], r["events"])
         for r in (t.to_row() for t in report.trials)],
    )
    print(f"\nchaos: {report.passed} passed, {report.failed} failed")
    for t in report.trials:
        if t.outcome == "degraded":
            print(f"  trial {t.trial}: Degraded — {t.degraded_reason}")
    if report.reproducer is not None:
        rep = report.reproducer
        print("\nFAILURE — minimal seeded reproducer:")
        for v in rep["violations"]:
            print(f"  violation: {v}")
        print(f"  minimal schedule: {rep['minimal_schedule']}")
        print(f"  replay with: {rep['command']}")
    return 0 if report.ok else 1


def _cmd_bench(args) -> int:
    """Run the pinned benchmark suite; optionally gate against a baseline."""
    import json

    from repro.harness.bench import compare_envelopes, run_bench
    from repro.harness.report import render_json, validate_envelope

    if args.current:
        with open(args.current) as fh:
            env = json.load(fh)
    else:
        env = run_bench(pr=args.pr, wall=args.wall)
    problems = validate_envelope(env)
    if problems:
        for p in problems:
            print(f"bench: invalid envelope: {p}", file=sys.stderr)
        return 2
    if args.out:
        with open(args.out, "w") as fh:
            json.dump(env, fh, indent=2, sort_keys=True)
            fh.write("\n")
        print(f"wrote {args.out}", file=sys.stderr)

    if args.compare:
        with open(args.compare) as fh:
            baseline = json.load(fh)
        base_problems = validate_envelope(baseline)
        if base_problems:
            for p in base_problems:
                print(f"bench: invalid baseline: {p}", file=sys.stderr)
            return 2
        rep = compare_envelopes(baseline, env)
        if args.json:
            print(render_json({"regressions": rep.rows()}, rep.ok))
        elif rep.ok:
            print(f"bench: OK — {rep.checked} gates within tolerance")
        else:
            print_table(
                "bench regressions",
                ["metric", "kind", "baseline", "current", "tolerance"],
                [(r.metric, r.kind, r.baseline, r.current,
                  f"{r.tolerance:.0%}") for r in rep.regressions],
            )
            for r in rep.regressions:
                print(f"  {r.describe()}")
        return 0 if rep.ok else 1

    if args.json:
        print(json.dumps(env, indent=2, sort_keys=True))
    else:
        print_table("bench metrics", ["metric", "value"],
                    sorted(env["metrics"].items()))
    return 0


def _cmd_export_vtk(args) -> int:
    from repro.config import SolverConfig
    from repro.octree.vtkout import tree_to_vtk
    from repro.solver.simulation import DropletSimulation

    clock, tree, persistence = _make_tree(Backend.PM_OCTREE, args.max_level)
    solver = SolverConfig(dim=2, min_level=2, max_level=args.max_level,
                          dt=0.01)
    sim = DropletSimulation(tree, solver, clock=clock,
                            persistence=persistence)
    sim.run(args.steps)
    vtk = tree_to_vtk(tree, payload_slot=0, field_name="vof",
                      title=f"droplet ejection t={sim.t:.2f}")
    with open(args.out, "w") as fh:
        fh.write(vtk)
    print(f"wrote {args.out}: {tree.num_leaves()} cells at t={sim.t:.2f}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="PM-octree (SC'17) reproduction command-line interface",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list available experiments") \
        .set_defaults(func=_cmd_list)

    p = sub.add_parser("experiment", help="run one experiment by name")
    p.add_argument("name", help="e.g. fig10 (see `list`)")
    p.set_defaults(func=_cmd_experiment)

    p = sub.add_parser("simulate", help="run the droplet workload")
    p.add_argument("--backend", default="pm-octree",
                   choices=[b.value for b in Backend])
    p.add_argument("--steps", type=int, default=50)
    p.add_argument("--max-level", type=int, default=6)
    p.set_defaults(func=_cmd_simulate)

    sub.add_parser("recover", help="run the §5.6 recovery comparison") \
        .set_defaults(func=_cmd_recover)

    p = sub.add_parser(
        "analyze",
        help="crash-consistency checks: static lint, interprocedural "
             "dataflow, crash-site coverage proof, ordering trace, "
             "exhaustive crash-site sweep (default: all five)",
    )
    p.add_argument("--static", action="store_true",
                   help="run pmlint over the library source")
    p.add_argument("--interprocedural", action="store_true",
                   help="run the interprocedural flush/publish dataflow "
                        "pass (call-chain witnesses)")
    p.add_argument("--coverage", action="store_true",
                   help="prove every mutate->publish window and journal "
                        "retire contains a registered crash site")
    p.add_argument("--trace", action="store_true",
                   help="run the workload with the runtime ordering tracker")
    p.add_argument("--strict-epochs", action="store_true",
                   help="raise on cross-epoch write-after-flush races in "
                        "--trace (a no-op on the synchronous pipeline; "
                        "gates the future pipelined persist)")
    p.add_argument("--sweep", action="store_true",
                   help="arm every registered crash site and verify recovery")
    p.add_argument("--baseline", metavar="BASELINE.json",
                   help="gate --interprocedural/--coverage findings against "
                        "a committed fingerprint baseline: new findings and "
                        "stale baseline entries both fail")
    p.add_argument("--metrics-out", metavar="METRICS.jsonl",
                   help="export finding counts as obs metrics JSONL")
    p.add_argument("--json", action="store_true",
                   help="emit one machine-readable JSON report")
    p.add_argument("--steps", type=int, default=8,
                   help="workload steps for --trace/--sweep")
    p.add_argument("--path", nargs="*",
                   help="files/directories for --static/--interprocedural "
                        "(default: repro)")
    p.set_defaults(func=_cmd_analyze)

    p = sub.add_parser(
        "chaos",
        help="run seeded randomized fault schedules against the recovery "
             "stack and assert the fault-tolerance invariants",
    )
    p.add_argument("--trials", type=int, default=25,
                   help="number of seeded trials to run")
    p.add_argument("--seed", type=int, default=0,
                   help="master seed; (seed, trial) determines everything")
    p.add_argument("--steps", type=int, default=10,
                   help="workload steps per trial")
    p.add_argument("--trial", type=int, default=None,
                   help="replay exactly one trial index (reproducer mode)")
    p.add_argument("--break-acks", action="store_true",
                   help="deliberately ignore protocol acks (harness "
                        "self-test: the run must fail)")
    p.add_argument("--media", action="store_true",
                   help="mix NVBM media-fault events (rot/stuck lines, "
                        "peer-loss-then-rot) into the schedules")
    p.add_argument("--pipeline", action="store_true",
                   help="mix mid-drain kills of the asynchronous epoch "
                        "pipeline into the schedules")
    p.add_argument("--json", action="store_true",
                   help="emit one machine-readable JSON report")
    p.set_defaults(func=_cmd_chaos)

    p = sub.add_parser(
        "bench",
        help="run the pinned benchmark suite; with --compare, exit non-zero "
             "on any regression beyond the baseline's gate tolerances",
    )
    p.add_argument("--pr", type=int, default=0,
                   help="PR number stamped into the envelope")
    p.add_argument("--out", help="write the envelope JSON to this path")
    p.add_argument("--compare", metavar="BASELINE.json",
                   help="gate the run against a committed baseline envelope")
    p.add_argument("--current", metavar="CURRENT.json",
                   help="use this pre-computed envelope instead of running "
                        "the suite (file-to-file comparison)")
    p.add_argument("--wall", action="store_true",
                   help="also run the machine-dependent wall-clock kernel "
                        "bench (scalar vs vectorized) and its gates")
    p.add_argument("--json", action="store_true",
                   help="emit machine-readable JSON")
    p.set_defaults(func=_cmd_bench)

    p = sub.add_parser("export-vtk", help="simulate and write a VTK mesh")
    p.add_argument("--out", default="mesh.vtk")
    p.add_argument("--steps", type=int, default=40)
    p.add_argument("--max-level", type=int, default=6)
    p.set_defaults(func=_cmd_export_vtk)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
