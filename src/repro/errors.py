"""Exception hierarchy for the PM-octree reproduction.

Every subsystem raises subclasses of :class:`ReproError` so callers can
distinguish simulation-infrastructure failures (e.g. an injected crash) from
genuine programming errors.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all library errors."""


class OutOfMemoryError(ReproError):
    """A memory arena (DRAM or NVBM) has no free record slots left."""

    def __init__(self, device: str, capacity: int):
        super().__init__(f"device {device!r} is full (capacity={capacity} records)")
        self.device = device
        self.capacity = capacity


class InvalidHandleError(ReproError):
    """A handle does not refer to an allocated record in its arena."""


class SimulatedCrash(ReproError):
    """Raised by the failure injector at a registered crash point.

    This models a node losing power / a process being killed: all volatile
    state (DRAM arenas, un-flushed NVBM cache lines) is discarded by the
    machinery that raises this, and the caller is expected to go through
    recovery (``pm_restore``) rather than resume.
    """

    def __init__(self, point: str):
        super().__init__(f"simulated crash at point {point!r}")
        self.point = point


class UnknownCrashSiteError(ReproError):
    """An armed crash-site name is not in :mod:`repro.nvbm.sites`.

    Raised by :meth:`repro.nvbm.failure.FailureInjector.arm` in strict
    mode (under pytest / ``repro analyze``, or when ``REPRO_STRICT_SITES``
    is set): a typo'd site name is otherwise a silent no-op — the plan
    never fires and the arming test passes without testing anything.
    """


class MediaError(ReproError):
    """An integrity check failed while reading a non-volatile record.

    The base class covers *detected* corruption: a record whose sealed CRC
    no longer matches its bytes.  ``kind`` distinguishes the failure mode
    (``"crc"`` here; the device-level subclass adds ``"rot"``, ``"wear"``,
    ``"stuck"`` and ``"transient"``).  ``slot`` is the record index inside
    the arena and ``lines`` the global cache-line ids implicated, so the
    repair ladder knows exactly what to retire.
    """

    def __init__(self, arena: str, slot: int, kind: str,
                 lines=(), detail: str = ""):
        self.arena = arena
        self.slot = slot
        self.kind = kind
        self.lines = tuple(lines)
        msg = f"{arena}: media error ({kind}) on record slot {slot}"
        if self.lines:
            msg += f", line(s) {list(self.lines)}"
        if detail:
            msg += f": {detail}"
        super().__init__(msg)


class UncorrectableError(MediaError):
    """The medium returned an uncorrectable error on read.

    Raised by :class:`repro.nvbm.device.MediaFaultModel` when a read
    touches a line that has rotted (``"rot"``), exceeded its endurance
    budget (``"wear"``), is stuck (``"stuck"``), or suffered a one-off
    transient upset (``"transient"`` — a bounded re-read clears it).
    """


class MediaUnrepairableError(MediaError):
    """The repair ladder ran out of redundancy.

    Carries the locational codes of the subtree roots that could not be
    rebuilt; :func:`repro.core.recovery.recover_host` converts this into a
    typed :class:`~repro.core.recovery.Degraded` outcome rather than
    letting it escape as a stack trace.
    """

    def __init__(self, arena: str, lost_locs):
        self.lost_locs = tuple(sorted(lost_locs))
        ReproError.__init__(
            self,
            f"{arena}: {len(self.lost_locs)} octant subtree(s) unrepairable "
            f"(no replica/redundancy left): "
            f"{[hex(loc) for loc in self.lost_locs]}"
        )
        self.arena = arena
        self.kind = "unrepairable"
        self.slot = -1
        self.lines = ()


class RecoveryError(ReproError):
    """Recovery could not produce a consistent octree (e.g. lost replica)."""


class ConsistencyError(ReproError):
    """An invariant check on a persistent structure failed."""


class OrderingViolationError(ConsistencyError):
    """The runtime ordering tracker observed an illegal persistence order.

    Raised (in strict mode) by :class:`repro.analysis.tracker.OrderingTracker`
    when a root slot publishes a handle whose record lines are still in the
    volatile cache, a published handle is freed or overwritten in place, or a
    needed re-flush was elided.
    """


class StorageError(ReproError):
    """Block-device or filesystem level failure."""


class PartitionError(ReproError):
    """Parallel partitioning produced an invalid distribution."""


class GCDisabledError(ReproError):
    """Garbage collection was requested while a merge is in flight (§3.2)."""


class AllRanksDeadError(ReproError):
    """A collective was attempted on a communicator with no live rank.

    Carries the dead-rank list so recovery drivers can report *who* was
    lost rather than dying on a bare ``max() arg is an empty sequence``.
    """

    def __init__(self, dead_ranks):
        self.dead_ranks = sorted(dead_ranks)
        super().__init__(
            f"all {len(self.dead_ranks)} ranks are dead: {self.dead_ranks}"
        )


class NetworkPartitionError(ReproError):
    """A collective spanned ranks severed by an active network partition.

    Distinct from :class:`PartitionError` (mesh-distribution validity): this
    one is about the *interconnect* — a collective over a partitioned
    communicator must fail loudly rather than silently compute a result the
    unreachable side never saw.
    """

    def __init__(self, groups, now_ns: float):
        self.groups = tuple(tuple(sorted(g)) for g in groups)
        self.now_ns = now_ns
        super().__init__(
            f"network partition at t={now_ns:.0f}ns splits live ranks "
            f"into {self.groups}"
        )


class ReplicationTimeoutError(ReproError):
    """Delta shipping exhausted its retry budget without an acknowledged apply.

    The host's persistent version is safe (persist completed before the
    ship); only the *remote protection* failed to advance.  Callers decide
    whether to continue unprotected, re-pick a peer, or degrade.
    """

    def __init__(self, seq: int, attempts: int, detail: str = ""):
        self.seq = seq
        self.attempts = attempts
        msg = f"delta seq={seq} unacknowledged after {attempts} attempt(s)"
        if detail:
            msg += f": {detail}"
        super().__init__(msg)
