"""Exception hierarchy for the PM-octree reproduction.

Every subsystem raises subclasses of :class:`ReproError` so callers can
distinguish simulation-infrastructure failures (e.g. an injected crash) from
genuine programming errors.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all library errors."""


class OutOfMemoryError(ReproError):
    """A memory arena (DRAM or NVBM) has no free record slots left."""

    def __init__(self, device: str, capacity: int):
        super().__init__(f"device {device!r} is full (capacity={capacity} records)")
        self.device = device
        self.capacity = capacity


class InvalidHandleError(ReproError):
    """A handle does not refer to an allocated record in its arena."""


class SimulatedCrash(ReproError):
    """Raised by the failure injector at a registered crash point.

    This models a node losing power / a process being killed: all volatile
    state (DRAM arenas, un-flushed NVBM cache lines) is discarded by the
    machinery that raises this, and the caller is expected to go through
    recovery (``pm_restore``) rather than resume.
    """

    def __init__(self, point: str):
        super().__init__(f"simulated crash at point {point!r}")
        self.point = point


class RecoveryError(ReproError):
    """Recovery could not produce a consistent octree (e.g. lost replica)."""


class ConsistencyError(ReproError):
    """An invariant check on a persistent structure failed."""


class OrderingViolationError(ConsistencyError):
    """The runtime ordering tracker observed an illegal persistence order.

    Raised (in strict mode) by :class:`repro.analysis.tracker.OrderingTracker`
    when a root slot publishes a handle whose record lines are still in the
    volatile cache, a published handle is freed or overwritten in place, or a
    needed re-flush was elided.
    """


class StorageError(ReproError):
    """Block-device or filesystem level failure."""


class PartitionError(ReproError):
    """Parallel partitioning produced an invalid distribution."""


class GCDisabledError(ReproError):
    """Garbage collection was requested while a merge is in flight (§3.2)."""
