"""Runners reproducing every table and figure of §5 (see DESIGN.md's index).

Scale mapping, used consistently below: the paper's element counts are
represented by a smaller *actual* tree plus an element scale factor (see
:mod:`repro.parallel.runtime`).  Paper GB sizes for the C0 budget (Fig 10)
map to fractions of the octree's maximum size, with 8 GB corresponding to
"the working version fits" (the paper's own observation for that point).
Every result carries the factors it used.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.config import (
    DRAM_SPEC,
    INFINIBAND_SPEC,
    NVBM_SPEC,
    OCTANT_RECORD_SIZE,
    PFS_SPEC,
    PMOctreeConfig,
    SolverConfig,
)
from repro.core.api import pm_create, pm_restore
from repro.core.replication import ReplicaStore, restore_from_replica, ship_delta
from repro.core.transform import detect_and_transform
from repro.nvbm.arena import MemoryArena
from repro.nvbm.clock import SimClock
from repro.nvbm.failure import default_injector
from repro.nvbm.pointers import ARENA_DRAM, ARENA_NVBM
from repro.octree import morton
from repro.parallel.runtime import Backend, RunConfig, RunResult, run_parallel
from repro.solver.simulation import DropletSimulation
from repro.storage.block import BlockDevice
from repro.storage.filesystem import SimFileSystem

#: Solver settings shared by the scaling experiments (kept modest so the
#: whole benchmark suite runs in minutes; raise max_level for finer runs).
SCALING_SOLVER = SolverConfig(dim=2, min_level=2, max_level=5, dt=0.01)


def _pm_rig(dram_octants: int = 1 << 16, nvbm_octants: int = 1 << 20,
            dram_budget: Optional[int] = None, seed: int = 2017):
    # Each rig is one experiment repetition: clear the shared injector so
    # hit counters and fired history never leak across repetitions.
    default_injector().reset()
    clock = SimClock()
    dram = MemoryArena(ARENA_DRAM, DRAM_SPEC, clock, dram_octants)
    nvbm = MemoryArena(ARENA_NVBM, NVBM_SPEC, clock, nvbm_octants)
    cfg = PMOctreeConfig(
        dram_capacity_octants=dram_budget or dram_octants, seed=seed,
    )
    tree = pm_create(dram, nvbm, dim=2, config=cfg)
    return clock, dram, nvbm, tree


# --------------------------------------------------------------------- Table 2

def exp_table2() -> List[Tuple[str, float, float, float]]:
    """Device characteristics as modelled (must equal Table 2)."""
    return [
        (spec.name, spec.read_latency_ns, spec.write_latency_ns,
         spec.endurance_writes)
        for spec in (DRAM_SPEC, NVBM_SPEC)
    ]


# ---------------------------------------------------------------------- Fig 3

@dataclass
class Fig3Row:
    step: int
    overlap_ratio: float
    octants: int
    records_total: int
    kb_per_1000_octants: float
    reduction_vs_two_copies: float  #: <= 2.0; the paper reports up to 1.98
    factor_vs_single_copy: float    #: >= 1.0; the paper reports 1.01 at 99.5%


def exp_fig3(steps: int = 220, max_level: int = 5) -> List[Fig3Row]:
    """Overlap ratio and memory usage per 1000 octants over the simulation.

    The interesting moment is *just before* each persist point: V_{i-1} is
    the last persisted version, V_i carries a whole step of changes, and the
    shared fraction is what multi-versioning saves.  The persistence hook
    takes the measurements, then persists and GCs.
    """
    clock, dram, nvbm, tree = _pm_rig()
    # The nozzle shuts off at t=0.9 so the run covers the whole ejection
    # life cycle: active jetting (low overlap) through quiescence after the
    # droplets leave (the 99%-overlap regime at the right edge of Fig 3).
    solver = SolverConfig(dim=2, min_level=2, max_level=max_level, dt=0.01,
                          shutoff_time=0.9)
    rows: List[Fig3Row] = []

    def measure_then_persist(sim_) -> None:
        from repro.nvbm.pointers import is_dram

        t = sim_.tree
        n_curr = t.num_octants()
        prev = t.reachable_from(nvbm.roots.get("V_prev"))
        n_prev = len(prev)
        overlap = t.overlap_ratio()
        # unique octant records across both versions: everything in NVBM
        # plus DRAM-resident octants that have no NVBM shadow yet (a clean
        # resident octant and its shadow are one logical record)
        dram_unique = sum(
            1 for loc, h in t._index.items()
            if is_dram(h) and loc not in t._origin
        )
        records = nvbm.used + dram_unique
        two_copies = n_prev + n_curr
        if n_prev:  # skip the pre-first-persist step
            rows.append(Fig3Row(
                step=sim_.step_count,
                overlap_ratio=overlap,
                octants=n_curr,
                records_total=records,
                kb_per_1000_octants=(
                    records * OCTANT_RECORD_SIZE / 1024.0
                    / max(1e-9, n_curr / 1000.0)
                ),
                reduction_vs_two_copies=two_copies / max(1, records),
                factor_vs_single_copy=records / max(1, n_curr),
            ))
        t.persist()
        t.gc()

    sim = DropletSimulation(tree, solver, clock=clock,
                            persistence=measure_then_persist)
    sim.run(steps)
    return rows


# ---------------------------------------------------------------------- Fig 5

@dataclass
class Fig5Result:
    writes_oblivious: int
    writes_aware: int

    @property
    def pct_more_writes(self) -> float:
        return 100.0 * (self.writes_oblivious - self.writes_aware) \
            / max(1, self.writes_aware)


def exp_fig5(max_level: int = 5) -> Fig5Result:
    """NVBM writes of an interface-update burst under the two layouts.

    The hot subdomain is one level-1 quadrant.  The aware layout puts as
    much of the hot subtree as the DRAM budget allows in DRAM via
    feature-directed transformation; the oblivious layout spends the same
    budget on a cold subtree (Fig 5a's "brute-force approach without
    considering data access pattern").  The burst then updates every hot
    leaf — the mesh work a refinement pass performs on the subdomain —
    and we count the NVBM writes each layout served.

    The DRAM budget deliberately covers only part of the hot region, so the
    aware layout also pays some NVBM writes and the comparison is the
    paper's finite "~89% more" rather than a division by zero.
    """
    hot = morton.loc_from_coords(1, (0, 0), 2)
    cold = morton.loc_from_coords(1, (1, 1), 2)

    def build(aware: bool) -> int:
        clock, dram, nvbm, tree = _pm_rig()
        for _ in range(max_level - 1):
            for leaf in list(tree.leaves()):
                tree.refine(leaf)
        # budget ~ half a quadrant: L_sub lands one level below the
        # quadrants, so the aware layout fits ~2 of the 4 hot sub-subtrees
        quadrant = tree.num_octants() // 4
        tree.config = PMOctreeConfig(dram_capacity_octants=quadrant // 2)
        tree.persist(transform=False)
        region = hot if aware else cold
        tree.register_feature(
            lambda loc, p: loc != morton.ROOT_LOC
            and morton.ancestor_at(loc, 2, 1) == region
        )
        detect_and_transform(tree)
        w0 = nvbm.device.stats.writes
        # the update burst hits every leaf of the hot quadrant
        for leaf in sorted(tree.leaves()):
            if leaf != morton.ROOT_LOC and morton.ancestor_at(leaf, 2, 1) == hot:
                tree.set_payload(leaf, (1.0, 0.0, 0.0, 0.0))
        return nvbm.device.stats.writes - w0

    return Fig5Result(writes_oblivious=build(False), writes_aware=build(True))


# ------------------------------------------------------------------- Figs 6+7

WEAK_POINTS = (1, 6, 64, 250, 1000)

#: The paper's runs used eager equal-count repartitioning every step —
#: that is the scheme behind Fig 7's partition-share curve (56 % at 1000
#: ranks), so the figure reproductions pin it rather than inherit the
#: runtime's default work-weighted threshold-gated scheme.
PAPER_PARTITION = dict(partition_threshold=None, partition_weighted=False)


def exp_weak_scaling(backends=tuple(Backend), points=WEAK_POINTS,
                     steps: int = 20,
                     elements_per_rank: float = 1e6
                     ) -> Dict[Backend, List[RunResult]]:
    """Fig 6 (execution time) and Fig 7 (breakdown) share these runs."""
    out: Dict[Backend, List[RunResult]] = {}
    for backend in backends:
        runs = []
        for nranks in points:
            runs.append(run_parallel(RunConfig(
                backend=backend, nranks=nranks,
                target_elements=elements_per_rank * nranks,
                steps=steps, solver=SCALING_SOLVER,
                **PAPER_PARTITION,
            )))
        out[backend] = runs
    return out


def meshing_breakdown(result: RunResult) -> Dict[str, float]:
    """Fig 7/8b percentages over the meshing routines (solver excluded,
    matching the paper's breakdown set)."""
    keys = ("construct", "refine", "balance", "partition")
    vals = {k: result.phase_seconds.get(k, 0.0) for k in keys}
    total = sum(vals.values()) or 1.0
    return {k: 100.0 * v / total for k, v in vals.items()}


# ------------------------------------------------------------------- Figs 8+9

STRONG_POINTS = (240, 500, 750, 1000)


def exp_strong_scaling(backends=(Backend.PM_OCTREE,), points=STRONG_POINTS,
                       total_elements: float = 150e6, steps: int = 12
                       ) -> Dict[Backend, List[RunResult]]:
    """Fig 8 (PM vs ideal) and Fig 9 (three implementations).

    Each rank's DRAM is fixed while its element count shrinks as 1/P, so
    PM-octree's C0 covers a growing fraction of the per-rank octants — the
    §5.3 mechanism that shrinks in-core's lead from 48% to 36%.  The C0
    budget fraction therefore scales as P/P_0.
    """
    out: Dict[Backend, List[RunResult]] = {}
    base_p = points[0]
    for backend in backends:
        out[backend] = [
            run_parallel(RunConfig(
                backend=backend, nranks=nranks,
                target_elements=total_elements,
                steps=steps, solver=SCALING_SOLVER,
                dram_fraction=min(1.0, 0.5 * nranks / base_p),
                **PAPER_PARTITION,
            ))
            for nranks in points
        ]
    return out


# --------------------------------------------------------------------- Fig 10

@dataclass
class Fig10Row:
    label: str
    dram_budget_octants: int
    makespan_s: float
    merges: int


def exp_fig10(gb_points=(1, 2, 4, 8), demand_gb: float = 8.0,
              nranks: int = 100, target_elements: float = 6.75e6,
              steps: int = 20) -> List[Fig10Row]:
    """Execution time vs DRAM configured for C0 (plus both baselines).

    Paper anchors: 6.75M elements on 100 ranks; C0 budgets of 1/2/4/8 GB.
    The paper reports that at 8 GB the C0 tree "only needs to be merged ...
    at the end of each time step" — i.e. the working version effectively
    fits — so GB values map to budget fractions of x/8 of the octree's
    maximum size (``demand_gb`` makes the mapping explicit).
    """
    # in-core reference run also discovers the maximum octant demand
    incore = run_parallel(RunConfig(
        backend=Backend.IN_CORE, nranks=nranks,
        target_elements=target_elements, steps=steps, solver=SCALING_SOLVER,
    ))
    n_max = max(r.octants for r in incore.step_reports)
    rows: List[Fig10Row] = []
    for gb in gb_points:
        budget = max(8, int(gb / demand_gb * n_max))
        res = run_parallel(RunConfig(
            backend=Backend.PM_OCTREE, nranks=nranks,
            target_elements=target_elements, steps=steps,
            solver=SCALING_SOLVER, dram_octants=budget,
        ))
        rows.append(Fig10Row(
            label=f"PM-octree {gb}GB", dram_budget_octants=budget,
            makespan_s=res.makespan_s, merges=res.evictions,
        ))
    rows.append(Fig10Row(
        label="in-core", dram_budget_octants=n_max,
        makespan_s=incore.makespan_s, merges=0,
    ))
    ooc = run_parallel(RunConfig(
        backend=Backend.OUT_OF_CORE, nranks=nranks,
        target_elements=target_elements, steps=steps, solver=SCALING_SOLVER,
    ))
    rows.append(Fig10Row(
        label="out-of-core", dram_budget_octants=0,
        makespan_s=ooc.makespan_s, merges=0,
    ))
    return rows


# --------------------------------------------------------------------- Fig 11

@dataclass
class Fig11Row:
    target_elements: float
    max_level: int
    time_without_s: float
    time_with_s: float
    nvbm_writes_without: int
    nvbm_writes_with: int

    @property
    def time_reduction_pct(self) -> float:
        return 100.0 * (self.time_without_s - self.time_with_s) \
            / max(1e-12, self.time_without_s)

    @property
    def write_reduction_pct(self) -> float:
        return 100.0 * (self.nvbm_writes_without - self.nvbm_writes_with) \
            / max(1, self.nvbm_writes_without)


#: (target elements, actual max_level) ladder mirroring the paper's
#: 1.19M..224M sweep — deeper actual trees shrink the C0 coverage fraction,
#: which is what makes transformation matter at the large sizes.
FIG11_SIZES = ((1.19e6, 4), (3.75e6, 4), (6.75e6, 5), (22.5e6, 5), (224e6, 6))


def exp_fig11(sizes=FIG11_SIZES, nranks: int = 100,
              steps: int = 30, dram_octants: int = 180) -> List[Fig11Row]:
    """Execution time and NVBM writes without/with dynamic transformation.

    The C0 budget is held fixed while the mesh grows (the paper's setup:
    fixed DRAM, growing problem), so at the large end C0 covers only a small
    fraction of the octants and the layout choice dominates.
    """
    rows: List[Fig11Row] = []
    for target, max_level in sizes:
        solver = SolverConfig(dim=2, min_level=2, max_level=max_level, dt=0.01)
        res = {}
        for transform in (False, True):
            res[transform] = run_parallel(RunConfig(
                backend=Backend.PM_OCTREE, nranks=nranks,
                target_elements=target, steps=steps, solver=solver,
                dram_octants=dram_octants, transform=transform,
            ))
        rows.append(Fig11Row(
            target_elements=target,
            max_level=max_level,
            time_without_s=res[False].makespan_s,
            time_with_s=res[True].makespan_s,
            nvbm_writes_without=res[False].nvbm_writes,
            nvbm_writes_with=res[True].nvbm_writes,
        ))
    return rows


# ----------------------------------------------------------------------- §5.6

@dataclass
class RecoveryResult:
    """Simulated restart times (seconds), §5.6's two scenarios."""

    incore_same_node_s: float
    pm_same_node_s: float
    ooc_same_node_s: float
    incore_new_node_s: float
    pm_new_node_s: float
    pm_replica_transfer_s: float
    ooc_new_node_recoverable: bool


def exp_recovery(target_elements: float = 6.75e6, nranks: int = 100,
                 kill_step: int = 20, max_level: int = 5) -> RecoveryResult:
    """Restart-time comparison after killing the simulation at step 20.

    All three implementations run the same workload to the kill point; the
    per-rank recovery time is the simulated time of the recovery path scaled
    to the per-rank element count (elements/rank = target/nranks).
    """
    solver = SolverConfig(dim=2, min_level=2, max_level=max_level, dt=0.01)

    # ---------------- PM-octree ------------------------------------------
    clock, dram, nvbm, tree = _pm_rig()
    replica = ReplicaStore()
    shipped_bytes = [0]

    def persist_and_replicate(sim_):
        sim_.tree.persist()
        shipped_bytes[0] = ship_delta(sim_.tree, replica)

    sim = DropletSimulation(tree, solver, clock=clock,
                            persistence=persist_and_replicate)
    sim.run(kill_step)
    n_actual = tree.num_octants()
    per_rank_scale = (target_elements / nranks) / n_actual

    # scenario 1: same node reboots; NVBM contents survive
    dram.crash()
    nvbm.crash(np.random.default_rng(0))
    t0 = clock.now_ns
    tree = pm_restore(dram, nvbm, dim=2)
    pm_same = (clock.now_ns - t0) * per_rank_scale * 1e-9

    # scenario 2: node gone; pull the replica over InfiniBand onto a new node
    clock2 = SimClock()
    dram2 = MemoryArena(ARENA_DRAM, DRAM_SPEC, clock2, 1 << 16)
    nvbm2 = MemoryArena(ARENA_NVBM, NVBM_SPEC, clock2, 1 << 20)
    replica_bytes = replica.bytes_stored() * per_rank_scale
    transfer_s = INFINIBAND_SPEC.transfer_ns(int(replica_bytes)) * 1e-9
    t0 = clock2.now_ns
    restore_from_replica(replica, dram2, nvbm2, dim=2)
    pm_new = (clock2.now_ns - t0) * per_rank_scale * 1e-9 + transfer_s

    # ---------------- in-core ---------------------------------------------
    from repro.baselines.incore import CheckpointPolicy, InCoreOctree

    clock3 = SimClock()
    dram3 = MemoryArena(ARENA_DRAM, DRAM_SPEC, clock3, 1 << 18)
    pfs = SimFileSystem(BlockDevice(PFS_SPEC, clock3))
    tree3 = InCoreOctree(dram3, dim=2)
    policy = CheckpointPolicy(pfs, interval=10)
    sim3 = DropletSimulation(
        tree3, solver, clock=clock3,
        persistence=lambda s: policy.maybe_checkpoint(tree3, s.step_count),
    )
    sim3.run(kill_step)
    dram3.crash()
    t0 = clock3.now_ns
    dram3b = MemoryArena(ARENA_DRAM, DRAM_SPEC, clock3, 1 << 18)
    InCoreOctree.restore_from(pfs, policy.latest(), dram3b)
    incore_same = (clock3.now_ns - t0) * per_rank_scale * 1e-9
    # snapshots live on the shared PFS, immune to node loss: same cost
    incore_new = incore_same

    # ---------------- out-of-core -----------------------------------------
    from repro.baselines.etree import EtreeOctree
    from repro.config import NVBM_FS_SPEC

    clock4 = SimClock()
    device4 = BlockDevice(NVBM_FS_SPEC, clock4)
    tree4 = EtreeOctree(device4, dim=2)
    sim4 = DropletSimulation(tree4, solver, clock=clock4)
    sim4.run(kill_step)
    device4.crash()
    t0 = clock4.now_ns
    tree4.recover_check()
    ooc_same = (clock4.now_ns - t0) * per_rank_scale * 1e-9

    return RecoveryResult(
        incore_same_node_s=incore_same,
        pm_same_node_s=pm_same,
        ooc_same_node_s=ooc_same,
        incore_new_node_s=incore_new,
        pm_new_node_s=pm_new,
        pm_replica_transfer_s=transfer_s,
        ooc_new_node_recoverable=False,  # no replication in Etree (§5.6)
    )


# ----------------------------------------------------------- §1 write intensity

@dataclass
class WriteIntensity:
    avg_pct: float
    max_pct: float
    per_step_pct: List[float]


def exp_write_intensity(steps: int = 30, max_level: int = 5) -> WriteIntensity:
    """Fraction of memory accesses that are writes (paper: 41% avg, 72% max).

    Measured on the in-core (Gerris-like) configuration, whose solver does
    not diff-check updates — every cell is rewritten each sweep, as the
    paper's profiled application did.  The initial mesh construction is the
    write-heaviest sample (allocation + refinement storms), matching where
    the 72% peak comes from.
    """
    from repro.octree.tree import PointerOctree
    from repro.solver.advection import advect_vof as _advect

    clock = SimClock()
    arena = MemoryArena(ARENA_DRAM, DRAM_SPEC, clock, 1 << 18)
    tree = PointerOctree(arena, dim=2)
    solver = SolverConfig(dim=2, min_level=2, max_level=max_level, dt=0.01)
    sim = DropletSimulation(tree, solver, clock=clock)
    fractions: List[float] = []

    def sample():
        nonlocal prev_r, prev_w
        r, w = arena.device.stats.reads, arena.device.stats.writes
        dr, dw = r - prev_r, w - prev_w
        prev_r, prev_w = r, w
        if dr + dw:
            fractions.append(100.0 * dw / (dr + dw))

    prev_r = prev_w = 0
    sim.construct()
    sample()  # construction burst: the write-intensity peak
    for _ in range(steps):
        sim.step_count += 1
        sim.t = sim.step_count * solver.dt
        sim._adapt()
        from repro.octree.balance import balance_tree

        balance_tree(tree, max_level=solver.max_level)
        _advect(tree, sim.geometry, solver, sim.t, always_write=True)
        sample()
    return WriteIntensity(
        avg_pct=float(np.mean(fractions)),
        max_pct=float(np.max(fractions)),
        per_step_pct=fractions,
    )


# ------------------------------------------------------ sampling-policy ablation

@dataclass
class AblationRow:
    policy: str
    nvbm_writes: int
    makespan_s: float


def exp_ablation_sampling(steps: int = 10, max_level: int = 5,
                          dram_octants: int = 90) -> List[AblationRow]:
    """Compare placement policies: feature-directed (paper), history-based
    (last step's mixed cells), and no transformation.

    Feature-directed sampling pre-executes the *next* step's predicates, so
    it tracks the moving interface; history lags it by one step (§3.3's
    argument for why history is a poor predictor under AMR).
    """
    solver = SolverConfig(dim=2, min_level=2, max_level=max_level, dt=0.01)
    rows: List[AblationRow] = []
    for policy in ("feature-directed", "history", "none"):
        clock, dram, nvbm, tree = _pm_rig(dram_budget=dram_octants)

        if policy == "none":
            persistence = lambda s: s.tree.persist(transform=False)
            sim = DropletSimulation(tree, solver, clock=clock,
                                    persistence=persistence)
            sim.tree.features.clear()
        elif policy == "history":
            from repro.solver.features import mixed_cell_feature

            persistence = lambda s: s.tree.persist(transform=True)
            sim = DropletSimulation(tree, solver, clock=clock,
                                    persistence=persistence)
            # drop the forward-looking band feature: only the (lagging)
            # current VOF state drives placement
            sim.tree.features = [mixed_cell_feature(2)]
        else:
            persistence = lambda s: s.tree.persist(transform=True)
            sim = DropletSimulation(tree, solver, clock=clock,
                                    persistence=persistence)
        sim.run(steps)
        rows.append(AblationRow(
            policy=policy,
            nvbm_writes=nvbm.device.stats.writes,
            makespan_s=clock.now_s,
        ))
    return rows


# --------------------------------------------------- NVBM-latency sensitivity

@dataclass
class LatencyRow:
    write_latency_factor: float
    pm_time_s: float
    incore_time_s: float

    @property
    def slowdown_vs_incore(self) -> float:
        return self.pm_time_s / max(1e-12, self.incore_time_s)


def exp_nvbm_latency_sensitivity(factors=(1.0, 2.0, 4.0),
                                 steps: int = 15, max_level: int = 5,
                                 dram_fraction: float = 0.25
                                 ) -> List[LatencyRow]:
    """How the PM-octree/in-core gap responds to slower NVBM parts.

    The design premise (§1): NVBM write latency is the cost PM-octree's
    layout machinery exists to hide.  Sweeping the write latency from the
    Table-2 value (150 ns) upward must widen PM-octree's gap to in-core —
    if it did not, the transformation would be solving a non-problem.  The
    factor scales both NVBM latencies via ``DeviceSpec.scaled``.
    """
    from repro.solver.simulation import DropletSimulation

    solver = SolverConfig(dim=2, min_level=2, max_level=max_level, dt=0.01)
    rows: List[LatencyRow] = []
    # in-core never touches NVBM latencies except snapshots: run once
    clock_ic = SimClock()
    from repro.baselines.incore import CheckpointPolicy, InCoreOctree
    from repro.config import NVBM_FS_SPEC

    dram_ic = MemoryArena(ARENA_DRAM, DRAM_SPEC, clock_ic, 1 << 17)
    fs = SimFileSystem(BlockDevice(NVBM_FS_SPEC, clock_ic))
    tree_ic = InCoreOctree(dram_ic, dim=2)
    policy = CheckpointPolicy(fs, interval=10)
    sim_ic = DropletSimulation(
        tree_ic, solver, clock=clock_ic,
        persistence=lambda s: policy.maybe_checkpoint(tree_ic, s.step_count),
    )
    sim_ic.run(steps)
    incore_time = clock_ic.now_s

    for factor in factors:
        clock = SimClock()
        dram = MemoryArena(ARENA_DRAM, DRAM_SPEC, clock, 1 << 16)
        nvbm = MemoryArena(ARENA_NVBM, NVBM_SPEC.scaled(factor), clock, 1 << 20)
        # budget: a fraction of the in-core run's final tree size
        budget = max(16, int(dram_fraction * tree_ic.num_octants()))
        tree = pm_create(dram, nvbm, dim=2,
                         config=PMOctreeConfig(dram_capacity_octants=budget))
        sim = DropletSimulation(
            tree, solver, clock=clock,
            persistence=lambda s: s.tree.persist(keep_resident=True),
        )
        sim.run(steps)
        rows.append(LatencyRow(
            write_latency_factor=factor,
            pm_time_s=clock.now_s,
            incore_time_s=incore_time,
        ))
    return rows


# -------------------------------------------------------- endurance ablation

@dataclass
class EnduranceRow:
    policy: str
    total_writes: int
    max_slot_wear: int
    lifetime_multiplier: float  #: vs the LIFO baseline


def exp_endurance(steps: int = 20, max_level: int = 5,
                  nvbm_octants: int = 4096) -> List[EnduranceRow]:
    """Per-cell NVBM wear under LIFO vs wear-leveling slot recycling.

    Table 2 gives NVBM 1e6-1e8 writes/bit, so the slot-recycling policy
    decides device lifetime: LIFO reuse concentrates the churning COW/GC
    slots; FIFO wear-leveling rotates them across the arena.  Lifetime
    scales inversely with the *maximum* per-cell wear.
    """
    from repro.solver.simulation import DropletSimulation

    solver = SolverConfig(dim=2, min_level=2, max_level=max_level, dt=0.01)
    results = {}
    for wear_leveling in (False, True):
        clock = SimClock()
        dram = MemoryArena(ARENA_DRAM, DRAM_SPEC, clock, 1 << 14)
        nvbm = MemoryArena(ARENA_NVBM, NVBM_SPEC, clock, nvbm_octants,
                           wear_leveling=wear_leveling)
        tree = pm_create(dram, nvbm, dim=2,
                         config=PMOctreeConfig(dram_capacity_octants=128))
        sim = DropletSimulation(
            tree, solver, clock=clock,
            persistence=lambda s: (s.tree.persist(keep_resident=True),
                                   s.tree.gc()),
        )
        sim.run(steps)
        results[wear_leveling] = (
            nvbm.device.wear_total(), nvbm.device.wear_max()
        )
    base_max = results[False][1]
    rows = []
    for wl, (total, peak) in results.items():
        rows.append(EnduranceRow(
            policy="wear-leveling (FIFO)" if wl else "LIFO reuse",
            total_writes=total,
            max_slot_wear=peak,
            lifetime_multiplier=base_max / max(1, peak),
        ))
    return rows


# --------------------------------------------------- out-of-core medium study

@dataclass
class MediumRow:
    medium: str
    makespan_s: float
    page_reads: int
    page_writes: int


def exp_etree_medium(steps: int = 8, max_level: int = 4) -> List[MediumRow]:
    """Etree on spinning disk vs on NVBM-behind-a-filesystem.

    §5.1 modifies Etree to "use NVBM instead of disks"; §2 notes NVBM
    latencies are 4-5 orders of magnitude below disks.  This study runs the
    same out-of-core workload on both media — the disk configuration is what
    Etree was actually designed for, and the gap shows why the paper still
    rejects the design even on NVBM (the remaining software costs, not the
    medium, dominate there).
    """
    from repro.baselines.etree import EtreeOctree
    from repro.config import DISK_SPEC, NVBM_FS_SPEC
    from repro.solver.simulation import DropletSimulation

    solver = SolverConfig(dim=2, min_level=2, max_level=max_level, dt=0.01)
    rows: List[MediumRow] = []
    for name, spec in (("HDD", DISK_SPEC), ("NVBM-fs", NVBM_FS_SPEC)):
        clock = SimClock()
        device = BlockDevice(spec, clock)
        tree = EtreeOctree(device, dim=2)
        sim = DropletSimulation(tree, solver, clock=clock)
        sim.run(steps)
        rows.append(MediumRow(
            medium=name,
            makespan_s=clock.now_s,
            page_reads=device.stats.page_reads,
            page_writes=device.stats.page_writes,
        ))
    return rows


# ------------------------------------------------ checkpoint-cadence ablation

@dataclass
class CadenceRow:
    interval: int
    checkpoint_cost_s: float   #: snapshot time, scaled to target elements
    expected_lost_steps: float  #: mean steps lost on a uniformly-timed crash
    pm_persist_cost_s: float   #: PM-octree per-step persistence, same scale


def exp_checkpoint_cadence(intervals=(1, 5, 10, 20), steps: int = 40,
                           max_level: int = 5,
                           target_elements: float = 1e6) -> List[CadenceRow]:
    """The in-core snapshot-interval trade-off PM-octree dissolves.

    Sparse checkpoints are cheap but lose work on a crash (expected loss =
    (interval-1)/2 steps for a uniformly-timed failure); dense checkpoints
    bound the loss but pay full-tree I/O every time.  PM-octree persists
    *every* step for less than in-core's cheapest cadence because it only
    writes deltas — the §1 argument in one table.
    """
    from repro.baselines.incore import CheckpointPolicy, InCoreOctree
    from repro.config import NVBM_FS_SPEC
    from repro.solver.simulation import DropletSimulation

    solver = SolverConfig(dim=2, min_level=2, max_level=max_level, dt=0.01)

    # PM-octree reference: per-step persistence cost
    clock_pm = SimClock()
    dram_pm = MemoryArena(ARENA_DRAM, DRAM_SPEC, clock_pm, 1 << 14)
    nvbm_pm = MemoryArena(ARENA_NVBM, NVBM_SPEC, clock_pm, 1 << 18)
    tree_pm = pm_create(dram_pm, nvbm_pm, dim=2,
                        config=PMOctreeConfig(dram_capacity_octants=1 << 14))
    sim_pm = DropletSimulation(
        tree_pm, solver, clock=clock_pm,
        persistence=lambda s: s.tree.persist(keep_resident=True),
    )
    sim_pm.run(steps)
    # Scale to target size with the usual exponents: a full snapshot is
    # volume work, a PM delta persist is surface (changed-octant) work.
    n_actual = tree_pm.num_octants()
    scale = max(1.0, target_elements / n_actual)
    surface_scale = scale ** 0.5
    pm_persist = (clock_pm.phase_ns("persist.enqueue")
                  + clock_pm.phase_ns("persist.drain")) * 1e-9 * surface_scale

    rows: List[CadenceRow] = []
    for interval in intervals:
        clock = SimClock()
        dram = MemoryArena(ARENA_DRAM, DRAM_SPEC, clock, 1 << 17)
        fs = SimFileSystem(BlockDevice(NVBM_FS_SPEC, clock))
        tree = InCoreOctree(dram, dim=2)
        policy = CheckpointPolicy(fs, interval=interval)
        sim = DropletSimulation(
            tree, solver, clock=clock,
            persistence=lambda s, p=policy, t=tree: p.maybe_checkpoint(
                t, s.step_count),
        )
        sim.run(steps)
        rows.append(CadenceRow(
            interval=interval,
            checkpoint_cost_s=clock.phase_ns("persist.enqueue") * 1e-9 * scale,
            expected_lost_steps=(interval - 1) / 2.0,
            pm_persist_cost_s=pm_persist,
        ))
    return rows
