"""Seeded chaos harness: random fault schedules against the recovery stack.

Each *trial* derives a :class:`ChaosSchedule` from ``(seed, trial)`` — a set
of per-link fault probabilities plus scheduled events (host kills with or
without node reboot, replica-peer kills, concurrent host+peer kills,
partition windows, message-loss bursts) — and runs the droplet workload on a
:class:`~repro.parallel.cluster.SimulatedCluster` whose interconnect obeys
that schedule.  After every recovery, and again at the end of the trial, the
harness asserts the fault-tolerance invariants:

* a restored tree is identical to the last successfully persisted version
  (local restore) or to a persisted-and-replicated version no older than the
  last acknowledged ship (replica restore);
* replica protection is re-established on a live peer after every recovery,
  or the trial ends in an explicit :class:`~repro.core.recovery.Degraded`
  outcome — never an unhandled exception.

A failing trial is *shrunk*: events are removed one at a time (and the link
faults zeroed) while the failure reproduces, yielding a minimal seeded
reproducer the report prints alongside the exact CLI line that replays it.

Everything is deterministic in ``(seed, trial)``: schedules come from
``random.Random``, network fault decisions from the plan's own seeded RNG,
and NVBM power-loss tearing from per-rank numpy generators.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Tuple

from repro.config import PMOctreeConfig, SolverConfig, TITAN
from repro.core.api import pm_create
from repro.core.pmoctree import SLOT_PREV
from repro.core.recovery import Degraded, recover_host, reprotect, scrub
from repro.core.replication import RetryPolicy
from repro.errors import ReplicationTimeoutError, ReproError
from repro.nvbm.device import LINES_PER_RECORD, MediaFaultModel
from repro.nvbm.pointers import NULL_HANDLE, index_of, is_nvbm
from repro.parallel.cluster import SimulatedCluster
from repro.parallel.detector import DetectorConfig, FailureDetector
from repro.parallel.faults import LinkFaults, NetworkFaultPlan
from repro.solver.simulation import DropletSimulation

#: Event kinds a schedule may contain, with selection weights.
_EVENT_KINDS: Tuple[Tuple[str, int], ...] = (
    ("kill_host", 4),
    ("kill_peer", 3),
    ("kill_both", 1),
    ("partition", 3),
    ("loss_burst", 3),
    ("kill_migration", 2),
)

#: Extra kinds mixed in by ``--media`` runs: a published NVBM line rots or
#: sticks and the scrub/repair ladder must handle it — including the
#: no-redundancy case, where the protecting peer is killed *first* and the
#: trial must end ``degraded``, never silently corrupt.
_MEDIA_EVENT_KINDS: Tuple[Tuple[str, int], ...] = (
    ("media_rot", 3),
    ("media_stuck", 3),
    ("kill_peer_then_rot", 2),
)

#: Extra kinds mixed in by ``--pipeline`` runs: the simulated power cord is
#: pulled while an epoch's flush train is still draining behind the solver,
#: at one of the ``epoch.*`` crash sites — recovery must land bit-for-bit
#: on epoch i or epoch i-1, never a blend.
_PIPELINE_EVENT_KINDS: Tuple[Tuple[str, int], ...] = (
    ("kill_mid_drain", 2),
)


@dataclass
class ChaosEvent:
    """One scheduled fault.

    ``returns`` only applies to ``kill_host`` (the node reboots and its NVBM
    survives); ``duration`` (steps) and ``drop`` only to windowed kinds;
    ``site`` only to ``kill_migration`` (which ``migrate.*`` crash site
    tears the octant-migration protocol).
    """

    kind: str
    step: int
    returns: bool = False
    duration: int = 1
    drop: float = 0.0
    site: str = ""

    def describe(self) -> str:
        extra = ""
        if self.kind == "kill_host":
            extra = "+reboot" if self.returns else "+gone"
        elif self.kind in ("partition", "loss_burst"):
            extra = f"x{self.duration}"
            if self.kind == "loss_burst":
                extra += f"@{self.drop:.2f}"
        elif self.kind in ("kill_migration", "kill_mid_drain"):
            extra = f"[{self.site}]"
        return f"{self.kind}{extra}@{self.step}"


@dataclass
class ChaosSchedule:
    """Fully describes one trial; derivable from ``(seed, trial)`` alone."""

    seed: int
    trial: int
    steps: int
    faults: LinkFaults
    events: Tuple[ChaosEvent, ...]
    media: bool = False      #: schedule drawn from the media-fault kind pool
    pipeline: bool = False   #: schedule drawn from the epoch-pipeline pool

    def describe(self) -> str:
        evs = ", ".join(e.describe() for e in self.events) or "none"
        return (f"faults(drop={self.faults.drop:.3f}, "
                f"dup={self.faults.duplicate:.3f}, "
                f"delay={self.faults.delay:.3f}) events=[{evs}]")


def derive_schedule(seed: int, trial: int, steps: int = 10,
                    media: bool = False,
                    pipeline: bool = False) -> ChaosSchedule:
    """The schedule for one trial — pure function of ``(seed, trial)``.

    ``media`` widens the kind pool with :data:`_MEDIA_EVENT_KINDS` and
    ``pipeline`` with :data:`_PIPELINE_EVENT_KINDS`; with both off the
    function is byte-for-byte the original derivation, so existing seeded
    reproducers stay valid.
    """
    rng = random.Random(f"chaos:{seed}:{trial}")
    faults = LinkFaults(
        drop=round(rng.uniform(0.0, 0.25), 3),
        duplicate=round(rng.uniform(0.0, 0.15), 3),
        delay=round(rng.uniform(0.0, 0.30), 3),
        delay_ns=20_000.0,
    )
    pool = _EVENT_KINDS
    if media:
        pool = pool + _MEDIA_EVENT_KINDS
    if pipeline:
        pool = pool + _PIPELINE_EVENT_KINDS
    kinds = [k for k, _ in pool]
    weights = [w for _, w in pool]
    events: List[ChaosEvent] = []
    # Leave quiet steps at the tail so post-recovery re-replication has a
    # fault-free-ish window to converge in before the end-of-trial check.
    last_step = max(3, steps - 3)
    for _ in range(rng.randint(1, 3)):
        kind = rng.choices(kinds, weights)[0]
        ev = ChaosEvent(kind=kind, step=rng.randint(2, last_step))
        if kind == "kill_host":
            ev.returns = rng.random() < 0.5
        elif kind in ("partition", "loss_burst"):
            ev.duration = rng.randint(1, 2)
            if kind == "loss_burst":
                ev.drop = round(rng.uniform(0.50, 0.85), 3)
        elif kind == "kill_migration":
            from repro.nvbm import sites as site_registry

            ev.site = rng.choice(site_registry.MIGRATE_SITES)
        elif kind == "kill_mid_drain":
            from repro.nvbm import sites as site_registry

            ev.site = rng.choice(site_registry.EPOCH_SITES)
        elif kind in ("media_rot", "media_stuck", "kill_peer_then_rot"):
            # drop doubles as the deterministic victim selector: the event
            # targets published record floor(drop * n) of the sorted set
            ev.drop = round(rng.random(), 3)
        events.append(ev)
    events.sort(key=lambda e: (e.step, e.kind))
    return ChaosSchedule(seed=seed, trial=trial, steps=steps,
                         faults=faults, events=tuple(events), media=media,
                         pipeline=pipeline)


@dataclass
class TrialResult:
    """Invariant verdict and protocol counters for one trial."""

    trial: int
    seed: int
    outcome: str               #: "protected" | "degraded" | "failed"
    violations: List[str] = field(default_factory=list)
    degraded_reason: str = ""
    steps_run: int = 0
    recoveries: int = 0
    events_applied: List[str] = field(default_factory=list)
    ships: int = 0
    retries: int = 0
    resyncs: int = 0
    duplicates_ignored: int = 0
    acks_lost: int = 0
    deltas_lost: int = 0
    wait_ns: float = 0.0
    schedule: Optional[ChaosSchedule] = None

    @property
    def ok(self) -> bool:
        return not self.violations

    def to_row(self) -> Dict[str, object]:
        return {
            "trial": self.trial,
            "outcome": self.outcome,
            "steps": self.steps_run,
            "recoveries": self.recoveries,
            "retries": self.retries,
            "resyncs": self.resyncs,
            "wait_ms": round(self.wait_ns / 1e6, 3),
            "events": ", ".join(self.events_applied) or "-",
            "detail": self.degraded_reason or "; ".join(self.violations) or "-",
        }


def _signature(tree) -> Dict[int, tuple]:
    return {loc: tuple(tree.get_payload(loc)) for loc in tree.leaves()}


def _index_of(sig: Dict[int, tuple], history: List[Dict[int, tuple]]) -> int:
    for i in reversed(range(len(history))):
        if history[i] == sig:
            return i
    return -1


class _TrialState:
    """Mutable wiring of one running trial (who serves, who protects)."""

    def __init__(self) -> None:
        self.host_rank = 0
        self.tree = None
        self.session = None
        self.replica_peer: Optional[int] = None
        self.replica_store = None
        self.sessions: list = []     #: every session ever created (stats)
        self.history: List[Dict[int, tuple]] = []
        self.last_acked_idx = -1     #: history index of last acked ship
        self.degraded: Optional[Degraded] = None
        self.recoveries = 0

    def adopt_session(self, session, peer: Optional[int]) -> None:
        self.session = session
        if session is not None:
            self.sessions.append(session)
            self.replica_peer = peer
            self.replica_store = session.replica

    def note_acked_if_protected(self) -> None:
        if self.session is not None and self.session.protected:
            self.last_acked_idx = len(self.history) - 1


def _exercise_mid_drain_kill(site: str, seed: int, result) -> None:
    """Pull the cord at an ``epoch.*`` site while a flush train drains.

    Runs the epoch-overlap sweep driver on a fresh pipelined mini-rig:
    epoch A is persisted and fully drained, epoch B is left in flight, and
    a third persist tears at ``site``.  Recovery must land bit-for-bit on
    epoch i or epoch i-1 — any blend, any older version, or a site that
    never fires is a trial violation.
    """
    from repro.analysis.sweep import _epoch_driver

    out = _epoch_driver(site, max_steps=8, seed=seed)
    if not out.fired:
        result.violations.append(f"{site}: mid-drain kill never fired")
    elif not out.recovered or out.matched not in ("epoch-i", "epoch-i-1"):
        result.violations.append(
            f"{site}: recovery landed on neither epoch i nor i-1 "
            f"({out.detail or out.matched})")


def _exercise_migration_kill(cluster, tree, site: str, result) -> None:
    """Tear the octant-migration protocol at ``site`` and verify recovery.

    The host tree's leaves are dealt out skewed across the live ranks (one
    rank owning most of the curve, so the weighted cut must ship real
    batches), the repartition runs with the crash site armed — over the
    trial's own lossy interconnect — and after the simulated power loss
    :func:`repro.parallel.partition.recover_migration` must leave every
    octant in exactly one rank's store with its payload intact and an empty
    in-flight journal; the repartition is then re-driven to completion.
    Any breach is a trial violation.
    """
    from repro.errors import PartitionError, SimulatedCrash
    from repro.nvbm.failure import FailureInjector
    from repro.octree.linear import LinearOctree
    from repro.parallel.partition import (
        MigrationState,
        recover_migration,
        repartition,
    )
    from repro.parallel.simmpi import SimCommunicator
    from repro.solver.features import partition_work_weights

    live = [c for c in cluster.ranks if c.alive]
    lin = LinearOctree.from_tree(tree)
    nl = len(live)
    n = len(lin)
    if nl < 2 or n < 2 * nl:
        return  # nothing to migrate between
    # skew: the first live rank owns all but a sliver of the curve
    bounds = [0] + [n - (nl - 1) + i for i in range(nl)]
    pieces = [lin.slice(bounds[r], bounds[r + 1]) for r in range(nl)]
    w_all = partition_work_weights(lin)
    wlists = [w_all[bounds[r]:bounds[r + 1]] for r in range(nl)]
    truth = {int(loc): tuple(lin.payloads[i])
             for i, loc in enumerate(lin.locs)}
    comm = SimCommunicator(live, cluster.network)
    injector = FailureInjector()
    injector.arm(site, at_hit=1)
    state = MigrationState()
    try:
        repartition(comm, pieces, weights=wlists, injector=injector,
                    state=state)
    except SimulatedCrash:
        pass
    except ReproError:
        return  # partition window / dead link: migration legitimately refused
    else:
        result.violations.append(
            f"migration crash site {site} never fired")
        return
    injector.disarm()
    recover_migration(state)
    seen: Dict[int, tuple] = {}
    for store in state.stores:
        for loc, row in store.items():
            if loc in seen:
                result.violations.append(
                    f"{site}: octant {loc:#x} duplicated across ranks")
                return
            seen[int(loc)] = tuple(float(v) for v in row)
    if set(seen) != set(truth):
        result.violations.append(
            f"{site}: {len(truth) - len(seen)} octants lost in migration")
    elif any(seen[loc] != truth[loc] for loc in truth):
        result.violations.append(f"{site}: migrated payloads torn")
    elif state.log.in_flight:
        result.violations.append(
            f"{site}: {len(state.log.in_flight)} batches left in flight "
            f"after recovery")
    else:
        wmap = state.weight_of
        pieces2 = state.rebuild_pieces()
        wlists2 = [
            [wmap[int(loc)] for loc in piece.locs] for piece in pieces2
        ]
        try:
            repartition(comm, pieces2, weights=wlists2)
        except PartitionError as exc:
            if "undeliverable" not in str(exc):
                result.violations.append(
                    f"{site}: re-driven repartition failed: {exc}")
            # an unhealed partition window starving the retries is an
            # interconnect fault, not a recovery bug
        except ReproError:
            pass  # interconnect faults again; recovery itself held


def _detect_failure(cluster, dead_rank: int) -> bool:
    """Heartbeat-driven detection gate: recovery only starts once the
    observer's failure detector actually suspects the dead rank."""
    live = [c.rank for c in cluster.ranks if c.alive]
    if not live:
        return False
    obs = cluster.ranks[live[0]]
    cfg = DetectorConfig()
    det = FailureDetector(cluster, cfg, observer_rank=obs.rank)
    det.poll(obs.clock.now_ns)
    # Detection latency: miss_threshold missed beats plus one interval.
    obs.clock.advance((cfg.miss_threshold + 1) * cfg.heartbeat_interval_ns)
    det.poll(obs.clock.now_ns)
    return det.is_suspected(dead_rank, obs.clock.now_ns)


def run_trial(schedule: ChaosSchedule, break_acks: bool = False,
              policy: Optional[RetryPolicy] = None) -> TrialResult:
    """Run one seeded trial; never raises for in-model faults."""
    result = TrialResult(trial=schedule.trial, seed=schedule.seed,
                         outcome="protected", schedule=schedule)
    policy = policy or RetryPolicy()
    plan = NetworkFaultPlan(
        seed=schedule.seed * 1_000_003 + schedule.trial,
        default=schedule.faults,
    )
    # cores_per_node=1: every rank is its own node, so any rank on another
    # node is a legal replica target and node kills hit exactly one rank.
    spec = replace(TITAN, cores_per_node=1)
    cluster = SimulatedCluster(4, spec=spec, fault_plan=plan)

    st = _TrialState()
    ctx0 = cluster.ranks[0]
    pmcfg = PMOctreeConfig(dram_capacity_octants=4096)
    st.tree = pm_create(ctx0.resources["dram"], ctx0.resources["nvbm"],
                        dim=2, config=pmcfg, injector=ctx0.injector)

    def persist_cb(sim_) -> None:
        try:
            sim_.tree.persist(transform=False)
        except ReplicationTimeoutError:
            pass  # local persist committed; remote protection stalled
        st.history.append(_signature(sim_.tree))
        st.note_acked_if_protected()

    solver = SolverConfig(dim=2, min_level=2, max_level=4, dt=0.01)
    sim = DropletSimulation(st.tree, solver, clock=ctx0.clock,
                            persistence=persist_cb)
    sim.construct()
    persist_cb(sim)

    session, peer, _ = reprotect(cluster, st.tree, st.host_rank,
                                 policy=policy, break_acks=break_acks)
    st.adopt_session(session, peer)
    st.note_acked_if_protected()

    open_windows: List[Tuple[int, object]] = []   # (heal_step, window)
    burst_links: List[Tuple[int, tuple]] = []     # (end_step, link_key)
    by_step: Dict[int, List[ChaosEvent]] = {}
    for ev in schedule.events:
        by_step.setdefault(ev.step, []).append(ev)

    def now() -> float:
        return cluster.ranks[st.host_rank].clock.now_ns

    def rewire_after_recovery(rec) -> None:
        st.tree = rec.tree
        st.host_rank = rec.host_rank
        st.adopt_session(rec.session, rec.replica_peer)
        sim.tree = rec.tree
        sim.clock = cluster.ranks[rec.host_rank].clock
        if hasattr(rec.tree, "register_feature"):
            rec.tree.register_feature(sim._next_step_feature)

    def check_restore(rec) -> None:
        try:
            rec.tree.check_invariants()
        except ReproError as exc:
            result.violations.append(f"restored tree inconsistent: {exc}")
            return
        sig = _signature(rec.tree)
        idx = _index_of(sig, st.history)
        if rec.kind == "local":
            if idx != len(st.history) - 1:
                result.violations.append(
                    "local restore does not match the last persisted version")
        else:
            if idx < 0:
                result.violations.append(
                    "replica restore matches no persisted version")
            elif idx < st.last_acked_idx:
                result.violations.append(
                    "replica restore is older than the last acked ship")
        if not result.violations:
            # recovery rolled history back to the restored point
            del st.history[idx + 1:]
            st.last_acked_idx = min(st.last_acked_idx, idx)

    def media_model() -> MediaFaultModel:
        """The current host arena's fault model (attached on first use)."""
        dev = cluster.ranks[st.host_rank].resources["nvbm"].device
        if dev.fault_model is None:
            dev.attach_fault_model(MediaFaultModel(
                seed=schedule.seed * 7919 + schedule.trial))
        return dev.fault_model

    def pick_victim(ev: ChaosEvent) -> Tuple[Optional[int], int]:
        """Deterministic victim: a published record and its first line.

        ``kill_peer_then_rot`` always condemns the published *root* — an
        internal record the local clean-leaf rung can never rebuild, so
        with the replica dead the only correct outcome is degradation.
        """
        nvbm = cluster.ranks[st.host_rank].resources["nvbm"]
        root = nvbm.roots.get(SLOT_PREV)
        if root == NULL_HANDLE or not is_nvbm(root):
            return None, 0
        if ev.kind == "kill_peer_then_rot":
            return root, index_of(root) * LINES_PER_RECORD
        published = sorted(st.tree.reachable_from(root))
        target = published[int(ev.drop * len(published)) % len(published)]
        return target, index_of(target) * LINES_PER_RECORD

    def apply_media_fault(ev: ChaosEvent, step: int) -> None:
        before = _signature(st.tree)
        if ev.kind == "kill_peer_then_rot" and st.replica_peer is not None \
                and cluster.ranks[st.replica_peer].alive:
            cluster.kill_node(cluster.ranks[st.replica_peer].node)
            st.session = None
            st.replica_store = None
            st.replica_peer = None
            st.tree.replicator = None
            st.tree.replica = None
        target, gline = pick_victim(ev)
        if target is None:
            return  # nothing published yet; the fault has nothing to hit
        model = media_model()
        if ev.kind == "media_stuck":
            model.plant_stuck(gline)
        else:
            model.plant_rot(gline)
        report = scrub(st.tree, replica=st.replica_store)
        if report.unrepaired:
            if st.replica_store is not None:
                result.violations.append(
                    f"{ev.kind}: media fault unrepaired despite a live "
                    f"replica: locs {[hex(loc) for loc in report.unrepaired]}")
            else:
                # graceful degradation: the loss is declared, never silent
                st.degraded = Degraded(
                    reason=f"NVBM media fault at step {step} with no "
                           f"replica left: {len(report.unrepaired)} "
                           f"subtree(s) unreadable",
                    lost_locs=report.unrepaired)
            return
        if _signature(st.tree) != before:
            result.violations.append(
                f"{ev.kind}: media repair changed payload bytes")
            return
        try:
            st.tree.check_invariants()
        except ReproError as exc:
            result.violations.append(
                f"{ev.kind}: tree inconsistent after media repair: {exc}")

    def apply_event(ev: ChaosEvent, step: int) -> None:
        result.events_applied.append(ev.describe())
        if ev.kind in ("media_rot", "media_stuck", "kill_peer_then_rot"):
            apply_media_fault(ev, step)
        elif ev.kind in ("kill_host", "kill_both"):
            if ev.kind == "kill_both" and st.replica_peer is not None \
                    and cluster.ranks[st.replica_peer].alive:
                cluster.kill_node(cluster.ranks[st.replica_peer].node)
            dead = st.host_rank
            cluster.kill_node(cluster.ranks[dead].node)
            if not any(c.alive for c in cluster.ranks):
                # total cluster loss: nobody is left to run a detector or
                # drive recovery — a declared degradation, not a harness
                # invariant breach (same contract as media loss with no
                # replica: the loss is loud, never silent)
                st.degraded = Degraded(
                    reason=f"every rank dead at step {step}: no surviving "
                           "observer to detect or recover the host",
                    lost_locs=[])
                return
            if not _detect_failure(cluster, dead):
                result.violations.append(
                    f"detector never suspected dead rank {dead}")
                return
            rec = recover_host(
                cluster, dead,
                replica=st.replica_store, replica_peer=st.replica_peer,
                host_node_returns=(ev.kind == "kill_host" and ev.returns),
                dim=2, config=pmcfg, policy=policy, break_acks=break_acks,
            )
            if rec.degraded:
                st.degraded = rec
                return
            st.recoveries += 1
            check_restore(rec)
            rewire_after_recovery(rec)
        elif ev.kind == "kill_peer":
            if st.replica_peer is None \
                    or not cluster.ranks[st.replica_peer].alive:
                return  # nothing protecting us; nothing to kill
            cluster.kill_node(cluster.ranks[st.replica_peer].node)
            st.session = None
            st.replica_store = None
            st.replica_peer = None
            st.tree.replicator = None
            st.tree.replica = None
            session, peer, _ = reprotect(cluster, st.tree, st.host_rank,
                                         policy=policy,
                                         break_acks=break_acks)
            st.adopt_session(session, peer)
            st.note_acked_if_protected()
        elif ev.kind == "partition":
            others = [c.rank for c in cluster.ranks
                      if c.alive and c.rank != st.host_rank]
            w = plan.start_partition([[st.host_rank], others], now())
            open_windows.append((step + ev.duration, w))
        elif ev.kind == "kill_migration":
            _exercise_migration_kill(cluster, st.tree, ev.site, result)
        elif ev.kind == "kill_mid_drain":
            _exercise_mid_drain_kill(
                ev.site, schedule.seed * 8191 + schedule.trial, result)
        elif ev.kind == "loss_burst":
            burst = LinkFaults(drop=ev.drop)
            targets = [c.rank for c in cluster.ranks
                       if c.rank != st.host_rank]
            for t in targets:
                for key in ((st.host_rank, t), (t, st.host_rank)):
                    if key not in plan.links:
                        plan.links[key] = burst
                        burst_links.append((step + ev.duration, key))

    for step in range(1, schedule.steps + 1):
        for heal_step, w in list(open_windows):
            if step >= heal_step:
                w.heal(now())
                open_windows.remove((heal_step, w))
        for end_step, key in list(burst_links):
            if step >= end_step:
                plan.links.pop(key, None)
                burst_links.remove((end_step, key))
        for ev in by_step.get(step, ()):
            apply_event(ev, step)
            if st.degraded is not None:
                break
        if st.degraded is not None or result.violations:
            break
        if st.session is None:
            session, peer, _ = reprotect(cluster, st.tree, st.host_rank,
                                         policy=policy,
                                         break_acks=break_acks)
            st.adopt_session(session, peer)
            st.note_acked_if_protected()
        sim.step()
        result.steps_run = step

    # ---- end-of-trial verdict ------------------------------------------
    if st.degraded is not None:
        result.outcome = "degraded"
        result.degraded_reason = st.degraded.reason
    elif not result.violations:
        for _ in range(3):
            if st.session is not None and st.session.protected:
                break
            if st.session is not None:
                try:
                    st.session.ship()
                    st.note_acked_if_protected()
                    continue
                except ReplicationTimeoutError:
                    st.session = None
                    st.tree.replicator = None
            session, peer, _ = reprotect(cluster, st.tree, st.host_rank,
                                         policy=policy,
                                         break_acks=break_acks)
            st.adopt_session(session, peer)
            st.note_acked_if_protected()
        if st.session is not None and st.session.protected:
            result.outcome = "protected"
        else:
            from repro.core.replication import choose_replica_peer

            if choose_replica_peer(cluster, st.host_rank) is None:
                result.outcome = "degraded"
                result.degraded_reason = "no live peer for re-replication"
            else:
                result.violations.append(
                    "replica protection not re-established despite a live "
                    "peer")
    if result.violations:
        result.outcome = "failed"
    result.recoveries = st.recoveries
    for s in st.sessions:
        result.ships += s.stats.ships
        result.retries += s.stats.retries
        result.resyncs += s.stats.resyncs
        result.duplicates_ignored += s.stats.duplicates_ignored
        result.acks_lost += s.stats.acks_lost
        result.deltas_lost += s.stats.deltas_lost
        result.wait_ns += s.stats.wait_ns
    return result


# ------------------------------------------------------------------ shrinking


def shrink_schedule(schedule: ChaosSchedule,
                    break_acks: bool = False) -> ChaosSchedule:
    """Minimise a failing schedule while it keeps failing.

    Greedy delta-debugging: first try zeroing the link faults, then try
    dropping each event, repeating to a fixpoint.  The result is the
    minimal reproducer the report prints.
    """

    def fails(cand: ChaosSchedule) -> bool:
        return not run_trial(cand, break_acks=break_acks).ok

    current = schedule
    if not fails(current):  # pragma: no cover - caller guarantees failure
        return current
    changed = True
    while changed:
        changed = False
        if current.faults != LinkFaults():
            cand = replace(current, faults=LinkFaults())
            if fails(cand):
                current = cand
                changed = True
        for i in range(len(current.events)):
            cand = replace(current, events=current.events[:i]
                           + current.events[i + 1:])
            if fails(cand):
                current = cand
                changed = True
                break
    return current


@dataclass
class ChaosReport:
    """Outcome of a whole chaos run."""

    seed: int
    trials: List[TrialResult]
    break_acks: bool = False
    reproducer: Optional[Dict[str, object]] = None

    @property
    def passed(self) -> int:
        return sum(1 for t in self.trials if t.ok)

    @property
    def failed(self) -> int:
        return sum(1 for t in self.trials if not t.ok)

    @property
    def ok(self) -> bool:
        return self.failed == 0


def run_chaos(trials: int = 25, seed: int = 0, steps: int = 10,
              break_acks: bool = False,
              only_trial: Optional[int] = None,
              media: bool = False,
              pipeline: bool = False) -> ChaosReport:
    """Run ``trials`` seeded trials; shrink the first failure found.

    ``only_trial`` replays a single trial index (the reproducer path);
    ``media`` mixes NVBM media-fault events into the schedules and
    ``pipeline`` mixes mid-drain kills of the epoch persistence pipeline.
    """
    report = ChaosReport(seed=seed, trials=[], break_acks=break_acks)
    indices = [only_trial] if only_trial is not None else range(trials)
    for t in indices:
        schedule = derive_schedule(seed, t, steps=steps, media=media,
                                   pipeline=pipeline)
        result = run_trial(schedule, break_acks=break_acks)
        report.trials.append(result)
        if not result.ok and report.reproducer is None:
            minimal = shrink_schedule(schedule, break_acks=break_acks)
            cmd = (f"python -m repro chaos --seed {seed} --trial {t} "
                   f"--steps {steps}")
            if break_acks:
                cmd += " --break-acks"
            if media:
                cmd += " --media"
            if pipeline:
                cmd += " --pipeline"
            report.reproducer = {
                "seed": seed,
                "trial": t,
                "violations": list(result.violations),
                "command": cmd,
                "minimal_schedule": minimal.describe(),
                "minimal_events": [e.describe() for e in minimal.events],
            }
    return report
