"""Plain-text tables in the style of the paper's figures."""

from __future__ import annotations

from typing import Any, Iterable, List, Sequence


def fmt(value: Any) -> str:
    """Human-friendly cell formatting."""
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000 or abs(value) < 0.01:
            return f"{value:.3g}"
        return f"{value:.2f}"
    return str(value)


def table(title: str, headers: Sequence[str],
          rows: Iterable[Sequence[Any]]) -> str:
    """Render an aligned table with a title rule."""
    srows: List[List[str]] = [[fmt(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in srows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    sep = "-+-".join("-" * w for w in widths)
    out = [f"== {title} =="]
    out.append(" | ".join(h.ljust(w) for h, w in zip(headers, widths)))
    out.append(sep)
    for row in srows:
        out.append(" | ".join(c.rjust(w) for c, w in zip(row, widths)))
    return "\n".join(out)


def print_table(title: str, headers: Sequence[str],
                rows: Iterable[Sequence[Any]]) -> None:
    print()
    print(table(title, headers, rows))


def seconds(ns: float) -> float:
    return ns * 1e-9
