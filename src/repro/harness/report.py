"""Plain-text tables in the style of the paper's figures, plus a
machine-readable JSON envelope for CI gating (``repro analyze --json``)."""

from __future__ import annotations

import json
import numbers
from typing import Any, Dict, Iterable, List, Sequence

#: Version tag of the benchmark envelope (see docs/observability.md).
BENCH_SCHEMA = "repro-bench/v1"

#: Version tag of the ``repro analyze --json`` envelope.  Bump only on
#: breaking shape changes; *additive* fields (new sections, new row keys)
#: keep the version, which is what lets CI diff baselines across them.
ANALYZE_SCHEMA = "repro-analyze/v1"


def fmt(value: Any) -> str:
    """Human-friendly cell formatting.

    Any real zero — including ``-0.0`` and NumPy scalar zeros, which are not
    ``float`` instances and used to fall through to ``str()`` and render as
    ``"-0.0"`` — formats as plain ``"0"``; a non-zero value whose rounded
    rendering collapses to zero is likewise normalised so no stray sign
    survives into the tables.
    """
    if isinstance(value, bool):
        return str(value)
    if isinstance(value, numbers.Real) and not isinstance(value, numbers.Integral):
        value = float(value)
        if value == 0:
            return "0"
        if abs(value) >= 1000 or abs(value) < 0.01:
            out = f"{value:.3g}"
        else:
            out = f"{value:.2f}"
        if float(out) == 0:
            return "0"
        return out
    return str(value)


def table(title: str, headers: Sequence[str],
          rows: Iterable[Sequence[Any]]) -> str:
    """Render an aligned table with a title rule."""
    srows: List[List[str]] = [[fmt(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in srows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    sep = "-+-".join("-" * w for w in widths)
    out = [f"== {title} =="]
    out.append(" | ".join(h.ljust(w) for h, w in zip(headers, widths)))
    out.append(sep)
    for row in srows:
        out.append(" | ".join(c.rjust(w) for c, w in zip(row, widths)))
    return "\n".join(out)


def print_table(title: str, headers: Sequence[str],
                rows: Iterable[Sequence[Any]]) -> None:
    print()
    print(table(title, headers, rows))


def seconds(ns: float) -> float:
    return ns * 1e-9


def json_payload(sections: Dict[str, Iterable[Dict[str, Any]]],
                 ok: bool) -> Dict[str, Any]:
    """Normalise analysis results into one machine-readable envelope.

    ``sections`` maps a section name (e.g. ``"static"``) to dict rows, one
    per finding/outcome.  The envelope carries an overall verdict so CI can
    gate on ``payload["ok"]`` (or the process exit code) alone, and a
    schema tag (:data:`ANALYZE_SCHEMA`) so baseline diffs stay stable
    across additive field changes.
    """
    norm = {name: [dict(r) for r in rows] for name, rows in sections.items()}
    return {
        "schema": ANALYZE_SCHEMA,
        "ok": bool(ok),
        "sections": norm,
        "counts": {name: len(rows) for name, rows in norm.items()},
    }


def validate_analyze_envelope(env: Dict[str, Any]) -> List[str]:
    """Schema check for an analyze envelope; returns a list of problems."""
    problems: List[str] = []
    if not isinstance(env, dict):
        return ["envelope is not a JSON object"]
    if env.get("schema") != ANALYZE_SCHEMA:
        problems.append(
            f"schema is {env.get('schema')!r}, expected {ANALYZE_SCHEMA!r}"
        )
    if not isinstance(env.get("ok"), bool):
        problems.append("ok is not a boolean")
    sections = env.get("sections")
    if not isinstance(sections, dict):
        problems.append("sections is not an object")
        return problems
    for name, rows in sections.items():
        if not isinstance(rows, list) \
                or not all(isinstance(r, dict) for r in rows):
            problems.append(f"section {name!r} is not a list of objects")
    counts = env.get("counts")
    if not isinstance(counts, dict):
        problems.append("counts is not an object")
    else:
        for name, rows in sections.items():
            if counts.get(name) != len(rows):
                problems.append(f"counts[{name!r}] does not match section")
    return problems


def render_json(sections: Dict[str, Iterable[Dict[str, Any]]],
                ok: bool) -> str:
    return json.dumps(json_payload(sections, ok), indent=2, sort_keys=True)


def bench_envelope(pr: int, suite: str, metrics: Dict[str, float],
                   gates: Iterable[Dict[str, Any]]) -> Dict[str, Any]:
    """Build the schema-versioned benchmark envelope CI gates on.

    Deliberately carries **no wall-clock timestamp**: every metric is a
    simulated quantity, so the same commit produces byte-identical
    envelopes on any machine — which is what makes committing
    ``BENCH_pr<N>.json`` meaningful.
    """
    return {
        "schema": BENCH_SCHEMA,
        "pr": int(pr),
        "suite": suite,
        "metrics": {k: metrics[k] for k in sorted(metrics)},
        "gates": [dict(g) for g in gates],
    }


def validate_envelope(env: Dict[str, Any]) -> List[str]:
    """Schema check for a bench envelope; returns a list of problems."""
    problems: List[str] = []
    if not isinstance(env, dict):
        return ["envelope is not a JSON object"]
    if env.get("schema") != BENCH_SCHEMA:
        problems.append(
            f"schema is {env.get('schema')!r}, expected {BENCH_SCHEMA!r}"
        )
    if not isinstance(env.get("pr"), int):
        problems.append("pr is not an integer")
    if not isinstance(env.get("suite"), str):
        problems.append("suite is not a string")
    metrics = env.get("metrics")
    if not isinstance(metrics, dict) or not metrics:
        problems.append("metrics is not a non-empty object")
    else:
        for k, v in metrics.items():
            if not isinstance(v, numbers.Real) or isinstance(v, bool):
                problems.append(f"metric {k!r} is not a number")
    gates = env.get("gates")
    if not isinstance(gates, list):
        problems.append("gates is not a list")
    else:
        for g in gates:
            if not isinstance(g, dict) or "metric" not in g \
                    or "tolerance" not in g or "direction" not in g:
                problems.append(f"malformed gate entry: {g!r}")
            elif g.get("direction") not in ("lower", "higher"):
                problems.append(
                    f"gate {g['metric']!r} direction must be lower|higher"
                )
            elif isinstance(metrics, dict) and g["metric"] not in metrics:
                problems.append(f"gate {g['metric']!r} has no metric value")
    return problems
