"""Plain-text tables in the style of the paper's figures, plus a
machine-readable JSON envelope for CI gating (``repro analyze --json``)."""

from __future__ import annotations

import json
from typing import Any, Dict, Iterable, List, Sequence


def fmt(value: Any) -> str:
    """Human-friendly cell formatting."""
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000 or abs(value) < 0.01:
            return f"{value:.3g}"
        return f"{value:.2f}"
    return str(value)


def table(title: str, headers: Sequence[str],
          rows: Iterable[Sequence[Any]]) -> str:
    """Render an aligned table with a title rule."""
    srows: List[List[str]] = [[fmt(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in srows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    sep = "-+-".join("-" * w for w in widths)
    out = [f"== {title} =="]
    out.append(" | ".join(h.ljust(w) for h, w in zip(headers, widths)))
    out.append(sep)
    for row in srows:
        out.append(" | ".join(c.rjust(w) for c, w in zip(row, widths)))
    return "\n".join(out)


def print_table(title: str, headers: Sequence[str],
                rows: Iterable[Sequence[Any]]) -> None:
    print()
    print(table(title, headers, rows))


def seconds(ns: float) -> float:
    return ns * 1e-9


def json_payload(sections: Dict[str, Iterable[Dict[str, Any]]],
                 ok: bool) -> Dict[str, Any]:
    """Normalise analysis results into one machine-readable envelope.

    ``sections`` maps a section name (e.g. ``"static"``) to dict rows, one
    per finding/outcome.  The envelope carries an overall verdict so CI can
    gate on ``payload["ok"]`` (or the process exit code) alone.
    """
    norm = {name: [dict(r) for r in rows] for name, rows in sections.items()}
    return {
        "ok": bool(ok),
        "sections": norm,
        "counts": {name: len(rows) for name, rows in norm.items()},
    }


def render_json(sections: Dict[str, Iterable[Dict[str, Any]]],
                ok: bool) -> str:
    return json.dumps(json_payload(sections, ok), indent=2, sort_keys=True)
