"""The pinned benchmark suite behind ``python -m repro bench``.

Three components run with fixed seeds against the observability layer:

* **droplet** — the §5.1 workload on PM-octree with a persist + GC every
  step, reporting simulated makespan, NVBM traffic, COW volume, flush
  counts, wear and the minimum overlap ratio.
* **recovery** — the §5.6 pair: restore from local NVBM after a crash, and
  materialise a replica onto a fresh node.
* **replication** — the acknowledged delta-shipping protocol over a seeded
  lossy network, reporting shipped bytes, retries and backoff time.

Every number is a *simulated* quantity (clock ticks, access counts), so the
resulting :func:`repro.harness.report.bench_envelope` is byte-identical
across machines and commits cleanly as ``BENCH_pr<N>.json``.
:func:`compare_envelopes` applies the :data:`GATES` tolerances between a
committed baseline and a fresh run — the CI regression gate.

The one exception is the opt-in wall-clock layer (``run_bench(wall=True)``,
CLI ``--wall``): :func:`bench_kernels` times the *host* execution of the
advect sweep, scalar vs SoA-vectorized, and gates the speedup ratio via
:data:`WALL_GATES`.  Wall numbers vary across machines, so they are kept
out of the default (byte-deterministic) envelope.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

import numpy as np

from repro.config import (
    DRAM_SPEC,
    NVBM_SPEC,
    PMOctreeConfig,
    SolverConfig,
    TITAN,
)
from repro.core import pm_create, pm_restore
from repro.core.replication import (
    FaultyTransport,
    ReplicaSession,
    ReplicaStore,
    RetryPolicy,
    restore_from_replica,
    ship_delta,
)
from repro.harness.report import BENCH_SCHEMA, bench_envelope
from repro.nvbm.arena import MemoryArena
from repro.nvbm.clock import SimClock
from repro.nvbm.failure import default_injector
from repro.nvbm.pointers import ARENA_DRAM, ARENA_NVBM
from repro.obs import Observability, snapshot_clock, snapshot_wear
from repro.parallel.faults import FaultyNetwork, LinkFaults, NetworkFaultPlan
from repro.parallel.network import Network
from repro.solver.advection import advect_vof
from repro.solver.simulation import DropletSimulation

#: (metric, relative tolerance, direction).  ``lower`` means lower is
#: better: the gate fails when current > baseline * (1 + tolerance).
#: ``higher`` fails when current < baseline * (1 - tolerance).
GATES: List[Dict[str, Any]] = [
    {"metric": "droplet.makespan_ns", "tolerance": 0.10, "direction": "lower"},
    {"metric": "droplet.nvbm_writes", "tolerance": 0.10, "direction": "lower"},
    {"metric": "droplet.nvbm_reads", "tolerance": 0.15, "direction": "lower"},
    {"metric": "droplet.nvbm_bytes_written", "tolerance": 0.10,
     "direction": "lower"},
    {"metric": "droplet.nvbm_lines_touched", "tolerance": 0.10,
     "direction": "lower"},
    {"metric": "droplet.flushes", "tolerance": 0.10, "direction": "lower"},
    {"metric": "droplet.cow_copies", "tolerance": 0.15, "direction": "lower"},
    {"metric": "droplet.wear_max", "tolerance": 0.25, "direction": "lower"},
    {"metric": "droplet.wear_headroom", "tolerance": 0.01,
     "direction": "higher"},
    {"metric": "droplet.overlap_ratio_min", "tolerance": 0.05,
     "direction": "higher"},
    {"metric": "recovery.local_restore_ns", "tolerance": 0.15,
     "direction": "lower"},
    {"metric": "recovery.replica_restore_ns", "tolerance": 0.15,
     "direction": "lower"},
    {"metric": "replication.bytes_shipped", "tolerance": 0.10,
     "direction": "lower"},
    {"metric": "replication.retries", "tolerance": 0.25, "direction": "lower"},
    {"metric": "replication.wait_ns", "tolerance": 0.25, "direction": "lower"},
    {"metric": "partition.fraction_of_makespan", "tolerance": 0.15,
     "direction": "lower"},
    {"metric": "partition.bytes_moved_per_step", "tolerance": 0.10,
     "direction": "lower"},
    {"metric": "media.nofault_makespan_ratio", "tolerance": 0.01,
     "direction": "lower"},
    {"metric": "media.scrub_clean_ns", "tolerance": 0.15,
     "direction": "lower"},
    {"metric": "media.repair_ns", "tolerance": 0.25, "direction": "lower"},
    {"metric": "pipeline.overlap_fraction", "tolerance": 0.05,
     "direction": "higher"},
    {"metric": "droplet.stall_ns", "tolerance": 0.25, "direction": "lower"},
]

#: Gates applied only to the opt-in wall-clock layer (``wall=True``).
#: The speedup ratio is scalar/vectorized host time; with the committed
#: baseline around 10x, the 0.7 tolerance fails the gate below ~3x — the
#: floor the SoA kernels must hold on any machine.
WALL_GATES: List[Dict[str, Any]] = [
    {"metric": "droplet.wall_speedup", "tolerance": 0.7,
     "direction": "higher"},
]

SUITE = "droplet+recovery+replication+partition+media"


def _rig(seed: int = 2017, dram_budget: Optional[int] = None,
         max_inflight: int = 0):
    """One PM-octree rig on a fresh clock (mirrors the experiment harness)."""
    default_injector().reset()
    clock = SimClock()
    dram = MemoryArena(ARENA_DRAM, DRAM_SPEC, clock, 1 << 16)
    nvbm = MemoryArena(ARENA_NVBM, NVBM_SPEC, clock, 1 << 20)
    cfg = PMOctreeConfig(dram_capacity_octants=dram_budget or (1 << 16),
                         seed=seed, max_inflight_epochs=max_inflight)
    tree = pm_create(dram, nvbm, dim=2, config=cfg)
    return clock, dram, nvbm, tree


def bench_droplet(steps: int = 12, max_level: int = 5,
                  obs: Optional[Observability] = None) -> Dict[str, float]:
    """Droplet workload with a persist point every step, fully observed.

    The DRAM budget is deliberately tight (a fraction of the tree) so the
    run exercises eviction merging and copy-on-write, not just the happy
    everything-resident path — otherwise the COW and eviction gates would
    sit on a meaningless zero baseline.
    """
    clock, dram, nvbm, tree = _rig(dram_budget=96, max_inflight=1)
    obs = obs if obs is not None else Observability()
    if obs.metrics.clock is None:
        obs.bind_clock(clock)
    dram.attach_obs(obs)
    nvbm.attach_obs(obs)
    tree.attach_obs(obs)
    solver = SolverConfig(dim=2, min_level=2, max_level=max_level, dt=0.01)

    def persistence(sim_):
        sim_.tree.persist()
        sim_.tree.gc()

    sim = DropletSimulation(tree, solver, clock=clock,
                            persistence=persistence)
    sim.obs = obs
    sim.run(steps)
    # the run is durable only once the last epoch's flush train lands;
    # residual waits here are genuine stalls (nothing left to hide behind)
    tree.drain_persists()
    snapshot_wear(obs, nvbm.device, nvbm.name)
    snapshot_clock(obs, clock)
    m = obs.metrics
    overlaps = [r.overlap_ratio for r in sim.history
                if r.overlap_ratio is not None]
    return {
        "droplet.makespan_ns": clock.now_ns,
        "droplet.nvbm_writes": m.get("device.writes", device=nvbm.name).value,
        "droplet.nvbm_reads": m.get("device.reads", device=nvbm.name).value,
        "droplet.nvbm_bytes_written":
            m.get("device.bytes_written", device=nvbm.name).value,
        "droplet.nvbm_lines_touched":
            m.get("device.lines_touched", device=nvbm.name).value,
        "droplet.partial_reads": m.total("pm.partial_reads"),
        "droplet.partial_writes": m.total("pm.partial_writes"),
        "droplet.flushes": m.get("arena.flush_calls", arena=nvbm.name).value,
        "droplet.stores": m.get("arena.stores", arena=nvbm.name).value,
        "droplet.cow_copies": m.total("pm.cow_copies"),
        "droplet.merge_octants_written":
            m.total("pm.merge_octants_written"),
        "droplet.persists": m.total("pm.persists"),
        "droplet.octants_reclaimed": m.total("pm.octants_reclaimed"),
        "droplet.wear_max": float(nvbm.device.wear_max()),
        "droplet.wear_headroom": nvbm.device.wear_headroom(),
        "droplet.overlap_ratio_min": min(overlaps) if overlaps else 0.0,
        "droplet.trace_spans": float(len(obs.tracer.spans)),
        "pipeline.overlap_fraction": tree._pipeline.overlap_fraction(),
        "droplet.stall_ns": tree._pipeline.stats.stall_ns,
    }


def bench_recovery(steps: int = 6, max_level: int = 4) -> Dict[str, float]:
    """Local-NVBM restart and replica materialisation, on simulated clocks."""
    clock, dram, nvbm, tree = _rig()
    replica = ReplicaStore()
    solver = SolverConfig(dim=2, min_level=2, max_level=max_level, dt=0.01)

    def persistence(sim_):
        sim_.tree.persist()
        ship_delta(sim_.tree, replica)

    sim = DropletSimulation(tree, solver, clock=clock,
                            persistence=persistence)
    sim.run(steps)

    # scenario 1: same node reboots; local NVBM survives (seeded torn lines)
    dram.crash()
    nvbm.crash(np.random.default_rng(0))
    t0 = clock.now_ns
    pm_restore(dram, nvbm, dim=2)
    local_ns = clock.now_ns - t0

    # scenario 2: node gone; materialise the replica on a fresh node
    clock2 = SimClock()
    dram2 = MemoryArena(ARENA_DRAM, DRAM_SPEC, clock2, 1 << 16)
    nvbm2 = MemoryArena(ARENA_NVBM, NVBM_SPEC, clock2, 1 << 20)
    t0 = clock2.now_ns
    restore_from_replica(replica, dram2, nvbm2, dim=2)
    replica_ns = clock2.now_ns - t0

    return {
        "recovery.local_restore_ns": local_ns,
        "recovery.replica_restore_ns": replica_ns,
        "recovery.replica_records": float(len(replica.records)),
    }


def bench_replication(steps: int = 6, max_level: int = 4,
                      obs: Optional[Observability] = None
                      ) -> Dict[str, float]:
    """Acknowledged delta shipping over a seeded lossy link."""
    clock, dram, nvbm, tree = _rig()
    obs = obs if obs is not None else Observability()
    if obs.metrics.clock is None:
        obs.bind_clock(clock)
    plan = NetworkFaultPlan(seed=7,
                            default=LinkFaults(drop=0.15, duplicate=0.05))
    network = FaultyNetwork(Network(TITAN.network), plan)
    transport = FaultyTransport(network, host_rank=0, peer_rank=1,
                                clock=clock)
    session = ReplicaSession(tree, transport=transport, clock=clock,
                             policy=RetryPolicy(max_retries=12))
    session.attach_obs(obs, peer="rank1")
    solver = SolverConfig(dim=2, min_level=2, max_level=max_level, dt=0.01)

    def persistence(sim_):
        sim_.tree.persist()
        session.ship()

    sim = DropletSimulation(tree, solver, clock=clock,
                            persistence=persistence)
    sim.run(steps)
    s = session.stats
    return {
        "replication.ships": float(s.ships),
        "replication.bytes_shipped": float(s.bytes_shipped),
        "replication.retries": float(s.retries),
        "replication.resyncs": float(s.resyncs),
        "replication.acks_lost": float(s.acks_lost),
        "replication.deltas_lost": float(s.deltas_lost),
        "replication.wait_ns": s.wait_ns,
    }


def bench_partition(steps: int = 8, nranks: int = 8,
                    max_level: int = 5) -> Dict[str, float]:
    """Threshold-gated incremental repartitioning vs eager-every-step.

    Two :func:`~repro.parallel.runtime.run_parallel` droplet runs of the
    same work-weighted workload: the default scheme (imbalance threshold,
    minimal-movement incremental migration) and the same weights cut to
    the ideal Salmon positions eagerly every step
    (``partition_threshold=None``).  The gated quantities are the gated
    run's partition fraction of makespan and its migrated bytes per step;
    the eager run's bytes/step is reported alongside so the envelope
    records the incremental scheme's traffic saving.
    """
    from repro.parallel.runtime import Backend, RunConfig, run_parallel

    base = dict(
        backend=Backend.PM_OCTREE, nranks=nranks, target_elements=2e5,
        steps=steps,
        solver=SolverConfig(dim=2, min_level=2, max_level=max_level,
                            dt=0.01),
    )
    weighted = run_parallel(RunConfig(**base))
    eager = run_parallel(RunConfig(**base, partition_threshold=None))
    part_s = weighted.phase_seconds.get("partition", 0.0)
    makespan = weighted.makespan_s
    return {
        "partition.fraction_of_makespan":
            part_s / makespan if makespan else 0.0,
        "partition.bytes_moved_per_step":
            weighted.partition_bytes_moved / steps,
        "partition.eager_bytes_per_step":
            eager.partition_bytes_moved / steps,
        "partition.skipped_rounds": float(weighted.partitions_skipped),
        "partition.octants_migrated": weighted.octants_migrated,
        "partition.makespan_ns": weighted.makespan_s * 1e9,
    }


def bench_media(steps: int = 6, max_level: int = 4) -> Dict[str, float]:
    """Media-integrity costs: the no-fault path must be free, repair is not.

    Three seeded measurements:

    * **no-fault overhead** — the droplet workload run twice, once without
      and once with a (quiescent) :class:`MediaFaultModel` attached.  The
      makespan ratio is gated at 1.0: CRC sealing and fault checks ride
      along with reads the workload already pays for, so arming integrity
      on healthy media costs exactly nothing.
    * **clean scrub** — a full read-verify pass over the published tree
      with nothing wrong; its clock cost is the background-scrub budget.
    * **repair** — rot and stuck lines planted on published records, then
      a scrub that drives the whole ladder (retry, replica rebuild,
      relocate, republish, retire).  The clock delta is the repair bill.
    """
    from repro.core.pmoctree import SLOT_PREV
    from repro.core.recovery import scrub
    from repro.nvbm.device import LINES_PER_RECORD, MediaFaultModel
    from repro.nvbm.pointers import index_of

    def droplet(quiet_model: bool):
        clock, dram, nvbm, tree = _rig()
        if quiet_model:
            nvbm.attach_fault_model(MediaFaultModel(seed=11))
        solver = SolverConfig(dim=2, min_level=2, max_level=max_level,
                              dt=0.01)
        sim = DropletSimulation(tree, solver, clock=clock,
                                persistence=lambda s: s.tree.persist())
        sim.run(steps)
        return clock, nvbm, tree

    clock_ref, _, _ = droplet(False)
    clock, nvbm, tree = droplet(True)
    ratio = clock.now_ns / clock_ref.now_ns

    tree.persist()  # drain the write-back cache so scrub reads the medium
    t0 = clock.now_ns
    clean = scrub(tree)
    scrub_clean_ns = clock.now_ns - t0

    replica = ReplicaStore()
    ship_delta(tree, replica)
    model = nvbm.device.fault_model
    root = nvbm.roots.get(SLOT_PREV)
    published = sorted(tree.reachable_from(root))
    victims = published[:: max(1, len(published) // 6)][:6]
    for i, handle in enumerate(victims):
        gline = index_of(handle) * LINES_PER_RECORD + (i % LINES_PER_RECORD)
        if i % 2:
            model.plant_stuck(gline)
        else:
            model.plant_rot(gline)
    t0 = clock.now_ns
    repair = scrub(tree, replica=replica)
    repair_ns = clock.now_ns - t0

    return {
        "media.nofault_makespan_ratio": ratio,
        "media.scrub_clean_ns": scrub_clean_ns,
        "media.scrub_scanned": float(clean.scanned),
        "media.repair_ns": repair_ns,
        "media.ue_detected": float(repair.detected_total),
        "media.repaired": float(repair.repaired_retry
                                + repair.repaired_local
                                + repair.repaired_replica),
        "media.relocated": float(repair.relocated),
        "media.retired_lines": float(repair.retired_lines),
        "media.unrepaired": float(len(repair.unrepaired)),
    }


def bench_kernels(steps: int = 12, max_level: int = 5,
                  reps: int = 3) -> Dict[str, float]:
    """Host wall-clock of the advect sweep, scalar vs SoA-vectorized.

    Unlike every other bench these are *real* nanoseconds, so they are
    machine-dependent and only enter the envelope under ``wall=True``.
    The mesh is the droplet bench mesh after ``steps`` steps; each variant
    is warmed once and timed best-of-``reps`` (the minimum is the least
    noisy wall estimator).  A second row on a one-level-deeper tree shows
    the speedup growing with mesh size — the element-scale extrapolation
    the ROADMAP's "raw-speed unlock" asks for.
    """
    import time as _time

    def mesh(level: int) -> DropletSimulation:
        clock, dram, nvbm, tree = _rig(max_inflight=0)
        solver = SolverConfig(dim=2, min_level=2, max_level=level, dt=0.01)
        sim = DropletSimulation(tree, solver, clock=clock)
        sim.run(steps)
        return sim

    def best_ns(sim: DropletSimulation, vectorized: bool) -> float:
        advect_vof(sim.tree, sim.geometry, sim.config, sim.t,
                   vectorized=vectorized)  # warm numpy dispatch + caches
        best = None
        for _ in range(reps):
            t0 = _time.perf_counter_ns()
            advect_vof(sim.tree, sim.geometry, sim.config, sim.t,
                       vectorized=vectorized)
            dt = _time.perf_counter_ns() - t0
            best = dt if best is None or dt < best else best
        return float(best)

    sim = mesh(max_level)
    leaves = float(sum(1 for _ in sim.tree.leaves()))
    vec_ns = best_ns(sim, True)
    scalar_ns = best_ns(sim, False)
    big = mesh(max_level + 1)
    big_leaves = float(sum(1 for _ in big.tree.leaves()))
    big_vec_ns = best_ns(big, True)
    big_scalar_ns = best_ns(big, False)
    return {
        "droplet.wall_ns": vec_ns,
        "droplet.scalar_wall_ns": scalar_ns,
        "droplet.wall_speedup": scalar_ns / vec_ns,
        "kernels.batch_elems": leaves,
        "kernels.large_tree_leaves": big_leaves,
        "kernels.large_wall_ns": big_vec_ns,
        "kernels.large_scalar_wall_ns": big_scalar_ns,
        "kernels.large_wall_speedup": big_scalar_ns / big_vec_ns,
    }


def run_bench(pr: int = 0, wall: bool = False) -> Dict[str, Any]:
    """Run the pinned suite and return the versioned envelope.

    ``wall=True`` appends the machine-dependent :func:`bench_kernels`
    wall-clock metrics and their :data:`WALL_GATES`; the default envelope
    stays byte-deterministic.
    """
    metrics: Dict[str, float] = {}
    metrics.update(bench_droplet())
    metrics.update(bench_recovery())
    metrics.update(bench_replication())
    metrics.update(bench_partition())
    metrics.update(bench_media())
    gates = GATES
    if wall:
        metrics.update(bench_kernels())
        gates = GATES + WALL_GATES
    return bench_envelope(pr=pr, suite=SUITE, metrics=metrics, gates=gates)


# ------------------------------------------------------------------ comparison


@dataclass
class Regression:
    """One failed gate (or structural problem) in a bench comparison."""

    metric: str
    kind: str  #: "regression" | "missing" | "schema"
    direction: str = ""
    tolerance: float = 0.0
    baseline: float = 0.0
    current: float = 0.0

    @property
    def ratio(self) -> float:
        if self.baseline == 0:
            return float("inf") if self.current else 1.0
        return self.current / self.baseline

    def describe(self) -> str:
        if self.kind == "schema":
            return f"{self.metric}: {self.direction}"
        if self.kind == "missing":
            return f"{self.metric}: present in baseline, absent in current"
        worse = "above" if self.direction == "lower" else "below"
        return (
            f"{self.metric}: {self.current:g} vs baseline {self.baseline:g} "
            f"({self.ratio:.3f}x) is {worse} the "
            f"{self.tolerance:.0%} tolerance"
        )

    def to_row(self) -> Dict[str, Any]:
        return {
            "metric": self.metric, "kind": self.kind,
            "direction": self.direction, "tolerance": self.tolerance,
            "baseline": self.baseline, "current": self.current,
            "detail": self.describe(),
        }


@dataclass
class CompareReport:
    """Typed verdict of ``bench --compare``."""

    ok: bool
    checked: int
    regressions: List[Regression] = field(default_factory=list)

    def rows(self) -> List[Dict[str, Any]]:
        return [r.to_row() for r in self.regressions]


def compare_envelopes(baseline: Dict[str, Any],
                      current: Dict[str, Any]) -> CompareReport:
    """Apply the *baseline's* gates between two envelopes.

    The baseline's gate list governs so a PR cannot silently loosen its own
    thresholds; schema mismatches and metrics that vanished are failures in
    their own right, not skips.
    """
    regressions: List[Regression] = []
    for env, label in ((baseline, "baseline"), (current, "current")):
        if env.get("schema") != BENCH_SCHEMA:
            regressions.append(Regression(
                metric="schema", kind="schema",
                direction=f"{label} schema {env.get('schema')!r} != "
                          f"{BENCH_SCHEMA!r}",
            ))
    if regressions:
        return CompareReport(ok=False, checked=0, regressions=regressions)

    base_metrics = baseline.get("metrics", {})
    curr_metrics = current.get("metrics", {})
    checked = 0
    for gate in baseline.get("gates", []):
        name = gate["metric"]
        tol = float(gate["tolerance"])
        direction = gate["direction"]
        if name not in base_metrics:
            continue  # the baseline never measured it; nothing to gate
        if name not in curr_metrics:
            regressions.append(Regression(
                metric=name, kind="missing", direction=direction,
                tolerance=tol, baseline=float(base_metrics[name]),
            ))
            continue
        checked += 1
        base_v = float(base_metrics[name])
        curr_v = float(curr_metrics[name])
        if direction == "lower":
            bad = curr_v > base_v * (1.0 + tol) + 1e-12
        else:
            bad = curr_v < base_v * (1.0 - tol) - 1e-12
        if bad:
            regressions.append(Regression(
                metric=name, kind="regression", direction=direction,
                tolerance=tol, baseline=base_v, current=curr_v,
            ))
    return CompareReport(ok=not regressions, checked=checked,
                         regressions=regressions)
