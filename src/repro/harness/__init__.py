"""Experiment harness: one runner per table/figure of the paper's §5.

Each ``exp_*`` function in :mod:`repro.harness.experiments` reproduces one
evaluation artifact and returns a structured result; the benchmark suite
(``benchmarks/``) executes them, prints the paper-style rows through
:mod:`repro.harness.report`, and asserts the *shape* claims (who wins, by
roughly what factor, where crossovers fall).  EXPERIMENTS.md records
paper-vs-measured for each.
"""

from repro.harness import experiments, report

__all__ = ["experiments", "report"]
