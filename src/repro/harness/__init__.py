"""Experiment harness: one runner per table/figure of the paper's §5.

Each ``exp_*`` function in :mod:`repro.harness.experiments` reproduces one
evaluation artifact and returns a structured result; the benchmark suite
(``benchmarks/``) executes them, prints the paper-style rows through
:mod:`repro.harness.report`, and asserts the *shape* claims (who wins, by
roughly what factor, where crossovers fall).  EXPERIMENTS.md records
paper-vs-measured for each.

:mod:`repro.harness.chaos` is the fault-tolerance counterpart: seeded
randomized fault schedules against the recovery stack, with invariant
checks and failure shrinking (``python -m repro chaos``).
"""

from repro.harness import chaos, experiments, report

__all__ = ["chaos", "experiments", "report"]
