"""Parallel meshing driver: the five routines across P simulated ranks.

How the scaling experiments run (see DESIGN.md's substitution table): ONE
real droplet simulation executes on the chosen octree backend, with every
memory/storage access charged to a probe clock by the arenas and devices.
Each time step the driver

1. measures the real per-phase work (refine / balance / solve / persist),
2. splits it over P rank clocks in proportion to each rank's share of the
   leaves *before* re-balancing (the interface concentrates in a few ranks'
   ranges, which is exactly the load imbalance Partition exists to fix),
3. runs a real SFC repartition of the P leaf ranges through the simulated
   communicator, charging latency/bandwidth per actual message, and
4. applies the element **scale factor** ``S = target_elements /
   actual_octants``: per-rank phase times and message byte counts are
   multiplied by S, representing the paper's ~1M-elements-per-rank runs with
   a tree the simulator can afford.  Meshing work per octant is constant, so
   linear extrapolation preserves the curves' shapes; every result records
   the factor used.

Execution time = the makespan over rank clocks at the final barrier, which
is what Figs 6-11 plot.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Dict, Optional

import numpy as np

from repro.config import (
    NVBM_FS_SPEC,
    OCTANT_RECORD_SIZE,
    ClusterSpec,
    PMOctreeConfig,
    SolverConfig,
    TITAN,
)
from repro.nvbm.arena import MemoryArena
from repro.nvbm.clock import Category, SimClock
from repro.nvbm.pointers import ARENA_DRAM, ARENA_NVBM
from repro.octree.linear import LinearOctree
from repro.parallel.network import Network
from repro.parallel.partition import repartition
from repro.parallel.simmpi import RankContext, SimCommunicator
from repro.solver.features import partition_work_weights
from repro.solver.simulation import DropletSimulation
from repro.storage.block import BlockDevice
from repro.storage.filesystem import SimFileSystem

#: Load-share bins: with P >> actual octants, per-rank shares quantise to
#: nothing, so shares are computed over min(P, LOAD_BINS) bins and spread
#: evenly inside a bin.
LOAD_BINS = 64

#: Per-octant handling cost of migration (pack, unpack, delete from the
#: source tree, re-insert into the destination tree, rebuild ghost/neighbor
#: info) — charged on top of the wire transfer.  Calibrated so the
#: Partition share of meshing time lands near the paper's §5.2 anchors
#: (~19% at 6 ranks, ~56% at 1000 ranks) given this driver's migration
#: volumes.
PARTITION_NS_PER_OCTANT = 150.0


class Backend(str, Enum):
    """The three octree implementations of §5.1."""

    PM_OCTREE = "pm-octree"
    IN_CORE = "in-core"
    OUT_OF_CORE = "out-of-core"


@dataclass
class RunConfig:
    """One scaling-experiment run."""

    backend: Backend
    nranks: int
    target_elements: float  #: total elements the run represents (paper scale)
    steps: int = 20
    solver: SolverConfig = field(default_factory=lambda: SolverConfig(
        dim=2, min_level=2, max_level=5, dt=0.01))
    cluster: ClusterSpec = TITAN
    #: C0 DRAM budget as a fraction of the (actual) tree size; mirrors the
    #: paper's "x GB configured for the C0 tree" knob (Fig 10).
    dram_fraction: float = 0.5
    #: Absolute C0 budget in actual octants; overrides dram_fraction.
    dram_octants: Optional[int] = None
    transform: bool = True
    checkpoint_interval: int = 10
    partition_every: int = 1
    #: Skip repartitioning while the weighted imbalance (max/mean rank
    #: load) stays at or under this; ``None`` re-balances eagerly every
    #: ``partition_every`` steps regardless of imbalance.
    partition_threshold: Optional[float] = 1.2
    #: Cut the curve by per-octant work weights (solver feature intensity +
    #: churn) instead of raw leaf counts.
    partition_weighted: bool = True
    #: which AMR application drives the run: "droplet" (the paper's §5.1
    #: workload) or "wave" (the §6-style second workload).
    workload: str = "droplet"
    #: bounded in-flight window of the asynchronous persist pipeline
    #: (PM-octree backend only); 0 = synchronous stop-the-world persist.
    max_inflight_epochs: int = 1
    #: SoA batch solver kernels (repro.solver.soa) on trees that support
    #: them; False pins the scalar oracle path.  Bit-identical either way.
    vectorized: bool = True
    seed: int = 2017


@dataclass
class RunResult:
    """What the harness reports per configuration."""

    config: RunConfig
    makespan_s: float
    phase_seconds: Dict[str, float]
    scale_factor: float
    actual_octants: int
    nvbm_writes: int
    octants_migrated: float  #: scaled, summed over steps
    merges: int
    evictions: int  #: DRAM-pressure merges of C0 subtrees (the Fig 10 count)
    persists: int
    #: repartition rounds skipped by the imbalance threshold
    partitions_skipped: int = 0
    #: scaled wire bytes actually migrated, summed over steps
    partition_bytes_moved: float = 0.0
    step_reports: list = field(default_factory=list)

    @property
    def breakdown_percent(self) -> Dict[str, float]:
        total = sum(self.phase_seconds.values())
        if total <= 0:
            return {k: 0.0 for k in self.phase_seconds}
        return {k: 100.0 * v / total for k, v in self.phase_seconds.items()}


def _build_backend(backend: Backend, probe: SimClock, cfg: RunConfig):
    """Instantiate the global tree + its persistence hook on the probe clock."""
    if backend is Backend.PM_OCTREE:
        # generous arenas; C0 pressure is applied via dram_capacity below
        dram = MemoryArena(ARENA_DRAM, cfg.cluster.dram, probe, 1 << 18)
        nvbm = MemoryArena(ARENA_NVBM, cfg.cluster.nvbm, probe, 1 << 20)
        # dram budget resolved after construct(); start permissive
        pm_cfg = PMOctreeConfig(dram_capacity_octants=1 << 18, seed=cfg.seed,
                                max_inflight_epochs=cfg.max_inflight_epochs)
        from repro.core.pmoctree import PMOctree

        tree = PMOctree(dram, nvbm, dim=cfg.solver.dim, config=pm_cfg)

        def persistence(sim: DropletSimulation) -> None:
            # keep_resident always: without dynamic transformation the C0
            # layout is simply *static* (whatever landed in DRAM stays —
            # Fig 5a's brute-force placement), not absent.
            tree.persist(transform=cfg.transform, keep_resident=True)

        return tree, persistence, {"dram": dram, "nvbm": nvbm}
    if backend is Backend.IN_CORE:
        from repro.baselines.incore import CheckpointPolicy, InCoreOctree

        dram = MemoryArena(ARENA_DRAM, cfg.cluster.dram, probe, 1 << 18)
        # snapshots go to NVBM behind a filesystem interface (§5.1)
        fs = SimFileSystem(BlockDevice(NVBM_FS_SPEC, probe))
        tree = InCoreOctree(dram, dim=cfg.solver.dim)
        policy = CheckpointPolicy(fs, interval=cfg.checkpoint_interval)

        def persistence(sim: DropletSimulation) -> None:
            policy.maybe_checkpoint(tree, sim.step_count)

        return tree, persistence, {"dram": dram, "fs": fs}
    if backend is Backend.OUT_OF_CORE:
        from repro.baselines.etree import EtreeOctree

        device = BlockDevice(NVBM_FS_SPEC, probe)
        tree = EtreeOctree(device, dim=cfg.solver.dim)
        return tree, None, {"device": device}
    raise ValueError(f"unknown backend {backend}")


def _equal_cuts(lin: LinearOctree, nranks: int) -> np.ndarray:
    """Z-key boundaries that split the current leaves into P equal ranges.

    ``cuts[r]`` is the first key owned by rank r; ownership of rank r is
    ``[cuts[r], cuts[r+1])`` with a +inf sentinel at the end.  These
    boundaries persist across a time step, so leaves created by refinement
    land in whichever rank owns that region — the source of the load
    imbalance Partition repairs.
    """
    n = len(lin)
    cuts = np.empty(nranks + 1, dtype=np.float64)
    cuts[0] = 0.0
    for r in range(1, nranks):
        idx = round(r * n / nranks)
        cuts[r] = float(lin.keys[min(idx, n - 1)]) if n else 0.0
    cuts[-1] = np.inf
    return cuts


def _cuts_from_pieces(pieces, nranks: int) -> np.ndarray:
    """Z-key boundaries induced by the pieces a repartition produced.

    ``cuts[r]`` is rank r's first key; a rank that owns zero leaves after a
    weighted cut inherits the next non-empty rank's boundary (an empty
    range), keeping the array monotone for searchsorted ownership tests.
    """
    cuts = np.empty(nranks + 1, dtype=np.float64)
    cuts[0] = 0.0
    cuts[-1] = np.inf
    for r in range(nranks - 1, 0, -1):
        piece = pieces[r]
        cuts[r] = float(piece.keys[0]) if len(piece) else cuts[r + 1]
    return cuts


def _ownership_counts(lin: LinearOctree, cuts: np.ndarray) -> np.ndarray:
    """Current leaves per rank range."""
    keys = lin.keys.astype(np.float64)
    idx = np.searchsorted(cuts[1:-1], keys, side="right")
    counts = np.bincount(idx, minlength=len(cuts) - 1).astype(np.float64)
    return counts


def run_parallel(cfg: RunConfig, obs=None) -> RunResult:
    """Execute one configuration and return its scaled metrics.

    ``obs`` (optional :class:`repro.obs.Observability`) is late-bound to the
    run's probe clock (unless a clock is already bound), attached to every
    memory arena and the tree, and fed per-step trace spans plus per-rank
    phase gauges at the final barrier.
    """
    probe = SimClock()
    if obs is not None and obs.metrics.clock is None:
        obs.bind_clock(probe)
    tree, persistence, resources = _build_backend(cfg.backend, probe, cfg)
    if obs is not None:
        for res in resources.values():
            if isinstance(res, MemoryArena):
                res.attach_obs(obs)
        if hasattr(tree, "attach_obs"):
            tree.attach_obs(obs)
    if cfg.workload == "droplet":
        sim = DropletSimulation(tree, cfg.solver, clock=probe,
                                persistence=persistence,
                                vectorized=cfg.vectorized)
    elif cfg.workload == "wave":
        from repro.solver.wave import WaveConfig, WaveSimulation

        wave_cfg = WaveConfig(
            dim=cfg.solver.dim,
            min_level=cfg.solver.min_level,
            max_level=cfg.solver.max_level,
            dt=cfg.solver.dt,
        )
        sim = WaveSimulation(tree, wave_cfg, clock=probe,
                             persistence=persistence,
                             vectorized=cfg.vectorized)
    else:
        raise ValueError(f"unknown workload {cfg.workload!r}")

    ranks = [RankContext(rank=r, node=r // cfg.cluster.cores_per_node)
             for r in range(cfg.nranks)]
    network = Network(cfg.cluster.network)
    comm = SimCommunicator(ranks, network)

    with probe.phase("construct"):
        sim.construct()
    actual0 = tree.num_octants()
    scale = max(1.0, cfg.target_elements / max(1, actual0))
    if cfg.backend is Backend.PM_OCTREE:
        # now that the actual tree size is known, apply the C0 DRAM budget
        # (the "x GB configured for the C0 tree" knob); eviction merging
        # brings the resident set under it on the next pressure check
        budget = cfg.dram_octants if cfg.dram_octants is not None\
            else max(8, int(cfg.dram_fraction * actual0))
        tree.config = PMOctreeConfig(
            dram_capacity_octants=budget,
            nvbm_capacity_octants=tree.config.nvbm_capacity_octants,
            t_transform=tree.config.t_transform,
            max_inflight_epochs=cfg.max_inflight_epochs,
            seed=cfg.seed,
        )
        if tree.dram.used > budget:
            tree._ensure_dram_capacity(1)

    # distribute construct time evenly (uniform base mesh)
    construct_each = probe.phase_ns("construct") * scale / cfg.nranks
    for ctx in ranks:
        with ctx.clock.phase("construct"):
            ctx.clock.advance(construct_each)

    migrated_total = 0.0
    skipped_total = 0
    bytes_moved_total = 0.0
    prev_snapshot = probe.snapshot()
    surface_over_volume = (
        scale ** ((cfg.solver.dim - 1) / cfg.solver.dim) / scale
    )
    prev_lin = LinearOctree.from_tree(tree)
    cuts = _equal_cuts(prev_lin, cfg.nranks)
    uniform = np.full(cfg.nranks, 1.0 / cfg.nranks)
    from contextlib import nullcontext

    for _step in range(cfg.steps):
        prev_leaves = set(int(loc) for loc in prev_lin.locs)
        step_span = (
            obs.tracer.span("parallel.step", step=_step,
                            backend=cfg.backend.value)
            if obs is not None else nullcontext()
        )
        with step_span:
            sim.step()
        lin = LinearOctree.from_tree(tree)
        prev_lin = lin
        # Ownership is still last step's ranges: refinement near the moving
        # interface piled new leaves into a few ranks' ranges.
        counts = _ownership_counts(lin, cuts)
        raw = counts / max(1.0, counts.sum())
        # Volume shares: where the *standing* octants sit.  Raw deviations
        # from uniform come from changed (surface) octants whose target-
        # scale fraction shrinks by surface_scale/scale — damp accordingly.
        shares = uniform + (raw - uniform) * surface_over_volume
        shares = np.clip(shares, 0.0, None)
        total = shares.sum()
        volume_shares = shares / total if total > 0 else uniform
        # Change shares: where this step's *new* leaves landed.  Refinement,
        # balancing and delta-persist work concentrates on these ranks —
        # the load imbalance that makes the paper's refine makespan grow
        # 16x while per-rank element counts stay constant (§5.2).
        new_locs = [int(loc) for loc in lin.locs if int(loc) not in prev_leaves]
        if new_locs:
            changed_lin = LinearOctree(cfg.solver.dim, new_locs,
                                       max_level=lin.max_level)
            ccounts = _ownership_counts(changed_lin, cuts)
            csum = ccounts.sum()
            change_shares = ccounts / csum if csum > 0 else uniform
        else:
            change_shares = uniform
        snap = probe.snapshot()
        # Per-phase scale exponents.  Interface-tracking AMR does
        # refine/balance work proportional to the *interface* (surface),
        # not the volume — the paper's own §5.2 observation ("897X" problem
        # growth -> "16X" refine time, i.e. ~N^0.4).  PM-octree's persist
        # writes the changed (surface) octants only, while the in-core
        # snapshot serialises the whole volume.  "sample" is fixed-size
        # (min(100, size) per candidate) and does not scale at all.
        surface_scale = scale ** ((cfg.solver.dim - 1) / cfg.solver.dim)
        persist_scale = (
            surface_scale if cfg.backend is Backend.PM_OCTREE else scale
        )
        phase_scales = {
            "refine": surface_scale, "balance": surface_scale,
            "solve": scale, "persist.enqueue": persist_scale,
            "persist.drain": persist_scale,
            "transform": surface_scale, "sample": 1.0,
        }
        deltas = {
            ph: snap.by_phase.get(ph, 0.0) - prev_snapshot.by_phase.get(ph, 0.0)
            for ph in phase_scales
        }
        prev_snapshot = snap
        # Which ranks do each phase's work: solve sweeps the standing
        # octants; refine/balance/transform (and PM's delta persist) follow
        # the changed cells; in-core's full snapshot is volume work.
        persist_shares = (
            change_shares if cfg.backend is Backend.PM_OCTREE
            else volume_shares
        )
        phase_shares = {
            "refine": change_shares, "balance": change_shares,
            "solve": volume_shares, "persist.enqueue": persist_shares,
            "persist.drain": persist_shares,
            "transform": change_shares, "sample": uniform,
        }
        # Total scaled work of a phase is delta*scale; rank r does share_r.
        for ph, delta in deltas.items():
            if delta <= 0:
                continue
            scaled = delta * phase_scales[ph]
            for ctx, share in zip(ranks, phase_shares[ph]):
                if share <= 0:
                    continue
                with ctx.clock.phase(ph):
                    ctx.clock.advance(scaled * share)
        # Partition: rebalance the SFC ranges through the real communicator
        if cfg.nranks > 1 and (_step + 1) % cfg.partition_every == 0:
            from contextlib import ExitStack

            idx_bounds = np.concatenate(
                ([0], np.cumsum(counts).astype(int))
            )
            idx_bounds[-1] = len(lin)
            pieces = [
                lin.slice(int(idx_bounds[r]), int(idx_bounds[r + 1]))
                for r in range(cfg.nranks)
            ]
            if cfg.partition_weighted:
                w_all = partition_work_weights(lin)
                wlists = [
                    w_all[int(idx_bounds[r]):int(idx_bounds[r + 1])]
                    for r in range(cfg.nranks)
                ]
            else:
                wlists = None
            with ExitStack() as stack:
                for ctx in ranks:
                    stack.enter_context(ctx.clock.phase("partition"))
                res = repartition(comm, pieces, weights=wlists,
                                  threshold=cfg.partition_threshold,
                                  obs=obs)
            if res.skipped:
                # the estimator's allgather was charged by the communicator;
                # no octant moved and the old cuts stay in force
                skipped_total += 1
            else:
                # Migration windows shift with the whole SFC ordering, so
                # the moved volume scales with the octant count (Gerris'
                # cost-based partitioner likewise moves volume-proportional
                # chunks); charge each rank its share of the scaled wire
                # bytes plus per-octant partitioner handling.
                moved_scaled = res.octants_moved * scale
                per_rank_bytes = int(
                    moved_scaled * OCTANT_RECORD_SIZE / cfg.nranks
                )
                extra_ns = (
                    cfg.cluster.network.transfer_ns(per_rank_bytes)
                    + moved_scaled * PARTITION_NS_PER_OCTANT / cfg.nranks
                )
                for ctx in ranks:
                    with ctx.clock.phase("partition"):
                        ctx.clock.advance(extra_ns, Category.COMM)
                migrated_total += moved_scaled
                bytes_moved_total += res.bytes_moved * scale
                cuts = _cuts_from_pieces(res.pieces, cfg.nranks)
        comm.barrier()

    # Drain any in-flight persist epochs before taking the makespan: the
    # final barrier cannot retire while a flush train is still in the air.
    # The residual wait (charged to the probe under "persist.drain" by the
    # pipeline) is a full-stop barrier, so every rank pays it in full.
    drain = getattr(tree, "drain_persists", None)
    if drain is not None:
        drain()
        snap = probe.snapshot()
        residual = (snap.by_phase.get("persist.drain", 0.0)
                    - prev_snapshot.by_phase.get("persist.drain", 0.0))
        if residual > 0:
            surface_scale = scale ** ((cfg.solver.dim - 1) / cfg.solver.dim)
            drain_scale = (surface_scale
                           if cfg.backend is Backend.PM_OCTREE else scale)
            for ctx in ranks:
                with ctx.clock.phase("persist.drain"):
                    ctx.clock.advance(residual * drain_scale, Category.MEM_NVBM)
            comm.barrier()

    makespan = comm.makespan_ns()
    phases = comm.phase_breakdown()
    stats = getattr(tree, "stats", None)
    if obs is not None:
        from repro.obs import snapshot_clock

        for ctx in ranks:
            snapshot_clock(obs, ctx.clock, rank=ctx.rank)
        obs.metrics.gauge("run.makespan_ns",
                          backend=cfg.backend.value).set(makespan)
        obs.metrics.gauge("run.scale_factor",
                          backend=cfg.backend.value).set(scale)
    return RunResult(
        config=cfg,
        makespan_s=makespan * 1e-9,
        phase_seconds={k: v * 1e-9 for k, v in phases.items()},
        scale_factor=scale,
        actual_octants=tree.num_octants(),
        nvbm_writes=_nvbm_writes(cfg.backend, resources),
        octants_migrated=migrated_total,
        merges=stats.merges if stats else 0,
        evictions=stats.evictions if stats else 0,
        persists=stats.persists if stats else 0,
        partitions_skipped=skipped_total,
        partition_bytes_moved=bytes_moved_total,
        step_reports=sim.history,
    )


def _nvbm_writes(backend: Backend, resources: Dict) -> int:
    if backend is Backend.PM_OCTREE:
        return resources["nvbm"].device.stats.writes
    if backend is Backend.IN_CORE:
        return resources["fs"].device.stats.page_writes
    return resources["device"].stats.page_writes
