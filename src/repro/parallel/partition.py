"""The *Partition* meshing routine: SFC re-balancing of leaves across ranks.

Octants live on the Z-order space-filling curve; partitioning cuts the curve
into P near-equal contiguous ranges (Salmon's classic scheme, also what
Gerris' load balancing does).  Each rank ships the octants that fall outside
its new range with one alltoallv; the record bytes moved are what the
network model charges, and they are what makes Partition grow to 56 % of the
time at 1000 ranks in Fig 7.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

import numpy as np

from repro.config import OCTANT_RECORD_SIZE
from repro.errors import PartitionError
from repro.nvbm.clock import Category
from repro.octree.linear import LinearOctree
from repro.parallel.simmpi import SimCommunicator


@dataclass
class PartitionResult:
    """Outcome of one repartitioning step."""

    pieces: List[LinearOctree]
    octants_moved: int
    bytes_moved: int

    @property
    def balanced(self) -> bool:
        sizes = [len(p) for p in self.pieces]
        return (max(sizes) - min(sizes)) <= 1 if sizes else True


def repartition(comm: SimCommunicator,
                pieces: List[LinearOctree]) -> PartitionResult:
    """Rebalance per-rank linear octrees onto equal SFC ranges.

    ``pieces[i]`` is rank i's current set of leaves (globally disjoint,
    together tiling the domain).  Returns the new distribution.
    """
    nranks = comm.size
    if len(pieces) != nranks:
        raise PartitionError(f"expected {nranks} pieces, got {len(pieces)}")
    dim = pieces[0].dim
    max_level = max(p.max_level for p in pieces)

    # Step 1: agree on global leaf count and per-rank prefix offsets.
    counts = comm.allgather([len(p) for p in pieces], nbytes_each=8)
    total = sum(counts)
    if total == 0:
        raise PartitionError("cannot partition an empty forest")

    # Step 2: each rank walks its (sorted) leaves and assigns each to the
    # destination rank that owns its global Z-order index.
    bounds = [round(i * total / nranks) for i in range(nranks + 1)]
    prefix = np.cumsum([0] + counts)
    sends: List[dict] = []
    for r, piece in enumerate(pieces):
        outbox: dict = {}
        start = int(prefix[r])
        for j in range(len(piece)):
            gidx = start + j
            dst = int(np.searchsorted(bounds, gidx, side="right")) - 1
            dst = min(dst, nranks - 1)
            outbox.setdefault(dst, []).append(
                (int(piece.locs[j]), piece.payloads[j].copy())
            )
        sends.append(outbox)

    moved = sum(
        len(batch)
        for r, outbox in enumerate(sends)
        for dst, batch in outbox.items()
        if dst != r
    )

    recvs = comm.alltoallv(
        sends, nbytes_of=lambda batch: len(batch) * OCTANT_RECORD_SIZE
    )

    # Step 3: each rank rebuilds its linear octree from what it received and
    # pays the memory writes for storing the new octants.
    new_pieces: List[LinearOctree] = []
    for r, inbox in enumerate(recvs):
        locs: List[int] = []
        rows: List[np.ndarray] = []
        foreign = 0
        for src, batch in inbox.items():
            for loc, payload in batch:
                locs.append(loc)
                rows.append(payload)
            if src != r:
                foreign += len(batch)
        ctx = comm.ranks[r]
        dram = ctx.resources.get("dram")
        if dram is not None and foreign:
            # storing a received octant costs one DRAM record write
            ctx.clock.advance(
                foreign * 2 * dram.spec.write_latency_ns, Category.MEM_DRAM
            )
        payloads = np.vstack(rows) if rows else None
        new_pieces.append(LinearOctree(dim, locs, payloads, max_level=max_level))

    sizes = [len(p) for p in new_pieces]
    if sum(sizes) != total:
        raise PartitionError(
            f"octants lost in flight: had {total}, now {sum(sizes)}"
        )
    return PartitionResult(
        pieces=new_pieces,
        octants_moved=moved,
        bytes_moved=moved * OCTANT_RECORD_SIZE,
    )
