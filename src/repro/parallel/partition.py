"""The *Partition* meshing routine: weighted incremental SFC re-balancing.

Octants live on the Z-order space-filling curve; partitioning cuts the curve
into P contiguous ranges.  Three things distinguish this from the classic
equal-count eager scheme (and track what Fig 7's 56 %-at-1000-ranks cost
actually pays for):

* **Work-weighted cuts** — each octant carries a cost weight (solver feature
  intensity + refine/coarsen churn, see
  :func:`repro.solver.features.partition_work_weights`); the cut targets
  equal *work* per rank, Salmon-style, so interface-heavy droplet ranges
  stop dominating wall-clock even when leaf counts look balanced.
* **Threshold-triggered** — a cheap allgather estimates the weighted
  imbalance (max/mean rank load); when it is under the caller's threshold
  the repartition is skipped outright and no octant moves.
* **Incremental migration** — a *triggered* repartition does not jump to
  the ideal cut (which chases the moving interface and re-ships octants
  every step): each standing cut is clamped into the widest window that
  still fits every rank's load under a cap, so only the octants needed to
  repair the violation cross a boundary.  They ship in coalesced
  per-destination batches; the wire and the receiving device are charged
  for the actual record bytes packed.  Without a threshold (eager mode)
  the ideal Salmon cuts are used.

Migration is crash-consistent: every batch is journalled
(:class:`MigrationLog`) and follows **publish-before-retire** ordering —
octants are durably published at the receiver before the sender retires its
copies.  The registered crash sites (``migrate.pre_publish``,
``migrate.mid_batch``, ``migrate.pre_retire``) tear the protocol at each
stage, and :func:`recover_migration` re-drives a published batch forward or
rolls a partial publish back, never losing or duplicating an octant.
Recovery itself exposes ``migrate.recover.mid`` so the sweep can lose power
again mid-repair and prove both arms idempotent.
"""

from __future__ import annotations

from contextlib import nullcontext
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.config import CACHE_LINE_SIZE, OCTANT_RECORD_SIZE
from repro.errors import PartitionError
from repro.nvbm import sites
from repro.nvbm.clock import Category
from repro.octree.linear import LinearOctree
from repro.parallel.sfc import weighted_cut_indices
from repro.parallel.simmpi import SimCommunicator

#: Cache lines one packed octant record spans — what packing at the sender
#: and publishing at the receiver charge the memory device for.
RECORD_LINES = -(-OCTANT_RECORD_SIZE // CACHE_LINE_SIZE)

#: Wire retransmits per batch before migration declares the link dead.
MAX_SEND_RETRIES = 16


@dataclass
class PartitionResult:
    """Outcome of one repartitioning step."""

    pieces: List[LinearOctree]
    octants_moved: int
    bytes_moved: int
    skipped: bool = False
    #: weighted max/mean rank load *before* the cut (what the threshold saw)
    imbalance: float = 1.0
    #: weighted max/mean rank load after the cut (== before when skipped)
    imbalance_after: float = 1.0
    #: per-rank weighted loads after the cut
    weighted_loads: List[float] = field(default_factory=list)
    #: heaviest single octant — the unsplittable unit bounding any cut
    max_weight: float = 0.0
    send_retries: int = 0

    @property
    def balanced(self) -> bool:
        """Weighted balance verdict.

        Raw leaf counts are meaningless once cuts are weight-based: a rank
        holding few heavy interface octants is *balanced*.  The achievable
        bound for contiguous cuts of unsplittable octants is
        ``max_load <= mean_load + max_weight`` (Salmon); that is what is
        checked.  Unit weights reduce it to the old count criterion.
        """
        loads = self.weighted_loads
        if not loads:
            return True
        mean = sum(loads) / len(loads)
        if mean <= 0:
            return True
        return max(loads) <= mean + self.max_weight + 1e-9


# --------------------------------------------------------------- migration

@dataclass
class MigrationEntry:
    """One journalled batch.  ``state`` walks pending -> published ->
    retired; recovery may leave it ``rolled-back`` instead."""

    src: int
    dst: int
    locs: Tuple[int, ...]
    state: str = "pending"

    def published(self) -> None:
        self.state = "published"

    def retired(self) -> None:
        self.state = "retired"


class MigrationLog:
    """Durable journal of migration batches.

    Models the small persistent record each endpoint flushes before acting
    (the same assumption the replication protocol makes about its sequence
    numbers): the journal survives a crash, so recovery can tell a batch
    that never published from one that published but did not retire.
    """

    def __init__(self) -> None:
        self.entries: List[MigrationEntry] = []

    def begin(self, src: int, dst: int,
              locs: Sequence[int]) -> MigrationEntry:
        entry = MigrationEntry(src=src, dst=dst,
                               locs=tuple(int(x) for x in locs))
        self.entries.append(entry)
        return entry

    @property
    def in_flight(self) -> List[MigrationEntry]:
        return [e for e in self.entries
                if e.state in ("pending", "published")]


class MigrationState:
    """Per-rank octant stores plus the journal, recoverable mid-flight.

    :func:`repartition` materialises the pieces into plain ``{loc:
    payload}`` stores so a torn migration can be repaired record-by-record;
    callers that arm crash sites keep the handle and run
    :func:`recover_migration` on it after the simulated power loss.
    """

    def __init__(self) -> None:
        self.dim = 2
        self.max_level = 0
        self.stores: List[Dict[int, np.ndarray]] = []
        self.weight_of: Dict[int, float] = {}
        self.log = MigrationLog()

    def load(self, pieces: Sequence[LinearOctree],
             wlists: Sequence[np.ndarray], max_level: int) -> None:
        self.dim = pieces[0].dim
        self.max_level = max_level
        self.stores = []
        self.weight_of = {}
        for piece, w in zip(pieces, wlists):
            store: Dict[int, np.ndarray] = {}
            for j in range(len(piece)):
                loc = int(piece.locs[j])
                store[loc] = np.array(piece.payloads[j], dtype=np.float64)
                self.weight_of[loc] = float(w[j])
            self.stores.append(store)

    def loads(self) -> List[float]:
        return [sum(self.weight_of.get(loc, 1.0) for loc in store)
                for store in self.stores]

    def total_octants(self) -> int:
        return sum(len(store) for store in self.stores)

    def all_locs(self) -> set:
        out: set = set()
        for store in self.stores:
            out.update(store)
        return out

    def rebuild_pieces(self) -> List[LinearOctree]:
        """New linear octrees from the stores.  Every piece — including one
        that owns zero leaves after the cut — carries the *forest's* agreed
        ``max_level``, not a stale peer value, so Z keys stay comparable
        across ranks and across steps."""
        out: List[LinearOctree] = []
        for store in self.stores:
            locs = list(store)
            payloads = (np.vstack([store[loc] for loc in locs])
                        if locs else None)
            out.append(LinearOctree(self.dim, locs, payloads,
                                    max_level=self.max_level))
        return out


@dataclass
class MigrationRecovery:
    """What :func:`recover_migration` did to the torn batches."""

    redriven: int = 0
    rolled_back: int = 0


def recover_migration(state: MigrationState,
                      injector=None) -> MigrationRecovery:
    """Repair a migration torn by a crash, from the journal alone.

    Publish-before-retire makes the decision local to each batch's state:

    * ``published`` — the receiver durably owns every record, only the
      sender's retire is missing: **re-drive** forward by finishing the
      retire (idempotent — pops that already happened are no-ops).
    * ``pending`` — the publish never committed (crash before or mid
      publish): **roll back** the receiver's partial records; the sender
      never retired anything, so it still owns the whole batch.

    Either way each octant ends in exactly one store and no payload is
    altered.  Recovery is itself crash-consistent: a power loss mid-repair
    (``migrate.recover.mid``, armed via ``injector``) leaves every batch
    either fully repaired or untouched in the journal, so recovery simply
    re-runs — both arms are idempotent.
    """
    rec = MigrationRecovery()
    for entry in state.log.entries:
        if entry.state == "published":
            if injector is not None:
                injector.site(sites.MIGRATE_RECOVER_MID)
            for loc in entry.locs:
                state.stores[entry.src].pop(loc, None)
            entry.state = "retired"
            rec.redriven += 1
        elif entry.state == "pending":
            if injector is not None:
                injector.site(sites.MIGRATE_RECOVER_MID)
            for loc in entry.locs:
                state.stores[entry.dst].pop(loc, None)
            entry.state = "rolled-back"
            rec.rolled_back += 1
    return rec


# ------------------------------------------------------------- repartition

def _incremental_cut_indices(weights: np.ndarray, old_bounds: np.ndarray,
                             parts: int, cap: float) -> List[int]:
    """Minimal-movement cuts: clamp the standing cuts into feasibility.

    Walking boundaries left to right, cut ``r`` may sit anywhere in
    ``[lo, hi]`` where ``hi`` keeps rank ``r-1``'s load under ``cap`` and
    ``lo`` leaves little enough weight that the remaining ranks can still
    each fit under ``cap``.  The standing cut is clamped into that window,
    so a cut that is already feasible does not move at all and a triggered
    repartition ships only the octants a violation actually requires —
    instead of re-deriving the ideal cut, which tracks the moving interface
    and re-ships octants every step.  Falls back to the ideal Salmon cuts
    (:func:`weighted_cut_indices`) when clamping cannot satisfy ``cap``
    (pathological weight spikes); callers guarantee feasibility in the
    common case by choosing ``cap >= mean_load + max_weight``.
    """
    w = np.asarray(weights, dtype=np.float64)
    n = len(w)
    max_w = float(w.max()) if n else 0.0
    prefix = np.concatenate(([0.0], np.cumsum(w)))
    total = float(prefix[-1])
    bounds = [0]
    for r in range(1, parts):
        lo_val = total - (parts - r) * cap
        hi_val = prefix[bounds[-1]] + cap
        lo = int(np.searchsorted(prefix, lo_val - 1e-9, side="left"))
        hi = int(np.searchsorted(prefix, hi_val + 1e-9, side="right")) - 1
        lo = max(lo, bounds[-1])
        hi = min(hi, n)
        if lo > hi:
            # index granularity emptied the window: no prefix point lands
            # between the suffix and capacity constraints.  Take ``lo`` —
            # the suffix constraint stays exact and the previous rank
            # overflows ``cap`` by less than one octant's weight.
            bounds.append(lo)
            continue
        bounds.append(min(max(int(old_bounds[r]), lo), hi))
    bounds.append(n)
    worst = max(float(prefix[b] - prefix[a])
                for a, b in zip(bounds, bounds[1:]))
    if worst <= cap + max_w + 1e-6:
        return bounds
    return weighted_cut_indices(w, parts)


def repartition(comm: SimCommunicator,
                pieces: List[LinearOctree],
                *,
                weights: Optional[Sequence[np.ndarray]] = None,
                threshold: Optional[float] = None,
                obs=None,
                injector=None,
                state: Optional[MigrationState] = None,
                max_send_retries: int = MAX_SEND_RETRIES) -> PartitionResult:
    """Rebalance per-rank linear octrees onto weighted SFC ranges.

    ``pieces[i]`` is rank i's current set of leaves (globally disjoint,
    together tiling the domain, in global curve order).  ``weights[i]``
    gives one non-negative cost weight per octant of ``pieces[i]``; omitted
    weights mean count balancing.  With ``threshold`` set, the repartition
    is skipped entirely when the current weighted imbalance (max/mean rank
    load) is at or under it — the estimator costs one allgather.

    Only boundary-crossing octants are migrated, in coalesced
    per-destination batches following publish-before-retire ordering (see
    module docstring).  ``injector`` arms the ``migrate.*`` crash sites;
    ``state`` (a caller-held :class:`MigrationState`) is what
    :func:`recover_migration` repairs if the crash fires.  Over a
    :class:`~repro.parallel.faults.FaultyNetwork`, dropped batches are
    retransmitted (bounded by ``max_send_retries``) and duplicated
    deliveries are ignored via the journal, so lossy links cannot lose or
    duplicate octants.
    """
    nranks = comm.size
    if len(pieces) != nranks:
        raise PartitionError(f"expected {nranks} pieces, got {len(pieces)}")
    dim = pieces[0].dim
    # the empty-piece fix: an empty piece's max_level is a stale peer value,
    # not evidence about the forest — agree on depth from non-empty pieces
    levels = [p.max_level for p in pieces if len(p)]
    max_level = max(levels) if levels else 0

    if weights is None:
        wlists = [np.ones(len(p), dtype=np.float64) for p in pieces]
    else:
        wlists = [np.asarray(w, dtype=np.float64) for w in weights]
        for p, w in zip(pieces, wlists):
            if len(w) != len(p):
                raise PartitionError(
                    f"one weight per octant required: piece has {len(p)}, "
                    f"weights {len(w)}")
            if len(w) and float(w.min()) < 0:
                raise PartitionError("octant weights must be non-negative")

    loads = [float(w.sum()) for w in wlists]

    # Step 1: agree on global counts, weighted loads and forest depth.
    gathered = comm.allgather(
        [(len(p), load) for p, load in zip(pieces, loads)], nbytes_each=16)
    counts = [c for c, _ in gathered]
    total = sum(counts)
    if total == 0:
        raise PartitionError("cannot partition an empty forest")
    total_w = sum(load for _, load in gathered)
    if total_w <= 0.0:
        # degenerate all-zero weights: count balancing
        wlists = [np.ones(len(p), dtype=np.float64) for p in pieces]
        loads = [float(len(p)) for p in pieces]
        total_w = float(total)
    mean_load = total_w / nranks
    imbalance = max(loads) / mean_load
    max_w = max((float(w.max()) for w in wlists if len(w)), default=0.0)
    if obs is not None:
        obs.metrics.gauge("partition.imbalance").set(imbalance)

    if threshold is not None and imbalance <= threshold:
        if obs is not None:
            obs.metrics.counter("partition.skipped").inc()
        return PartitionResult(
            pieces=list(pieces), octants_moved=0, bytes_moved=0,
            skipped=True, imbalance=imbalance, imbalance_after=imbalance,
            weighted_loads=loads, max_weight=max_w,
        )

    # Step 2: cut the global curve order.  Eager mode (no threshold) takes
    # the ideal Salmon weighted prefix cuts; a threshold-triggered call
    # instead moves the standing cuts minimally — just far enough to bring
    # every rank under the load cap.  Destination of global index g is the
    # cut range containing it.
    all_w = np.concatenate(wlists)
    prefix = np.concatenate(([0], np.cumsum(counts)))
    if threshold is not None:
        cap = max(threshold * mean_load, mean_load + max_w)
        bounds = np.asarray(
            _incremental_cut_indices(all_w, prefix, nranks, cap),
            dtype=np.int64)
    else:
        bounds = np.asarray(weighted_cut_indices(all_w, nranks),
                            dtype=np.int64)
    sends: List[Dict[int, List[int]]] = []
    for r, piece in enumerate(pieces):
        outbox: Dict[int, List[int]] = {}
        if len(piece):
            gidx = prefix[r] + np.arange(len(piece))
            dsts = np.minimum(
                np.searchsorted(bounds, gidx, side="right") - 1, nranks - 1)
            for j, dst in enumerate(dsts):
                if int(dst) != r:
                    outbox.setdefault(int(dst), []).append(
                        int(piece.locs[j]))
        sends.append(outbox)
    moved = sum(len(batch) for outbox in sends for batch in outbox.values())
    bytes_moved = moved * OCTANT_RECORD_SIZE

    # Step 3: migrate only the boundary crossers, publish-before-retire.
    if state is None:
        state = MigrationState()
    state.load(pieces, wlists, max_level)
    retries = _migrate(comm, state, sends, injector, obs, max_send_retries)

    new_pieces = state.rebuild_pieces()
    if state.total_octants() != total:
        raise PartitionError(
            f"octants lost in flight: had {total}, "
            f"now {state.total_octants()}")
    if len(state.all_locs()) != total:
        raise PartitionError("octants duplicated across ranks")
    new_loads = state.loads()
    imbalance_after = (max(new_loads) / mean_load) if mean_load > 0 else 1.0
    if obs is not None:
        obs.metrics.counter("partition.octants_moved").inc(moved)
        obs.metrics.counter("partition.bytes_moved").inc(bytes_moved)
    return PartitionResult(
        pieces=new_pieces, octants_moved=moved, bytes_moved=bytes_moved,
        skipped=False, imbalance=imbalance, imbalance_after=imbalance_after,
        weighted_loads=new_loads, max_weight=max_w, send_retries=retries,
    )


def _migrate(comm: SimCommunicator, state: MigrationState,
             sends: Sequence[Dict[int, List[int]]], injector, obs,
             max_send_retries: int) -> int:
    """Ship the batches; returns the total wire retransmits.

    Per batch, in order: journal ``begin`` -> [``migrate.pre_publish``] ->
    wire transfer (retried over a lossy link) -> publish every record at
    the receiver ([``migrate.mid_batch``] between records) -> journal
    ``published`` -> [``migrate.pre_retire``] -> retire at the sender ->
    journal ``retired``.
    """
    network = comm.network
    faulty = getattr(network, "plan", None) is not None \
        and hasattr(network, "send")
    comm.barrier()
    retries = 0
    outer = (obs.tracer.span("partition.migrate", ranks=comm.size)
             if obs is not None else nullcontext())
    with outer:
        for src, outbox in enumerate(sends):
            ctx_src = comm.ranks[src]
            src_store = state.stores[src]
            for dst in sorted(outbox):
                batch = outbox[dst]
                ctx_dst = comm.ranks[dst]
                dst_store = state.stores[dst]
                nbytes = len(batch) * OCTANT_RECORD_SIZE
                entry = state.log.begin(src, dst, batch)
                # sender packs the records: read the actual bytes
                dram_src = ctx_src.resources.get("dram")
                if dram_src is not None:
                    ctx_src.clock.advance(
                        len(batch) * RECORD_LINES
                        * dram_src.spec.read_latency_ns,
                        Category.MEM_DRAM)
                if injector is not None:
                    injector.site(sites.MIGRATE_PRE_PUBLISH)
                span = (obs.tracer.span("migrate.batch", src=src, dst=dst,
                                        octants=len(batch))
                        if obs is not None else nullcontext())
                with span:
                    attempts = 0
                    while True:
                        attempts += 1
                        if faulty:
                            delivery = network.send(
                                src, dst, nbytes,
                                now_ns=ctx_src.clock.now_ns)
                            ctx_src.clock.advance(delivery.cost_ns,
                                                  Category.COMM)
                            if delivery.delivered:
                                ctx_dst.clock.advance(delivery.cost_ns,
                                                      Category.COMM)
                                break
                            retries += 1
                            if attempts > max_send_retries:
                                raise PartitionError(
                                    f"migration batch {src}->{dst} "
                                    f"undeliverable after "
                                    f"{max_send_retries} retransmits "
                                    f"({delivery.reason})")
                        else:
                            cost = network.p2p_ns(nbytes)
                            ctx_src.clock.advance(cost, Category.COMM)
                            ctx_dst.clock.advance(cost, Category.COMM)
                            break
                    # receiver publishes each record durably; duplicated
                    # deliveries re-send a batch the journal already tracks
                    # and publishing is keyed by loc, so they are ignored
                    for k, loc in enumerate(batch):
                        if k and injector is not None:
                            injector.site(sites.MIGRATE_MID_BATCH)
                        dst_store[loc] = src_store[loc]
                    dram_dst = ctx_dst.resources.get("dram")
                    if dram_dst is not None:
                        ctx_dst.clock.advance(
                            len(batch) * RECORD_LINES
                            * dram_dst.spec.write_latency_ns,
                            Category.MEM_DRAM)
                    entry.published()
                if injector is not None:
                    injector.site(sites.MIGRATE_PRE_RETIRE)
                for loc in batch:
                    del src_store[loc]
                entry.retired()
    comm.barrier()
    return retries
