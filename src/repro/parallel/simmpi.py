"""SPMD rank contexts and a simulated communicator.

A :class:`RankContext` bundles what one MPI rank owns: its id, its simulated
clock, and (filled in by :mod:`repro.parallel.cluster`) its memory arenas.
The :class:`SimCommunicator` implements the collectives the meshing driver
needs — barrier, allreduce, allgather, alltoallv — moving Python payloads
directly (one process) while charging each endpoint's clock with the network
model.

Synchronisation semantics: a collective acts as a barrier.  Every
participating clock is first advanced to the maximum ``now_ns`` (ranks wait
for the slowest), then charged the collective's cost.  This is what makes
"execution time = any rank's clock after the final barrier" equal the
makespan the paper measures.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Sequence

from repro.errors import AllRanksDeadError, NetworkPartitionError
from repro.nvbm.clock import Category, SimClock
from repro.nvbm.failure import FailureInjector
from repro.parallel.network import Network


@dataclass
class RankContext:
    """Everything one simulated MPI rank owns."""

    rank: int
    clock: SimClock = field(default_factory=SimClock)
    injector: FailureInjector = field(default_factory=FailureInjector)
    #: filled by SimulatedCluster: "dram", "nvbm" arenas, storage devices...
    resources: Dict[str, Any] = field(default_factory=dict)
    node: int = 0
    alive: bool = True


class SimCommunicator:
    """MPI-flavoured collectives over in-process rank contexts."""

    def __init__(self, ranks: Sequence[RankContext], network: Network):
        if not ranks:
            raise ValueError("communicator needs at least one rank")
        self.ranks = list(ranks)
        self.network = network

    @property
    def size(self) -> int:
        return len(self.ranks)

    def _live(self) -> List[RankContext]:
        """Live participants; raises :class:`AllRanksDeadError` when none.

        Every collective (and :meth:`makespan_ns`) funnels through here, so
        a fully-dead communicator fails with a typed error carrying the
        dead-rank list instead of ``max() arg is an empty sequence``.
        """
        live = [r for r in self.ranks if r.alive]
        if not live:
            raise AllRanksDeadError([r.rank for r in self.ranks])
        return live

    def _check_partition(self, live: List[RankContext], now_ns: float) -> None:
        """Refuse a collective whose live ranks span a network partition."""
        plan = getattr(self.network, "plan", None)
        if plan is None or not plan.partitions:
            return
        groups = self.network.partition_groups(
            [r.rank for r in live], now_ns)
        if len(groups) > 1:
            raise NetworkPartitionError(groups, now_ns)

    # -- synchronisation ---------------------------------------------------------

    def barrier(self) -> float:
        """Advance every live rank to the slowest, charge barrier cost.

        Returns the synchronised time (ns).  Raises
        :class:`~repro.errors.NetworkPartitionError` when an active
        partition severs the live ranks — a barrier cannot complete if one
        side can never hear the other.
        """
        live = self._live()
        high = max(r.clock.now_ns for r in live)
        self._check_partition(live, high)
        cost = self.network.barrier_ns(len(live))
        for r in live:
            wait = high - r.clock.now_ns
            if wait > 0:
                r.clock.advance(wait, Category.COMM)
            r.clock.advance(cost, Category.COMM)
        return high + cost

    # -- collectives --------------------------------------------------------------

    def allreduce(self, values: Sequence[Any],
                  op: Callable[[Any, Any], Any] = lambda a, b: a + b,
                  nbytes: int = 8) -> Any:
        """Reduce one value per rank to a single result known by all."""
        live = self._live()
        if len(values) != len(live):
            raise ValueError(
                f"expected {len(live)} values (one per live rank), got {len(values)}"
            )
        self.barrier()
        cost = self.network.collective_ns(nbytes, len(live))
        for r in live:
            r.clock.advance(cost, Category.COMM)
        acc = values[0]
        for v in values[1:]:
            acc = op(acc, v)
        return acc

    def allgather(self, values: Sequence[Any], nbytes_each: int = 8) -> List[Any]:
        """Every rank contributes one value; all ranks see the full list."""
        live = self._live()
        if len(values) != len(live):
            raise ValueError("one value per live rank required")
        self.barrier()
        cost = self.network.collective_ns(nbytes_each * len(live), len(live))
        for r in live:
            r.clock.advance(cost, Category.COMM)
        return list(values)

    def alltoallv(self, sends: Sequence[Dict[int, Any]],
                  nbytes_of: Callable[[Any], int]) -> List[Dict[int, Any]]:
        """Each rank sends a payload dict ``{dst: payload}``.

        Returns per-rank receive dicts ``{src: payload}``.  Each endpoint is
        charged latency per message plus bytes/bandwidth; self-sends are
        free.
        """
        live = self._live()
        live_ids = {r.rank for r in live}
        if len(sends) != len(live):
            raise ValueError("one send-dict per live rank required")
        self.barrier()
        recvs: List[Dict[int, Any]] = [dict() for _ in live]
        pos = {r.rank: i for i, r in enumerate(live)}
        for i, (ctx, outbox) in enumerate(zip(live, sends)):
            for dst, payload in outbox.items():
                if dst not in live_ids:
                    raise ValueError(f"rank {ctx.rank} sends to dead/absent rank {dst}")
                if dst == ctx.rank:
                    recvs[i][ctx.rank] = payload
                    continue
                nbytes = nbytes_of(payload)
                cost = self.network.p2p_ns(nbytes)
                ctx.clock.advance(cost, Category.COMM)
                live[pos[dst]].clock.advance(cost, Category.COMM)
                recvs[pos[dst]][ctx.rank] = payload
        self.barrier()
        return recvs

    # -- time accounting -----------------------------------------------------

    def makespan_ns(self) -> float:
        """Current simulated time of the slowest live rank."""
        return max(r.clock.now_ns for r in self._live())

    def phase_breakdown(self) -> Dict[str, float]:
        """Max-over-ranks time per phase label (Fig 7/8b material)."""
        out: Dict[str, float] = {}
        for r in self._live():
            for phase, t in r.clock.by_phase.items():
                out[phase] = max(out.get(phase, 0.0), t)
        return out
