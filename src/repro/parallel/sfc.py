"""Space-filling-curve alternatives and partition-quality metrics.

The paper's partition (like Salmon's n-body work it cites) orders octants
along a space-filling curve and cuts the curve into P ranges.  The curve
choice controls the *locality* of the resulting subdomains: Hilbert keeps
every consecutive pair of cells face-adjacent, Morton (Z) takes long
diagonal jumps, so Hilbert partitions have smaller rank-boundary surfaces —
fewer ghost exchanges and less balance communication per step.

This module provides a 2-D/3-D Hilbert index for octree leaves plus the
edge-cut metric the SFC ablation benchmark compares the curves on.
"""

from __future__ import annotations

from functools import lru_cache
from typing import Dict, List, Sequence

import numpy as np

from repro.octree import morton
from repro.octree.store import AdaptiveTree


@lru_cache(maxsize=1 << 16)
def hilbert_index_2d(x: int, y: int, order: int) -> int:
    """Hilbert curve index of cell (x, y) on a 2^order x 2^order grid.

    The classic xy->d conversion with quadrant rotation/reflection.
    """
    side = 1 << order
    if not (0 <= x < side and 0 <= y < side):
        raise ValueError(f"({x}, {y}) outside a {side}x{side} grid")
    rx = ry = 0
    d = 0
    s = side // 2
    while s > 0:
        rx = 1 if (x & s) > 0 else 0
        ry = 1 if (y & s) > 0 else 0
        d += s * s * ((3 * rx) ^ ry)
        # rotate the quadrant
        if ry == 0:
            if rx == 1:
                x = s - 1 - x
                y = s - 1 - y
            x, y = y, x
        s //= 2
    return d


#: Gray-code walk through the 8 octants that keeps consecutive octants
#: face-adjacent — the backbone of the 3-D Hilbert ordering used below.
_GRAY3 = (0, 1, 3, 2, 6, 7, 5, 4)
_GRAY3_RANK = {v: i for i, v in enumerate(_GRAY3)}


def hilbert_index_3d(x: int, y: int, z: int, order: int) -> int:
    """A Hilbert-style (face-continuous Gray-code) index on a 2^order cube.

    A full 3-D Hilbert curve needs per-octant rotation tables; for the
    partition-quality study the essential property is *face adjacency of
    consecutive indices at each recursion level*, which a fixed Gray-code
    ordering of octants provides.  (Locality is between Morton and true
    Hilbert; the benchmark labels it accordingly.)
    """
    side = 1 << order
    for c in (x, y, z):
        if not 0 <= c < side:
            raise ValueError(f"({x},{y},{z}) outside a {side}^3 grid")
    d = 0
    for i in range(order - 1, -1, -1):
        octant = (((x >> i) & 1)
                  | (((y >> i) & 1) << 1)
                  | (((z >> i) & 1) << 2))
        d = (d << 3) | _GRAY3_RANK[octant]
    return d


def hilbert_key(loc: int, dim: int, max_level: int) -> int:
    """Total order for leaves along the Hilbert curve (level tie-broken).

    Mirrors :func:`repro.octree.morton.zorder_key` so the two curves are
    drop-in alternatives for range partitioning.
    """
    level = morton.level_of(loc, dim)
    if level > max_level:
        raise ValueError(f"code level {level} exceeds max_level {max_level}")
    coords = morton.coords_of(loc, dim)
    scale = max_level - level
    fine = tuple(c << scale for c in coords)
    if dim == 2:
        d = hilbert_index_2d(fine[0], fine[1], max_level)
    else:
        d = hilbert_index_3d(fine[0], fine[1], fine[2], max_level)
    return (d << 6) | level


def partition_by_key(leaves: Sequence[int], dim: int, max_level: int,
                     nranks: int, key_fn) -> Dict[int, int]:
    """Assign each leaf a rank by cutting the key-sorted order into P
    near-equal ranges.  Returns {leaf: rank}."""
    ordered = sorted(leaves, key=lambda leaf: key_fn(leaf, dim, max_level))
    n = len(ordered)
    assignment: Dict[int, int] = {}
    for i, loc in enumerate(ordered):
        assignment[loc] = min(nranks - 1, i * nranks // max(1, n))
    return assignment


def weighted_cut_indices(weights: Sequence[float], parts: int) -> List[int]:
    """Salmon-style weighted prefix cuts of a curve-ordered weight array.

    ``weights[i]`` is the work of the i-th octant along the curve.  Returns
    ``parts + 1`` index bounds: part ``r`` owns ``[bounds[r], bounds[r+1])``.
    Octant ``i`` (whose weight occupies the prefix interval
    ``[start_i, start_i + w_i)``) lands in the part whose ideal range
    ``[r*W/P, (r+1)*W/P)`` contains ``start_i``, which guarantees the
    classic bound: every part's load is at most ``W/P + max(weights)``.

    All-zero (or empty) weight arrays degrade to equal-count cuts so the
    caller never divides by zero.
    """
    if parts <= 0:
        raise ValueError("parts must be positive")
    w = np.asarray(list(weights), dtype=np.float64)
    if np.any(w < 0):
        raise ValueError("octant weights must be non-negative")
    n = len(w)
    total = float(w.sum())
    if n == 0 or total <= 0.0:
        return [round(r * n / parts) for r in range(parts + 1)]
    starts = np.concatenate(([0.0], np.cumsum(w)[:-1]))
    targets = np.array([r * total / parts for r in range(1, parts)])
    inner = np.searchsorted(starts, targets, side="left")
    return [0] + [int(i) for i in inner] + [n]


def weighted_partition_by_key(leaves: Sequence[int], dim: int,
                              max_level: int, nranks: int, key_fn,
                              weight_fn) -> Dict[int, int]:
    """Weighted variant of :func:`partition_by_key`: cut the key-sorted
    order so each rank's summed ``weight_fn(leaf)`` is near-equal.  Returns
    {leaf: rank}; ranks remain contiguous ranges of the curve."""
    ordered = sorted(leaves, key=lambda leaf: key_fn(leaf, dim, max_level))
    bounds = weighted_cut_indices([weight_fn(leaf) for leaf in ordered],
                                  nranks)
    assignment: Dict[int, int] = {}
    for r in range(nranks):
        for i in range(bounds[r], bounds[r + 1]):
            assignment[ordered[i]] = r
    return assignment


def edge_cut(tree: AdaptiveTree, assignment: Dict[int, int]) -> int:
    """Number of face adjacencies crossing rank boundaries.

    This is the ghost-exchange surface a partition induces: every cut face
    is a halo cell to communicate each step.
    """
    from repro.octree.neighbors import face_neighbor_leaves

    cut = 0
    for loc, rank in assignment.items():
        for other, _axis, _direction in face_neighbor_leaves(tree, loc):
            if other in assignment and assignment[other] != rank:
                cut += 1
    return cut // 2  # each crossing counted from both sides


def compare_curves(tree: AdaptiveTree, nranks: int) -> Dict[str, int]:
    """Edge cut of Morton vs Hilbert partitions of the same tree."""
    leaves = list(tree.leaves())
    max_level = max(morton.level_of(leaf, tree.dim) for leaf in leaves)
    out = {}
    for name, key_fn in (("morton", morton.zorder_key),
                         ("hilbert", hilbert_key)):
        assignment = partition_by_key(leaves, tree.dim, max_level, nranks,
                                      key_fn)
        out[name] = edge_cut(tree, assignment)
    return out
