"""Cluster assembly: rank contexts with per-node memory arenas.

Maps a :class:`~repro.config.ClusterSpec` (Titan, Kamiak) onto simulated
ranks.  Capacities are expressed in *octant records*: the experiment harness
translates the paper's GB figures into record counts through its element
scale factor, so the DRAM-pressure behaviours (C0 eviction merging, Fig 10)
happen at simulator-affordable sizes with the same ratios.
"""

from __future__ import annotations

from typing import List, Optional

from repro.config import ClusterSpec, TITAN
from repro.nvbm.arena import MemoryArena
from repro.nvbm.pointers import ARENA_DRAM, ARENA_NVBM
from repro.parallel.faults import FaultyNetwork, NetworkFaultPlan
from repro.parallel.network import Network
from repro.parallel.simmpi import RankContext, SimCommunicator


class SimulatedCluster:
    """P ranks placed round-robin-block onto nodes of a machine spec.

    With ``fault_plan`` the interconnect becomes a :class:`FaultyNetwork`:
    protocol messages can be dropped/duplicated/delayed per the plan and
    collectives refuse to run across an active partition.
    """

    def __init__(self, nranks: int, spec: ClusterSpec = TITAN,
                 dram_octants_per_rank: int = 1 << 14,
                 nvbm_octants_per_rank: int = 1 << 18,
                 fault_plan: Optional[NetworkFaultPlan] = None):
        if nranks <= 0:
            raise ValueError("need at least one rank")
        self.spec = spec
        self.network = Network(spec.network)
        if fault_plan is not None:
            self.network = FaultyNetwork(self.network, fault_plan)
        self.ranks: List[RankContext] = []
        for r in range(nranks):
            ctx = RankContext(rank=r, node=r // spec.cores_per_node)
            ctx.resources["dram"] = MemoryArena(
                ARENA_DRAM, spec.dram, ctx.clock, dram_octants_per_rank,
                name=f"dram[{r}]",
            )
            ctx.resources["nvbm"] = MemoryArena(
                ARENA_NVBM, spec.nvbm, ctx.clock, nvbm_octants_per_rank,
                name=f"nvbm[{r}]",
            )
            self.ranks.append(ctx)
        self.comm = SimCommunicator(self.ranks, self.network)

    @property
    def nranks(self) -> int:
        return len(self.ranks)

    @property
    def nnodes(self) -> int:
        return self.ranks[-1].node + 1

    def ranks_on_node(self, node: int) -> List[RankContext]:
        return [r for r in self.ranks if r.node == node]

    def kill_node(self, node: int) -> List[int]:
        """Power-fail every rank on a node (DRAM lost, NVBM cache torn).

        Returns the ids of the *newly* killed ranks.  Their NVBM arenas
        keep their backing stores — that is the whole point of NVBM — but
        anything un-flushed is dropped/torn.  Killing a node whose ranks
        are already dead is a no-op (a dead node cannot lose power twice):
        the already-torn arenas are left untouched.
        """
        import numpy as np

        killed = []
        for ctx in self.ranks_on_node(node):
            if not ctx.alive:
                continue
            ctx.resources["dram"].crash()
            ctx.resources["nvbm"].crash(np.random.default_rng(ctx.rank))
            ctx.alive = False
            killed.append(ctx.rank)
        return killed

    def revive_rank(self, rank: int, node: Optional[int] = None) -> RankContext:
        """Bring a rank back (same node, or migrated to a replacement node)."""
        ctx = self.ranks[rank]
        ctx.alive = True
        if node is not None:
            ctx.node = node
        return ctx
