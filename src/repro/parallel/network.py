"""Interconnect cost model.

Point-to-point: ``t = latency + bytes / bandwidth`` (the classic postal /
Hockney model).  Collectives over P ranks pay a ``ceil(log2 P)``-deep
combining tree of such messages, which is how MPI implementations behave at
these message sizes on Gemini-class fabrics.
"""

from __future__ import annotations

import math

from repro.config import NetworkSpec


class Network:
    """Evaluates message costs; owns no state beyond counters."""

    def __init__(self, spec: NetworkSpec):
        self.spec = spec
        self.messages = 0
        self.bytes_moved = 0

    def p2p_ns(self, nbytes: int) -> float:
        """Cost of one point-to-point message."""
        self.messages += 1
        self.bytes_moved += nbytes
        return self.spec.transfer_ns(nbytes)

    def multi_ns(self, message_bytes) -> float:
        """Cost of one rank issuing several messages back-to-back."""
        total = 0.0
        for nbytes in message_bytes:
            total += self.p2p_ns(nbytes)
        return total

    def collective_ns(self, nbytes: int, nranks: int) -> float:
        """Cost of a tree-based collective carrying ``nbytes`` per stage."""
        if nranks <= 1:
            return 0.0
        depth = math.ceil(math.log2(nranks))
        self.messages += depth
        self.bytes_moved += depth * nbytes
        return depth * self.spec.transfer_ns(nbytes)

    def barrier_ns(self, nranks: int) -> float:
        """Cost of an empty barrier."""
        return self.collective_ns(8, nranks)
