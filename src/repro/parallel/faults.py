"""Lossy-interconnect model: seeded message faults and partition windows.

The base :class:`~repro.parallel.network.Network` is a pure cost model — a
message always arrives, it only costs time.  Resilient-system experiments
need the opposite assumption: *any* message a protocol sends can be lost,
duplicated, delayed, or severed by a partition.  :class:`FaultyNetwork`
wraps the cost model with a :class:`NetworkFaultPlan` that decides, from a
seeded RNG, the fate of every point-to-point send.

Determinism contract: a plan constructed with the same seed sees the same
sequence of fault decisions, so any chaos-harness failure replays exactly
from its printed seed.

Faults are *per link* (``(src, dst)`` ordered pair): a flaky host-to-peer
link does not imply a flaky ack path.  Partition windows are explicit
``[start_ns, end_ns)`` intervals splitting ranks into groups; messages
between groups are severed, and collectives over a communicator whose live
ranks span two groups raise
:class:`~repro.errors.NetworkPartitionError`.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.parallel.network import Network

#: Wire size of a protocol acknowledgement (seq + root handle + checksum).
ACK_BYTES = 24

#: Wire size of a heartbeat datagram.
HEARTBEAT_BYTES = 16


@dataclass(frozen=True)
class LinkFaults:
    """Per-link fault probabilities (independent Bernoulli per message)."""

    drop: float = 0.0       #: message silently lost
    duplicate: float = 0.0  #: message delivered twice (retransmit ghost)
    delay: float = 0.0      #: message held up by ``delay_ns`` extra
    delay_ns: float = 0.0   #: extra latency applied when delayed

    def __post_init__(self):
        for name in ("drop", "duplicate", "delay"):
            p = getattr(self, name)
            if not 0.0 <= p <= 1.0:
                raise ValueError(f"{name} probability must be in [0,1]: {p}")


@dataclass
class PartitionWindow:
    """Ranks in different ``groups`` cannot exchange messages during the
    window.  Ranks in *no* group are unrestricted (they model staging /
    scheduler nodes outside the partitioned fabric).  ``end_ns`` may be
    ``inf`` for a partition healed later via :meth:`heal`."""

    start_ns: float
    end_ns: float
    groups: Tuple[frozenset, ...]

    def __post_init__(self):
        self.groups = tuple(frozenset(g) for g in self.groups)

    def active(self, now_ns: float) -> bool:
        return self.start_ns <= now_ns < self.end_ns

    def severs(self, a: int, b: int, now_ns: float) -> bool:
        if not self.active(now_ns):
            return False
        ga = gb = None
        for i, g in enumerate(self.groups):
            if a in g:
                ga = i
            if b in g:
                gb = i
        return ga is not None and gb is not None and ga != gb

    def heal(self, now_ns: float) -> None:
        """Close the window at ``now_ns`` (idempotent)."""
        self.end_ns = min(self.end_ns, now_ns)


class NetworkFaultPlan:
    """Seeded description of what the interconnect does to messages.

    ``default`` applies to every link without an explicit override in
    ``links`` (keyed by the ordered ``(src, dst)`` pair).  ``partitions``
    is a list of :class:`PartitionWindow`; more can be added while the
    simulation runs (:meth:`start_partition`) which is how the chaos
    harness opens and heals partitions at scheduled steps.
    """

    def __init__(self, seed: int = 0,
                 default: Optional[LinkFaults] = None,
                 links: Optional[Dict[Tuple[int, int], LinkFaults]] = None,
                 partitions: Sequence[PartitionWindow] = ()):
        self.seed = seed
        self.default = default or LinkFaults()
        self.links = dict(links or {})
        self.partitions: List[PartitionWindow] = list(partitions)
        self._rng = random.Random(seed)

    def faults_for(self, src: int, dst: int) -> LinkFaults:
        return self.links.get((src, dst), self.default)

    def severed(self, src: int, dst: int, now_ns: float) -> bool:
        if src == dst:
            return False
        return any(w.severs(src, dst, now_ns) for w in self.partitions)

    def start_partition(self, groups: Iterable[Iterable[int]],
                        now_ns: float) -> PartitionWindow:
        """Open a partition at ``now_ns``; heal it via the returned window."""
        window = PartitionWindow(
            start_ns=now_ns, end_ns=float("inf"),
            groups=tuple(frozenset(g) for g in groups),
        )
        self.partitions.append(window)
        return window

    def roll(self) -> float:
        """One fault decision from the seeded stream (in [0, 1))."""
        return self._rng.random()


@dataclass
class Delivery:
    """Fate of one point-to-point send."""

    delivered: bool
    copies: int         #: 0 when lost, 2 when duplicated
    cost_ns: float      #: network time charged to the sender
    reason: str = ""    #: "" | "drop" | "partition"


@dataclass
class FaultStats:
    sends: int = 0
    dropped: int = 0
    duplicated: int = 0
    delayed: int = 0
    severed: int = 0


class FaultyNetwork:
    """A :class:`Network` whose messages can fail.

    Exposes the full cost-model interface (``p2p_ns`` etc. delegate to the
    wrapped network, so a :class:`~repro.parallel.simmpi.SimCommunicator`
    accepts it in place of a plain :class:`Network`) plus :meth:`send`,
    the fault-aware path protocols use for messages that may be lost.
    """

    def __init__(self, base: Network, plan: NetworkFaultPlan):
        self.base = base
        self.plan = plan
        self.stats = FaultStats()

    # -- cost-model delegation (collectives stay fault-free unless the
    # communicator's partition check rejects them first) -------------------

    @property
    def spec(self):
        return self.base.spec

    @property
    def messages(self) -> int:
        return self.base.messages

    @property
    def bytes_moved(self) -> int:
        return self.base.bytes_moved

    def p2p_ns(self, nbytes: int) -> float:
        return self.base.p2p_ns(nbytes)

    def multi_ns(self, message_bytes) -> float:
        return self.base.multi_ns(message_bytes)

    def collective_ns(self, nbytes: int, nranks: int) -> float:
        return self.base.collective_ns(nbytes, nranks)

    def barrier_ns(self, nranks: int) -> float:
        return self.base.barrier_ns(nranks)

    # -- fault-aware point-to-point ----------------------------------------

    def send(self, src: int, dst: int, nbytes: int,
             now_ns: float = 0.0) -> Delivery:
        """Decide the fate of one message from ``src`` to ``dst``.

        The sender always pays the wire cost (it cannot know the message
        was lost — that is what ack timeouts are for); a severed link
        charges only the injection latency since nothing crosses the
        partition.
        """
        self.stats.sends += 1
        if self.plan.severed(src, dst, now_ns):
            self.stats.severed += 1
            return Delivery(delivered=False, copies=0,
                            cost_ns=self.base.spec.transfer_ns(1),
                            reason="partition")
        cost = self.base.p2p_ns(nbytes)
        faults = self.plan.faults_for(src, dst)
        if self.plan.roll() < faults.drop:
            self.stats.dropped += 1
            return Delivery(delivered=False, copies=0, cost_ns=cost,
                            reason="drop")
        copies = 1
        if faults.duplicate and self.plan.roll() < faults.duplicate:
            copies = 2
            self.stats.duplicated += 1
        if faults.delay and self.plan.roll() < faults.delay:
            cost += faults.delay_ns
            self.stats.delayed += 1
        return Delivery(delivered=True, copies=copies, cost_ns=cost)

    def partition_groups(self, ranks: Sequence[int],
                         now_ns: float) -> List[List[int]]:
        """Connected components of ``ranks`` under the active partitions.

        One component means the set can run a collective; more than one
        means the collective must raise.
        """
        remaining = list(ranks)
        groups: List[List[int]] = []
        while remaining:
            group = [remaining.pop(0)]
            grew = True
            while grew:  # fixpoint: connectivity is transitive via members
                grew = False
                for r in list(remaining):
                    if any(not self.plan.severed(r, m, now_ns)
                           for m in group):
                        group.append(r)
                        remaining.remove(r)
                        grew = True
            groups.append(sorted(group))
        return groups
