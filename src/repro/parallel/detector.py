"""Heartbeat-based failure detection over a lossy interconnect.

Each rank emits a heartbeat every ``heartbeat_interval_ns`` of simulated
time toward an observer rank (the job scheduler's proxy).  Heartbeats from
live ranks cross the (possibly faulty) network — they can be dropped or
severed by a partition — so the detector is necessarily *eventually
accurate* rather than perfect: a rank is **suspected** once
``miss_threshold`` consecutive heartbeat intervals pass without a delivered
beat.  Dead ranks emit nothing and are always eventually suspected; live
ranks behind a partition or a deep loss burst can be falsely suspected,
which is exactly the ambiguity real recovery drivers must survive (the
chaos harness exercises both cases).

The detector is polled (``poll(now_ns)``) rather than threaded: the
simulation advances rank clocks, then asks the detector to deliver every
heartbeat tick that elapsed since the last poll.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from repro.parallel.faults import FaultyNetwork, HEARTBEAT_BYTES


@dataclass(frozen=True)
class DetectorConfig:
    heartbeat_interval_ns: float = 1e6
    #: consecutive missed intervals before a rank is suspected
    miss_threshold: int = 3

    def __post_init__(self):
        if self.heartbeat_interval_ns <= 0:
            raise ValueError("heartbeat interval must be positive")
        if self.miss_threshold < 1:
            raise ValueError("miss threshold must be >= 1")


class FailureDetector:
    """Suspicion tracker for every rank of a :class:`SimulatedCluster`."""

    def __init__(self, cluster, config: DetectorConfig = DetectorConfig(),
                 observer_rank: int = 0):
        self.cluster = cluster
        self.config = config
        self.observer_rank = observer_rank
        now = 0.0
        #: sim time of the last *delivered* heartbeat per rank
        self.last_heard: Dict[int, float] = {
            r.rank: now for r in cluster.ranks
        }
        self._next_beat: Dict[int, float] = {
            r.rank: config.heartbeat_interval_ns for r in cluster.ranks
        }

    def _network(self):
        net = self.cluster.network
        return net if isinstance(net, FaultyNetwork) else None

    def poll(self, now_ns: float) -> List[int]:
        """Deliver all heartbeat ticks up to ``now_ns``; returns suspects.

        Idempotent for a fixed ``now_ns``; time must not go backwards.
        """
        net = self._network()
        step = self.config.heartbeat_interval_ns
        for ctx in self.cluster.ranks:
            t = self._next_beat[ctx.rank]
            while t <= now_ns:
                if ctx.alive:
                    if ctx.rank == self.observer_rank or net is None:
                        delivered = True
                    else:
                        delivered = net.send(
                            ctx.rank, self.observer_rank,
                            HEARTBEAT_BYTES, t,
                        ).delivered
                    if delivered:
                        self.last_heard[ctx.rank] = t
                t += step
            self._next_beat[ctx.rank] = t
        return self.suspected(now_ns)

    def suspected(self, now_ns: float) -> List[int]:
        """Ranks silent for ``miss_threshold`` intervals as of ``now_ns``."""
        horizon = self.config.miss_threshold * \
            self.config.heartbeat_interval_ns
        return sorted(
            rank for rank, heard in self.last_heard.items()
            if now_ns - heard > horizon
        )

    def is_suspected(self, rank: int, now_ns: float) -> bool:
        return rank in self.suspected(now_ns)
