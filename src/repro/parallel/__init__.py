"""Parallel substrate: an in-process SPMD simulator.

mpi4py and a real machine are not available offline, so the parallel runs
are *simulated*: P rank contexts live in one process, each with its own
simulated clock and memory arenas, and communication charges both endpoints
using a Gemini-like latency/bandwidth model.  Execution time of a parallel
region is the max over rank clocks at its closing barrier — the quantity the
paper's weak/strong-scaling figures plot.
"""

from repro.parallel.network import Network
from repro.parallel.faults import (
    FaultyNetwork,
    LinkFaults,
    NetworkFaultPlan,
    PartitionWindow,
)
from repro.parallel.detector import DetectorConfig, FailureDetector
from repro.parallel.simmpi import RankContext, SimCommunicator
from repro.parallel.cluster import SimulatedCluster
from repro.parallel.partition import PartitionResult, repartition

__all__ = [
    "DetectorConfig",
    "FailureDetector",
    "FaultyNetwork",
    "LinkFaults",
    "Network",
    "NetworkFaultPlan",
    "PartitionResult",
    "PartitionWindow",
    "RankContext",
    "SimCommunicator",
    "SimulatedCluster",
    "repartition",
]
