"""VOF transport: upwind advection + analytic sharpening.

Each step does a real finite-volume sweep — for every leaf, read the upwind
face neighbor (through the tree's neighbor resolution, i.e. Gerris'
``ftt_cell_neighbor``) and write back an updated VOF — so the memory access
pattern is that of an actual solver: ~2 reads and 1 write per leaf.

Because the velocity is prescribed, pure first-order upwinding would smear
the interface across the band within a few steps; after the transport sweep
the colour field is *sharpened* against the analytic geometry (a stand-in
for the geometric VOF reconstruction a production solver performs).  The
blend keeps both properties the evaluation needs: solver-like traffic and a
crisp, moving interface.

Two implementations share this module.  The scalar sweep is the oracle: one
leaf at a time through the per-octant accessors.  The SoA path
(``vectorized=True``, the default, taken when the tree exposes the batch
accessors) gathers every leaf into :class:`repro.solver.soa.LeafBatch`
arrays, resolves all upwind neighbors with one Z-order ``searchsorted``,
evaluates the transport/sharpening arithmetic elementwise and replays the
write-back in leaf order through ``batch_set_payloads``.  Both paths are
bit-identical in values *and* in device metering — enforced by
``tests/solver/test_vectorized_differential.py``.
"""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np

from repro.config import SolverConfig
from repro.octree import morton
from repro.octree.neighbors import leaf_neighbor
from repro.octree.store import AdaptiveTree
from repro.solver import soa
from repro.solver.fields import PRESSURE, U, V, VOF, FieldView
from repro.solver.geometry import DropletGeometry


def initialize_vof(tree: AdaptiveTree, geometry: DropletGeometry,
                   t: float = 0.0) -> None:
    """Fill the VOF and velocity fields from the geometry at time ``t``."""
    fields = FieldView(tree)
    dim = tree.dim
    for loc in tree.leaves():
        lo, hi = morton.cell_bounds(loc, dim)
        vof = geometry.vof_of_cell(lo, hi, t)
        vel = geometry.velocity(morton.cell_center(loc, dim), t)
        fields.set_many(loc, {VOF: vof, U: vel[0], V: vel[-1]})


def advect_vof(tree: AdaptiveTree, geometry: DropletGeometry,
               config: SolverConfig, t: float,
               sharpen: float = 0.7, always_write: bool = False,
               vectorized: bool = True, obs=None) -> Dict[str, int]:
    """One transport step ending at time ``t``; returns access counters.

    ``sharpen`` in [0, 1] blends the upwinded value toward the analytic
    fraction (1 = fully analytic re-initialisation).  ``always_write``
    disables the unchanged-cell write skip — the behaviour of a solver that
    does not diff-check its updates (used by the write-intensity study).

    ``vectorized`` selects the SoA batch path on trees that support it
    (``RunConfig.vectorized`` threads through here); trees without the
    batch accessors fall back to the scalar sweep and bump the
    ``kernel.scalar_fallbacks`` counter on ``obs``.
    """
    if not 0.0 <= sharpen <= 1.0:
        raise ValueError("sharpen must be in [0, 1]")
    if vectorized:
        if hasattr(tree, "batch_read_payloads"):
            return _advect_vof_batched(tree, geometry, config, t, sharpen,
                                       always_write, obs)
        if obs is not None:
            obs.metrics.counter("kernel.scalar_fallbacks").inc()
    return _advect_vof_scalar(tree, geometry, config, t, sharpen,
                              always_write)


def _advect_vof_scalar(tree: AdaptiveTree, geometry: DropletGeometry,
                       config: SolverConfig, t: float,
                       sharpen: float, always_write: bool) -> Dict[str, int]:
    dim = tree.dim
    vertical_axis = dim - 1
    fields = FieldView(tree)
    # Gather phase: read each leaf and its upwind (below) neighbor.  The
    # neighbor probe needs one quantity, so it goes through the
    # field-granular accessor (8 bytes), not a whole-payload load.
    updates: Dict[int, float] = {}
    current: Dict[int, tuple] = {}
    reads = 0
    for loc in tree.leaves():
        payload = tree.get_payload(loc)
        current[loc] = payload
        vof = payload[VOF]
        reads += 1
        below = leaf_neighbor(tree, loc, vertical_axis, -1)
        if below is not None and tree.is_leaf(below):
            vof_up = fields.get(below, VOF)
            reads += 1
        else:
            vof_up = 0.0  # inflow of gas at the bottom boundary, except the nozzle
            center = morton.cell_center(loc, dim)
            if geometry.axis_distance(center) <= config.nozzle_radius:
                vof_up = 1.0  # the nozzle keeps feeding liquid
        h = morton.cell_size(loc, dim)
        speed = geometry.velocity(morton.cell_center(loc, dim), t)[-1]
        cfl = min(1.0, speed * config.dt / h)
        transported = vof + cfl * (vof_up - vof)
        lo, hi = morton.cell_bounds(loc, dim)
        analytic = geometry.vof_of_cell(lo, hi, t)
        updates[loc] = (1.0 - sharpen) * transported + sharpen * analytic
    # Scatter phase: write only cells whose state actually changed.  Far
    # from the interface nothing moves, so most octants go untouched — the
    # step-to-step overlap the multi-version sharing exploits (Fig 3).
    writes = 0
    skipped = 0
    for loc, vof in updates.items():
        vel = geometry.velocity(morton.cell_center(loc, dim), t)
        old = current[loc]
        if (
            not always_write
            and abs(old[VOF] - vof) < 1e-12
            and abs(old[U] - vel[0]) < 1e-12
            and abs(old[V] - vel[-1]) < 1e-12
        ):
            skipped += 1
            continue
        tree.set_payload(loc, (vof, old[PRESSURE], vel[0], vel[-1]))
        writes += 1
    return {"reads": reads, "writes": writes, "skipped": skipped}


def _advect_vof_batched(tree: AdaptiveTree, geometry: DropletGeometry,
                        config: SolverConfig, t: float, sharpen: float,
                        always_write: bool,
                        obs: Optional[object]) -> Dict[str, int]:
    """SoA transport sweep; see the module docstring for the equivalence
    argument.  All arrays stay in ``leaves()`` gather order so neighbor
    metering and the write-back replay the scalar access sequence."""
    dim = tree.dim
    vertical_axis = dim - 1
    batch = soa.gather(tree, tree.leaves())
    n = len(batch)
    if obs is not None:
        obs.metrics.counter("kernel.batch_elems").inc(n)
    if n == 0:
        return {"reads": 0, "writes": 0, "skipped": 0}
    vof = batch.payloads[:, VOF]

    # Upwind neighbor resolution: same-level neighbor codes below each
    # leaf, resolved against the whole leaf set at once.  A hit is exactly
    # the scalar `leaf_neighbor(...) and is_leaf(...)` case (the unique
    # leaf at-or-above the neighbor code); a domain-boundary or
    # finer-region neighbor misses.
    ncoords = batch.coords.copy()
    ncoords[:, vertical_axis] -= 1
    in_range = ncoords[:, vertical_axis] >= 0
    ncodes = soa.locs_from_coords(batch.levels, np.maximum(ncoords, 0), dim)
    nidx = batch.find_enclosing(ncodes, batch.levels)
    nidx = np.where(in_range, nidx, np.int64(-1))
    hit_pos = np.nonzero(nidx >= 0)[0]

    vof_up = np.zeros(n, dtype=np.float64)
    if hit_pos.size:
        # a fresh metered field read per hit, exactly like the scalar
        # neighbor probe (values equal the gathered ones by construction)
        nb_locs = [batch.loc_list[i] for i in nidx[hit_pos]]
        vof_up[hit_pos] = tree.batch_read_fields(nb_locs, VOF)
    miss_pos = np.nonzero(nidx < 0)[0]
    if miss_pos.size:
        # boundary rule on the small miss set, via the scalar geometry
        # predicate (math.hypot in 3-D has no bit-equal numpy twin)
        centers = batch.centers
        radius = config.nozzle_radius
        for i in miss_pos:
            if geometry.axis_distance(tuple(centers[i])) <= radius:
                vof_up[i] = 1.0

    speed = geometry.vertical_velocities(batch.centers, t)
    cfl = np.minimum(1.0, speed * config.dt / batch.h)
    transported = vof + cfl * (vof_up - vof)
    analytic = geometry.vof_of_cells(batch.mins, batch.maxs, t)
    new_vof = (1.0 - sharpen) * transported + sharpen * analytic

    # Scatter: the prescribed horizontal velocity is identically 0.0, so
    # the unchanged-cell predicate needs only VOF, U and the vertical speed.
    if always_write:
        write_pos = np.arange(n)
    else:
        unchanged = (np.abs(vof - new_vof) < 1e-12) \
            & (np.abs(batch.payloads[:, U] - 0.0) < 1e-12) \
            & (np.abs(batch.payloads[:, V] - speed) < 1e-12)
        write_pos = np.nonzero(~unchanged)[0]
    pressure = batch.payloads[:, PRESSURE]
    loc_list = batch.loc_list
    items = [
        (loc_list[i],
         (float(new_vof[i]), float(pressure[i]), 0.0, float(speed[i])))
        for i in write_pos
    ]
    tree.batch_set_payloads(items)
    reads = n + int(hit_pos.size)
    writes = len(items)
    return {"reads": reads, "writes": writes, "skipped": n - writes}
