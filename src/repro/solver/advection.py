"""VOF transport: upwind advection + analytic sharpening.

Each step does a real finite-volume sweep — for every leaf, read the upwind
face neighbor (through the tree's neighbor resolution, i.e. Gerris'
``ftt_cell_neighbor``) and write back an updated VOF — so the memory access
pattern is that of an actual solver: ~2 reads and 1 write per leaf.

Because the velocity is prescribed, pure first-order upwinding would smear
the interface across the band within a few steps; after the transport sweep
the colour field is *sharpened* against the analytic geometry (a stand-in
for the geometric VOF reconstruction a production solver performs).  The
blend keeps both properties the evaluation needs: solver-like traffic and a
crisp, moving interface."""

from __future__ import annotations

from typing import Dict

from repro.config import SolverConfig
from repro.octree import morton
from repro.octree.neighbors import leaf_neighbor
from repro.octree.store import AdaptiveTree
from repro.solver.fields import PRESSURE, U, V, VOF, FieldView
from repro.solver.geometry import DropletGeometry


def initialize_vof(tree: AdaptiveTree, geometry: DropletGeometry,
                   t: float = 0.0) -> None:
    """Fill the VOF and velocity fields from the geometry at time ``t``."""
    fields = FieldView(tree)
    dim = tree.dim
    for loc in tree.leaves():
        lo, hi = morton.cell_bounds(loc, dim)
        vof = geometry.vof_of_cell(lo, hi, t)
        vel = geometry.velocity(morton.cell_center(loc, dim), t)
        fields.set_many(loc, {VOF: vof, U: vel[0], V: vel[-1]})


def advect_vof(tree: AdaptiveTree, geometry: DropletGeometry,
               config: SolverConfig, t: float,
               sharpen: float = 0.7, always_write: bool = False) -> Dict[str, int]:
    """One transport step ending at time ``t``; returns access counters.

    ``sharpen`` in [0, 1] blends the upwinded value toward the analytic
    fraction (1 = fully analytic re-initialisation).  ``always_write``
    disables the unchanged-cell write skip — the behaviour of a solver that
    does not diff-check its updates (used by the write-intensity study).
    """
    if not 0.0 <= sharpen <= 1.0:
        raise ValueError("sharpen must be in [0, 1]")
    dim = tree.dim
    vertical_axis = dim - 1
    # Gather phase: read each leaf and its upwind (below) neighbor.
    updates: Dict[int, float] = {}
    current: Dict[int, tuple] = {}
    reads = 0
    for loc in tree.leaves():
        payload = tree.get_payload(loc)
        current[loc] = payload
        vof = payload[VOF]
        reads += 1
        below = leaf_neighbor(tree, loc, vertical_axis, -1)
        if below is not None and tree.is_leaf(below):
            vof_up = tree.get_payload(below)[VOF]
            reads += 1
        else:
            vof_up = 0.0  # inflow of gas at the bottom boundary, except the nozzle
            lo, hi = morton.cell_bounds(loc, dim)
            center = morton.cell_center(loc, dim)
            if geometry.axis_distance(center) <= config.nozzle_radius:
                vof_up = 1.0  # the nozzle keeps feeding liquid
        h = morton.cell_size(loc, dim)
        speed = geometry.velocity(morton.cell_center(loc, dim), t)[-1]
        cfl = min(1.0, speed * config.dt / h)
        transported = vof + cfl * (vof_up - vof)
        lo, hi = morton.cell_bounds(loc, dim)
        analytic = geometry.vof_of_cell(lo, hi, t)
        updates[loc] = (1.0 - sharpen) * transported + sharpen * analytic
    # Scatter phase: write only cells whose state actually changed.  Far
    # from the interface nothing moves, so most octants go untouched — the
    # step-to-step overlap the multi-version sharing exploits (Fig 3).
    writes = 0
    skipped = 0
    for loc, vof in updates.items():
        vel = geometry.velocity(morton.cell_center(loc, dim), t)
        old = current[loc]
        if (
            not always_write
            and abs(old[VOF] - vof) < 1e-12
            and abs(old[U] - vel[0]) < 1e-12
            and abs(old[V] - vel[-1]) < 1e-12
        ):
            skipped += 1
            continue
        tree.set_payload(loc, (vof, old[PRESSURE], vel[0], vel[-1]))
        writes += 1
    return {"reads": reads, "writes": writes, "skipped": skipped}
