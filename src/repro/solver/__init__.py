"""A compact multiphase flow workload: droplet ejection (§5.1).

The paper drives its evaluation with a Gerris simulation of inkjet droplet
ejection: a liquid jet leaves a nozzle, a capillary (Rayleigh-Plateau)
instability grows on its surface, the jet pinches off and breaks into
droplets.  Resolving the pinch-off needs locally very fine cells — the
poster child for octree AMR.

This package implements the same *shape* of workload at simulator scale:

* an analytic two-phase geometry (jet column + growing perturbation +
  post-breakup droplets) that moves through the domain over time,
* a VOF colour field advected with a prescribed velocity and sharpened
  against the analytic interface each step,
* an optional pressure-projection solve on the extracted leaf graph,
* interface-band refinement criteria that double as PM-octree feature
  functions (§3.3),
* a time-stepping driver that runs the same simulation over any
  :class:`~repro.octree.store.AdaptiveTree` implementation.

What matters for reproducing the paper is the induced *tree access pattern*
(write intensity, step-to-step overlap, moving hot region), not CFD
fidelity; see DESIGN.md's substitution table.
"""

from repro.solver.geometry import DropletGeometry
from repro.solver.fields import FieldView, PRESSURE, U, V, VOF
from repro.solver.features import interface_band_feature, interface_criterion
from repro.solver.advection import advect_vof, initialize_vof
from repro.solver.poisson import pressure_solve
from repro.solver.simulation import DropletSimulation, StepReport

__all__ = [
    "DropletGeometry",
    "DropletSimulation",
    "FieldView",
    "PRESSURE",
    "StepReport",
    "U",
    "V",
    "VOF",
    "advect_vof",
    "initialize_vof",
    "interface_band_feature",
    "interface_criterion",
    "pressure_solve",
]
