"""Named views of the octant payload slots.

Every octant record carries four float64 payload slots; the solver uses them
as its cell-centred fields.  ``FieldView`` gives read/modify/write access by
name over any :class:`~repro.octree.store.AdaptiveTree`.
"""

from __future__ import annotations

from typing import Dict, List

from repro.octree.store import AdaptiveTree

#: Payload slot assignments.
VOF = 0        #: liquid volume fraction (the VOF colour function)
PRESSURE = 1   #: cell pressure
U = 2          #: horizontal velocity
V = 3          #: vertical velocity (the jet direction)

FIELD_NAMES = {"vof": VOF, "pressure": PRESSURE, "u": U, "v": V}


class FieldView:
    """Slot-wise field access with a per-slot write API.

    On trees with field-granular accessors (PM-octree's
    ``get_field``/``set_field``), single-slot reads and writes go through
    them, so one quantity costs an 8-byte single-line access instead of a
    whole-payload round-trip — the meter then reflects what the solver
    actually touched.  Backends without them keep the read-modify-write
    payload path.
    """

    def __init__(self, tree: AdaptiveTree):
        self.tree = tree
        self._get_field = getattr(tree, "get_field", None)
        self._set_field = getattr(tree, "set_field", None)

    def get(self, loc: int, slot: int) -> float:
        if self._get_field is not None:
            return self._get_field(loc, slot)
        return self.tree.get_payload(loc)[slot]

    def set(self, loc: int, slot: int, value: float) -> None:
        if self._set_field is not None:
            self._set_field(loc, slot, value)
            return
        payload = list(self.tree.get_payload(loc))
        payload[slot] = value
        self.tree.set_payload(loc, tuple(payload))

    def set_many(self, loc: int, updates: Dict[int, float]) -> None:
        """One read-modify-write for several slots (cheaper than N sets).

        A single-slot update degenerates to a field-granular store when
        the tree supports one — no read, 8 bytes written."""
        if len(updates) == 1 and self._set_field is not None:
            ((slot, value),) = updates.items()
            self._set_field(loc, slot, value)
            return
        payload = list(self.tree.get_payload(loc))
        for slot, value in updates.items():
            payload[slot] = value
        self.tree.set_payload(loc, tuple(payload))

    def gather(self, slot: int) -> Dict[int, float]:
        """Field values over all leaves."""
        return {loc: self.tree.get_payload(loc)[slot] for loc in self.tree.leaves()}

    def total(self, slot: int, weighted: bool = True) -> float:
        """Sum (volume-weighted by default) of a field over the leaves.

        The volume-weighted VOF total is the liquid volume — conserved by the
        analytic geometry up to sampling error, which tests rely on.
        """
        from repro.octree import morton

        acc = 0.0
        for loc in self.tree.leaves():
            w = (
                morton.cell_size(loc, self.tree.dim) ** self.tree.dim
                if weighted
                else 1.0
            )
            acc += w * self.tree.get_payload(loc)[slot]
        return acc


def liquid_leaves(tree: AdaptiveTree, threshold: float = 0.5) -> List[int]:
    """Leaves that are mostly liquid (used by droplet counting).

    Reads only the VOF slot of each leaf — batched on trees with the SoA
    accessor (identical read/line counts to per-leaf field reads), one
    field-granular or payload read per leaf otherwise."""
    locs = list(tree.leaves())
    if hasattr(tree, "batch_read_fields"):
        vals = tree.batch_read_fields(locs, VOF)
        return [loc for loc, v in zip(locs, vals) if v > threshold]
    return [loc for loc in locs if tree.get_payload(loc)[VOF] > threshold]


def count_droplets(tree: AdaptiveTree, threshold: float = 0.5) -> int:
    """Connected components of liquid leaves under face adjacency.

    This is the observable the workload is about: 1 while the jet is an
    attached column, >1 after pinch-off.
    """
    import networkx as nx

    from repro.octree.neighbors import face_neighbor_leaves

    liquid = set(liquid_leaves(tree, threshold))
    g = nx.Graph()
    g.add_nodes_from(liquid)
    for loc in liquid:
        for other, _axis, _direction in face_neighbor_leaves(tree, loc):
            if other in liquid:
                g.add_edge(loc, other)
    return nx.number_connected_components(g) if liquid else 0
