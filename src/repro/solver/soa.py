"""Level-major structure-of-arrays (SoA) views of a tree's leaves.

The solver hot paths (VOF transport, the wave sweep, the red-black
smoother, work-weight extraction) are per-octant Python loops over tuple
payload accessors; at realistic tree sizes the interpreter — not the
simulated memory device — is the binding constraint.  This module provides
the batch layer those kernels vectorise over:

* vectorised locational-code arithmetic (:func:`levels_of_codes`,
  :func:`coords_of_codes`, :func:`locs_from_coords`, :func:`zorder_keys`) that is
  *integer-exact* against :mod:`repro.octree.morton` — codes are plain
  int64 bit patterns, so the numpy forms produce identical values, not
  approximations;
* exact cell geometry (:func:`cell_geometry`) replaying
  ``morton.cell_bounds``/``cell_center`` arithmetic elementwise, so every
  float matches the scalar path to the last ulp;
* :class:`LeafBatch` — the gathered per-leaf arrays (``locs``, ``levels``,
  payload columns, bounds, centers) in the tree's ``leaves()`` iteration
  order plus a Z-sorted view for neighbor resolution.

Bit-identity discipline
-----------------------
The vectorised kernels must be *provably* equivalent to the scalar oracle
(see ``tests/solver/test_vectorized_differential.py``), which constrains
the arithmetic allowed here:

* only elementwise IEEE-754 ops (``+ - * /``, ``np.minimum``, ``np.abs``,
  comparisons) shared with the scalar expressions — these are exact per
  element, so array evaluation equals scalar evaluation bitwise;
* ``np.sqrt``/``np.exp``/``np.cos`` are elementwise-deterministic across
  array shapes (no size-dependent vector paths for the values we feed
  them), and ``np.sqrt``/``np.cos`` agree bitwise with ``math.sqrt``/
  ``math.cos``; ``math.exp`` and ``math.dist`` do NOT agree with their
  numpy counterparts and are therefore banned from dual-path code;
* powers-of-two cell sizes go through ``np.ldexp`` (exact), never
  ``1.0 / float(1 << level)`` loops.
"""

from __future__ import annotations

from typing import List, Sequence

import numpy as np

from repro.octree import morton

#: Maximum level (per dim) for which the int64 zorder-key arithmetic is
#: exact: ``dim * max_level + 6`` key bits must fit a signed 64-bit lane.
_KEY_BITS = 62

#: Locational codes must be exact as float64 for the frexp level trick.
_EXACT_FLOAT_LIMIT = 1 << 53


def _as_int64(locs) -> np.ndarray:
    arr = np.asarray(locs)
    return arr.astype(np.int64) if arr.dtype != np.int64 else arr


def levels_of_codes(locs, dim: int) -> np.ndarray:
    """Vectorised ``morton.level_of``: ``(bit_length - 1) // dim``.

    ``bit_length`` comes from the float64 exponent, which is exact for
    codes below 2**53 (guarded); integer-exact against the scalar form.
    """
    loc_arr = _as_int64(locs)
    if loc_arr.size == 0:
        return np.zeros(0, dtype=np.int64)
    if int(loc_arr.max()) >= _EXACT_FLOAT_LIMIT:  # pragma: no cover - guard
        return np.array([morton.level_of(int(v), dim) for v in loc_arr],
                        dtype=np.int64)
    bit_length = np.frexp(loc_arr.astype(np.float64))[1].astype(np.int64)
    return (bit_length - 1) // dim


def coords_of_codes(locs, levels: np.ndarray, dim: int) -> np.ndarray:
    """Vectorised ``morton.coords_of``: (n, dim) int64 min-corner coords.

    Bits above a code's own level are zero, so one loop to the deepest
    level needs no per-element masking.
    """
    loc_arr = _as_int64(locs)
    n = loc_arr.size
    coords = np.zeros((n, dim), dtype=np.int64)
    if n == 0:
        return coords
    bits = loc_arr - (np.int64(1) << (dim * levels))
    for i in range(int(levels.max())):
        for axis in range(dim):
            coords[:, axis] |= ((bits >> np.int64(dim * i + axis)) & 1) << i
    return coords


def locs_from_coords(levels: np.ndarray, coords: np.ndarray,
                     dim: int) -> np.ndarray:
    """Vectorised ``morton.loc_from_coords`` (coords must be in range)."""
    n = len(levels)
    bits = np.zeros(n, dtype=np.int64)
    if n == 0:
        return bits
    for i in range(int(levels.max())):
        for axis in range(dim):
            bits |= ((coords[:, axis] >> i) & 1) << np.int64(dim * i + axis)
    return (np.int64(1) << (dim * levels)) | bits


def zorder_keys(locs, levels: np.ndarray, dim: int,
                max_level: int) -> np.ndarray:
    """Vectorised ``morton.zorder_key`` (uint64, identical bit patterns)."""
    loc_arr = _as_int64(locs)
    if dim * max_level + 6 > _KEY_BITS:  # pragma: no cover - absurd depth
        return np.array(
            [morton.zorder_key(int(v), dim, max_level) for v in loc_arr],
            dtype=np.uint64,
        )
    aligned = (loc_arr - (np.int64(1) << (dim * levels))) \
        << (dim * (max_level - levels))
    return ((aligned << np.int64(6)) | levels).astype(np.uint64)


def cell_geometry(coords: np.ndarray, levels: np.ndarray):
    """``(h, mins, maxs, centers)`` replaying ``morton.cell_bounds`` /
    ``cell_center`` arithmetic elementwise (bit-identical floats).

    ``h = ldexp(1, -level)`` equals ``1.0 / (1 << level)`` exactly; the
    min corner ``c * h``, max corner ``min + h`` and center
    ``(lo + hi) / 2.0`` are the scalar expressions applied per element.
    """
    h = np.ldexp(1.0, -levels)
    mins = coords.astype(np.float64) * h[:, None]
    maxs = mins + h[:, None]
    centers = (mins + maxs) / 2.0
    return h, mins, maxs, centers


class LeafBatch:
    """Gathered SoA view of a tree's leaves, level-major on demand.

    ``locs``/``payloads`` keep the tree's ``leaves()`` iteration order —
    the order the scalar kernels visit and therefore the order any
    write-back must replay so copy-on-write allocation decisions match the
    scalar path exactly.  ``sorted_*`` arrays give the Z-order view used
    for neighbor resolution (``find_enclosing`` over all leaves at once).
    """

    def __init__(self, dim: int, locs: Sequence[int],
                 payloads: np.ndarray):
        self.dim = dim
        self.loc_list: List[int] = list(locs)
        self.locs = _as_int64(self.loc_list)
        self.payloads = payloads
        self.levels = levels_of_codes(self.locs, dim)
        self.max_level = int(self.levels.max()) if len(self.levels) else 0
        self.coords = coords_of_codes(self.locs, self.levels, dim)
        self.h, self.mins, self.maxs, self.centers = cell_geometry(
            self.coords, self.levels
        )
        self._order = None
        self._sorted_keys = None

    def __len__(self) -> int:
        return len(self.loc_list)

    @property
    def order(self) -> np.ndarray:
        """Permutation taking gather order to Z order (level-major within
        each curve position, as ``zorder_key`` ties break by level)."""
        if self._order is None:
            keys = zorder_keys(self.locs, self.levels, self.dim,
                               self.max_level)
            self._order = np.argsort(keys, kind="stable")
            self._sorted_keys = keys[self._order]
        return self._order

    @property
    def sorted_keys(self) -> np.ndarray:
        self.order  # noqa: B018 - builds the cache
        return self._sorted_keys

    def find_enclosing(self, codes: np.ndarray,
                       levels: np.ndarray) -> np.ndarray:
        """Vectorised ``LinearOctree.find_enclosing`` over the leaf set.

        For each query code (at its own level), returns the gather-order
        index of the stored leaf equal to it or an ancestor of it, or -1
        when the query's region is covered by *finer* leaves (or out of
        range).  Replicates the scalar walk's semantics: the unique leaf
        at-or-above the query wins; a finer region has no such leaf.
        """
        order = self.order
        keys = zorder_keys(codes, levels, self.dim, self.max_level)
        pos = np.searchsorted(self.sorted_keys, keys, side="right") - 1
        valid = pos >= 0
        pos_c = np.maximum(pos, 0)
        cand_idx = order[pos_c]
        cand_loc = self.locs[cand_idx]
        cand_level = self.levels[cand_idx]
        shift = (self.dim * np.maximum(levels - cand_level, 0)).astype(
            np.int64)
        hit = valid & (cand_level <= levels) \
            & ((codes >> shift) == cand_loc)
        return np.where(hit, cand_idx, np.int64(-1))


def gather(tree, locs: Sequence[int]) -> LeafBatch:
    """Gather payload rows for ``locs`` into a :class:`LeafBatch`.

    Uses the tree's metered batch accessor when it has one (charging
    exactly what per-leaf ``get_payload`` calls would); falls back to the
    scalar accessor otherwise.
    """
    loc_list = list(locs)
    if hasattr(tree, "batch_read_payloads"):
        payloads = tree.batch_read_payloads(loc_list)
    else:
        payloads = np.array([tree.get_payload(loc) for loc in loc_list],
                            dtype=np.float64).reshape(len(loc_list), 4)
    return LeafBatch(tree.dim, loc_list, payloads)
