"""A second AMR workload: an expanding seismic-style wavefront.

The paper's §6 future work is to "test PM-octree with other flow solvers
and simulations requiring adaptive mesh refinement"; its related work cites
octree-based earthquake ground-motion modelling (Kim et al.).  This module
provides such a workload with a *different* access pattern from droplet
ejection: an annular wavefront expands radially from an epicenter, so the
hot region is a growing ring that sweeps the whole domain — broader, faster
moving, and without the quiescent tail of the jet.

The field is a prescribed radial pulse

    u(x, t) = exp(-((|x - epicenter| - c*t) / width)^2)

stored in payload slot 0; refinement follows the pulse (|u| above a
threshold), and the per-step sweep writes every cell whose value changed —
the same solver-shaped traffic the droplet workload produces, through the
same :class:`~repro.octree.store.AdaptiveTree` protocol.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, List, Optional, Tuple

import numpy as np

from repro.nvbm.clock import SimClock
from repro.octree import morton
from repro.octree.balance import balance_tree
from repro.octree.refine import Action, RefinementEngine
from repro.octree.store import AdaptiveTree, Payload
from repro.solver import soa


@dataclass
class WaveConfig:
    """Parameters of the expanding-wavefront workload."""

    dim: int = 2
    min_level: int = 2
    max_level: int = 6
    epicenter: Tuple[float, ...] = (0.5, 0.5)
    speed: float = 0.6       #: wavefront speed (domain units / time unit)
    width: float = 0.05      #: Gaussian pulse width
    threshold: float = 0.1   #: refine where u exceeds this
    dt: float = 0.02

    def __post_init__(self) -> None:
        if len(self.epicenter) != self.dim:
            raise ValueError("epicenter dimensionality mismatch")
        if self.speed <= 0 or self.width <= 0:
            raise ValueError("speed and width must be positive")


class WaveField:
    """The analytic pulse and its cell-averaged evaluation."""

    def __init__(self, config: WaveConfig):
        self.config = config

    def value(self, point, t: float) -> float:
        # Spelled so the SoA sweep can replicate it bitwise: an explicit
        # left-to-right sum of squares (math.dist's fused form has no numpy
        # twin), math.sqrt (bit-equal to np.sqrt), and np.exp (math.exp is
        # NOT bit-equal to it).
        s = 0.0
        for p, e in zip(point, self.config.epicenter):
            d = p - e
            s += d * d
        r = math.sqrt(s)
        z = (r - self.config.speed * t) / self.config.width
        return float(np.exp(-z * z))

    def cell_value(self, loc: int, t: float) -> float:
        """Pulse amplitude at the cell center (adequate: the pulse is wider
        than the finest cells)."""
        return self.value(morton.cell_center(loc, self.config.dim), t)

    def front_radius(self, t: float) -> float:
        return self.config.speed * t


@dataclass
class WaveStepReport:
    step: int
    t: float
    leaves: int
    refined: int
    coarsened: int
    cells_written: int
    front_radius: float


class WaveSimulation:
    """Time-stepping driver for the wavefront workload.

    Mirrors :class:`~repro.solver.simulation.DropletSimulation`: adapt to
    the moving feature, sweep the field, invoke the persistence hook.
    """

    def __init__(self, tree: AdaptiveTree, config: Optional[WaveConfig] = None,
                 clock: Optional[SimClock] = None,
                 persistence: Optional[Callable[["WaveSimulation"], None]] = None,
                 vectorized: bool = True):
        self.tree = tree
        self.config = config or WaveConfig(dim=tree.dim)
        if self.config.dim != tree.dim:
            raise ValueError("config dim does not match tree dim")
        self.field = WaveField(self.config)
        self.clock = clock
        self.persistence = persistence
        self.vectorized = vectorized
        self.obs = None
        self.step_count = 0
        self.t = 0.0
        self.history: List[WaveStepReport] = []
        if hasattr(tree, "register_feature"):
            tree.register_feature(self._next_step_feature)

    def _next_step_feature(self, loc: int, payload: Payload) -> bool:
        """Will this octant change next step? (the §3.3 feature function)"""
        t_next = self.t + self.config.dt
        return abs(self.field.cell_value(loc, t_next) - payload[0]) > 1e-6

    def _criterion(self, t: float):
        cfg = self.config
        fld = self.field

        def criterion(loc: int, payload: Payload) -> Action:
            level = morton.level_of(loc, cfg.dim)
            # refine wherever the pulse (evaluated over the cell, padded by
            # one cell width) is significant
            lo, hi = morton.cell_bounds(loc, cfg.dim)
            h = morton.cell_size(loc, cfg.dim)
            center = morton.cell_center(loc, cfg.dim)
            r = math.dist(center, cfg.epicenter)
            front = fld.front_radius(t)
            near = abs(r - front) < (cfg.width * 2.5 + h)
            if near and level < cfg.max_level:
                return Action.REFINE
            if not near and level > cfg.min_level:
                return Action.COARSEN
            return Action.KEEP

        return criterion

    def _phase(self, name: str):
        from contextlib import nullcontext

        return self.clock.phase(name) if self.clock is not None\
            else nullcontext()

    def construct(self) -> None:
        with self._phase("construct"):
            frontier = [
                leaf for leaf in self.tree.leaves()
                if morton.level_of(leaf, self.tree.dim) < self.config.min_level
            ]
            while frontier:
                nxt = []
                for loc in frontier:
                    for c in self.tree.refine(loc):
                        if morton.level_of(c, self.tree.dim) < self.config.min_level:
                            nxt.append(c)
                frontier = nxt
            self._adapt()
            balance_tree(self.tree, max_level=self.config.max_level)
            self._sweep()

    def _adapt(self):
        engine = RefinementEngine(
            self._criterion(self.t),
            min_level=self.config.min_level,
            max_level=self.config.max_level,
            balance=False,
        )
        return engine.adapt(self.tree, rounds=self.config.max_level)

    def _sweep(self) -> int:
        """Write the pulse value into every cell whose value changed."""
        if self.vectorized and hasattr(self.tree, "batch_read_payloads"):
            return self._sweep_batched()
        if self.vectorized and self.obs is not None:
            self.obs.metrics.counter("kernel.scalar_fallbacks").inc()
        written = 0
        for loc in list(self.tree.leaves()):
            new = self.field.cell_value(loc, self.t)
            payload = self.tree.get_payload(loc)
            if abs(payload[0] - new) > 1e-12:
                self.tree.set_payload(
                    loc, (new, payload[1], payload[2], payload[3])
                )
                written += 1
        return written

    def _sweep_batched(self) -> int:
        """SoA sweep: gather every leaf, evaluate the pulse elementwise
        with the exact :meth:`WaveField.value` arithmetic, write back the
        changed cells in leaf order (bit-identical to the scalar sweep in
        values and device metering)."""
        cfg = self.config
        batch = soa.gather(self.tree, self.tree.leaves())
        n = len(batch)
        if self.obs is not None:
            self.obs.metrics.counter("kernel.batch_elems").inc(n)
        if n == 0:
            return 0
        d = batch.centers - np.asarray(cfg.epicenter, dtype=np.float64)
        s = d[:, 0] * d[:, 0] + d[:, 1] * d[:, 1]
        for axis in range(2, cfg.dim):
            s = s + d[:, axis] * d[:, axis]
        r = np.sqrt(s)
        z = (r - cfg.speed * self.t) / cfg.width
        new = np.exp(-z * z)
        payloads = batch.payloads
        write_pos = np.nonzero(np.abs(payloads[:, 0] - new) > 1e-12)[0]
        loc_list = batch.loc_list
        items = [
            (loc_list[i],
             (float(new[i]), float(payloads[i, 1]),
              float(payloads[i, 2]), float(payloads[i, 3])))
            for i in write_pos
        ]
        self.tree.batch_set_payloads(items)
        return len(items)

    def step(self) -> WaveStepReport:
        self.step_count += 1
        self.t = self.step_count * self.config.dt
        with self._phase("refine"):
            res = self._adapt()
        with self._phase("balance"):
            balance_tree(self.tree, max_level=self.config.max_level)
        with self._phase("solve"):
            written = self._sweep()
        if self.persistence is not None:
            with self._phase("persist.enqueue"):
                self.persistence(self)
        report = WaveStepReport(
            step=self.step_count,
            t=self.t,
            leaves=sum(1 for _ in self.tree.leaves()),
            refined=res.refined,
            coarsened=res.coarsened,
            cells_written=written,
            front_radius=self.field.front_radius(self.t),
        )
        self.history.append(report)
        return report

    def run(self, steps: int) -> List[WaveStepReport]:
        if self.step_count == 0 and self.tree.num_octants() <= 1:
            self.construct()
        return [self.step() for _ in range(steps)]
