"""Pressure solve on the adaptive leaf graph.

A projection-style Poisson solve: assemble the cell-centred finite-volume
Laplacian over the leaves (face terms through the neighbor resolution, with
the standard distance-weighted transmissibility across level jumps) and
solve ``-div(grad p) = f`` with scipy's sparse machinery.  The source is the
VOF "divergence" surrogate — liquid cells push, gas cells don't — which
produces pressure fields that look like surface-tension-driven flow without
a momentum equation.

This is the read-heavy phase of the workload (many neighbor reads per leaf,
one write), complementing the write-heavy refinement phase; together they
reproduce the 41-72 % write mix the paper measured (§1).
"""

from __future__ import annotations

from typing import Dict, List

import numpy as np
import scipy.sparse as sp
import scipy.sparse.linalg as spla

from repro.octree import morton
from repro.octree.neighbors import face_neighbor_leaves
from repro.octree.store import AdaptiveTree
from repro.solver.fields import PRESSURE, VOF, FieldView


def pressure_solve(tree: AdaptiveTree, rtol: float = 1e-8) -> Dict[str, float]:
    """Solve for pressure over the leaves and write it back.

    Returns diagnostics: residual norm and matrix size.
    """
    fields = FieldView(tree)
    leaves: List[int] = sorted(tree.leaves())
    n = len(leaves)
    if n == 0:
        return {"n": 0, "residual": 0.0}
    idx = {loc: i for i, loc in enumerate(leaves)}
    dim = tree.dim

    rows: List[int] = []
    cols: List[int] = []
    vals: List[float] = []
    rhs = np.zeros(n)
    diag = np.zeros(n)

    for loc in leaves:
        i = idx[loc]
        h_i = morton.cell_size(loc, dim)
        vof = fields.get(loc, VOF)
        rhs[i] = vof  # liquid pushes; with p=0 on the boundary this gives a
        # positive pressure hill centred on the liquid
        for other, _axis, _direction in face_neighbor_leaves(tree, loc):
            j = idx[other]
            h_j = morton.cell_size(other, dim)
            # face area between two leaves is the smaller face
            area = min(h_i, h_j) ** (dim - 1)
            dist = 0.5 * (h_i + h_j)
            tcoef = area / dist
            rows.append(i)
            cols.append(j)
            vals.append(-tcoef)
            diag[i] += tcoef
    # Dirichlet p=0 on the domain boundary, applied through the diagonal so
    # the system is non-singular.
    for loc in leaves:
        i = idx[loc]
        h_i = morton.cell_size(loc, dim)
        for axis in range(dim):
            for direction in (-1, 1):
                if morton.neighbor_of(loc, dim, axis, direction) is None:
                    diag[i] += h_i ** (dim - 1) / (0.5 * h_i)
    rows.extend(range(n))
    cols.extend(range(n))
    vals.extend(diag)
    a = sp.csr_matrix((vals, (rows, cols)), shape=(n, n))

    p, info = spla.cg(a, rhs, rtol=rtol, maxiter=10 * n)
    if info != 0:  # pragma: no cover - CG on an SPD M-matrix converges
        p = spla.spsolve(a.tocsc(), rhs)
    residual = float(np.linalg.norm(a @ p - rhs))

    for loc in leaves:
        fields.set(loc, PRESSURE, float(p[idx[loc]]))
    return {"n": float(n), "residual": residual}
