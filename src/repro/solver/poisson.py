"""Pressure solve on the adaptive leaf graph.

A projection-style Poisson solve: assemble the cell-centred finite-volume
Laplacian over the leaves (face terms through the neighbor resolution, with
the standard distance-weighted transmissibility across level jumps) and
solve ``-div(grad p) = f`` with scipy's sparse machinery.  The source is the
VOF "divergence" surrogate — liquid cells push, gas cells don't — which
produces pressure fields that look like surface-tension-driven flow without
a momentum equation.

This is the read-heavy phase of the workload (many neighbor reads per leaf,
one write), complementing the write-heavy refinement phase; together they
reproduce the 41-72 % write mix the paper measured (§1).
"""

from __future__ import annotations

from typing import Dict, List

import numpy as np
import scipy.sparse as sp
import scipy.sparse.linalg as spla

from repro.octree import morton
from repro.octree.neighbors import face_neighbor_leaves
from repro.octree.store import AdaptiveTree
from repro.solver.fields import PRESSURE, VOF, FieldView


def pressure_solve(tree: AdaptiveTree, rtol: float = 1e-8) -> Dict[str, float]:
    """Solve for pressure over the leaves and write it back.

    Returns diagnostics: residual norm and matrix size.
    """
    fields = FieldView(tree)
    leaves: List[int] = sorted(tree.leaves())
    n = len(leaves)
    if n == 0:
        return {"n": 0, "residual": 0.0}
    idx = {loc: i for i, loc in enumerate(leaves)}
    dim = tree.dim

    rows: List[int] = []
    cols: List[int] = []
    vals: List[float] = []
    rhs = np.zeros(n)
    diag = np.zeros(n)

    for loc in leaves:
        i = idx[loc]
        h_i = morton.cell_size(loc, dim)
        vof = fields.get(loc, VOF)
        rhs[i] = vof  # liquid pushes; with p=0 on the boundary this gives a
        # positive pressure hill centred on the liquid
        for other, _axis, _direction in face_neighbor_leaves(tree, loc):
            j = idx[other]
            h_j = morton.cell_size(other, dim)
            # face area between two leaves is the smaller face
            area = min(h_i, h_j) ** (dim - 1)
            dist = 0.5 * (h_i + h_j)
            tcoef = area / dist
            rows.append(i)
            cols.append(j)
            vals.append(-tcoef)
            diag[i] += tcoef
    # Dirichlet p=0 on the domain boundary, applied through the diagonal so
    # the system is non-singular.
    for loc in leaves:
        i = idx[loc]
        h_i = morton.cell_size(loc, dim)
        for axis in range(dim):
            for direction in (-1, 1):
                if morton.neighbor_of(loc, dim, axis, direction) is None:
                    diag[i] += h_i ** (dim - 1) / (0.5 * h_i)
    rows.extend(range(n))
    cols.extend(range(n))
    vals.extend(diag)
    a = sp.csr_matrix((vals, (rows, cols)), shape=(n, n))

    p, info = spla.cg(a, rhs, rtol=rtol, maxiter=10 * n)
    if info != 0:  # pragma: no cover - CG on an SPD M-matrix converges
        p = spla.spsolve(a.tocsc(), rhs)
    residual = float(np.linalg.norm(a @ p - rhs))

    for loc in leaves:
        fields.set(loc, PRESSURE, float(p[idx[loc]]))
    return {"n": float(n), "residual": residual}


def smooth_pressure(tree: AdaptiveTree, sweeps: int = 2,
                    vectorized: bool = True, obs=None) -> Dict[str, float]:
    """Red-black relaxation sweeps of the same finite-volume operator.

    The cheap companion to :func:`pressure_solve`: instead of a full CG
    solve, run ``sweeps`` two-color Jacobi-within-color relaxations of
    ``diag * p = rhs + sum(tcoef * p_neighbor)`` (colors by coordinate
    parity; on an adaptive mesh parity is not a strict 2-coloring across
    level jumps, so each color updates from a consistent pre-color
    snapshot).  Reads one VOF and one PRESSURE slot per leaf, writes the
    changed pressures — all field-granular.

    Both implementations consume the same precomputed topology
    (neighbor/transmissibility lists in ``face_neighbor_leaves`` order,
    Dirichlet boundary terms on the diagonal) and accumulate neighbor
    terms in the same k-ascending order, so the vectorized path
    (``vectorized=True`` on trees with batch accessors) is bit-identical
    to the scalar one in values and device metering.
    """
    leaves: List[int] = sorted(tree.leaves())
    n = len(leaves)
    if n == 0 or sweeps <= 0:
        return {"n": float(n), "written": 0.0, "sweeps": float(sweeps)}
    idx = {loc: i for i, loc in enumerate(leaves)}
    dim = tree.dim

    # shared topology — structural walks only, no payload traffic
    nb_idx: List[List[int]] = [[] for _ in range(n)]
    nb_t: List[List[float]] = [[] for _ in range(n)]
    diag = np.zeros(n)
    colors = np.zeros(n, dtype=np.int64)
    for loc in leaves:
        i = idx[loc]
        h_i = morton.cell_size(loc, dim)
        colors[i] = sum(morton.coords_of(loc, dim)) % 2
        for other, _axis, _direction in face_neighbor_leaves(tree, loc):
            h_j = morton.cell_size(other, dim)
            area = min(h_i, h_j) ** (dim - 1)
            dist = 0.5 * (h_i + h_j)
            tcoef = area / dist
            nb_idx[i].append(idx[other])
            nb_t[i].append(tcoef)
            diag[i] += tcoef
        for axis in range(dim):
            for direction in (-1, 1):
                if morton.neighbor_of(loc, dim, axis, direction) is None:
                    diag[i] += h_i ** (dim - 1) / (0.5 * h_i)

    use_batch = vectorized and hasattr(tree, "batch_read_fields")
    fields = FieldView(tree)
    if use_batch:
        if obs is not None:
            obs.metrics.counter("kernel.batch_elems").inc(n)
        rhs = tree.batch_read_fields(leaves, VOF)
        p = tree.batch_read_fields(leaves, PRESSURE)
    else:
        if vectorized and obs is not None:
            obs.metrics.counter("kernel.scalar_fallbacks").inc()
        rhs = np.array([fields.get(loc, VOF) for loc in leaves])
        p = np.array([fields.get(loc, PRESSURE) for loc in leaves])
    p0 = p.copy()

    if use_batch:
        maxdeg = max((len(row) for row in nb_idx), default=0)
        nb_pad = np.zeros((n, maxdeg), dtype=np.int64)
        t_pad = np.zeros((n, maxdeg), dtype=np.float64)
        for i, (row_j, row_t) in enumerate(zip(nb_idx, nb_t)):
            if row_j:
                nb_pad[i, :len(row_j)] = row_j
                t_pad[i, :len(row_t)] = row_t
        color_pos = [np.nonzero(colors == c)[0] for c in (0, 1)]
        for _ in range(sweeps):
            for pos in color_pos:
                if not pos.size:
                    continue
                sub_nb = nb_pad[pos]
                sub_t = t_pad[pos]
                acc = np.zeros(pos.size)
                for k in range(maxdeg):
                    # padded columns contribute an exact ±0.0 — a no-op on
                    # the accumulator, matching the scalar early stop
                    acc = acc + sub_t[:, k] * p[sub_nb[:, k]]
                p[pos] = (rhs[pos] + acc) / diag[pos]
    else:
        color_lists = [np.nonzero(colors == c)[0] for c in (0, 1)]
        for _ in range(sweeps):
            for members in color_lists:
                new_vals = []
                for i in members:
                    acc = 0.0
                    row_j = nb_idx[i]
                    row_t = nb_t[i]
                    for k in range(len(row_j)):
                        acc = acc + row_t[k] * p[row_j[k]]
                    new_vals.append((rhs[i] + acc) / diag[i])
                for i, v in zip(members, new_vals):
                    p[i] = v

    changed = np.nonzero(np.abs(p - p0) > 1e-12)[0]
    if use_batch:
        tree.batch_set_fields(
            [(leaves[i], float(p[i])) for i in changed], PRESSURE)
    else:
        for i in changed:
            fields.set(leaves[i], PRESSURE, float(p[i]))
    return {"n": float(n), "written": float(len(changed)),
            "sweeps": float(sweeps)}
