"""The droplet-ejection time-stepping driver.

Runs the §5.1 workload over *any* AdaptiveTree implementation: per step it
(1) adapts the mesh to the moving interface (Refine & Coarsen + Balance),
(2) runs the VOF transport sweep and optionally the pressure solve, and
(3) invokes the persistence hook — ``pm_persistent`` for PM-octree, the
snapshot policy for the in-core baseline, nothing for Etree.

Phases are labelled on the rank's simulated clock so the harness can print
the Fig 7/8b breakdowns.
"""

from __future__ import annotations

from contextlib import ExitStack, nullcontext
from dataclasses import dataclass
from typing import Callable, List, Optional

from repro.config import SolverConfig
from repro.nvbm.clock import SimClock
from repro.octree import morton
from repro.octree.balance import balance_tree
from repro.octree.refine import RefinementEngine
from repro.octree.store import AdaptiveTree
from repro.solver.advection import advect_vof, initialize_vof
from repro.solver.features import change_feature, interface_criterion
from repro.solver.fields import count_droplets
from repro.solver.geometry import DropletGeometry
from repro.solver.poisson import pressure_solve, smooth_pressure

#: Estimated flop time per leaf per sweep, charged as compute (the memory
#: traffic is charged exactly by the arenas; this stands in for arithmetic).
COMPUTE_NS_PER_LEAF = 120.0


@dataclass
class StepReport:
    """What one time step did."""

    step: int
    t: float
    leaves: int
    octants: int
    refined: int
    coarsened: int
    droplets: int
    overlap_ratio: Optional[float] = None


class DropletSimulation:
    """Droplet ejection over an adaptive tree."""

    def __init__(self, tree: AdaptiveTree, config: Optional[SolverConfig] = None,
                 clock: Optional[SimClock] = None,
                 persistence: Optional[Callable[["DropletSimulation"], None]] = None,
                 pressure_every: int = 0, vectorized: bool = True,
                 pressure_smooth: int = 0):
        self.tree = tree
        self.config = config or SolverConfig(dim=tree.dim)
        if self.config.dim != tree.dim:
            raise ValueError("config dim does not match tree dim")
        self.geometry = DropletGeometry(self.config)
        self.clock = clock
        self.persistence = persistence
        self.pressure_every = pressure_every
        #: SoA batch kernels when the tree supports them (scalar oracle
        #: otherwise / when False) — see repro.solver.soa
        self.vectorized = vectorized
        #: red-black smoothing sweeps per step (0 = off)
        self.pressure_smooth = pressure_smooth
        self.step_count = 0
        self.t = 0.0
        self.history: List[StepReport] = []
        #: optional repro.obs.Observability; phases become trace spans too
        self.obs = None
        # hand the feature function to PM-octree when driving one (§3.3):
        # the write-set predictor for the *next* step's time
        if hasattr(tree, "register_feature"):
            tree.register_feature(self._next_step_feature)

    def _next_step_feature(self, loc, payload) -> bool:
        """Feature bound to the next step: will this octant be written?"""
        fn = change_feature(self.geometry, self.config, self.t + self.config.dt)
        return fn(loc, payload)

    def _phase(self, name: str):
        """Clock-phase context; doubles as a trace span when obs is attached."""
        stack = ExitStack()
        if self.clock is not None:
            stack.enter_context(self.clock.phase(name))
        if self.obs is not None:
            stack.enter_context(
                self.obs.tracer.span("sim." + name, step=self.step_count)
            )
        return stack

    # -- lifecycle -----------------------------------------------------------

    def construct(self) -> None:
        """Build the initial mesh (*Construct*): refine to the base level,
        then adapt to the initial interface and fill the fields."""
        with self._phase("construct"):
            frontier = [
                leaf for leaf in self.tree.leaves()
                if morton.level_of(leaf, self.tree.dim) < self.config.min_level
            ]
            while frontier:
                nxt = []
                for loc in frontier:
                    for c in self.tree.refine(loc):
                        if morton.level_of(c, self.tree.dim) < self.config.min_level:
                            nxt.append(c)
                frontier = nxt
            self._adapt()
            balance_tree(self.tree, max_level=self.config.max_level)
            initialize_vof(self.tree, self.geometry, self.t)

    def _adapt(self):
        criterion = interface_criterion(self.geometry, self.config, self.t)
        # balance=False: the driver runs the explicit Balance pass itself so
        # the Fig 7/8b breakdown separates Refine&Coarsen from Balance
        engine = RefinementEngine(
            criterion,
            min_level=self.config.min_level,
            max_level=self.config.max_level,
            balance=False,
        )
        return engine.adapt(self.tree, rounds=self.config.max_level)

    def step(self) -> StepReport:
        """Advance one time step; returns the step report."""
        self.step_count += 1
        self.t = self.step_count * self.config.dt
        step_span = (
            self.obs.tracer.span("sim.step", step=self.step_count)
            if self.obs is not None else nullcontext()
        )
        with step_span:
            with self._phase("refine"):
                res = self._adapt()
            with self._phase("balance"):
                balance_tree(self.tree, max_level=self.config.max_level)
            with self._phase("solve"):
                counters = advect_vof(self.tree, self.geometry, self.config,
                                      self.t, vectorized=self.vectorized,
                                      obs=self.obs)
                if self.pressure_smooth:
                    smooth_pressure(self.tree, sweeps=self.pressure_smooth,
                                    vectorized=self.vectorized, obs=self.obs)
                if self.pressure_every \
                        and self.step_count % self.pressure_every == 0:
                    pressure_solve(self.tree)
                if self.clock is not None:
                    self.clock.advance(
                        COMPUTE_NS_PER_LEAF * counters["reads"]
                    )
            if self.persistence is not None:
                # "persist.enqueue": the compute-path half of the persist
                # point.  Background drain time never lands here — the
                # epoch pipeline charges stalls under its own nested
                # "persist.drain" phase, so the span tree attributes flush
                # waits to the drain, not to compute.  The synchronous path
                # simply spends its whole persist inside this span.
                with self._phase("persist.enqueue"):
                    self.persistence(self)
        report = StepReport(
            step=self.step_count,
            t=self.t,
            leaves=self.tree.num_leaves()
            if hasattr(self.tree, "num_leaves")
            else sum(1 for _ in self.tree.leaves()),
            octants=self.tree.num_octants(),
            refined=res.refined,
            coarsened=res.coarsened,
            droplets=count_droplets(self.tree),
            overlap_ratio=(
                self.tree.overlap_ratio()
                if hasattr(self.tree, "overlap_ratio")
                else None
            ),
        )
        self.history.append(report)
        return report

    def run(self, steps: int) -> List[StepReport]:
        """Run several steps (constructing first if never constructed)."""
        if self.step_count == 0 and self.tree.num_octants() <= 1:
            self.construct()
        return [self.step() for _ in range(steps)]
