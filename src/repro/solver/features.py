"""Refinement criteria and PM-octree feature functions.

One definition, two consumers — which is the paper's point about
feature-directed sampling imposing no extra programming burden (§3.3): the
refine/coarsen predicate the simulation already owns *is* the feature
function handed to the PM-octree library.
"""

from __future__ import annotations

from typing import Callable

from repro.config import SolverConfig
from repro.octree import morton
from repro.octree.refine import Action
from repro.octree.store import Payload
from repro.solver.fields import VOF
from repro.solver.geometry import DropletGeometry


def interface_band_feature(geometry: DropletGeometry, dim: int,
                           t: float) -> Callable[[int, Payload], bool]:
    """Feature: is this octant in the interface band at time ``t``?

    PM-octree pre-executes this on sampled octants to find hot subtrees.
    """

    def fn(loc: int, payload: Payload) -> bool:
        lo, hi = morton.cell_bounds(loc, dim)
        return geometry.near_interface(lo, hi, t)

    return fn


def change_feature(geometry: DropletGeometry, config: SolverConfig,
                   t_next: float) -> Callable[[int, Payload], bool]:
    """Feature: will the solver *write* this octant next step?

    Pre-executes the update predicate: a cell is hot when its analytic
    volume fraction at ``t_next`` differs from its current value — exactly
    the octants the transport sweep will rewrite and the refinement pass
    will touch.  This is the sharp prediction that makes feature-directed
    sampling beat history (§3.3): the set follows the moving front, and it
    is much smaller than the full interface band.
    """
    dim = config.dim

    def fn(loc: int, payload: Payload) -> bool:
        lo, hi = morton.cell_bounds(loc, dim)
        analytic = geometry.vof_of_cell(lo, hi, t_next)
        return abs(analytic - payload[VOF]) > 1e-9

    return fn


def mixed_cell_feature(dim: int) -> Callable[[int, Payload], bool]:
    """Feature based on the current VOF value instead of the geometry: a
    mixed cell (0 < vof < 1) is where the solver will do interface work."""

    def fn(loc: int, payload: Payload) -> bool:
        return 1e-6 < payload[VOF] < 1.0 - 1e-6

    return fn


def interface_criterion(geometry: DropletGeometry, config: SolverConfig,
                        t: float) -> Callable[[int, Payload], Action]:
    """AMR criterion: max resolution in the interface band, coarse far away.

    Matches the droplet workload in the paper: the fine region follows the
    jet tip and the droplets, so the hot subdomain *moves* every time step.

    Coarsening is decided on the *parent* cell's band: children created for
    an interface their parent still straddles must not vote themselves away
    on the next sweep, or the adaptation loop ping-pongs forever.
    """
    dim = config.dim
    near_cache: dict = {}

    def near(loc: int) -> bool:
        hit = near_cache.get(loc)
        if hit is None:
            lo, hi = morton.cell_bounds(loc, dim)
            hit = geometry.near_interface(lo, hi, t)
            near_cache[loc] = hit
        return hit

    def criterion(loc: int, payload: Payload) -> Action:
        level = morton.level_of(loc, dim)
        if near(loc):
            if level < config.max_level:
                return Action.REFINE
            return Action.KEEP
        if level > config.min_level and not near(morton.parent_of(loc, dim)):
            return Action.COARSEN
        return Action.KEEP

    return criterion
