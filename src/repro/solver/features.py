"""Refinement criteria and PM-octree feature functions.

One definition, two consumers — which is the paper's point about
feature-directed sampling imposing no extra programming burden (§3.3): the
refine/coarsen predicate the simulation already owns *is* the feature
function handed to the PM-octree library.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.config import SolverConfig
from repro.octree import morton
from repro.octree.refine import Action
from repro.octree.store import Payload
from repro.solver.fields import VOF
from repro.solver.geometry import DropletGeometry

#: Extra solver work a mixed (interface) cell costs relative to a pure
#: cell: interface reconstruction + flux limiting dominate the sweep.
INTERFACE_WORK = 4.0

#: Refine/coarsen churn surcharge per level of depth (relative to the
#: forest's deepest level): fine cells sit in the adaptation band and are
#: re-gridded far more often than the coarse background.
CHURN_WORK = 1.0


def interface_band_feature(geometry: DropletGeometry, dim: int,
                           t: float) -> Callable[[int, Payload], bool]:
    """Feature: is this octant in the interface band at time ``t``?

    PM-octree pre-executes this on sampled octants to find hot subtrees.
    """

    def fn(loc: int, payload: Payload) -> bool:
        lo, hi = morton.cell_bounds(loc, dim)
        return geometry.near_interface(lo, hi, t)

    return fn


def change_feature(geometry: DropletGeometry, config: SolverConfig,
                   t_next: float) -> Callable[[int, Payload], bool]:
    """Feature: will the solver *write* this octant next step?

    Pre-executes the update predicate: a cell is hot when its analytic
    volume fraction at ``t_next`` differs from its current value — exactly
    the octants the transport sweep will rewrite and the refinement pass
    will touch.  This is the sharp prediction that makes feature-directed
    sampling beat history (§3.3): the set follows the moving front, and it
    is much smaller than the full interface band.
    """
    dim = config.dim

    def fn(loc: int, payload: Payload) -> bool:
        lo, hi = morton.cell_bounds(loc, dim)
        analytic = geometry.vof_of_cell(lo, hi, t_next)
        return abs(analytic - payload[VOF]) > 1e-9

    return fn


def mixed_cell_feature(dim: int) -> Callable[[int, Payload], bool]:
    """Feature based on the current VOF value instead of the geometry: a
    mixed cell (0 < vof < 1) is where the solver will do interface work."""

    def fn(loc: int, payload: Payload) -> bool:
        return 1e-6 < payload[VOF] < 1.0 - 1e-6

    return fn


def octant_work_weight(loc: int, payload: Payload, dim: int,
                       max_level: int) -> float:
    """Partition cost weight of one octant.

    The weight is the same feature intensity the refine criterion reads —
    §3.3's "no extra programming burden" point again: a mixed cell is where
    the solver does interface work *and* where refinement churn follows,
    so the weighted SFC cut places fewer interface cells per rank than
    pure-background cells.
    """
    w = 1.0
    vof = payload[VOF]
    if 1e-6 < vof < 1.0 - 1e-6:
        w += INTERFACE_WORK
    level = morton.level_of(loc, dim)
    w += CHURN_WORK * level / max(1, max_level)
    return w


def partition_work_weights(lin) -> np.ndarray:
    """Vectorised :func:`octant_work_weight` over a
    :class:`~repro.octree.linear.LinearOctree` (curve order preserved)."""
    n = len(lin)
    if n == 0:
        return np.zeros(0, dtype=np.float64)
    from repro.solver import soa

    w = np.ones(n, dtype=np.float64)
    vof = lin.payloads[:, VOF]
    w += np.where((vof > 1e-6) & (vof < 1.0 - 1e-6), INTERFACE_WORK, 0.0)
    levels = soa.levels_of_codes(lin.locs, lin.dim).astype(np.float64)
    w += CHURN_WORK * levels / max(1, lin.max_level)
    return w


def interface_criterion(geometry: DropletGeometry, config: SolverConfig,
                        t: float) -> Callable[[int, Payload], Action]:
    """AMR criterion: max resolution in the interface band, coarse far away.

    Matches the droplet workload in the paper: the fine region follows the
    jet tip and the droplets, so the hot subdomain *moves* every time step.

    Coarsening is decided on the *parent* cell's band: children created for
    an interface their parent still straddles must not vote themselves away
    on the next sweep, or the adaptation loop ping-pongs forever.
    """
    dim = config.dim
    near_cache: dict = {}

    def near(loc: int) -> bool:
        hit = near_cache.get(loc)
        if hit is None:
            lo, hi = morton.cell_bounds(loc, dim)
            hit = geometry.near_interface(lo, hi, t)
            near_cache[loc] = hit
        return hit

    def criterion(loc: int, payload: Payload) -> Action:
        level = morton.level_of(loc, dim)
        if near(loc):
            if level < config.max_level:
                return Action.REFINE
            return Action.KEEP
        if level > config.min_level and not near(morton.parent_of(loc, dim)):
            return Action.COARSEN
        return Action.KEEP

    return criterion
