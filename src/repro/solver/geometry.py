"""Analytic droplet-ejection geometry.

A liquid jet rises from a nozzle at the bottom of the unit domain along the
vertical axis.  Before breakup the liquid is a column of radius

    R(y, t) = R0 * (1 + A(t) * cos(2*pi*(y - v*t)/lambda))

whose perturbation amplitude ``A`` grows linearly to 1 at ``breakup_time``
(the linear-growth phase of a Rayleigh-Plateau instability).  At breakup the
column beyond the pinch point is replaced by a train of droplets riding at
the jet speed, one per perturbation wavelength, sized to conserve the
column's volume per wavelength.

All queries are *functions of (point, t)* — the geometry is prescribed, not
simulated, which keeps the workload deterministic across octree
implementations while still moving the refinement region every step exactly
like the real simulation does.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

import numpy as np

from repro.config import SolverConfig


@dataclass(frozen=True)
class Droplet:
    """One free droplet: center height and radius."""

    y: float
    radius: float


class DropletGeometry:
    """Time-dependent two-phase geometry of the ejection process."""

    def __init__(self, config: SolverConfig):
        self.config = config
        self._droplet_cache: Dict[float, List[Droplet]] = {}

    # -- kinematics -----------------------------------------------------------

    def tip(self, t: float) -> float:
        """Height of the jet front (capped inside the domain).

        The jet starts with a small protrusion so the interface exists (and
        the AMR has something to track) from the very first step.
        """
        return min(0.95, self.config.initial_tip + self.config.jet_speed * t)

    def amplitude(self, t: float) -> float:
        """Perturbation amplitude, growing linearly until breakup."""
        if self.config.breakup_time <= 0:
            return self.config.perturbation_amplitude
        return min(1.0, max(0.0, t / self.config.breakup_time))\
            * self.config.perturbation_amplitude

    def column_radius(self, y: float, t: float) -> float:
        """Jet column radius at height ``y`` (normalised so it never exceeds
        the nozzle radius)."""
        cfg = self.config
        a = self.amplitude(t)
        phase = 2.0 * math.pi * (y - cfg.jet_speed * t) / cfg.perturbation_wavelength
        return cfg.nozzle_radius * (1.0 + a * math.cos(phase)) / (1.0 + a)

    def has_broken(self, t: float) -> bool:
        return t >= self.config.breakup_time

    def pinch_height(self, t: float) -> float:
        """Below this height the liquid is still an attached column."""
        if t >= self.config.shutoff_time:
            # nozzle off: the residual column retracts at the jet speed
            residual = 0.35 - (t - self.config.shutoff_time) * self.config.jet_speed
            return max(0.0, min(residual, self.tip(t)))
        if not self.has_broken(t):
            return self.tip(t)
        # the column keeps feeding from the nozzle after breakup
        return min(0.35, self.tip(t))

    def droplets(self, t: float) -> List[Droplet]:
        """Free droplets after breakup, one per wavelength above the pinch."""
        if not self.has_broken(t):
            return []
        cached = self._droplet_cache.get(t)
        if cached is not None:
            return cached
        cfg = self.config
        lam = cfg.perturbation_wavelength
        out: List[Droplet] = []
        if cfg.dim == 2:
            r_d = math.sqrt(2.0 * cfg.nozzle_radius * lam / math.pi)
        else:
            r_d = (3.0 * cfg.nozzle_radius ** 2 * lam / 4.0) ** (1.0 / 3.0)
        r_d = min(r_d, 0.45 * lam)  # droplets must not merge back
        # crests sit where the perturbation phase is 0 mod 2*pi; only crests
        # emitted while the nozzle was feeding become droplets
        max_k = (
            cfg.jet_speed * cfg.shutoff_time / lam
            if math.isfinite(cfg.shutoff_time)
            else float("inf")
        )
        k = 0
        while True:
            y = cfg.jet_speed * t - k * lam
            if k > max_k:
                break
            k += 1
            if y < self.pinch_height(t) + r_d:
                break
            if y <= 0.95 - r_d:
                out.append(Droplet(y=y, radius=r_d))
            if k > 64:  # safety
                break
        if len(self._droplet_cache) > 64:
            self._droplet_cache.clear()
        self._droplet_cache[t] = out
        return out

    # -- indicator functions --------------------------------------------------

    def axis_distance(self, point: Sequence[float]) -> float:
        """Distance from the jet axis (x=0.5 line / x=z=0.5 in 3-D)."""
        if self.config.dim == 2:
            return abs(point[0] - 0.5)
        return math.hypot(point[0] - 0.5, point[1] - 0.5)

    def _height(self, point: Sequence[float]) -> float:
        return point[-1]

    def liquid_mask(self, pts: np.ndarray, t: float) -> np.ndarray:
        """Vectorised phase indicator over an ``(N, dim)`` point array."""
        cfg = self.config
        pts = np.asarray(pts, dtype=np.float64)
        y = pts[:, -1]
        if cfg.dim == 2:
            r = np.abs(pts[:, 0] - 0.5)
        else:
            r = np.hypot(pts[:, 0] - 0.5, pts[:, 1] - 0.5)
        a = self.amplitude(t)
        phase = 2.0 * np.pi * (y - cfg.jet_speed * t) / cfg.perturbation_wavelength
        col_r = cfg.nozzle_radius * (1.0 + a * np.cos(phase)) / (1.0 + a)
        mask = (y >= 0.0) & (y <= self.pinch_height(t)) & (r <= col_r)
        for d in self.droplets(t):
            mask |= (y - d.y) ** 2 + r ** 2 <= d.radius ** 2
        return mask

    def is_liquid(self, point: Sequence[float], t: float) -> bool:
        """Sharp phase indicator (scalar convenience over liquid_mask)."""
        return bool(self.liquid_mask(np.asarray([point]), t)[0])

    _unit_grids: Dict[Tuple[int, int], np.ndarray] = {}

    def _sample_grid(self, lo: Sequence[float], hi: Sequence[float],
                     samples: int) -> np.ndarray:
        dim = self.config.dim
        key = (dim, samples)
        unit = DropletGeometry._unit_grids.get(key)
        if unit is None:
            centers = (np.arange(samples) + 0.5) / samples
            grids = np.meshgrid(*([centers] * dim), indexing="ij")
            unit = np.stack([g.ravel() for g in grids], axis=1)
            DropletGeometry._unit_grids[key] = unit
        lo = np.asarray(lo, dtype=np.float64)
        hi = np.asarray(hi, dtype=np.float64)
        return lo + unit * (hi - lo)

    def vof_of_cell(self, lo: Sequence[float], hi: Sequence[float],
                    t: float, samples: int = 3) -> float:
        """Volume fraction of liquid in a cell, by sub-sampling."""
        pts = self._sample_grid(lo, hi, samples)
        return float(self.liquid_mask(pts, t).mean())

    def vof_of_cells(self, los: np.ndarray, his: np.ndarray, t: float,
                     samples: int = 3) -> np.ndarray:
        """Volume fractions of many cells at once.

        Bit-identical to per-cell :meth:`vof_of_cell`: the same cached unit
        grid, the same per-sample arithmetic applied elementwise, and a
        per-cell mean whose 0/1 addends sum exactly in any order."""
        dim = self.config.dim
        unit = DropletGeometry._unit_grids.get((dim, samples))
        if unit is None:
            self._sample_grid([0.0] * dim, [1.0] * dim, samples)
            unit = DropletGeometry._unit_grids[(dim, samples)]
        los = np.asarray(los, dtype=np.float64)
        his = np.asarray(his, dtype=np.float64)
        pts = los[:, None, :] + unit[None, :, :] * (his - los)[:, None, :]
        mask = self.liquid_mask(pts.reshape(-1, dim), t)
        return mask.reshape(len(los), -1).mean(axis=1)

    def vertical_velocities(self, centers: np.ndarray, t: float) -> np.ndarray:
        """Vertical velocity at many points — ``velocity(p, t)[-1]``
        elementwise (one shared phase-mask evaluation)."""
        cfg = self.config
        mask = self.liquid_mask(np.asarray(centers, dtype=np.float64), t)
        return np.where(mask, cfg.jet_speed, 0.15 * cfg.jet_speed)

    def velocity(self, point: Sequence[float], t: float) -> Tuple[float, ...]:
        """Prescribed velocity: the liquid rides upward at jet speed, the
        ambient gas co-flows weakly."""
        v = self.config.jet_speed if self.is_liquid(point, t)\
            else 0.15 * self.config.jet_speed
        if self.config.dim == 2:
            return (0.0, v)
        return (0.0, 0.0, v)

    def near_interface(self, lo: Sequence[float], hi: Sequence[float],
                       t: float, samples: int = 3) -> bool:
        """Does the interface cross the (band-padded) cell?

        A *mixed* sampled fraction means the cell straddles the interface.
        The liquid features (jet width ~2*R0, droplet diameter ~lambda) are
        wider than a coarse cell's sample spacing, so sub-sampling cannot
        skip over them the way corner tests would.
        """
        band = self.config.interface_band
        pad = band * max(h - loc for h, loc in zip(hi, lo))
        padded_lo = [loc - pad for loc in lo]
        padded_hi = [h + pad for h in hi]
        frac = self.vof_of_cell(padded_lo, padded_hi, t, samples=samples)
        return 0.0 < frac < 1.0
