"""Mesh extraction (the *Extract* routine; Fig 1b's anchored/dangling nodes).

Extraction turns the leaves of an adaptive tree into an unstructured mesh:
elements (one per leaf) over shared vertices.  On a non-conforming adaptive
mesh a vertex can be *dangling* (hanging): it is a corner of the fine leaves
on one side of a face but sits mid-edge/mid-face of the coarser leaf on the
other side, so the solver must constrain it rather than treat it as a degree
of freedom.

Vertices are keyed by integer coordinates at the finest level's resolution,
which makes the dangling test exact: a vertex is dangling iff it coincides
with an edge midpoint (2-D/3-D) or face center (3-D) of some leaf.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from itertools import product
from typing import Dict, List, Set, Tuple

from repro.octree import morton
from repro.octree.store import AdaptiveTree

Coord = Tuple[int, ...]


@dataclass
class ExtractedMesh:
    """Unstructured mesh produced from a tree's leaves."""

    dim: int
    max_level: int
    #: vertex integer coords (at 2**max_level resolution) -> vertex id
    vertex_ids: Dict[Coord, int] = field(default_factory=dict)
    #: per element: the leaf code and its corner vertex ids in lexicographic order
    elements: List[Tuple[int, Tuple[int, ...]]] = field(default_factory=list)
    dangling: Set[int] = field(default_factory=set)

    @property
    def num_vertices(self) -> int:
        return len(self.vertex_ids)

    @property
    def num_elements(self) -> int:
        return len(self.elements)

    @property
    def anchored(self) -> Set[int]:
        return set(self.vertex_ids.values()) - self.dangling

    def vertex_position(self, vid: int) -> Tuple[float, ...]:
        """Unit-cube coordinates of a vertex id."""
        for coord, v in self.vertex_ids.items():
            if v == vid:
                scale = 1 << self.max_level
                return tuple(c / scale for c in coord)
        raise KeyError(f"no vertex {vid}")


def _leaf_corners(loc: int, dim: int, max_level: int) -> List[Coord]:
    level = morton.level_of(loc, dim)
    scale = 1 << (max_level - level)
    base = tuple(c * scale for c in morton.coords_of(loc, dim))
    return [
        tuple(b + o * scale for b, o in zip(base, offs))
        for offs in product((0, 1), repeat=dim)
    ]


def _leaf_hanging_candidates(loc: int, dim: int, max_level: int) -> List[Coord]:
    """Edge midpoints (and 3-D face centers) of a leaf, in fine-int coords.

    These are the only positions where a vertex of a finer neighbor can land
    on this leaf's boundary without being one of its corners (under 2:1
    balance).
    """
    level = morton.level_of(loc, dim)
    scale = 1 << (max_level - level)
    if scale % 2:
        return []  # finest-level leaves cannot host hanging nodes
    half = scale // 2
    base = tuple(c * scale for c in morton.coords_of(loc, dim))
    out: List[Coord] = []
    # Boundary positions with offsets in {0, half, scale}: n_half == 0 is a
    # corner, n_half == dim is the (interior) cell center; everything in
    # between is an edge midpoint or, in 3-D, a face center.
    for offs in product((0, half, scale), repeat=dim):
        n_half = sum(1 for o in offs if o == half)
        if 1 <= n_half <= dim - 1:
            out.append(tuple(b + o for b, o in zip(base, offs)))
    return out


def extract_mesh(tree: AdaptiveTree) -> ExtractedMesh:
    """Build the element/vertex mesh with anchored/dangling classification."""
    dim = tree.dim
    leaves = list(tree.leaves())
    max_level = max((morton.level_of(leaf, dim) for leaf in leaves), default=0)
    mesh = ExtractedMesh(dim=dim, max_level=max_level)

    for loc in leaves:
        corner_ids = []
        for coord in _leaf_corners(loc, dim, max_level):
            vid = mesh.vertex_ids.setdefault(coord, len(mesh.vertex_ids))
            corner_ids.append(vid)
        mesh.elements.append((loc, tuple(corner_ids)))

    # A vertex is dangling iff it coincides with an edge-midpoint/face-center
    # of some leaf (then that leaf does not see it as a corner).
    for loc in leaves:
        for coord in _leaf_hanging_candidates(loc, dim, max_level):
            vid = mesh.vertex_ids.get(coord)
            if vid is not None:
                mesh.dangling.add(vid)
    return mesh
