"""Traversal orders over adaptive trees (Gerris' ``ftt_cell_traverse``)."""

from __future__ import annotations

from typing import Callable, Iterator, Optional

from repro.octree import morton
from repro.octree.store import AdaptiveTree


def preorder(tree: AdaptiveTree, start: Optional[int] = None) -> Iterator[int]:
    """Depth-first, parents before children, children in Morton order."""
    stack = [start if start is not None else tree.root_loc()]
    dim = tree.dim
    while stack:
        loc = stack.pop()
        if not tree.exists(loc):
            continue
        yield loc
        if not tree.is_leaf(loc):
            # Reverse so child 0 pops first.
            stack.extend(reversed(morton.children_of(loc, dim)))


def postorder(tree: AdaptiveTree, start: Optional[int] = None) -> Iterator[int]:
    """Depth-first, children before parents (used by restriction sweeps)."""
    root = start if start is not None else tree.root_loc()
    stack = [(root, False)]
    dim = tree.dim
    while stack:
        loc, expanded = stack.pop()
        if not tree.exists(loc):
            continue
        if expanded or tree.is_leaf(loc):
            yield loc
        else:
            stack.append((loc, True))
            stack.extend(
                (c, False) for c in reversed(morton.children_of(loc, dim))
            )


def leaves_zorder(tree: AdaptiveTree) -> Iterator[int]:
    """Leaves in space-filling-curve order (partitioning relies on this)."""
    for loc in preorder(tree):
        if tree.is_leaf(loc):
            yield loc


def levelorder(tree: AdaptiveTree) -> Iterator[int]:
    """Breadth-first by level."""
    from collections import deque

    queue = deque([tree.root_loc()])
    dim = tree.dim
    while queue:
        loc = queue.popleft()
        if not tree.exists(loc):
            continue
        yield loc
        if not tree.is_leaf(loc):
            queue.extend(morton.children_of(loc, dim))


def foreach_leaf(tree: AdaptiveTree, fn: Callable[[int], None]) -> int:
    """Apply ``fn`` to every leaf in Z order; returns the leaf count."""
    n = 0
    for loc in leaves_zorder(tree):
        fn(loc)
        n += 1
    return n
