"""Leaf-neighbor resolution on adaptive trees.

Same-level neighbor *codes* come from Morton arithmetic
(:func:`repro.octree.morton.neighbor_of`); resolving them against a concrete
tree — where the neighbor may be coarser, same level, or refined — is what
this module does.  This is the pointer-equivalent of Gerris'
``ftt_cell_neighbor()``.
"""

from __future__ import annotations

from typing import Iterator, List, Optional, Tuple

from repro.octree import morton
from repro.octree.store import AdaptiveTree


def leaf_neighbor(tree: AdaptiveTree, loc: int, axis: int,
                  direction: int) -> Optional[int]:
    """The equal-or-coarser leaf sharing the face of ``loc`` on that side.

    Returns None at the domain boundary.  If the true neighbor region is
    *finer* than ``loc`` this returns the equal-level ancestor of those finer
    leaves (a non-leaf); callers that need the finer leaves use
    :func:`finer_face_neighbors`.
    """
    code = morton.neighbor_of(loc, tree.dim, axis, direction)
    if code is None:
        return None
    # Walk up until we hit an octant that exists.
    while not tree.exists(code):
        if code <= 1:
            return None
        code = morton.parent_of(code, tree.dim)
    return code


def finer_face_neighbors(tree: AdaptiveTree, loc: int, axis: int,
                         direction: int) -> List[int]:
    """All leaves finer than ``loc`` touching its face on that side."""
    code = morton.neighbor_of(loc, tree.dim, axis, direction)
    if code is None or not tree.exists(code):
        return []
    out: List[int] = []
    # The children touching the shared face have child-index bit `axis`
    # opposite to `direction`.
    face_bit = 0 if direction > 0 else 1
    stack = [code]
    while stack:
        c = stack.pop()
        if tree.is_leaf(c):
            out.append(c)
        else:
            for idx in range(morton.fanout(tree.dim)):
                if (idx >> axis) & 1 == face_bit:
                    stack.append(morton.child_of(c, tree.dim, idx))
    return out


def face_neighbor_leaves(tree: AdaptiveTree, loc: int) -> Iterator[Tuple[int, int, int]]:
    """Yield ``(neighbor_leaf, axis, direction)`` for every face of ``loc``.

    When the neighbor side is finer, each finer leaf is yielded; when equal
    or coarser, the single covering leaf is yielded.
    """
    for axis in range(tree.dim):
        for direction in (-1, 1):
            code = morton.neighbor_of(loc, tree.dim, axis, direction)
            if code is None:
                continue
            if tree.exists(code) and not tree.is_leaf(code):
                for leaf in finer_face_neighbors(tree, loc, axis, direction):
                    yield leaf, axis, direction
            else:
                n = leaf_neighbor(tree, loc, axis, direction)
                if n is not None and tree.is_leaf(n):
                    yield n, axis, direction


def neighbor_level_gap(tree: AdaptiveTree, loc: int) -> int:
    """Largest |level(loc) - level(neighbor leaf)| over the faces of ``loc``."""
    own = morton.level_of(loc, tree.dim)
    worst = 0
    for leaf, _axis, _direction in face_neighbor_leaves(tree, loc):
        worst = max(worst, abs(own - morton.level_of(leaf, tree.dim)))
    return worst
