"""Locational codes: level-prefixed Morton (Z-order) keys.

An octant's *locational code* encodes both its level and its position in one
integer, the standard trick from the linear-octree literature (Sundar et al.;
the Etree Z-values).  The root is ``1``; descending to child ``c`` appends
``dim`` bits: ``loc' = (loc << dim) | c``.  The leading 1 acts as a sentinel
so codes are unique across levels:

* level of a code: ``(bit_length - 1) // dim``
* parent: ``loc >> dim``
* child index within its parent: ``loc & (2**dim - 1)``

Child index bit ``k`` is the coordinate bit on axis ``k`` (bit 0 = x,
bit 1 = y, bit 2 = z), so at level ``L`` the code below the sentinel is the
interleave of ``dim`` coordinates in ``[0, 2**L)``.
"""

from __future__ import annotations

from functools import lru_cache
from typing import Iterator, List, Optional, Sequence, Tuple

#: Locational code of the root octant.
ROOT_LOC = 1


def fanout(dim: int) -> int:
    """Children per node: 4 for quadtrees, 8 for octrees."""
    if dim not in (2, 3):
        raise ValueError(f"only dim 2 and 3 are supported, got {dim}")
    return 1 << dim


def level_of(loc: int, dim: int) -> int:
    """Tree level encoded in a locational code (root = 0)."""
    if loc < 1:
        raise ValueError(f"invalid locational code {loc}")
    return (loc.bit_length() - 1) // dim


def parent_of(loc: int, dim: int) -> int:
    """Locational code of the parent (root has no parent)."""
    if loc <= 1:
        raise ValueError("root has no parent")
    return loc >> dim

def child_of(loc: int, dim: int, child_index: int) -> int:
    """Locational code of child ``child_index`` of ``loc``."""
    if not 0 <= child_index < fanout(dim):
        raise ValueError(f"child index {child_index} out of range for dim {dim}")
    return (loc << dim) | child_index


def children_of(loc: int, dim: int) -> List[int]:
    """All ``2**dim`` child codes, in Morton order."""
    return [(loc << dim) | c for c in range(fanout(dim))]


def child_index_of(loc: int, dim: int) -> int:
    """Which child of its parent this octant is."""
    if loc <= 1:
        raise ValueError("root is not a child")
    return loc & (fanout(dim) - 1)


def ancestor_at(loc: int, dim: int, level: int) -> int:
    """The ancestor of ``loc`` at the given (shallower or equal) level."""
    own = level_of(loc, dim)
    if level > own or level < 0:
        raise ValueError(f"no ancestor of level-{own} code at level {level}")
    return loc >> (dim * (own - level))


def is_ancestor(a: int, b: int, dim: int) -> bool:
    """True when ``a`` is a strict ancestor of ``b``."""
    la, lb = level_of(a, dim), level_of(b, dim)
    return la < lb and (b >> (dim * (lb - la))) == a


@lru_cache(maxsize=1 << 17)
def coords_of(loc: int, dim: int) -> Tuple[int, ...]:
    """Integer coordinates of the octant's min corner at its own level."""
    level = level_of(loc, dim)
    bits = loc - (1 << (dim * level))
    coords = [0] * dim
    for i in range(level):
        for axis in range(dim):
            coords[axis] |= ((bits >> (dim * i + axis)) & 1) << i
    return tuple(coords)


def loc_from_coords(level: int, coords: Sequence[int], dim: int) -> int:
    """Inverse of :func:`coords_of`."""
    if len(coords) != dim:
        raise ValueError(f"expected {dim} coordinates, got {len(coords)}")
    side = 1 << level
    bits = 0
    for axis, c in enumerate(coords):
        if not 0 <= c < side:
            raise ValueError(f"coordinate {c} out of [0, {side}) at level {level}")
        for i in range(level):
            bits |= ((c >> i) & 1) << (dim * i + axis)
    return (1 << (dim * level)) | bits


@lru_cache(maxsize=1 << 17)
def neighbor_of(loc: int, dim: int, axis: int, direction: int) -> Optional[int]:
    """Same-level face neighbor along ``axis`` (+1/-1); None at the boundary."""
    if direction not in (-1, 1):
        raise ValueError("direction must be +1 or -1")
    if not 0 <= axis < dim:
        raise ValueError(f"axis {axis} out of range for dim {dim}")
    level = level_of(loc, dim)
    coords = list(coords_of(loc, dim))
    coords[axis] += direction
    if not 0 <= coords[axis] < (1 << level):
        return None
    return loc_from_coords(level, coords, dim)


def neighbors_all(loc: int, dim: int) -> List[int]:
    """All same-level face/edge/corner neighbors (up to 8 in 2-D, 26 in 3-D).

    This is the search set §5.4 blames for the out-of-core balance cost:
    a linear octree "needs to search all its 26 neighbors".
    """
    level = level_of(loc, dim)
    base = coords_of(loc, dim)
    side = 1 << level
    out = []
    deltas: Iterator[Tuple[int, ...]]
    if dim == 2:
        deltas = ((dx, dy) for dx in (-1, 0, 1) for dy in (-1, 0, 1))
    else:
        deltas = (
            (dx, dy, dz)
            for dx in (-1, 0, 1)
            for dy in (-1, 0, 1)
            for dz in (-1, 0, 1)
        )
    for delta in deltas:
        if all(d == 0 for d in delta):
            continue
        coords = tuple(b + d for b, d in zip(base, delta))
        if all(0 <= c < side for c in coords):
            out.append(loc_from_coords(level, coords, dim))
    return out


def cell_bounds(loc: int, dim: int) -> Tuple[Tuple[float, ...], Tuple[float, ...]]:
    """(min, max) corners of the octant in the unit cube."""
    level = level_of(loc, dim)
    h = 1.0 / (1 << level)
    mins = tuple(c * h for c in coords_of(loc, dim))
    return mins, tuple(m + h for m in mins)


def cell_center(loc: int, dim: int) -> Tuple[float, ...]:
    """Centroid of the octant in the unit cube."""
    lo, hi = cell_bounds(loc, dim)
    return tuple((a + b) / 2.0 for a, b in zip(lo, hi))


def cell_size(loc: int, dim: int) -> float:
    """Edge length of the octant in the unit cube."""
    return 1.0 / (1 << level_of(loc, dim))


@lru_cache(maxsize=1 << 17)
def zorder_key(loc: int, dim: int, max_level: int) -> int:
    """Total order for linear octrees: depth-first (Z-curve) position.

    Codes are left-aligned to ``max_level`` so descendants sort immediately
    after (never before) their ancestors; ties between an ancestor and its
    first descendant are broken by level, ancestors first.  This is the key
    Etree stores in its B-tree.
    """
    level = level_of(loc, dim)
    if level > max_level:
        raise ValueError(f"code level {level} exceeds max_level {max_level}")
    aligned = (loc - (1 << (dim * level))) << (dim * (max_level - level))
    return (aligned << 6) | level  # 6 bits of level break the tie


def containing_leaf_path(loc_root: int, target_coords: Sequence[int],
                         target_level: int, dim: int) -> Iterator[int]:
    """Yield the codes on the path from ``loc_root`` toward the point.

    The point is the min corner of the (virtual) cell at ``target_level``
    with ``target_coords``.  Used by point location in trees.
    """
    loc = loc_root
    yield loc
    root_level = level_of(loc_root, dim)
    for lvl in range(root_level, target_level):
        shift = target_level - lvl - 1
        idx = 0
        for axis in range(dim):
            idx |= ((target_coords[axis] >> shift) & 1) << axis
        loc = child_of(loc, dim, idx)
        yield loc
