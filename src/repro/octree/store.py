"""The tree protocol shared by all three octree implementations.

Algorithms (balancing, mesh extraction, the solver, the parallel driver) are
written against :class:`AdaptiveTree` and key octants by *locational code*,
never by memory handle.  This is what lets the in-core baseline, the
out-of-core Etree baseline and PM-octree swap freely under the same
workload: the physical placement of an octant (DRAM object, NVBM record, a
page on a block device, a COW-shared version) is each implementation's
private business.
"""

from __future__ import annotations

from typing import Iterator, List, Protocol, Tuple, runtime_checkable

Payload = Tuple[float, float, float, float]

#: Payload of a freshly-created octant.
ZERO_PAYLOAD: Payload = (0.0, 0.0, 0.0, 0.0)


@runtime_checkable
class AdaptiveTree(Protocol):
    """Minimal surface the meshing/solving routines require."""

    dim: int

    def root_loc(self) -> int:
        """Locational code of the root octant."""
        ...

    def exists(self, loc: int) -> bool:
        """True when an octant with this code is present (and not deleted)."""
        ...

    def is_leaf(self, loc: int) -> bool:
        """True when the octant exists and has no children."""
        ...

    def leaves(self) -> Iterator[int]:
        """All leaf codes (order unspecified)."""
        ...

    def num_octants(self) -> int:
        """Total live octants, internal nodes included."""
        ...

    def get_payload(self, loc: int) -> Payload:
        """Read the solver payload of an octant."""
        ...

    def set_payload(self, loc: int, payload: Payload) -> None:
        """Write the solver payload of an octant."""
        ...

    def refine(self, loc: int) -> List[int]:
        """Split a leaf into ``2**dim`` children; returns the child codes.

        Children inherit the parent's payload (Gerris-style prolongation is
        the solver's job, done afterwards through ``set_payload``).
        """
        ...

    def coarsen(self, loc: int) -> None:
        """Delete the (leaf) children of ``loc``, making it a leaf again."""
        ...


def leaf_levels(tree: AdaptiveTree) -> List[int]:
    """Levels of all leaves — handy for tests and balance diagnostics."""
    from repro.octree import morton

    return [morton.level_of(loc, tree.dim) for loc in tree.leaves()]


def tree_depth(tree: AdaptiveTree) -> int:
    """Depth of the deepest leaf (used by eq. (1) for L_sub)."""
    levels = leaf_levels(tree)
    return max(levels) if levels else 0


def validate_tree(tree: AdaptiveTree) -> None:
    """Structural invariant check used across the test suite.

    * every leaf exists;
    * every non-root leaf's ancestors exist and are not leaves;
    * leaves tile the domain exactly (their measures sum to the root cell's).
    """
    from repro.errors import ConsistencyError
    from repro.octree import morton

    dim = tree.dim
    total = 0.0
    count = 0
    for loc in tree.leaves():
        count += 1
        if not tree.exists(loc):
            raise ConsistencyError(f"leaf {loc:#x} does not exist")
        if not tree.is_leaf(loc):
            raise ConsistencyError(f"{loc:#x} reported as leaf but has children")
        level = morton.level_of(loc, dim)
        total += (0.5 ** level) ** dim
        walk = loc
        while walk != tree.root_loc():
            walk = morton.parent_of(walk, dim)
            if not tree.exists(walk):
                raise ConsistencyError(f"ancestor {walk:#x} of leaf {loc:#x} missing")
            if tree.is_leaf(walk):
                raise ConsistencyError(f"ancestor {walk:#x} of leaf {loc:#x} is a leaf")
    if count == 0:
        raise ConsistencyError("tree has no leaves")
    if abs(total - 1.0) > 1e-9:
        raise ConsistencyError(f"leaves tile {total} of the domain, expected 1.0")
