"""2:1 balance enforcement (the *Balance* meshing routine, §2).

Two leaves sharing a face may differ by at most one level.  Balancing is the
classic ripple algorithm: refining an octant can un-balance its own
neighbors, so newly-created leaves are pushed back onto the work queue until
a fixed point is reached.
"""

from __future__ import annotations

from collections import deque
from typing import Iterable, Optional

from repro.octree import morton
from repro.octree.store import AdaptiveTree


def is_balanced(tree: AdaptiveTree) -> bool:
    """Check the 2:1 face-balance condition over all leaves."""
    return find_violation(tree) is None


def find_violation(tree: AdaptiveTree) -> Optional[tuple]:
    """Return one ``(coarse_leaf, fine_leaf)`` violating pair, or None."""
    from repro.octree.neighbors import face_neighbor_leaves

    for loc in tree.leaves():
        own = morton.level_of(loc, tree.dim)
        for leaf, _axis, _direction in face_neighbor_leaves(tree, loc):
            if morton.level_of(leaf, tree.dim) - own > 1:
                return loc, leaf
    return None


def balance_tree(tree: AdaptiveTree, max_level: Optional[int] = None,
                 seeds: Optional[Iterable[int]] = None) -> int:
    """Refine leaves until the tree is 2:1 balanced; returns refinement count.

    ``seeds`` narrows the initial work queue to leaves whose neighborhood may
    have changed (incremental balance after a refinement batch); by default
    every leaf is examined.
    """
    dim = tree.dim
    queue = deque(seeds if seeds is not None else tree.leaves())
    refined = 0
    while queue:
        loc = queue.popleft()
        if not tree.exists(loc) or not tree.is_leaf(loc):
            continue  # stale entry: got refined while queued
        level = morton.level_of(loc, dim)
        # A leaf at `level` forces every face-adjacent region to be refined
        # to at least `level - 1`.
        if level <= 1:
            continue
        for axis in range(dim):
            for direction in (-1, 1):
                code = morton.neighbor_of(loc, dim, axis, direction)
                if code is None:
                    continue
                # Find the existing ancestor covering this neighbor code.
                anc = code
                while not tree.exists(anc):
                    anc = morton.parent_of(anc, dim)
                if not tree.is_leaf(anc):
                    continue  # neighbor region is at least as fine
                anc_level = morton.level_of(anc, dim)
                while anc_level < level - 1:
                    if max_level is not None and anc_level >= max_level:
                        break
                    children = tree.refine(anc)
                    refined += 1
                    # Each new child may in turn violate 2:1 with *its*
                    # neighbors: ripple.
                    queue.extend(children)
                    anc = morton.ancestor_at(code, dim, anc_level + 1)
                    anc_level += 1
    return refined
