"""Pointer-based ("multi-threaded") octree over a memory arena.

This is the ephemeral in-core data structure Gerris uses (§2): every octant
holds parent and child pointers, updates mutate in place, and nothing
survives a crash.  It doubles as the building block of PM-octree's C0 tree.

Ground truth lives in the arena's packed records — every structural change
is a record read-modify-write that gets charged to the simulated clock.  A
*volatile* code→handle index accelerates lookup; it can always be rebuilt
from the records (:meth:`PointerOctree.rebuild_index`), which is exactly
what recovery does.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Set

from repro.errors import ConsistencyError, ReproError
from repro.nvbm.arena import MemoryArena
from repro.nvbm.pointers import NULL_HANDLE
from repro.nvbm.records import OctantRecord
from repro.octree import morton
from repro.octree.store import Payload, ZERO_PAYLOAD


class PointerOctree:
    """A mutable octree whose octants are records in one arena."""

    def __init__(self, arena: MemoryArena, dim: int = 2,
                 root_payload: Payload = ZERO_PAYLOAD):
        if dim not in (2, 3):
            raise ValueError(f"only dim 2 and 3 supported, got {dim}")
        self.arena = arena
        self.dim = dim
        root = OctantRecord(loc=morton.ROOT_LOC, level=0, payload=root_payload)
        self._root_handle = arena.new_octant(root)
        self._index: Dict[int, int] = {morton.ROOT_LOC: self._root_handle}
        self._leaf_set: Set[int] = {morton.ROOT_LOC}

    # -- protocol ------------------------------------------------------------

    def root_loc(self) -> int:
        return morton.ROOT_LOC

    def exists(self, loc: int) -> bool:
        return loc in self._index

    def is_leaf(self, loc: int) -> bool:
        return loc in self._leaf_set

    def leaves(self) -> Iterator[int]:
        return iter(list(self._leaf_set))

    def num_octants(self) -> int:
        return len(self._index)

    def num_leaves(self) -> int:
        return len(self._leaf_set)

    def handle_of(self, loc: int) -> int:
        try:
            return self._index[loc]
        except KeyError:
            raise ReproError(f"octant {loc:#x} not in tree") from None

    def get_payload(self, loc: int) -> Payload:
        return self.arena.read_payload(self.handle_of(loc))

    def set_payload(self, loc: int, payload: Payload) -> None:
        self.arena.write_payload(self.handle_of(loc), tuple(payload))

    def get_record(self, loc: int) -> OctantRecord:
        """Full record view (tests and GC use this; solvers use payloads)."""
        return self.arena.read_octant(self.handle_of(loc))

    def refine(self, loc: int) -> List[int]:
        """Split a leaf into its ``2**dim`` children (in-place pointer update)."""
        if loc not in self._leaf_set:
            raise ReproError(f"cannot refine non-leaf {loc:#x}")
        handle = self._index[loc]
        rec = self.arena.read_octant(handle)
        child_locs = morton.children_of(loc, self.dim)
        for i, cloc in enumerate(child_locs):
            child = OctantRecord(
                loc=cloc,
                level=rec.level + 1,
                payload=tuple(rec.payload),
                parent=handle,
            )
            ch = self.arena.new_octant(child)
            rec.children[i] = ch
            self._index[cloc] = ch
            self._leaf_set.add(cloc)
        rec.set_leaf(False)
        self.arena.write_octant(handle, rec)
        self._leaf_set.discard(loc)
        return child_locs

    def coarsen(self, loc: int) -> None:
        """Remove the leaf children of ``loc``; it becomes a leaf again."""
        if loc in self._leaf_set:
            raise ReproError(f"cannot coarsen a leaf {loc:#x}")
        handle = self._index[loc]
        rec = self.arena.read_octant(handle)
        child_locs = morton.children_of(loc, self.dim)
        for cloc in child_locs:
            if cloc not in self._leaf_set:
                raise ReproError(
                    f"cannot coarsen {loc:#x}: child {cloc:#x} is not a leaf"
                )
        for i, cloc in enumerate(child_locs):
            self.arena.free(self._index.pop(cloc))
            self._leaf_set.discard(cloc)
            rec.children[i] = NULL_HANDLE
        rec.set_leaf(True)
        self.arena.write_octant(handle, rec)
        self._leaf_set.add(loc)

    # -- construction helpers --------------------------------------------------

    def refine_uniform(self, level: int) -> None:
        """Refine every leaf until all leaves sit at ``level`` (Construct)."""
        frontier = [loc for loc in self.leaves()
                    if morton.level_of(loc, self.dim) < level]
        while frontier:
            nxt: List[int] = []
            for loc in frontier:
                for cloc in self.refine(loc):
                    if morton.level_of(cloc, self.dim) < level:
                        nxt.append(cloc)
            frontier = nxt

    def find_leaf_at(self, point) -> int:
        """Leaf containing a point of the unit cube (point location)."""
        if len(point) != self.dim:
            raise ValueError(f"point must have {self.dim} coordinates")
        loc = morton.ROOT_LOC
        while loc not in self._leaf_set:
            level = morton.level_of(loc, self.dim)
            idx = 0
            for axis in range(self.dim):
                mid = (2 * morton.coords_of(loc, self.dim)[axis] + 1) / (1 << (level + 1))
                if point[axis] >= mid:
                    idx |= 1 << axis
            loc = morton.child_of(loc, self.dim, idx)
        return loc

    # -- recovery / validation ---------------------------------------------------

    def rebuild_index(self, root_handle: Optional[int] = None) -> None:
        """Rebuild the volatile index from records, starting at the root.

        ``root_handle`` lets recovery point the tree at a different record
        (e.g. the persistent V_{i-1} root after a crash).
        """
        if root_handle is not None:
            self._root_handle = root_handle
        self._index.clear()
        self._leaf_set.clear()
        stack = [self._root_handle]
        while stack:
            handle = stack.pop()
            rec = self.arena.read_octant(handle)
            if rec.is_deleted:
                continue
            self._index[rec.loc] = handle
            if rec.is_leaf:
                self._leaf_set.add(rec.loc)
            else:
                stack.extend(rec.live_children())

    def check_record_consistency(self) -> None:
        """Verify the volatile index matches the packed records."""
        for loc, handle in self._index.items():
            rec = self.arena.read_octant(handle)
            if rec.loc != loc:
                raise ConsistencyError(
                    f"index maps {loc:#x} to a record with loc {rec.loc:#x}"
                )
            if rec.is_leaf != (loc in self._leaf_set):
                raise ConsistencyError(f"leaf flag mismatch at {loc:#x}")
            if rec.level != morton.level_of(loc, self.dim):
                raise ConsistencyError(f"level mismatch at {loc:#x}")
