"""Criterion-driven refinement/coarsening (the *Refine & Coarsen* routine).

A refinement *criterion* is a callable ``(loc, payload) -> Action`` — this
is precisely the "feature function" the paper's feature-directed sampling
pre-executes (§3.3), so the same object is shared between the solver and
PM-octree's layout policy.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Callable

from repro.octree import morton
from repro.octree.balance import balance_tree
from repro.octree.store import AdaptiveTree, Payload


class Action(Enum):
    """What the criterion wants done with a leaf."""

    KEEP = 0
    REFINE = 1
    COARSEN = 2


Criterion = Callable[[int, Payload], Action]


@dataclass
class RefinementResult:
    """Counts from one adaptation sweep."""

    refined: int = 0
    coarsened: int = 0
    balance_refined: int = 0

    @property
    def changed(self) -> bool:
        return bool(self.refined or self.coarsened or self.balance_refined)


class RefinementEngine:
    """Applies a criterion over all leaves, then restores 2:1 balance.

    ``min_level``/``max_level`` clamp the adaptation; coarsening happens only
    when *all* siblings vote COARSEN (the standard conservative rule, which
    Gerris also uses).
    """

    def __init__(self, criterion: Criterion, min_level: int = 0,
                 max_level: int = 30, balance: bool = True):
        if min_level > max_level:
            raise ValueError("min_level must not exceed max_level")
        self.criterion = criterion
        self.min_level = min_level
        self.max_level = max_level
        self.balance = balance

    def adapt(self, tree: AdaptiveTree, rounds: int = 1) -> RefinementResult:
        """Run up to ``rounds`` sweeps; stops early once nothing changes."""
        total = RefinementResult()
        for _ in range(rounds):
            res = self._sweep(tree)
            total.refined += res.refined
            total.coarsened += res.coarsened
            total.balance_refined += res.balance_refined
            if not res.changed:
                break
        return total

    def _sweep(self, tree: AdaptiveTree) -> RefinementResult:
        dim = tree.dim
        res = RefinementResult()
        to_refine = []
        votes = {}  # parent loc -> #children voting COARSEN
        new_leaves = []
        for loc in list(tree.leaves()):
            level = morton.level_of(loc, dim)
            action = self.criterion(loc, tree.get_payload(loc))
            if action is Action.REFINE and level < self.max_level:
                to_refine.append(loc)
            elif action is Action.COARSEN and level > self.min_level:
                parent = morton.parent_of(loc, dim)
                votes[parent] = votes.get(parent, 0) + 1
        for loc in to_refine:
            if tree.is_leaf(loc):  # may have been consumed by coarsening
                new_leaves.extend(tree.refine(loc))
                res.refined += 1
        fanout = morton.fanout(dim)
        for parent, n in votes.items():
            # Re-check children are all still leaves (none refined above).
            if n == fanout and tree.exists(parent) \
                    and not tree.is_leaf(parent) \
                    and all(tree.is_leaf(c)
                            for c in morton.children_of(parent, dim)):
                tree.coarsen(parent)
                res.coarsened += 1
                new_leaves.append(parent)
        if self.balance and (res.refined or res.coarsened):
            res.balance_refined = balance_tree(
                tree, max_level=self.max_level,
            )
        return res


def refine_where(tree: AdaptiveTree, predicate: Callable[[int], bool],
                 max_level: int) -> int:
    """Refine every leaf satisfying ``predicate`` until none qualify below
    ``max_level``; returns the number of refinements."""
    n = 0
    frontier = [loc for loc in tree.leaves() if predicate(loc)]
    while frontier:
        nxt = []
        for loc in frontier:
            if not tree.is_leaf(loc):
                continue
            if morton.level_of(loc, tree.dim) >= max_level:
                continue
            for child in tree.refine(loc):
                if predicate(child):
                    nxt.append(child)
            n += 1
        frontier = nxt
    return n
