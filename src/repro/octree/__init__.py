"""Octree substrate: locational codes, tree structures, and meshing routines.

Everything here is technology-neutral: the algorithms (refinement, 2:1
balancing, neighbor finding, mesh extraction) are written against the
:class:`~repro.octree.store.AdaptiveTree` protocol keyed by *locational
codes*, so the same code drives the in-core baseline, the Etree baseline and
PM-octree — mirroring the paper's point that "all existing in-core
algorithms ... can be easily adapted to the new system with few changes"
(§3.2).

The library supports ``dim = 2`` (quadtree, used by most tests and the
figures' 2-D illustrations) and ``dim = 3`` (octree).
"""

from repro.octree import morton
from repro.octree.store import AdaptiveTree
from repro.octree.tree import PointerOctree
from repro.octree.linear import LinearOctree
from repro.octree.balance import balance_tree, is_balanced
from repro.octree.refine import Action, RefinementEngine, RefinementResult
from repro.octree.mesh import ExtractedMesh, extract_mesh

__all__ = [
    "Action",
    "AdaptiveTree",
    "ExtractedMesh",
    "LinearOctree",
    "PointerOctree",
    "RefinementEngine",
    "RefinementResult",
    "balance_tree",
    "extract_mesh",
    "is_balanced",
    "morton",
]
