"""Legacy-VTK export of extracted meshes (the *Extract* routine's consumer).

The paper extracts meshes "for data analytics and visualization" (§2); this
module writes an extracted mesh plus its cell fields as an ASCII legacy VTK
unstructured grid, loadable by ParaView/VisIt — quads (VTK type 9) in 2-D,
hexahedra (type 12) in 3-D.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.octree.mesh import ExtractedMesh
from repro.octree.store import AdaptiveTree

#: VTK cell type ids.
VTK_QUAD = 9
VTK_HEXAHEDRON = 12

#: Corner orderings.  ``extract_mesh`` emits corners with itertools.product
#: over (x, y[, z]) offsets — the LAST axis varies fastest, so corner index
#: = x*2^(d-1) + ... + last_axis*1.  VTK wants counter-clockwise quads and
#: bottom-then-top CCW hexahedra.
_QUAD_ORDER = (0, 2, 3, 1)            # (0,0) (1,0) (1,1) (0,1)
_HEX_ORDER = (0, 4, 6, 2, 1, 5, 7, 3)  # z=0 face CCW, then z=1 face CCW


def mesh_to_vtk(mesh: ExtractedMesh,
                cell_fields: Optional[Dict[str, Sequence[float]]] = None,
                title: str = "pm-octree mesh") -> str:
    """Render an extracted mesh as a legacy-VTK unstructured grid string.

    ``cell_fields`` maps field names to per-element values, in the order of
    ``mesh.elements``.
    """
    if "\n" in title:
        raise ValueError("VTK titles are single-line")
    cell_fields = cell_fields or {}
    for name, values in cell_fields.items():
        if len(values) != mesh.num_elements:
            raise ValueError(
                f"field {name!r} has {len(values)} values for "
                f"{mesh.num_elements} elements"
            )

    dim = mesh.dim
    scale = 1 << mesh.max_level
    # vertex ids are dense [0, n) by construction; emit in id order
    by_id = sorted(mesh.vertex_ids.items(), key=lambda kv: kv[1])
    lines: List[str] = [
        "# vtk DataFile Version 3.0",
        title,
        "ASCII",
        "DATASET UNSTRUCTURED_GRID",
        f"POINTS {mesh.num_vertices} double",
    ]
    for coord, _vid in by_id:
        xyz = [c / scale for c in coord] + [0.0] * (3 - dim)
        lines.append(" ".join(f"{v:.10g}" for v in xyz))

    order = _QUAD_ORDER if dim == 2 else _HEX_ORDER
    npts = len(order)
    lines.append(f"CELLS {mesh.num_elements} {mesh.num_elements * (npts + 1)}")
    for _loc, corners in mesh.elements:
        lines.append(
            f"{npts} " + " ".join(str(corners[i]) for i in order)
        )
    lines.append(f"CELL_TYPES {mesh.num_elements}")
    ctype = VTK_QUAD if dim == 2 else VTK_HEXAHEDRON
    lines.extend([str(ctype)] * mesh.num_elements)

    if cell_fields:
        lines.append(f"CELL_DATA {mesh.num_elements}")
        for name, values in cell_fields.items():
            lines.append(f"SCALARS {name} double 1")
            lines.append("LOOKUP_TABLE default")
            lines.extend(f"{float(v):.10g}" for v in values)

    # hanging-vertex marker helps inspect non-conforming interfaces
    lines.append(f"POINT_DATA {mesh.num_vertices}")
    lines.append("SCALARS dangling int 1")
    lines.append("LOOKUP_TABLE default")
    lines.extend(
        "1" if vid in mesh.dangling else "0" for _c, vid in by_id
    )
    return "\n".join(lines) + "\n"


def tree_to_vtk(tree: AdaptiveTree, payload_slot: Optional[int] = 0,
                field_name: str = "field",
                title: str = "pm-octree mesh") -> str:
    """Extract ``tree``'s mesh and render it with one payload field."""
    from repro.octree.mesh import extract_mesh

    mesh = extract_mesh(tree)
    fields = {}
    if payload_slot is not None:
        fields[field_name] = [
            tree.get_payload(loc)[payload_slot] for loc, _ in mesh.elements
        ]
    return mesh_to_vtk(mesh, fields, title=title)
