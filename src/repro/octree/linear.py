"""Linear (pointer-free) octrees.

A linear octree stores only its leaves, as a Z-order-sorted array of
locational codes — the representation of Sundar et al.'s bottom-up
construction and of the Etree library's key space (§2).  It is the exchange
format of this library: partitioning ships contiguous Z-order ranges between
ranks, and the Etree baseline persists exactly this array as pages.
"""

from __future__ import annotations

from typing import Iterator, List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import ConsistencyError
from repro.octree import morton
from repro.octree.store import AdaptiveTree, Payload


def _fill_interval(start: int, end: int, dim: int,
                   max_level: int) -> List[int]:
    """Cover ``[start, end)`` of the Z index space with the coarsest aligned
    octants: greedy largest block that both starts aligned and fits."""
    fanout_bits = dim
    out: List[int] = []
    p = start
    while p < end:
        # largest k with p aligned to F^k and p + F^k <= end
        k = 0
        while True:
            nk = k + 1
            width = 1 << (fanout_bits * nk)
            if nk > max_level or p % width != 0 or p + width > end:
                break
            k = nk
        width = 1 << (fanout_bits * k)
        level = max_level - k
        out.append((1 << (dim * level)) | (p >> (fanout_bits * k)))
        p += width
    return out


class LinearOctree:
    """Immutable-ish sorted array of leaf codes plus payload rows."""

    def __init__(self, dim: int, locs: Sequence[int],
                 payloads: Optional[np.ndarray] = None,
                 max_level: Optional[int] = None):
        from repro.solver import soa

        self.dim = dim
        locs = list(locs)
        loc_arr = np.asarray(locs, dtype=np.int64)
        levels = soa.levels_of_codes(loc_arr, dim)
        if max_level is None:
            max_level = int(levels.max()) if len(levels) else 0
        self.max_level = max_level
        keys = soa.zorder_keys(loc_arr, levels, dim, max_level)
        order = np.argsort(keys, kind="stable")
        self.keys = keys[order]
        self.locs = np.array(locs, dtype=np.uint64)[order]
        if payloads is None:
            payloads = np.zeros((len(locs), 4), dtype=np.float64)
        else:
            payloads = np.asarray(payloads, dtype=np.float64).reshape(len(locs), 4)
        self.payloads = payloads[order]

    def __len__(self) -> int:
        return len(self.locs)

    def __iter__(self) -> Iterator[int]:
        return iter(int(leaf) for leaf in self.locs)

    @classmethod
    def from_tree(cls, tree: AdaptiveTree) -> "LinearOctree":
        """Linearize an adaptive tree's leaves (payloads included)."""
        locs = list(tree.leaves())
        if not locs:
            payloads = np.zeros((0, 4))
        elif hasattr(tree, "batch_read_payloads"):
            # metered exactly like the per-leaf loop (see PMOctree)
            payloads = tree.batch_read_payloads(locs)
        else:
            payloads = np.array([tree.get_payload(leaf) for leaf in locs],
                                dtype=np.float64)
        return cls(tree.dim, locs, payloads)

    def index_of(self, loc: int) -> int:
        """Index of an exact leaf code, or -1."""
        if morton.level_of(loc, self.dim) > self.max_level:
            return -1  # deeper than anything stored
        key = morton.zorder_key(loc, self.dim, self.max_level)
        i = int(np.searchsorted(self.keys, np.uint64(key)))
        if i < len(self.keys) and self.keys[i] == key:
            return i
        return -1

    def contains(self, loc: int) -> bool:
        return self.index_of(loc) >= 0

    def payload_of(self, loc: int) -> Payload:
        i = self.index_of(loc)
        if i < 0:
            raise KeyError(f"leaf {loc:#x} not in linear octree")
        return tuple(self.payloads[i])

    def find_enclosing(self, loc: int) -> int:
        """The stored leaf equal to ``loc`` or an ancestor of it, or -1.

        This is the lookup a linear octree must do instead of following a
        pointer: binary-search the Z key, then verify ancestry.
        """
        query = loc
        if morton.level_of(loc, self.dim) > self.max_level:
            # Truncate to the stored resolution: the ancestor shares the
            # aligned Z prefix, so the search lands in the right place.
            query = morton.ancestor_at(loc, self.dim, self.max_level)
        key = morton.zorder_key(query, self.dim, self.max_level)
        i = int(np.searchsorted(self.keys, np.uint64(key), side="right")) - 1
        if i < 0:
            return -1
        cand = int(self.locs[i])
        if cand == loc or morton.is_ancestor(cand, loc, self.dim):
            return i
        return -1

    def validate_complete(self) -> None:
        """Check the leaves exactly tile the root domain, no overlap/gap."""
        total = 0.0
        prev_end = 0
        span = 1 << (self.dim * self.max_level)
        for loc in self.locs:
            loc = int(loc)
            level = morton.level_of(loc, self.dim)
            start = (loc - (1 << (self.dim * level))) << (self.dim * (self.max_level - level))
            width = 1 << (self.dim * (self.max_level - level))
            if start != prev_end:
                raise ConsistencyError(
                    f"gap or overlap before {loc:#x}: starts at {start}, "
                    f"expected {prev_end}"
                )
            prev_end = start + width
            total += (0.5 ** level) ** self.dim
        if prev_end != span or abs(total - 1.0) > 1e-9:
            raise ConsistencyError("leaves do not tile the unit domain")

    # -- partitioning support ------------------------------------------------

    def split_ranges(self, parts: int) -> List[Tuple[int, int]]:
        """Split into ``parts`` contiguous Z-order ranges of near-equal size.

        Returns ``[(start, end), ...)`` index ranges; some may be empty when
        there are fewer leaves than parts.
        """
        if parts <= 0:
            raise ValueError("parts must be positive")
        n = len(self)
        bounds = [round(i * n / parts) for i in range(parts + 1)]
        return [(bounds[i], bounds[i + 1]) for i in range(parts)]

    def slice(self, start: int, end: int) -> "LinearOctree":
        """Sub-array view as a new LinearOctree (already sorted)."""
        sub = LinearOctree.__new__(LinearOctree)
        sub.dim = self.dim
        sub.max_level = self.max_level
        sub.keys = self.keys[start:end]
        sub.locs = self.locs[start:end]
        sub.payloads = self.payloads[start:end]
        return sub

    def merged_with(self, other: "LinearOctree") -> "LinearOctree":
        """Union of two disjoint linear octrees (re-sorts)."""
        if other.dim != self.dim:
            raise ValueError("dimension mismatch")
        max_level = max(self.max_level, other.max_level)
        locs = [int(leaf) for leaf in self.locs] + [int(leaf) for leaf in other.locs]
        payloads = np.vstack([self.payloads, other.payloads]) if locs else None
        return LinearOctree(self.dim, locs, payloads, max_level=max_level)

    # -- bottom-up construction (Sundar et al., §2's related work) ------------

    @classmethod
    def complete(cls, dim: int, seeds: Sequence[int],
                 max_level: Optional[int] = None) -> "LinearOctree":
        """Minimal complete linear octree containing the given seed leaves.

        The bottom-up construction of Sundar, Sampath & Biros: sort the
        seeds along the Z curve, then fill each gap (and the two domain
        ends) with the coarsest aligned octants that fit.  The result tiles
        the unit domain, contains every seed, and is minimal — no filler
        sibling group could be replaced by its parent.

        Raises when the seeds overlap (one is an ancestor of another).
        """
        seeds = list(set(int(s) for s in seeds))
        if max_level is None:
            max_level = max(
                (morton.level_of(s, dim) for s in seeds), default=0
            )
        # sort along the curve (integer order is NOT Z order across levels)
        seeds.sort(key=lambda s: morton.zorder_key(s, dim, max_level))
        for a, b in zip(seeds, seeds[1:]):
            if morton.is_ancestor(a, b, dim) or morton.is_ancestor(b, a, dim):
                raise ConsistencyError(
                    f"seed {a:#x} overlaps seed {b:#x}"
                )
        span = 1 << (dim * max_level)

        def interval_of(loc: int) -> Tuple[int, int]:
            level = morton.level_of(loc, dim)
            width = 1 << (dim * (max_level - level))
            start = (loc - (1 << (dim * level))) << (dim * (max_level - level))
            return start, start + width

        out: List[int] = []
        cursor = 0
        for seed in seeds:
            start, end = interval_of(seed)
            if start < cursor:
                raise ConsistencyError(
                    f"seed {seed:#x} overlaps earlier seeds"
                )
            out.extend(_fill_interval(cursor, start, dim, max_level))
            out.append(seed)
            cursor = end
        out.extend(_fill_interval(cursor, span, dim, max_level))
        lin = cls(dim, out, max_level=max_level)
        return lin
