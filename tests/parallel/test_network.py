"""Network cost model tests."""


import pytest

from repro.config import GEMINI_SPEC, INFINIBAND_SPEC, NetworkSpec
from repro.parallel.network import Network


def test_p2p_latency_plus_bandwidth():
    net = Network(GEMINI_SPEC)
    t0 = net.p2p_ns(0)
    assert t0 == 0.0  # empty messages are free in the model
    t1 = net.p2p_ns(1)
    assert t1 >= GEMINI_SPEC.latency_us * 1e3
    big = net.p2p_ns(6_000_000_000)  # one second of bandwidth
    assert big == pytest.approx(1e9 + GEMINI_SPEC.latency_us * 1e3, rel=1e-6)


def test_p2p_monotone_in_size():
    net = Network(GEMINI_SPEC)
    sizes = [1, 100, 10_000, 1_000_000]
    times = [net.p2p_ns(s) for s in sizes]
    assert times == sorted(times)


def test_collective_log_depth():
    net = Network(GEMINI_SPEC)
    assert net.collective_ns(8, 1) == 0.0
    t2 = net.collective_ns(8, 2)
    t1024 = net.collective_ns(8, 1024)
    assert t1024 == pytest.approx(10 * t2)  # log2(1024) = 10 stages


def test_collective_rounds_up_ranks():
    net = Network(GEMINI_SPEC)
    # 5 ranks need ceil(log2 5) = 3 stages
    t5 = net.collective_ns(8, 5)
    t8 = net.collective_ns(8, 8)
    assert t5 == t8


def test_counters():
    net = Network(GEMINI_SPEC)
    net.p2p_ns(100)
    net.p2p_ns(200)
    net.collective_ns(8, 4)
    assert net.messages == 2 + 2  # two p2p + log2(4) stages
    assert net.bytes_moved == 100 + 200 + 2 * 8


def test_multi_ns_sums():
    net = Network(GEMINI_SPEC)
    total = net.multi_ns([100, 200, 300])
    net2 = Network(GEMINI_SPEC)
    assert total == pytest.approx(
        net2.p2p_ns(100) + net2.p2p_ns(200) + net2.p2p_ns(300)
    )


def test_barrier_is_one_small_collective():
    net = Network(GEMINI_SPEC)
    assert net.barrier_ns(16) == pytest.approx(
        Network(GEMINI_SPEC).collective_ns(8, 16)
    )


def test_infiniband_faster_latency():
    assert INFINIBAND_SPEC.transfer_ns(0) == 0.0
    assert INFINIBAND_SPEC.transfer_ns(8) < GEMINI_SPEC.transfer_ns(8)


def test_custom_spec():
    spec = NetworkSpec(name="toy", latency_us=10.0, bandwidth_gbps=1.0)
    assert spec.transfer_ns(1_000_000_000) == pytest.approx(1e9 + 1e4)
