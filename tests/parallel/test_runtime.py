"""Parallel runtime: backend wiring, scaling model, result accounting."""

import pytest

from repro.config import SolverConfig
from repro.octree.linear import LinearOctree
from repro.parallel.runtime import (
    Backend,
    RunConfig,
    _equal_cuts,
    _ownership_counts,
    run_parallel,
)

SOL = SolverConfig(dim=2, min_level=2, max_level=4, dt=0.01)


def _run(backend=Backend.PM_OCTREE, nranks=4, steps=4, **kw):
    return run_parallel(RunConfig(
        backend=backend, nranks=nranks, target_elements=1e6 * nranks,
        steps=steps, solver=SOL, **kw,
    ))


@pytest.mark.parametrize("backend", list(Backend))
def test_all_backends_run(backend):
    res = _run(backend=backend)
    assert res.makespan_s > 0
    assert res.scale_factor > 1
    assert res.actual_octants > 1
    assert len(res.step_reports) == 4
    assert "solve" in res.phase_seconds


def test_breakdown_percent_sums_to_100():
    res = _run()
    assert sum(res.breakdown_percent.values()) == pytest.approx(100.0)


def test_out_of_core_slowest_in_core_fastest():
    times = {b: _run(backend=b).makespan_s for b in Backend}
    assert times[Backend.IN_CORE] < times[Backend.PM_OCTREE]
    assert times[Backend.PM_OCTREE] < times[Backend.OUT_OF_CORE]


def test_more_dram_makes_pm_faster():
    slow = _run(dram_fraction=0.05, steps=6)
    fast = _run(dram_fraction=1.0, steps=6)
    assert fast.makespan_s < slow.makespan_s
    assert fast.nvbm_writes < slow.nvbm_writes


def test_dram_octants_overrides_fraction():
    res = _run(dram_octants=16, dram_fraction=1.0)
    assert res.config.dram_octants == 16


def test_weak_scaling_partition_share_grows():
    # Fig 7's growing-partition-share curve is a property of the paper's
    # eager equal-count scheme, so pin it (the default threshold-gated
    # incremental scheme exists to flatten exactly this curve).
    shares = []
    for P in (1, 8, 64):
        res = run_parallel(RunConfig(
            backend=Backend.PM_OCTREE, nranks=P, target_elements=1e6 * P,
            steps=4, solver=SOL,
            partition_threshold=None, partition_weighted=False,
        ))
        part = res.phase_seconds.get("partition", 0.0)
        shares.append(part / res.makespan_s)
    assert shares[0] == 0.0  # single rank never partitions
    assert shares[1] < shares[2]


def test_gated_partition_spends_no_more_than_eager():
    # The default work-weighted threshold-gated incremental scheme must
    # not spend a larger partition share than the eager paper scheme on
    # the same workload.
    def share(**kw):
        res = run_parallel(RunConfig(
            backend=Backend.PM_OCTREE, nranks=64, target_elements=64e6,
            steps=4, solver=SOL, **kw,
        ))
        return res.phase_seconds.get("partition", 0.0) / res.makespan_s

    gated = share()
    eager = share(partition_threshold=None, partition_weighted=False)
    assert gated <= eager


def test_strong_scaling_speedup():
    t_small = run_parallel(RunConfig(
        backend=Backend.PM_OCTREE, nranks=16, target_elements=32e6,
        steps=4, solver=SOL,
    )).makespan_s
    t_large = run_parallel(RunConfig(
        backend=Backend.PM_OCTREE, nranks=64, target_elements=32e6,
        steps=4, solver=SOL,
    )).makespan_s
    speedup = t_small / t_large
    assert 2.0 < speedup <= 4.5  # close to the ideal 4x


def test_migration_accounted():
    res = run_parallel(RunConfig(
        backend=Backend.PM_OCTREE, nranks=8, target_elements=8e6, steps=8,
        solver=SolverConfig(dim=2, min_level=2, max_level=5, dt=0.01),
    ))
    assert res.octants_migrated > 0


def test_pm_persists_every_step():
    res = _run(steps=5)
    assert res.persists == 5


def test_in_core_nvbm_writes_are_page_writes():
    res = _run(backend=Backend.IN_CORE, steps=10)
    assert res.nvbm_writes > 0  # a checkpoint landed at step 10


def test_equal_cuts_and_ownership():
    from repro.octree import morton

    # keys must share one max_level alignment for cuts to stay comparable
    locs = [morton.loc_from_coords(3, (x, y), 2) for x in range(8) for y in range(8)]
    lin = LinearOctree(2, locs, max_level=4)
    cuts = _equal_cuts(lin, 4)
    counts = _ownership_counts(lin, cuts)
    assert counts.sum() == 64
    assert max(counts) - min(counts) <= 1
    # adding a leaf in rank 0's region must increase rank 0's count
    extra = LinearOctree(2, locs + [morton.loc_from_coords(4, (0, 1), 2)],
                         max_level=4)
    counts2 = _ownership_counts(extra, cuts)
    assert counts2.sum() == 65
    assert counts2[0] == counts[0] + 1
