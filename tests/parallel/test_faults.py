"""Lossy-network model: seeded faults, partition windows, determinism."""

import pytest

from repro.config import GEMINI_SPEC
from repro.parallel.faults import (
    FaultyNetwork,
    LinkFaults,
    NetworkFaultPlan,
    PartitionWindow,
)
from repro.parallel.network import Network


def _net(plan):
    return FaultyNetwork(Network(GEMINI_SPEC), plan)


def test_link_faults_validated():
    with pytest.raises(ValueError):
        LinkFaults(drop=1.5)
    with pytest.raises(ValueError):
        LinkFaults(duplicate=-0.1)


def test_default_plan_is_perfect():
    net = _net(NetworkFaultPlan(seed=0))
    for _ in range(50):
        d = net.send(0, 1, 256)
        assert d.delivered and d.copies == 1 and d.reason == ""
    assert net.stats.dropped == 0


def test_drop_probability_respected():
    net = _net(NetworkFaultPlan(seed=1, default=LinkFaults(drop=0.5)))
    fates = [net.send(0, 1, 64).delivered for _ in range(400)]
    dropped = fates.count(False)
    assert 120 < dropped < 280  # ~200 expected
    assert net.stats.dropped == dropped
    # a dropped message still costs the sender wire time
    assert all(net.send(0, 1, 64).cost_ns > 0 for _ in range(5))


def test_duplicate_and_delay():
    plan = NetworkFaultPlan(
        seed=2, default=LinkFaults(duplicate=1.0, delay=1.0, delay_ns=5000.0))
    net = _net(plan)
    base = Network(GEMINI_SPEC).p2p_ns(64)
    d = net.send(0, 1, 64)
    assert d.delivered and d.copies == 2
    assert d.cost_ns == pytest.approx(base + 5000.0)
    assert net.stats.duplicated == 1 and net.stats.delayed == 1


def test_faults_are_per_link():
    plan = NetworkFaultPlan(seed=3, links={(0, 1): LinkFaults(drop=1.0)})
    net = _net(plan)
    assert not net.send(0, 1, 64).delivered  # data path always drops
    assert net.send(1, 0, 64).delivered      # ack path untouched


def test_same_seed_same_fate_sequence():
    def fates(seed):
        net = _net(NetworkFaultPlan(seed=seed, default=LinkFaults(drop=0.3)))
        return [net.send(0, 1, 64).delivered for _ in range(100)]

    assert fates(42) == fates(42)
    assert fates(42) != fates(43)


def test_partition_severs_only_across_groups():
    w = PartitionWindow(start_ns=100.0, end_ns=200.0,
                        groups=({0, 1}, {2, 3}))
    assert w.severs(0, 2, 150.0)
    assert not w.severs(0, 1, 150.0)       # same group
    assert not w.severs(0, 2, 250.0)       # window over
    assert not w.severs(0, 7, 150.0)       # 7 is in no group: unrestricted


def test_partitioned_send_costs_only_injection():
    plan = NetworkFaultPlan(seed=4)
    plan.start_partition([[0], [1]], now_ns=0.0)
    net = _net(plan)
    d = net.send(0, 1, 1 << 20)
    assert not d.delivered and d.reason == "partition"
    assert d.cost_ns < Network(GEMINI_SPEC).p2p_ns(1 << 20)


def test_heal_closes_window():
    plan = NetworkFaultPlan(seed=5)
    w = plan.start_partition([[0], [1]], now_ns=0.0)
    net = _net(plan)
    assert not net.send(0, 1, 64, now_ns=10.0).delivered
    w.heal(20.0)
    assert net.send(0, 1, 64, now_ns=20.0).delivered
    w.heal(5.0)  # idempotent; never reopens
    assert net.send(0, 1, 64, now_ns=20.0).delivered


def test_partition_groups_connected_components():
    plan = NetworkFaultPlan(seed=6)
    w = plan.start_partition([[0, 1], [2, 3]], now_ns=0.0)
    net = _net(plan)
    assert net.partition_groups([0, 1, 2, 3], 0.0) == [[0, 1], [2, 3]]
    assert net.partition_groups([0, 1], 0.0) == [[0, 1]]
    w.heal(50.0)
    assert net.partition_groups([0, 1, 2, 3], 60.0) == [[0, 1, 2, 3]]


def test_partition_groups_transitive():
    # 0-1 severed and 1-2 severed, but 0-2 connected: {0,2} bridges to
    # nothing else, 1 is alone — connectivity must be taken transitively.
    plan = NetworkFaultPlan(seed=7)
    plan.start_partition([[0], [1]], now_ns=0.0)
    plan.start_partition([[1], [2]], now_ns=0.0)
    net = _net(plan)
    assert net.partition_groups([0, 1, 2], 0.0) == [[0, 2], [1]]


def test_cost_model_delegation():
    net = _net(NetworkFaultPlan(seed=8))
    base = Network(GEMINI_SPEC)
    assert net.p2p_ns(4096) == base.p2p_ns(4096)
    assert net.barrier_ns(8) == base.barrier_ns(8)
    assert net.collective_ns(64, 8) == base.collective_ns(64, 8)
    assert net.spec is base.spec
