"""Heartbeat failure detection over faulty and perfect interconnects."""

import pytest

from repro.parallel.cluster import SimulatedCluster
from repro.parallel.detector import DetectorConfig, FailureDetector
from repro.parallel.faults import LinkFaults, NetworkFaultPlan


def test_config_validated():
    with pytest.raises(ValueError):
        DetectorConfig(heartbeat_interval_ns=0)
    with pytest.raises(ValueError):
        DetectorConfig(miss_threshold=0)


def test_live_ranks_not_suspected_on_perfect_network():
    cluster = SimulatedCluster(4)
    cfg = DetectorConfig()
    det = FailureDetector(cluster, cfg)
    now = 10 * cfg.heartbeat_interval_ns
    assert det.poll(now) == []


def test_dead_rank_suspected_after_threshold():
    cluster = SimulatedCluster(4, fault_plan=NetworkFaultPlan(seed=0))
    cfg = DetectorConfig()
    det = FailureDetector(cluster, cfg)
    det.poll(2 * cfg.heartbeat_interval_ns)
    cluster.ranks[2].alive = False
    # not yet: fewer than miss_threshold intervals elapsed since last beat
    assert not det.is_suspected(2, 3 * cfg.heartbeat_interval_ns)
    late = 10 * cfg.heartbeat_interval_ns
    assert det.poll(late) == [2]
    assert det.is_suspected(2, late)


def test_partitioned_rank_falsely_suspected():
    plan = NetworkFaultPlan(seed=1)
    cluster = SimulatedCluster(4, fault_plan=plan)
    cfg = DetectorConfig()
    det = FailureDetector(cluster, cfg, observer_rank=0)
    plan.start_partition([[0], [3]], now_ns=0.0)
    late = 10 * cfg.heartbeat_interval_ns
    # rank 3 is alive but unreachable: eventually-accurate, not perfect
    assert 3 in det.poll(late)
    assert cluster.ranks[3].alive


def test_observer_always_hears_itself():
    plan = NetworkFaultPlan(seed=2, default=LinkFaults(drop=1.0))
    cluster = SimulatedCluster(3, fault_plan=plan)
    cfg = DetectorConfig()
    det = FailureDetector(cluster, cfg, observer_rank=1)
    suspects = det.poll(20 * cfg.heartbeat_interval_ns)
    assert 1 not in suspects          # own beats never cross the network
    assert set(suspects) == {0, 2}    # everyone else drowned in drops


def test_poll_is_idempotent_for_fixed_now():
    cluster = SimulatedCluster(3, fault_plan=NetworkFaultPlan(seed=3))
    cfg = DetectorConfig()
    det = FailureDetector(cluster, cfg)
    now = 5 * cfg.heartbeat_interval_ns
    first = det.poll(now)
    heard = dict(det.last_heard)
    assert det.poll(now) == first
    assert det.last_heard == heard
