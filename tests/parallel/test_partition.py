"""SFC repartitioning tests."""

import numpy as np
import pytest

from repro.errors import PartitionError
from repro.octree import morton
from repro.octree.linear import LinearOctree
from repro.parallel.cluster import SimulatedCluster
from repro.parallel.partition import repartition


def _uniform_leaves(level, dim=2):
    side = 1 << level
    if dim == 2:
        return [
            morton.loc_from_coords(level, (x, y), dim)
            for x in range(side)
            for y in range(side)
        ]
    raise NotImplementedError


def _cluster(n):
    return SimulatedCluster(n, dram_octants_per_rank=4096,
                            nvbm_octants_per_rank=4096)


def test_skewed_to_balanced():
    cluster = _cluster(4)
    leaves = _uniform_leaves(3)  # 64 leaves
    # rank 0 owns everything initially
    pieces = [
        LinearOctree(2, leaves),
        LinearOctree(2, [], max_level=3),
        LinearOctree(2, [], max_level=3),
        LinearOctree(2, [], max_level=3),
    ]
    res = repartition(cluster.comm, pieces)
    sizes = [len(p) for p in res.pieces]
    assert sizes == [16, 16, 16, 16]
    assert res.octants_moved == 48  # three quarters shipped away
    assert res.balanced


def test_preserves_octant_set_and_payloads():
    cluster = _cluster(3)
    leaves = _uniform_leaves(2)  # 16 leaves
    payloads = np.arange(16 * 4, dtype=float).reshape(16, 4)
    pieces = [
        LinearOctree(2, leaves, payloads),
        LinearOctree(2, [], max_level=2),
        LinearOctree(2, [], max_level=2),
    ]
    before = {int(leaf): tuple(p) for leaf, p in zip(pieces[0].locs, pieces[0].payloads)}
    res = repartition(cluster.comm, pieces)
    after = {}
    for p in res.pieces:
        for leaf, pay in zip(p.locs, p.payloads):
            after[int(leaf)] = tuple(pay)
    assert after == before


def test_pieces_stay_zorder_contiguous():
    cluster = _cluster(4)
    leaves = _uniform_leaves(3)
    pieces = [LinearOctree(2, leaves)] + [
        LinearOctree(2, [], max_level=3) for _ in range(3)
    ]
    res = repartition(cluster.comm, pieces)
    # global z-order must be piece0 ++ piece1 ++ ...: each piece's max key
    # is below the next piece's min key
    for a, b in zip(res.pieces, res.pieces[1:]):
        if len(a) and len(b):
            assert a.keys[-1] < b.keys[0]


def test_already_balanced_moves_nothing():
    cluster = _cluster(2)
    leaves = _uniform_leaves(2)
    lin = LinearOctree(2, leaves)
    (a0, a1), (b0, b1) = lin.split_ranges(2)
    pieces = [lin.slice(a0, a1), lin.slice(b0, b1)]
    res = repartition(cluster.comm, pieces)
    assert res.octants_moved == 0
    assert res.bytes_moved == 0


def test_comm_time_charged_when_moving():
    cluster = _cluster(2)
    leaves = _uniform_leaves(3)
    pieces = [LinearOctree(2, leaves), LinearOctree(2, [], max_level=3)]
    t0 = cluster.comm.makespan_ns()
    res = repartition(cluster.comm, pieces)
    assert res.octants_moved > 0
    assert cluster.comm.makespan_ns() > t0
    assert cluster.network.bytes_moved >= res.bytes_moved


def test_empty_forest_rejected():
    cluster = _cluster(2)
    pieces = [LinearOctree(2, [], max_level=1), LinearOctree(2, [], max_level=1)]
    with pytest.raises(PartitionError):
        repartition(cluster.comm, pieces)


def test_piece_count_mismatch_rejected():
    cluster = _cluster(3)
    with pytest.raises(PartitionError):
        repartition(cluster.comm, [LinearOctree(2, [morton.ROOT_LOC])])


def test_balanced_is_weighted_not_count_based():
    """Regression: ``balanced`` used to compare raw leaf counts, which is
    wrong once cuts are weight-based — a rank holding a few heavy interface
    octants IS balanced despite owning far fewer leaves."""
    cluster = _cluster(2)
    leaves = _uniform_leaves(2)  # 16 leaves
    pieces = [LinearOctree(2, leaves), LinearOctree(2, [], max_level=2)]
    weights = [np.array([9.0] + [1.0] * 15), np.array([])]
    res = repartition(cluster.comm, pieces, weights=weights)
    sizes = [len(p) for p in res.pieces]
    assert sizes[0] < sizes[1]  # the heavy-octant rank gets fewer leaves
    loads = res.weighted_loads
    mean = sum(loads) / len(loads)
    assert max(loads) <= mean + res.max_weight + 1e-9
    assert res.balanced  # weighted verdict, despite the unequal counts
    assert res.imbalance >= res.imbalance_after


def test_empty_piece_after_cut_carries_forest_max_level():
    """Regression: a rank owning zero leaves after the cut used to get a
    ``LinearOctree`` with ``max_level`` copied from a peer — keys stopped
    being comparable across ranks.  Every rebuilt piece (empty included)
    must carry the forest's agreed depth, never a stale peer value."""
    cluster = _cluster(3)
    leaves = _uniform_leaves(1)  # 4 leaves at level 1
    pieces = [
        LinearOctree(2, leaves, max_level=1),
        LinearOctree(2, [], max_level=7),  # stale depth from a dead peer
        LinearOctree(2, [], max_level=7),
    ]
    weights = [np.array([10.0, 1.0, 1.0, 1.0]), np.array([]), np.array([])]
    res = repartition(cluster.comm, pieces, weights=weights)
    assert [len(p) for p in res.pieces] == [1, 0, 3]  # middle rank empty
    assert all(p.max_level == 1 for p in res.pieces)


def test_threshold_skip_returns_pieces_untouched():
    cluster = _cluster(2)
    leaves = _uniform_leaves(2)
    lin = LinearOctree(2, leaves)
    (a0, a1), (b0, b1) = lin.split_ranges(2)
    pieces = [lin.slice(a0, a1), lin.slice(b0, b1)]
    res = repartition(cluster.comm, pieces, threshold=1.1)
    assert res.skipped and res.octants_moved == 0
    assert res.pieces[0] is pieces[0] and res.pieces[1] is pieces[1]
    assert res.imbalance == res.imbalance_after == pytest.approx(1.0)


def test_obs_counters_and_migrate_spans():
    from repro.obs import Observability

    cluster = _cluster(4)
    obs = Observability(cluster.ranks[0].clock)
    leaves = _uniform_leaves(3)
    pieces = [LinearOctree(2, leaves)] + [
        LinearOctree(2, [], max_level=3) for _ in range(3)
    ]
    res = repartition(cluster.comm, pieces, obs=obs)
    m = obs.metrics
    assert m.get("partition.octants_moved").value == res.octants_moved
    assert m.get("partition.bytes_moved").value == res.bytes_moved
    assert m.get("partition.imbalance").value == pytest.approx(res.imbalance)
    names = [s.name for s in obs.tracer.spans]
    assert "partition.migrate" in names and "migrate.batch" in names
    # the batch spans nest under the migrate span
    outer = obs.tracer.named("partition.migrate")[0]
    assert obs.tracer.children_of(outer)
    # a second call on the now-balanced pieces skips under a threshold
    res2 = repartition(cluster.comm, res.pieces, threshold=1.5, obs=obs)
    assert res2.skipped
    assert m.get("partition.skipped").value == 1


def test_cluster_node_layout():
    cluster = SimulatedCluster(40)
    assert cluster.nranks == 40
    assert cluster.nnodes == 3  # 16 cores/node on Titan
    assert len(cluster.ranks_on_node(0)) == 16
    assert len(cluster.ranks_on_node(2)) == 8


def test_kill_node_semantics():
    cluster = _cluster(2)
    ctx = cluster.ranks[0]
    dram, nvbm = ctx.resources["dram"], ctx.resources["nvbm"]
    from repro.nvbm.records import OctantRecord

    dram.new_octant(OctantRecord(loc=1))
    h = nvbm.new_octant(OctantRecord(loc=1))
    nvbm.flush()
    killed = cluster.kill_node(0)
    assert killed == [0, 1]  # both ranks share node 0 (16 cores/node)
    assert not ctx.alive
    assert dram.used == 0          # DRAM gone
    assert nvbm.read_octant(h).loc == 1  # flushed NVBM survives
    cluster.revive_rank(0, node=5)
    assert ctx.alive and ctx.node == 5
