"""SimulatedCluster node-loss semantics: what dies, what survives."""

from dataclasses import replace

from repro.config import PMOctreeConfig, TITAN
from repro.core.api import pm_create
from repro.core.recovery import attach_and_restore
from repro.parallel.cluster import SimulatedCluster
from repro.parallel.faults import FaultyNetwork, NetworkFaultPlan

ONE_PER_NODE = replace(TITAN, cores_per_node=1)


def _host_tree(cluster, rank=0):
    ctx = cluster.ranks[rank]
    tree = pm_create(ctx.resources["dram"], ctx.resources["nvbm"], dim=2,
                     config=PMOctreeConfig(dram_capacity_octants=2048),
                     injector=ctx.injector)
    for leaf in list(tree.leaves()):
        tree.refine(leaf)
    for i, leaf in enumerate(sorted(tree.leaves())):
        tree.set_payload(leaf, (float(i), 0.0, 0.0, 0.0))
    return ctx, tree


def _sig(tree):
    return {loc: tuple(tree.get_payload(loc)) for loc in tree.leaves()}


def test_kill_node_loses_dram_keeps_persisted_nvbm():
    cluster = SimulatedCluster(2, spec=ONE_PER_NODE)
    ctx, tree = _host_tree(cluster)
    tree.persist(transform=False)
    persisted = _sig(tree)
    # volatile work after the persist must die with the node
    tree.set_payload(sorted(tree.leaves())[0], (99.0, 0.0, 0.0, 0.0))

    killed = cluster.kill_node(0)
    assert killed == [0]
    assert not ctx.alive
    assert list(ctx.resources["dram"].live_handles()) == []
    # NVBM backing survives: the same arenas restore the persisted version
    restored = attach_and_restore(ctx.resources["dram"],
                                  ctx.resources["nvbm"], dim=2)
    restored.check_invariants()
    assert _sig(restored) == persisted


def test_kill_node_hits_every_rank_on_the_node():
    cluster = SimulatedCluster(4, spec=replace(TITAN, cores_per_node=2))
    assert cluster.nnodes == 2
    assert sorted(cluster.kill_node(1)) == [2, 3]
    assert cluster.ranks[0].alive and cluster.ranks[1].alive


def test_killing_dead_node_is_noop():
    cluster = SimulatedCluster(2, spec=ONE_PER_NODE)
    ctx, tree = _host_tree(cluster)
    tree.persist(transform=False)
    assert cluster.kill_node(0) == [0]
    # a dead node cannot lose power twice: no re-tearing, no new kills
    assert cluster.kill_node(0) == []
    restored = attach_and_restore(ctx.resources["dram"],
                                  ctx.resources["nvbm"], dim=2)
    restored.check_invariants()


def test_revive_rank_migrates_to_replacement_node():
    cluster = SimulatedCluster(3, spec=ONE_PER_NODE)
    cluster.kill_node(1)
    ctx = cluster.revive_rank(1, node=7)
    assert ctx.alive and ctx.node == 7
    # revive without a node keeps the old placement (same node rebooted)
    cluster.kill_node(7)
    ctx = cluster.revive_rank(1)
    assert ctx.alive and ctx.node == 7


def test_fault_plan_wraps_network():
    plan = NetworkFaultPlan(seed=9)
    cluster = SimulatedCluster(2, spec=ONE_PER_NODE, fault_plan=plan)
    assert isinstance(cluster.network, FaultyNetwork)
    assert cluster.network.plan is plan
    cluster.comm.barrier()  # collectives still run over the wrapper
    plain = SimulatedCluster(2, spec=ONE_PER_NODE)
    assert not isinstance(plain.network, FaultyNetwork)
