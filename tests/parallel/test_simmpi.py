"""Simulated communicator semantics."""

import pytest

from repro.config import GEMINI_SPEC
from repro.errors import AllRanksDeadError, NetworkPartitionError
from repro.nvbm.clock import Category
from repro.parallel.faults import FaultyNetwork, NetworkFaultPlan
from repro.parallel.network import Network
from repro.parallel.simmpi import RankContext, SimCommunicator


def _comm(n):
    ranks = [RankContext(rank=i) for i in range(n)]
    return SimCommunicator(ranks, Network(GEMINI_SPEC)), ranks


def test_requires_ranks():
    with pytest.raises(ValueError):
        SimCommunicator([], Network(GEMINI_SPEC))


def test_barrier_synchronises_clocks():
    comm, ranks = _comm(4)
    ranks[2].clock.advance(1000.0)
    comm.barrier()
    times = {r.clock.now_ns for r in ranks}
    assert len(times) == 1
    assert times.pop() > 1000.0  # barrier itself costs something


def test_barrier_charges_wait_as_comm():
    comm, ranks = _comm(2)
    ranks[0].clock.advance(500.0, Category.COMPUTE)
    comm.barrier()
    assert ranks[1].clock.category_ns(Category.COMM) >= 500.0


def test_allreduce_sum():
    comm, _ = _comm(4)
    assert comm.allreduce([1, 2, 3, 4]) == 10


def test_allreduce_custom_op():
    comm, _ = _comm(3)
    assert comm.allreduce([5, 9, 2], op=max) == 9


def test_allreduce_validates_arity():
    comm, _ = _comm(3)
    with pytest.raises(ValueError):
        comm.allreduce([1, 2])


def test_allgather():
    comm, _ = _comm(3)
    assert comm.allgather(["a", "b", "c"]) == ["a", "b", "c"]


def test_alltoallv_delivery():
    comm, _ = _comm(3)
    sends = [
        {1: "r0->r1", 2: "r0->r2"},
        {0: "r1->r0"},
        {2: "self"},
    ]
    recvs = comm.alltoallv(sends, nbytes_of=lambda s: len(s))
    assert recvs[1][0] == "r0->r1"
    assert recvs[2][0] == "r0->r2"
    assert recvs[0][1] == "r1->r0"
    assert recvs[2][2] == "self"


def test_alltoallv_charges_both_endpoints():
    comm, ranks = _comm(2)
    comm.alltoallv([{1: "x" * 1000}, {}], nbytes_of=len)
    # both endpoints saw comm time beyond the barrier cost
    assert ranks[0].clock.category_ns(Category.COMM) > 0
    assert ranks[1].clock.category_ns(Category.COMM) > 0


def test_alltoallv_to_unknown_rank_rejected():
    comm, _ = _comm(2)
    with pytest.raises(ValueError):
        comm.alltoallv([{5: "x"}, {}], nbytes_of=len)


def test_single_rank_collectives_are_cheap():
    comm, ranks = _comm(1)
    comm.barrier()
    assert comm.allreduce([7]) == 7
    assert ranks[0].clock.now_ns == 0.0  # log2(1) == 0 stages


def test_makespan():
    comm, ranks = _comm(3)
    ranks[1].clock.advance(999.0)
    assert comm.makespan_ns() == 999.0


def test_phase_breakdown_is_max_over_ranks():
    comm, ranks = _comm(2)
    with ranks[0].clock.phase("refine"):
        ranks[0].clock.advance(100.0)
    with ranks[1].clock.phase("refine"):
        ranks[1].clock.advance(250.0)
    assert comm.phase_breakdown()["refine"] == 250.0


def test_dead_ranks_excluded():
    comm, ranks = _comm(3)
    ranks[1].alive = False
    assert comm.allreduce([1, 1]) == 2  # only two live ranks contribute


def test_all_ranks_dead_is_typed():
    comm, ranks = _comm(3)
    for r in ranks:
        r.alive = False
    with pytest.raises(AllRanksDeadError) as exc:
        comm.barrier()
    assert exc.value.dead_ranks == [0, 1, 2]
    with pytest.raises(AllRanksDeadError):
        comm.makespan_ns()
    with pytest.raises(AllRanksDeadError):
        comm.allreduce([])
    with pytest.raises(AllRanksDeadError):
        comm.allgather([])
    with pytest.raises(AllRanksDeadError):
        comm.alltoallv([], nbytes_of=len)


def _faulty_comm(n, plan):
    ranks = [RankContext(rank=i) for i in range(n)]
    net = FaultyNetwork(Network(GEMINI_SPEC), plan)
    return SimCommunicator(ranks, net), ranks


def test_barrier_across_partition_raises():
    plan = NetworkFaultPlan(seed=0)
    comm, ranks = _faulty_comm(4, plan)
    w = plan.start_partition([[0, 1], [2, 3]], now_ns=0.0)
    with pytest.raises(NetworkPartitionError) as exc:
        comm.barrier()
    assert exc.value.groups == ((0, 1), (2, 3))
    # collectives funnel through the barrier, so they refuse too
    with pytest.raises(NetworkPartitionError):
        comm.allreduce([1, 1, 1, 1])
    w.heal(max(r.clock.now_ns for r in ranks))
    comm.barrier()  # healed: business as usual


def test_partition_of_dead_ranks_does_not_block():
    plan = NetworkFaultPlan(seed=0)
    comm, ranks = _faulty_comm(4, plan)
    plan.start_partition([[0, 1], [2, 3]], now_ns=0.0)
    ranks[2].alive = False
    ranks[3].alive = False
    # the unreachable side is dead, not partitioned-away: the survivors
    # form one component and the collective proceeds
    comm.barrier()
    assert comm.allreduce([1, 1]) == 2
