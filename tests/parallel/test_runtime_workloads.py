"""Runtime workload selection: the wave application through the scaling
driver."""

import pytest

from repro.config import SolverConfig
from repro.parallel.runtime import Backend, RunConfig, run_parallel

SOL = SolverConfig(dim=2, min_level=2, max_level=4, dt=0.02)


def test_wave_workload_runs():
    res = run_parallel(RunConfig(
        backend=Backend.PM_OCTREE, nranks=4, target_elements=4e6,
        steps=4, workload="wave", solver=SOL,
    ))
    assert res.makespan_s > 0
    assert res.persists == 4
    for phase in ("construct", "refine", "solve", "persist.enqueue"):
        assert res.phase_seconds.get(phase, 0.0) > 0.0


def test_unknown_workload_rejected():
    with pytest.raises(ValueError):
        run_parallel(RunConfig(
            backend=Backend.PM_OCTREE, nranks=2, target_elements=1e6,
            steps=1, workload="lattice-boltzmann", solver=SOL,
        ))


def test_wave_in_core_vs_pm_ordering():
    times = {}
    for backend in (Backend.IN_CORE, Backend.PM_OCTREE):
        times[backend] = run_parallel(RunConfig(
            backend=backend, nranks=4, target_elements=4e6,
            steps=4, workload="wave", solver=SOL,
        )).makespan_s
    assert times[Backend.IN_CORE] < times[Backend.PM_OCTREE]
