"""Hilbert indexing and partition-quality metrics."""

import pytest

from repro.octree import morton
from repro.parallel.sfc import (
    compare_curves,
    edge_cut,
    hilbert_index_2d,
    hilbert_index_3d,
    hilbert_key,
    partition_by_key,
)


def test_hilbert_2d_order1():
    # the canonical order-1 curve: (0,0) (0,1) (1,1) (1,0)
    cells = sorted(
        ((x, y) for x in range(2) for y in range(2)),
        key=lambda c: hilbert_index_2d(c[0], c[1], 1),
    )
    assert cells == [(0, 0), (0, 1), (1, 1), (1, 0)]


def test_hilbert_2d_is_bijection():
    order = 3
    side = 1 << order
    idxs = {
        hilbert_index_2d(x, y, order) for x in range(side) for y in range(side)
    }
    assert idxs == set(range(side * side))


def test_hilbert_2d_consecutive_cells_adjacent():
    order = 4
    side = 1 << order
    by_index = {
        hilbert_index_2d(x, y, order): (x, y)
        for x in range(side)
        for y in range(side)
    }
    for d in range(side * side - 1):
        (x0, y0), (x1, y1) = by_index[d], by_index[d + 1]
        assert abs(x0 - x1) + abs(y0 - y1) == 1  # face neighbors, always


def test_hilbert_2d_bounds():
    with pytest.raises(ValueError):
        hilbert_index_2d(4, 0, 2)


def test_hilbert_3d_is_bijection():
    order = 2
    side = 1 << order
    idxs = {
        hilbert_index_3d(x, y, z, order)
        for x in range(side) for y in range(side) for z in range(side)
    }
    assert idxs == set(range(side ** 3))


def test_gray3_octant_walk_adjacent():
    """Consecutive octants of the level-1 walk share a face."""
    from repro.parallel.sfc import _GRAY3

    for a, b in zip(_GRAY3, _GRAY3[1:]):
        assert bin(a ^ b).count("1") == 1


def test_hilbert_3d_bounds():
    with pytest.raises(ValueError):
        hilbert_index_3d(0, 0, 8, 3)


def test_hilbert_key_orders_mixed_levels():
    parent = morton.loc_from_coords(1, (0, 0), 2)
    child = morton.child_of(parent, 2, 0)
    kp = hilbert_key(parent, 2, 4)
    kc = hilbert_key(child, 2, 4)
    assert kp < kc  # ancestors first, like zorder_key
    with pytest.raises(ValueError):
        hilbert_key(morton.loc_from_coords(5, (0, 0), 2), 2, 4)


def test_partition_by_key_balanced(quadtree):
    quadtree.refine_uniform(3)
    leaves = list(quadtree.leaves())
    assignment = partition_by_key(leaves, 2, 3, 4, hilbert_key)
    counts = [list(assignment.values()).count(r) for r in range(4)]
    assert sum(counts) == 64
    assert max(counts) - min(counts) <= 1


def test_edge_cut_counts_boundary_faces(quadtree):
    quadtree.refine_uniform(2)
    # split the 4x4 grid into left/right halves by hand: cut = 4 faces
    assignment = {
        loc: (0 if morton.coords_of(loc, 2)[0] < 2 else 1)
        for loc in quadtree.leaves()
    }
    assert edge_cut(quadtree, assignment) == 4


def test_hilbert_matches_morton_on_aligned_counts(quadtree):
    """With power-of-two rank counts both curves cut the grid into the same
    aligned blocks — the cuts tie exactly."""
    quadtree.refine_uniform(4)
    cuts = compare_curves(quadtree, nranks=8)
    assert cuts["hilbert"] == cuts["morton"]


def test_hilbert_beats_morton_on_unaligned_counts(quadtree):
    """Off power-of-two, Morton's diagonal jumps fragment the ranges while
    Hilbert's stay compact: smaller boundary surface in aggregate."""
    quadtree.refine_uniform(4)
    total = {"morton": 0, "hilbert": 0}
    for p in (3, 6, 7, 12):
        cuts = compare_curves(quadtree, nranks=p)
        for k, v in cuts.items():
            total[k] += v
    assert total["hilbert"] < total["morton"]


def test_hilbert_no_worse_on_random_adaptive_trees():
    """Aggregated over many random adaptive trees, Hilbert's boundary
    surface is no larger than Morton's (per-tree results are noisy at this
    size, so the claim is statistical)."""
    import random

    from repro.config import DRAM_SPEC
    from repro.nvbm.arena import MemoryArena
    from repro.nvbm.clock import SimClock
    from repro.nvbm.pointers import ARENA_DRAM
    from repro.octree.balance import balance_tree
    from repro.octree.tree import PointerOctree

    total = {"morton": 0, "hilbert": 0}
    for seed in range(12):
        rng = random.Random(seed)
        tree = PointerOctree(
            MemoryArena(ARENA_DRAM, DRAM_SPEC, SimClock(), 1 << 15), dim=2
        )
        tree.refine_uniform(2)
        for _ in range(8):
            leaves = [leaf for leaf in tree.leaves() if morton.level_of(leaf, 2) < 5]
            if leaves:
                tree.refine(rng.choice(leaves))
        balance_tree(tree, max_level=5)
        for name, cut in compare_curves(tree, nranks=6).items():
            total[name] += cut
    assert total["hilbert"] <= total["morton"]
