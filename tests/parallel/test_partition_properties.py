"""Property tests for weighted SFC partitioning (seeded stdlib random).

Random complete forests, random skewed ownership, random integer weights —
every trial must uphold the partition invariants:

* **conservation** — no octant is lost or duplicated by migration, and no
  payload is altered, even over a lossy interconnect that drops and
  duplicates the migration batches;
* **contiguity** — each rank's piece stays a contiguous range of the
  Z-order curve, in rank order;
* **balance bound** — the weighted load of every rank after a cut is at
  most ``mean_load + max_weight`` (Salmon's bound for unsplittable
  octants), i.e. imbalance is bounded by ``1 + max_weight / mean_load``.

Everything derives from one pinned seed; failures replay exactly.
"""

import random

import numpy as np

from repro.config import TITAN
from repro.errors import ConsistencyError
from repro.octree import morton
from repro.octree.linear import LinearOctree
from repro.parallel.faults import FaultyNetwork, LinkFaults, NetworkFaultPlan
from repro.parallel.network import Network
from repro.parallel.partition import repartition
from repro.parallel.sfc import weighted_cut_indices
from repro.parallel.simmpi import RankContext, SimCommunicator

SEED = 20170806
TRIALS = 20


def _comm(nranks, fault_plan=None):
    net = Network(TITAN.network)
    if fault_plan is not None:
        net = FaultyNetwork(net, fault_plan)
    return SimCommunicator(
        [RankContext(rank=r, node=r) for r in range(nranks)], net)


def _random_forest(rng, dim=2, max_level=4):
    """A random complete linear octree (retrying overlapping seed draws)."""
    while True:
        nseeds = rng.randint(2, 6)
        seeds = set()
        for _ in range(nseeds):
            level = rng.randint(1, max_level)
            coords = tuple(rng.randrange(1 << level) for _ in range(dim))
            seeds.add(morton.loc_from_coords(level, coords, dim))
        try:
            lin = LinearOctree.complete(dim, seeds, max_level=max_level)
        except ConsistencyError:
            continue
        # give every leaf a distinct payload so tearing is detectable
        lin.payloads = np.arange(4 * len(lin), dtype=np.float64)\
            .reshape(len(lin), 4)
        return lin


def _random_case(rng, nranks):
    """(lin, skewed contiguous pieces, random integer weights)."""
    lin = _random_forest(rng)
    n = len(lin)
    bounds = [0] + sorted(rng.randrange(n + 1)
                          for _ in range(nranks - 1)) + [n]
    pieces = [lin.slice(bounds[r], bounds[r + 1]) for r in range(nranks)]
    weights = [
        np.array([1.0 + rng.randrange(8) for _ in range(len(p))])
        for p in pieces
    ]
    return lin, pieces, weights


def _signature(pieces):
    """{loc: payload tuple} over all pieces; asserts no duplicates."""
    sig = {}
    for piece in pieces:
        for i, loc in enumerate(piece.locs):
            loc = int(loc)
            assert loc not in sig, f"octant {loc:#x} duplicated"
            sig[loc] = tuple(piece.payloads[i])
    return sig


def test_octant_conservation():
    rng = random.Random(SEED)
    for trial in range(TRIALS):
        nranks = rng.randint(2, 6)
        lin, pieces, weights = _random_case(rng, nranks)
        before = _signature(pieces)
        res = repartition(_comm(nranks), pieces, weights=weights)
        after = _signature(res.pieces)
        assert after == before, f"trial {trial}: migration altered the forest"


def test_octant_conservation_under_faulty_network():
    """Dropped and duplicated migration batches must not lose, duplicate,
    or tear octants — retransmits and journal-keyed publishes absorb them."""
    rng = random.Random(SEED + 1)
    for trial in range(TRIALS):
        nranks = rng.randint(2, 6)
        lin, pieces, weights = _random_case(rng, nranks)
        before = _signature(pieces)
        plan = NetworkFaultPlan(
            seed=SEED + trial,
            default=LinkFaults(drop=0.3, duplicate=0.25, delay=0.2,
                               delay_ns=10_000.0),
        )
        res = repartition(_comm(nranks, plan), pieces, weights=weights)
        after = _signature(res.pieces)
        assert after == before, f"trial {trial}: lossy migration diverged"
        if res.octants_moved:
            assert res.send_retries >= 0


def test_pieces_stay_sfc_contiguous():
    rng = random.Random(SEED + 2)
    for trial in range(TRIALS):
        nranks = rng.randint(2, 6)
        lin, pieces, weights = _random_case(rng, nranks)
        res = repartition(_comm(nranks), pieces, weights=weights)
        prev_max = -1
        for piece in res.pieces:
            if not len(piece):
                continue
            keys = [int(k) for k in piece.keys]
            assert keys == sorted(keys)
            assert keys[0] > prev_max, \
                f"trial {trial}: rank ranges interleave on the curve"
            prev_max = keys[-1]


def test_weighted_imbalance_bound():
    """After a cut: max rank load <= mean load + max single-octant weight."""
    rng = random.Random(SEED + 3)
    for trial in range(TRIALS):
        nranks = rng.randint(2, 6)
        lin, pieces, weights = _random_case(rng, nranks)
        res = repartition(_comm(nranks), pieces, weights=weights)
        loads = res.weighted_loads
        mean = sum(loads) / len(loads)
        assert max(loads) <= mean + res.max_weight + 1e-9, \
            f"trial {trial}: {max(loads)} > {mean} + {res.max_weight}"
        assert res.imbalance_after <= 1.0 + res.max_weight / mean + 1e-9
        assert res.balanced


def test_cut_indices_bound_directly():
    """The same bound holds for raw weighted_cut_indices on random arrays."""
    rng = random.Random(SEED + 4)
    for _ in range(200):
        n = rng.randint(1, 60)
        parts = rng.randint(1, 8)
        w = [float(1 + rng.randrange(16)) for _ in range(n)]
        bounds = weighted_cut_indices(w, parts)
        assert bounds[0] == 0 and bounds[-1] == n
        assert all(a <= b for a, b in zip(bounds, bounds[1:]))
        target = sum(w) / parts
        for r in range(parts):
            load = sum(w[bounds[r]:bounds[r + 1]])
            assert load <= target + max(w) + 1e-9


def test_threshold_skips_balanced_forest():
    """A near-balanced forest under the threshold moves nothing at all."""
    rng = random.Random(SEED + 5)
    lin = _random_forest(rng)
    n = len(lin)
    nranks = 4
    bounds = [round(r * n / nranks) for r in range(nranks + 1)]
    pieces = [lin.slice(bounds[r], bounds[r + 1]) for r in range(nranks)]
    before = _signature(pieces)
    res = repartition(_comm(nranks), pieces, threshold=1.5)
    assert res.skipped
    assert res.octants_moved == 0 and res.bytes_moved == 0
    assert _signature(res.pieces) == before
