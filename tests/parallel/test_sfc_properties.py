"""Seeded property tests for the space-filling-curve machinery.

Checks the algebraic properties the partitioner relies on: the curve
indices are bijections over the grid, consecutive indices stay
face-adjacent (the locality property that makes Hilbert cuts cheap), and
range partitioning is contiguous along the curve with near-equal shares.
"""

import random

import pytest

from repro.octree import morton
from repro.parallel.sfc import (
    hilbert_index_2d,
    hilbert_index_3d,
    hilbert_key,
    partition_by_key,
)


@pytest.mark.parametrize("order", (1, 2, 3, 4))
def test_hilbert_2d_is_a_bijection(order):
    side = 1 << order
    seen = {hilbert_index_2d(x, y, order)
            for x in range(side) for y in range(side)}
    assert seen == set(range(side * side))


@pytest.mark.parametrize("order", (1, 2, 3))
def test_hilbert_3d_is_a_bijection(order):
    side = 1 << order
    seen = {hilbert_index_3d(x, y, z, order)
            for x in range(side) for y in range(side) for z in range(side)}
    assert seen == set(range(side ** 3))


@pytest.mark.parametrize("order", (1, 2, 3, 4))
def test_hilbert_2d_consecutive_cells_are_face_adjacent(order):
    """The defining Hilbert property: step d -> d+1 moves one cell."""
    side = 1 << order
    by_index = {hilbert_index_2d(x, y, order): (x, y)
                for x in range(side) for y in range(side)}
    for d in range(side * side - 1):
        (x0, y0), (x1, y1) = by_index[d], by_index[d + 1]
        assert abs(x1 - x0) + abs(y1 - y0) == 1, (
            f"order={order}: jump at d={d}: {(x0, y0)} -> {(x1, y1)}"
        )


def test_hilbert_3d_gray_walk_is_face_adjacent_per_level():
    """Consecutive octants in the Gray-code walk differ in exactly one bit,
    i.e. they share a face of the 2x2x2 block at every recursion level."""
    by_index = {hilbert_index_3d(x, y, z, 1): (x, y, z)
                for x in range(2) for y in range(2) for z in range(2)}
    for d in range(7):
        a, b = by_index[d], by_index[d + 1]
        assert sum(abs(i - j) for i, j in zip(a, b)) == 1


def test_hilbert_2d_rejects_out_of_grid():
    with pytest.raises(ValueError):
        hilbert_index_2d(4, 0, 2)
    with pytest.raises(ValueError):
        hilbert_index_3d(0, -1, 0, 2)


def _random_leaf_set(rng, dim, max_level, n):
    """n distinct leaf codes at random levels <= max_level."""
    out = set()
    while len(out) < n:
        level = rng.randint(1, max_level)
        loc = morton.ROOT_LOC
        for _ in range(level):
            loc = morton.child_of(loc, dim, rng.randrange(morton.fanout(dim)))
        out.add(loc)
    return sorted(out)


@pytest.mark.parametrize("dim", (2, 3))
@pytest.mark.parametrize("key_fn", (morton.zorder_key, hilbert_key),
                         ids=("morton", "hilbert"))
def test_partition_is_contiguous_along_the_curve(dim, key_fn):
    """Walking the key-sorted leaves, the rank sequence never decreases:
    each rank owns exactly one contiguous range of the curve."""
    rng = random.Random(42 + dim)
    max_level = 5
    for nranks in (1, 2, 3, 7):
        leaves = _random_leaf_set(rng, dim, max_level, 120)
        assignment = partition_by_key(leaves, dim, max_level, nranks, key_fn)
        assert set(assignment) == set(leaves)  # full coverage
        ordered = sorted(leaves, key=lambda leaf: key_fn(leaf, dim, max_level))
        ranks = [assignment[leaf] for leaf in ordered]
        assert all(a <= b for a, b in zip(ranks, ranks[1:]))
        assert set(ranks) == set(range(nranks))  # every rank non-empty


@pytest.mark.parametrize("dim", (2, 3))
def test_partition_shares_are_near_equal(dim):
    rng = random.Random(100 + dim)
    max_level = 5
    leaves = _random_leaf_set(rng, dim, max_level, 200)
    for nranks in (2, 4, 8):
        assignment = partition_by_key(leaves, dim, max_level, nranks,
                                      hilbert_key)
        sizes = [0] * nranks
        for rank in assignment.values():
            sizes[rank] += 1
        assert max(sizes) - min(sizes) <= 1


@pytest.mark.parametrize("dim", (2, 3))
def test_hilbert_key_is_a_total_order_on_distinct_leaves(dim):
    rng = random.Random(7 + dim)
    leaves = _random_leaf_set(rng, dim, 5, 150)
    keys = {hilbert_key(leaf, dim, 5) for leaf in leaves}
    assert len(keys) == len(leaves)


def test_hilbert_key_rejects_too_deep_codes():
    loc = morton.ROOT_LOC
    for _ in range(4):
        loc = morton.child_of(loc, 2, 0)
    with pytest.raises(ValueError):
        hilbert_key(loc, 2, 3)
