"""Differential testing: the three octree implementations must agree.

All three expose the AdaptiveTree protocol, so any divergence in leaf sets
or (leaf) payloads under the same operation sequence is a bug in one of
them.  Hypothesis drives random refine/coarsen/payload interleavings, and a
second test runs the two real workloads across the implementations.
"""

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.config import DRAM_SPEC, NVBM_FS_SPEC, NVBM_SPEC, PMOctreeConfig
from repro.baselines.etree import EtreeOctree
from repro.core.api import pm_create
from repro.nvbm.arena import MemoryArena
from repro.nvbm.clock import SimClock
from repro.nvbm.pointers import ARENA_DRAM, ARENA_NVBM
from repro.octree import morton
from repro.octree.tree import PointerOctree
from repro.storage.block import BlockDevice

MAX_LEVEL = 4


def _make_all_trees():
    clock = SimClock()
    pointer = PointerOctree(
        MemoryArena(ARENA_DRAM, DRAM_SPEC, clock, 1 << 14), dim=2
    )
    pm = pm_create(
        MemoryArena(ARENA_DRAM, DRAM_SPEC, clock, 256),
        MemoryArena(ARENA_NVBM, NVBM_SPEC, clock, 1 << 14),
        dim=2,
        config=PMOctreeConfig(dram_capacity_octants=256),
    )
    etree = EtreeOctree(BlockDevice(NVBM_FS_SPEC, clock), dim=2)
    return pointer, pm, etree


def _leaf_signature(tree):
    return {loc: tree.get_payload(loc) for loc in tree.leaves()}


op = st.sampled_from(["refine", "coarsen", "payload", "persist"])


@settings(max_examples=25, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(ops=st.lists(st.tuples(op, st.integers(0, 10_000)), max_size=25))
def test_implementations_agree_on_random_ops(ops):
    pointer, pm, etree = _make_all_trees()
    trees = (pointer, pm, etree)
    leaves = {morton.ROOT_LOC}

    for kind, pick in ops:
        if kind == "refine":
            cands = sorted(
                leaf for leaf in leaves if morton.level_of(leaf, 2) < MAX_LEVEL
            )
            if not cands:
                continue
            loc = cands[pick % len(cands)]
            for t in trees:
                t.refine(loc)
            leaves.discard(loc)
            leaves.update(morton.children_of(loc, 2))
        elif kind == "coarsen":
            parents = sorted({
                morton.parent_of(leaf, 2) for leaf in leaves if leaf != morton.ROOT_LOC
            })
            parents = [
                p for p in parents
                if all(c in leaves for c in morton.children_of(p, 2))
            ]
            if not parents:
                continue
            loc = parents[pick % len(parents)]
            for t in trees:
                t.coarsen(loc)
            for c in morton.children_of(loc, 2):
                leaves.discard(c)
            leaves.add(loc)
            # coarsening semantics differ by design: Etree restores the
            # child mean, the pointer trees the old parent payload — align
            # them explicitly so later comparisons are meaningful
            payload = pointer.get_payload(loc)
            for t in trees:
                t.set_payload(loc, payload)
        elif kind == "payload":
            cands = sorted(leaves)
            loc = cands[pick % len(cands)]
            payload = (float(pick), 0.0, 0.0, float(pick % 7))
            for t in trees:
                t.set_payload(loc, payload)
        elif kind == "persist":
            pm.persist(transform=False)

    sig = _leaf_signature(pointer)
    assert _leaf_signature(pm) == sig
    assert _leaf_signature(etree) == sig
    assert set(leaves) == set(sig)
    pm.check_invariants()


@pytest.mark.parametrize("workload", ["droplet", "wave"])
def test_workloads_agree_across_implementations(workload):
    """The full simulations produce identical meshes and fields on all
    three octree implementations."""
    from repro.config import SolverConfig
    from repro.solver.simulation import DropletSimulation
    from repro.solver.wave import WaveConfig, WaveSimulation

    signatures = []
    for which in range(3):
        pointer, pm, etree = _make_all_trees()
        tree = (pointer, pm, etree)[which]
        if workload == "droplet":
            sim = DropletSimulation(
                tree, SolverConfig(dim=2, min_level=2, max_level=4, dt=0.01)
            )
        else:
            sim = WaveSimulation(
                tree, WaveConfig(dim=2, min_level=2, max_level=4)
            )
        sim.run(6)
        signatures.append(_leaf_signature(tree))
    assert signatures[0] == signatures[1]
    assert signatures[0] == signatures[2]
