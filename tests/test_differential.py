"""Differential testing: the three octree implementations must agree.

All three expose the AdaptiveTree protocol, so any divergence in leaf sets
or (leaf) payloads under the same operation sequence is a bug in one of
them.  Hypothesis drives random refine/coarsen/payload interleavings, and a
second test runs the two real workloads across the implementations.
"""

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.config import DRAM_SPEC, NVBM_FS_SPEC, NVBM_SPEC, PMOctreeConfig
from repro.baselines.etree import EtreeOctree
from repro.core.api import pm_create
from repro.nvbm.arena import MemoryArena
from repro.nvbm.clock import SimClock
from repro.nvbm.pointers import ARENA_DRAM, ARENA_NVBM
from repro.octree import morton
from repro.octree.tree import PointerOctree
from repro.storage.block import BlockDevice

MAX_LEVEL = 4


def _make_all_trees():
    clock = SimClock()
    pointer = PointerOctree(
        MemoryArena(ARENA_DRAM, DRAM_SPEC, clock, 1 << 14), dim=2
    )
    pm = pm_create(
        MemoryArena(ARENA_DRAM, DRAM_SPEC, clock, 256),
        MemoryArena(ARENA_NVBM, NVBM_SPEC, clock, 1 << 14),
        dim=2,
        config=PMOctreeConfig(dram_capacity_octants=256),
    )
    etree = EtreeOctree(BlockDevice(NVBM_FS_SPEC, clock), dim=2)
    return pointer, pm, etree


def _leaf_signature(tree):
    return {loc: tree.get_payload(loc) for loc in tree.leaves()}


op = st.sampled_from(["refine", "coarsen", "payload", "persist"])


@settings(max_examples=25, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(ops=st.lists(st.tuples(op, st.integers(0, 10_000)), max_size=25))
def test_implementations_agree_on_random_ops(ops):
    pointer, pm, etree = _make_all_trees()
    trees = (pointer, pm, etree)
    leaves = {morton.ROOT_LOC}

    for kind, pick in ops:
        if kind == "refine":
            cands = sorted(
                leaf for leaf in leaves if morton.level_of(leaf, 2) < MAX_LEVEL
            )
            if not cands:
                continue
            loc = cands[pick % len(cands)]
            for t in trees:
                t.refine(loc)
            leaves.discard(loc)
            leaves.update(morton.children_of(loc, 2))
        elif kind == "coarsen":
            parents = sorted({
                morton.parent_of(leaf, 2) for leaf in leaves if leaf != morton.ROOT_LOC
            })
            parents = [
                p for p in parents
                if all(c in leaves for c in morton.children_of(p, 2))
            ]
            if not parents:
                continue
            loc = parents[pick % len(parents)]
            for t in trees:
                t.coarsen(loc)
            for c in morton.children_of(loc, 2):
                leaves.discard(c)
            leaves.add(loc)
            # coarsening semantics differ by design: Etree restores the
            # child mean, the pointer trees the old parent payload — align
            # them explicitly so later comparisons are meaningful
            payload = pointer.get_payload(loc)
            for t in trees:
                t.set_payload(loc, payload)
        elif kind == "payload":
            cands = sorted(leaves)
            loc = cands[pick % len(cands)]
            payload = (float(pick), 0.0, 0.0, float(pick % 7))
            for t in trees:
                t.set_payload(loc, payload)
        elif kind == "persist":
            pm.persist(transform=False)

    sig = _leaf_signature(pointer)
    assert _leaf_signature(pm) == sig
    assert _leaf_signature(etree) == sig
    assert set(leaves) == set(sig)
    pm.check_invariants()


# ---------------------------------------------------- P-rank vs 1-rank

def _droplet_sim():
    from repro.config import SolverConfig
    from repro.solver.simulation import DropletSimulation

    clock = SimClock()
    tree = PointerOctree(
        MemoryArena(ARENA_DRAM, DRAM_SPEC, clock, 1 << 14), dim=2
    )
    sim = DropletSimulation(
        tree, SolverConfig(dim=2, min_level=2, max_level=4, dt=0.01)
    )
    sim.construct()
    return sim, tree


def _canonical(locs, payload_of):
    """(sorted global Morton list, payload matrix in that order)."""
    import numpy as np

    order = sorted(int(loc) for loc in locs)
    return order, np.array([payload_of(loc) for loc in order])


def _single_rank_final(steps):
    from repro.octree.linear import LinearOctree

    sim, tree = _droplet_sim()
    for _ in range(steps):
        sim.step()
    lin = LinearOctree.from_tree(tree)
    return _canonical(lin.locs, lin.payload_of)


def _distributed_final(nranks, steps, threshold=1.01):
    """The same droplet run with leaves dealt across P simulated ranks.

    Rank 0 starts owning the whole forest (maximally skewed), so the first
    triggered repartition must really migrate.  Each step the per-rank
    pieces absorb the solver's refine/coarsen churn under the standing cut
    ownership, then go through the real weighted ``repartition``
    (threshold-triggered, incremental migration).  Returns the canonical
    union of the final pieces plus how many octants migrated over the run
    — the union must be bit-identical to the 1-rank run.
    """
    import numpy as np

    from repro.config import TITAN
    from repro.octree.linear import LinearOctree
    from repro.parallel.network import Network
    from repro.parallel.partition import repartition
    from repro.parallel.runtime import _cuts_from_pieces
    from repro.parallel.simmpi import RankContext, SimCommunicator
    from repro.solver.features import partition_work_weights

    sim, tree = _droplet_sim()
    comm = SimCommunicator(
        [RankContext(rank=r, node=r) for r in range(nranks)],
        Network(TITAN.network),
    )
    lin = LinearOctree.from_tree(tree)
    cuts = np.array([0.0] + [np.inf] * nranks)
    owner = {int(loc): 0 for loc in lin.locs}
    moved_total = 0
    pieces = None
    for _ in range(steps):
        sim.step()
        lin = LinearOctree.from_tree(tree)
        leafset = set(int(loc) for loc in lin.locs)
        # coarsened-away leaves leave their owner; refined-in leaves join
        # whichever rank's standing range covers their curve position
        for loc in [l for l in owner if l not in leafset]:
            del owner[loc]
        per_rank = [[] for _ in range(nranks)]
        for i, loc in enumerate(lin.locs):
            loc = int(loc)
            if loc not in owner:
                owner[loc] = int(np.searchsorted(
                    cuts[1:-1], float(lin.keys[i]), side="right"))
            per_rank[owner[loc]].append(i)
        pieces = [
            LinearOctree(2, [int(lin.locs[i]) for i in idx],
                         lin.payloads[idx] if idx else None,
                         max_level=lin.max_level)
            for idx in per_rank
        ]
        w_all = partition_work_weights(lin)
        wlists = [w_all[idx] for idx in per_rank]
        res = repartition(comm, pieces, weights=wlists, threshold=threshold)
        if not res.skipped:
            moved_total += res.octants_moved
            pieces = res.pieces
            owner = {int(loc): r for r, piece in enumerate(pieces)
                     for loc in piece.locs}
            cuts = _cuts_from_pieces(pieces, nranks)
    union_locs = [loc for piece in pieces for loc in piece.locs]
    payload_of = {int(loc): tuple(piece.payloads[i])
                  for piece in pieces
                  for i, loc in enumerate(piece.locs)}
    order, payloads = _canonical(union_locs, lambda loc: payload_of[loc])
    return order, payloads, moved_total


@pytest.mark.parametrize("nranks", [2, 4, 7])
def test_weighted_repartition_matches_single_rank(nranks):
    """P-rank weighted-repartition droplet run ends with the identical
    global leaf set and identical field payloads as the 1-rank run: the
    incremental migration neither loses, duplicates, nor tears octants."""
    import numpy as np

    steps = 6
    ref_locs, ref_payloads = _single_rank_final(steps)
    locs, payloads, moved = _distributed_final(nranks, steps)
    assert locs == ref_locs
    assert np.array_equal(payloads, ref_payloads)
    assert moved > 0  # the run really migrated, it didn't just skip


@pytest.mark.parametrize("workload", ["droplet", "wave"])
def test_workloads_agree_across_implementations(workload):
    """The full simulations produce identical meshes and fields on all
    three octree implementations."""
    from repro.config import SolverConfig
    from repro.solver.simulation import DropletSimulation
    from repro.solver.wave import WaveConfig, WaveSimulation

    signatures = []
    for which in range(3):
        pointer, pm, etree = _make_all_trees()
        tree = (pointer, pm, etree)[which]
        if workload == "droplet":
            sim = DropletSimulation(
                tree, SolverConfig(dim=2, min_level=2, max_level=4, dt=0.01)
            )
        else:
            sim = WaveSimulation(
                tree, WaveConfig(dim=2, min_level=2, max_level=4)
            )
        sim.run(6)
        signatures.append(_leaf_signature(tree))
    assert signatures[0] == signatures[1]
    assert signatures[0] == signatures[2]
