"""Media-fault chaos: schedule determinism, repair under load, degradation."""

import json

from repro.harness.chaos import (
    _EVENT_KINDS,
    _MEDIA_EVENT_KINDS,
    derive_schedule,
    run_chaos,
    run_trial,
)

_PLAIN_KINDS = {kind for kind, _ in _EVENT_KINDS}
_MEDIA_KINDS = {kind for kind, _ in _MEDIA_EVENT_KINDS}


def test_plain_schedules_never_contain_media_events():
    for trial in range(8):
        sched = derive_schedule(0, trial, steps=10)
        assert not sched.media
        assert {e.kind for e in sched.events} <= _PLAIN_KINDS


def test_media_flag_does_not_perturb_plain_derivation():
    """Old seeded reproducers must replay byte-identically: media=False
    derivation is untouched by the media pool's existence."""
    for trial in range(8):
        a = derive_schedule(4, trial, steps=10)
        b = derive_schedule(4, trial, steps=10, media=False)
        assert a == b


def test_media_schedules_are_deterministic_and_mixed():
    seen = set()
    for trial in range(12):
        a = derive_schedule(0, trial, steps=10, media=True)
        b = derive_schedule(0, trial, steps=10, media=True)
        assert a == b
        assert a.media
        seen |= {e.kind for e in a.events}
    assert seen & _MEDIA_KINDS        # the pool actually contributes
    assert seen & _PLAIN_KINDS        # without displacing ordinary faults


def test_media_trial_is_deterministic():
    sched = derive_schedule(0, 6, steps=10, media=True)  # two media_rot events
    assert {e.kind for e in sched.events} & _MEDIA_KINDS
    rows = [json.dumps(run_trial(sched).to_row(), sort_keys=True)
            for _ in range(2)]
    assert rows[0] == rows[1]


def test_rot_and_stuck_under_replication_stay_protected():
    for trial in (2, 6, 7):  # media_rot / media_stuck mixed with kills
        sched = derive_schedule(0, trial, steps=10, media=True)
        result = run_trial(sched)
        assert result.ok, result.violations
        assert result.outcome == "protected"


def test_peer_loss_then_rot_degrades_explicitly():
    """Losing the replica and then the primary's medium is unsurvivable —
    the verdict must be a declared Degraded, never silent corruption."""
    sched = derive_schedule(0, 8, steps=10, media=True)
    assert "kill_peer_then_rot" in {e.kind for e in sched.events}
    result = run_trial(sched)
    assert result.ok, result.violations
    assert result.outcome == "degraded"
    assert "no replica left" in result.degraded_reason


def test_media_campaign_small_pass():
    report = run_chaos(trials=6, seed=3, steps=8, media=True)
    assert report.ok
    assert report.reproducer is None


def test_media_reproducer_serializes_identically():
    runs = []
    for _ in range(2):
        report = run_chaos(trials=3, seed=0, steps=6, break_acks=True,
                           media=True)
        assert report.failed  # broken acks are a genuine protocol bug
        assert report.reproducer is not None
        runs.append(json.dumps(report.reproducer, sort_keys=True))
    assert runs[0] == runs[1]
    assert "--media" in report.reproducer["command"]
