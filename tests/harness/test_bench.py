"""The regression-gated bench pipeline and its committed baseline.

Covers the acceptance criteria directly: the committed ``BENCH_pr5.json``
validates against the schema, a fresh run self-compares clean, the pr4
baseline's gates all pass against it, the threshold-gated incremental
repartition moves >= 25 % fewer bytes per step than the eager run, and a
synthetically injected 2x NVBM-write regression fails the gate with a
typed report — through both the library API and the CLI.
"""

import json
import pathlib

import pytest

from repro.cli import main
from repro.harness.bench import GATES, compare_envelopes, run_bench
from repro.harness.report import BENCH_SCHEMA, bench_envelope, validate_envelope

REPO_ROOT = pathlib.Path(__file__).resolve().parents[2]
BASELINE_PATH = REPO_ROOT / "BENCH_pr5.json"
PREVIOUS_PATH = REPO_ROOT / "BENCH_pr4.json"


@pytest.fixture(scope="module")
def envelope():
    return run_bench(pr=5)


def test_committed_baseline_is_valid(envelope):
    assert BASELINE_PATH.is_file(), "BENCH_pr5.json must be committed"
    baseline = json.loads(BASELINE_PATH.read_text())
    assert validate_envelope(baseline) == []
    assert baseline["schema"] == BENCH_SCHEMA
    assert baseline["pr"] == 5
    # the committed file matches what the current code produces
    assert baseline["metrics"] == envelope["metrics"]
    assert baseline["gates"] == envelope["gates"]


def test_pr4_gates_still_pass_against_pr5():
    pr4 = json.loads(PREVIOUS_PATH.read_text())
    pr5 = json.loads(BASELINE_PATH.read_text())
    report = compare_envelopes(pr4, pr5)
    assert report.ok, [r.describe() for r in report.regressions]
    # droplet makespan no worse than the pr4 baseline (outside tolerance)
    assert pr5["metrics"]["droplet.makespan_ns"] \
        <= pr4["metrics"]["droplet.makespan_ns"] * 1.10


def test_incremental_partition_saves_bytes():
    m = json.loads(BASELINE_PATH.read_text())["metrics"]
    assert m["partition.skipped_rounds"] >= 1
    assert m["partition.bytes_moved_per_step"] \
        <= 0.75 * m["partition.eager_bytes_per_step"]


def test_run_bench_envelope_is_valid_and_gated(envelope):
    assert validate_envelope(envelope) == []
    gates = {g["metric"]: g for g in envelope["gates"]}
    assert set(gates) == {g["metric"] for g in GATES}
    # a "higher is better" gate over a zero baseline is meaningless (any
    # value passes); a zero baseline under a "lower" gate is the strictest
    # gate there is — the metric must *stay* zero — so it is allowed.
    # droplet.stall_ns is exactly that: a fully hidden flush train.
    for name, gate in gates.items():
        if gate["direction"] == "higher":
            assert envelope["metrics"][name] != 0, f"{name} gated at zero"


def test_self_compare_is_clean(envelope):
    report = compare_envelopes(envelope, envelope)
    assert report.ok
    assert report.checked == len(envelope["gates"])
    assert report.regressions == []


def test_injected_write_regression_fails_the_gate(envelope):
    current = json.loads(json.dumps(envelope))
    current["metrics"]["droplet.nvbm_writes"] *= 2  # the acceptance probe
    report = compare_envelopes(envelope, current)
    assert not report.ok
    kinds = {(r.metric, r.kind) for r in report.regressions}
    assert ("droplet.nvbm_writes", "regression") in kinds
    reg = next(r for r in report.regressions
               if r.metric == "droplet.nvbm_writes")
    assert reg.ratio == pytest.approx(2.0)
    assert "tolerance" in reg.describe()


def test_higher_is_better_gate_direction(envelope):
    """overlap_ratio_min gates in the 'higher' direction: a drop fails,
    a rise passes."""
    worse = json.loads(json.dumps(envelope))
    worse["metrics"]["droplet.overlap_ratio_min"] *= 0.5
    assert not compare_envelopes(envelope, worse).ok
    better = json.loads(json.dumps(envelope))
    better["metrics"]["droplet.overlap_ratio_min"] *= 1.01
    assert compare_envelopes(envelope, better).ok


def test_small_drift_within_tolerance_passes(envelope):
    current = json.loads(json.dumps(envelope))
    current["metrics"]["droplet.makespan_ns"] *= 1.05  # gate allows 10%
    assert compare_envelopes(envelope, current).ok


def test_missing_metric_is_reported(envelope):
    current = json.loads(json.dumps(envelope))
    del current["metrics"]["replication.retries"]
    report = compare_envelopes(envelope, current)
    assert not report.ok
    assert any(r.kind == "missing" and r.metric == "replication.retries"
               for r in report.regressions)


def test_schema_mismatch_is_reported(envelope):
    current = json.loads(json.dumps(envelope))
    current["schema"] = "repro-bench/v999"
    report = compare_envelopes(envelope, current)
    assert not report.ok
    assert any(r.kind == "schema" for r in report.regressions)


def test_validate_envelope_rejects_malformed():
    assert validate_envelope({}) != []
    bad_gate = bench_envelope(1, "s", {"m": 1.0},
                              [{"metric": "m", "tolerance": 0.1,
                                "direction": "sideways"}])
    assert any("direction" in e for e in validate_envelope(bad_gate))
    ghost_gate = bench_envelope(1, "s", {"m": 1.0},
                                [{"metric": "ghost", "tolerance": 0.1,
                                  "direction": "lower"}])
    assert any("ghost" in e for e in validate_envelope(ghost_gate))


def test_cli_compare_exit_codes(envelope, tmp_path, capsys):
    base = tmp_path / "base.json"
    base.write_text(json.dumps(envelope))
    same = tmp_path / "same.json"
    same.write_text(json.dumps(envelope))
    assert main(["bench", "--compare", str(base),
                 "--current", str(same)]) == 0
    assert "OK" in capsys.readouterr().out

    bad = json.loads(json.dumps(envelope))
    bad["metrics"]["droplet.nvbm_writes"] *= 2
    worse = tmp_path / "worse.json"
    worse.write_text(json.dumps(bad))
    assert main(["bench", "--compare", str(base),
                 "--current", str(worse)]) == 1
    out = capsys.readouterr().out
    assert "droplet.nvbm_writes" in out


def test_cli_rejects_invalid_envelope(tmp_path, capsys):
    junk = tmp_path / "junk.json"
    junk.write_text(json.dumps({"schema": "nope"}))
    assert main(["bench", "--compare", str(junk),
                 "--current", str(junk)]) == 2
    assert "invalid" in capsys.readouterr().err.lower()


def test_bench_is_deterministic(envelope):
    again = run_bench(pr=5)
    assert json.dumps(envelope, sort_keys=True) \
        == json.dumps(again, sort_keys=True)
