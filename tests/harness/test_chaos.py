"""Chaos harness: seeded schedules, invariant checking, shrinking."""

import pytest

from repro.harness.chaos import (
    ChaosEvent,
    ChaosSchedule,
    derive_schedule,
    run_chaos,
    run_trial,
    shrink_schedule,
)
from repro.parallel.faults import LinkFaults


# ----------------------------------------------------------- determinism


def test_derive_schedule_is_deterministic():
    a = derive_schedule(seed=0, trial=3)
    b = derive_schedule(seed=0, trial=3)
    assert a == b
    assert a.events == b.events and a.faults == b.faults


def test_derive_schedule_varies_with_seed_and_trial():
    base = derive_schedule(seed=0, trial=0)
    assert derive_schedule(seed=1, trial=0) != base
    assert derive_schedule(seed=0, trial=1) != base


def test_schedule_shape():
    for trial in range(6):
        sched = derive_schedule(seed=7, trial=trial, steps=10)
        assert sched.steps == 10
        assert 1 <= len(sched.events) <= 3
        for ev in sched.events:
            assert 2 <= ev.step <= 7
            assert ev.kind in ("kill_host", "kill_peer", "kill_both",
                               "partition", "loss_burst", "kill_migration")
            if ev.kind == "kill_migration":
                assert ev.site.startswith("migrate.")
        assert 0.0 <= sched.faults.drop <= 0.25
        assert 0.0 <= sched.faults.duplicate <= 0.15
        assert sched.describe()   # human-readable, never raises


# ------------------------------------------------------------ single trial


def test_quiet_trial_stays_protected():
    sched = ChaosSchedule(seed=0, trial=0, steps=6,
                          faults=LinkFaults(),
                          events=())
    res = run_trial(sched)
    assert res.ok and res.outcome == "protected"
    assert res.violations == []
    assert res.steps_run == 6
    assert res.ships >= 1


def test_kill_host_trial_recovers():
    sched = ChaosSchedule(
        seed=0, trial=0, steps=8,
        faults=LinkFaults(),
        events=(ChaosEvent(kind="kill_host", step=3, returns=True),),
    )
    res = run_trial(sched)
    assert res.ok, res.violations
    assert res.recoveries >= 1
    assert res.events_applied == ["kill_host+reboot@3"]


def test_kill_migration_trial_recovers_each_site():
    from repro.nvbm import sites

    for site in sites.MIGRATE_SITES:
        sched = ChaosSchedule(
            seed=0, trial=0, steps=6,
            faults=LinkFaults(),
            events=(ChaosEvent(kind="kill_migration", step=3, site=site),),
        )
        res = run_trial(sched)
        assert res.ok, (site, res.violations)
        assert res.events_applied == [f"kill_migration[{site}]@3"]


def test_kill_both_trial_reports_degraded_not_crash():
    sched = ChaosSchedule(
        seed=0, trial=0, steps=8,
        faults=LinkFaults(),
        events=(ChaosEvent(kind="kill_both", step=3, returns=False),),
    )
    res = run_trial(sched)
    assert res.ok                       # a typed Degraded is NOT a violation
    assert res.outcome == "degraded"
    assert res.degraded_reason


def test_trial_row_is_json_friendly():
    res = run_trial(derive_schedule(seed=0, trial=0, steps=5))
    row = res.to_row()
    assert row["trial"] == 0 and row["outcome"] in (
        "protected", "degraded", "failed")
    import json

    json.dumps(row)                     # must be serialisable as-is


# ----------------------------------------------------------- full harness


def test_run_chaos_small_pass():
    report = run_chaos(trials=3, seed=0, steps=6)
    assert report.ok
    assert report.passed == 3 and report.failed == 0
    assert report.reproducer is None


def test_run_chaos_only_trial_replays_one():
    report = run_chaos(trials=25, seed=0, steps=6, only_trial=2)
    assert len(report.trials) == 1
    assert report.trials[0].trial == 2


def test_broken_acks_fail_with_minimal_reproducer():
    report = run_chaos(trials=3, seed=0, steps=6, break_acks=True)
    assert not report.ok and report.failed >= 1
    repro = report.reproducer
    assert repro is not None
    assert repro["violations"]
    assert "python -m repro chaos" in repro["command"]
    assert "--break-acks" in repro["command"]
    # protocol breakage needs no injected faults: shrinking strips them all
    assert repro["minimal_events"] == []


def test_shrink_removes_irrelevant_events():
    # under break_acks even the empty schedule fails, so every event and
    # fault of a failing schedule must be shrunk away
    sched = None
    for trial in range(5):
        cand = derive_schedule(seed=0, trial=trial, steps=6)
        if run_trial(cand, break_acks=True).violations:
            sched = cand
            break
    if sched is None:                   # pragma: no cover - seed-dependent
        pytest.skip("no failing trial among the first five")
    minimal = shrink_schedule(sched, break_acks=True)
    assert minimal.events == ()
    assert minimal.faults.drop == 0.0
    assert run_trial(minimal, break_acks=True).violations
