"""Chaos `--pipeline` mode: mid-drain kills of the asynchronous epoch
pipeline mix into the schedules, recovery must land on a whole epoch, and
everything the determinism contract promises still holds — including that
runs *without* the flag derive byte-identical schedules to before."""

import json

from repro.harness.chaos import derive_schedule, run_chaos
from repro.harness.report import render_json


def _serialize(report):
    sections = {"trials": [t.to_row() for t in report.trials]}
    if report.reproducer is not None:
        sections["reproducer"] = [{
            k: json.dumps(v, sort_keys=True)
            for k, v in report.reproducer.items()
        }]
    return render_json(sections, report.ok)


def test_flag_off_derivation_is_unchanged():
    """pipeline=False must be byte-for-byte the original derivation, so
    every seeded reproducer minted before the flag existed stays valid."""
    for trial in range(8):
        base = derive_schedule(0, trial, steps=10)
        off = derive_schedule(0, trial, steps=10, pipeline=False)
        assert base == off
        assert not any(e.kind == "kill_mid_drain" for e in base.events)


def test_pipeline_schedules_contain_mid_drain_kills():
    hits = [t for t in range(30)
            if any(e.kind == "kill_mid_drain"
                   for e in derive_schedule(0, t, steps=10,
                                            pipeline=True).events)]
    assert hits, "the widened pool never drew kill_mid_drain in 30 trials"
    sch = derive_schedule(0, hits[0], steps=10, pipeline=True)
    ev = next(e for e in sch.events if e.kind == "kill_mid_drain")
    assert ev.site.startswith("epoch.")
    assert f"kill_mid_drain[{ev.site}]" in sch.describe()


def test_mid_drain_kill_trials_pass_and_are_deterministic():
    """Trials drawing the new event must hold the recovery-landing
    invariant (no violations), and two runs serialize identically."""
    hit = next(t for t in range(30)
               if any(e.kind == "kill_mid_drain"
                      for e in derive_schedule(0, t, steps=10,
                                               pipeline=True).events))
    a = run_chaos(trials=1, seed=0, steps=10, only_trial=hit, pipeline=True)
    b = run_chaos(trials=1, seed=0, steps=10, only_trial=hit, pipeline=True)
    assert a.ok, a.trials[0].violations
    assert any("kill_mid_drain" in e for e in a.trials[0].events_applied)
    assert _serialize(a) == _serialize(b)


def test_pipeline_reproducer_carries_the_flag():
    """A failing --pipeline run must mint a reproducer command that
    replays with the same (widened) schedule derivation."""
    report = run_chaos(trials=3, seed=0, steps=6, break_acks=True,
                       pipeline=True)
    assert not report.ok
    assert "--pipeline" in report.reproducer["command"]
