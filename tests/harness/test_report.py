"""Table rendering tests."""

from repro.harness.report import fmt, print_table, seconds, table


def test_fmt_floats():
    assert fmt(0.0) == "0"
    assert fmt(3.14159) == "3.14"
    assert fmt(123456.0) == "1.23e+05"
    assert fmt(0.0001) == "0.0001"
    assert fmt(7) == "7"
    assert fmt("x") == "x"


def test_table_alignment():
    out = table("T", ["a", "long-header"], [[1, 2], [333, 4]])
    lines = out.split("\n")
    assert lines[0] == "== T =="
    # all body rows share the header row's width
    widths = {len(loc) for loc in lines[1:]}
    assert len(widths) == 1
    assert "long-header" in lines[1]
    assert lines[2].count("+") == 1  # separator between two columns


def test_table_empty_rows():
    out = table("empty", ["x"], [])
    assert "empty" in out
    assert out.count("\n") == 2  # title, header, separator


def test_print_table(capsys):
    print_table("demo", ["k", "v"], [["a", 1]])
    out = capsys.readouterr().out
    assert "== demo ==" in out
    assert "a" in out


def test_seconds():
    assert seconds(2.5e9) == 2.5
