"""Table rendering tests."""

import numpy as np

from repro.harness.report import fmt, print_table, seconds, table


def test_fmt_floats():
    assert fmt(0.0) == "0"
    assert fmt(3.14159) == "3.14"
    assert fmt(123456.0) == "1.23e+05"
    assert fmt(0.0001) == "0.0001"
    assert fmt(7) == "7"
    assert fmt("x") == "x"


def test_fmt_normalises_every_zero():
    """No table cell may ever read "-0.0" — negative zeros arrive from
    float subtraction in the analysis layer and from NumPy scalars,
    which are Real but not ``float``."""
    assert fmt(-0.0) == "0"
    assert fmt(np.float32(-0.0)) == "0"
    assert fmt(np.float64(-0.0)) == "0"
    # a tiny negative that *rounds* to zero must not keep its sign
    assert "-0" not in fmt(-1e-300)


def test_fmt_numpy_scalars_match_python_floats():
    assert fmt(np.float64(3.14159)) == fmt(3.14159)
    assert fmt(np.float32(0.5)) == "0.50"
    assert fmt(np.int64(7)) == "7"


def test_fmt_preserves_sign_of_real_negatives():
    assert fmt(-3.14159) == "-3.14"
    assert fmt(-0.0001) == "-0.0001"


def test_fmt_bools_are_not_numbers():
    assert fmt(True) == "True"
    assert fmt(False) == "False"


def test_table_golden():
    out = table("wear", ["slot", "writes", "ratio"],
                [[0, 12, 1.5], [1, 3, -0.0], [2, 123456, 0.375]])
    assert out == "\n".join([
        "== wear ==",
        "slot | writes | ratio",
        "-----+--------+------",
        "   0 |     12 |  1.50",
        "   1 |      3 |     0",
        "   2 | 123456 |  0.38",
    ])


def test_table_golden_wide_header():
    out = table("T", ["a", "long-header"], [[1, 2], [333, 4]])
    assert out == "\n".join([
        "== T ==",
        "a   | long-header",
        "----+------------",
        "  1 |           2",
        "333 |           4",
    ])


def test_table_alignment():
    out = table("T", ["a", "long-header"], [[1, 2], [333, 4]])
    lines = out.split("\n")
    assert lines[0] == "== T =="
    # all body rows share the header row's width
    widths = {len(loc) for loc in lines[1:]}
    assert len(widths) == 1
    assert "long-header" in lines[1]
    assert lines[2].count("+") == 1  # separator between two columns


def test_table_empty_rows():
    out = table("empty", ["x"], [])
    assert "empty" in out
    assert out.count("\n") == 2  # title, header, separator


def test_print_table(capsys):
    print_table("demo", ["k", "v"], [["a", 1]])
    out = capsys.readouterr().out
    assert "== demo ==" in out
    assert "a" in out


def test_seconds():
    assert seconds(2.5e9) == 2.5


def test_analyze_envelope_schema_versioned():
    from repro.harness.report import (
        ANALYZE_SCHEMA, json_payload, validate_analyze_envelope,
    )

    env = json_payload({"static": [], "coverage": [{"rule": "x"}]}, ok=False)
    assert env["schema"] == ANALYZE_SCHEMA == "repro-analyze/v1"
    assert env["counts"] == {"static": 0, "coverage": 1}
    assert validate_analyze_envelope(env) == []


def test_validate_analyze_envelope_rejects_malformed():
    from repro.harness.report import json_payload, validate_analyze_envelope

    assert validate_analyze_envelope([]) == ["envelope is not a JSON object"]
    env = json_payload({"static": []}, ok=True)
    env["schema"] = "repro-analyze/v999"
    env["counts"]["static"] = 7
    problems = validate_analyze_envelope(env)
    assert any("schema" in p for p in problems)
    assert any("counts['static']" in p for p in problems)
    env2 = json_payload({}, ok=True)
    env2["sections"] = {"bad": [1, 2]}
    assert any("list of objects" in p
               for p in validate_analyze_envelope(env2))
