"""Fast structural tests of every experiment runner.

The benchmark suite runs the full-size experiments and asserts the paper's
shape claims; these tests run scaled-down variants so the runners' wiring
and result schemas stay covered by `pytest tests/`.
"""

import pytest

from repro.harness import experiments as E
from repro.parallel.runtime import Backend


def test_table2_matches_config():
    rows = E.exp_table2()
    assert [r[0] for r in rows] == ["DRAM", "NVBM"]
    assert rows[0][1:3] == (60.0, 60.0)
    assert rows[1][1:3] == (100.0, 150.0)


def test_fig3_rows_schema():
    rows = E.exp_fig3(steps=12, max_level=4)
    assert len(rows) >= 10
    for r in rows:
        assert 0.0 <= r.overlap_ratio <= 1.0
        assert 1.0 <= r.reduction_vs_two_copies <= 2.0 + 1e-9
        assert r.factor_vs_single_copy >= 1.0 - 1e-9
        assert r.kb_per_1000_octants > 0
        assert r.records_total >= r.octants  # both versions coexist


def test_fig5_oblivious_worse():
    res = E.exp_fig5(max_level=4)
    assert res.writes_oblivious > res.writes_aware > 0
    assert res.pct_more_writes > 0


def test_weak_scaling_small():
    runs = E.exp_weak_scaling(
        backends=(Backend.PM_OCTREE,), points=(1, 4), steps=3,
        elements_per_rank=1e5,
    )
    results = runs[Backend.PM_OCTREE]
    assert len(results) == 2
    assert results[0].makespan_s > 0
    assert results[1].scale_factor > results[0].scale_factor
    bd = E.meshing_breakdown(results[1])
    assert set(bd) == {"construct", "refine", "balance", "partition"}
    assert sum(bd.values()) == pytest.approx(100.0)


def test_strong_scaling_small():
    runs = E.exp_strong_scaling(
        backends=(Backend.PM_OCTREE,), points=(8, 32),
        total_elements=1e6, steps=3,
    )
    a, b = runs[Backend.PM_OCTREE]
    assert b.makespan_s < a.makespan_s  # more ranks -> faster


def test_fig10_small():
    rows = E.exp_fig10(gb_points=(1, 8), nranks=8,
                       target_elements=1e6, steps=4)
    labels = [r.label for r in rows]
    assert labels == ["PM-octree 1GB", "PM-octree 8GB", "in-core",
                      "out-of-core"]
    by = {r.label: r.makespan_s for r in rows}
    assert by["out-of-core"] > by["in-core"]
    assert rows[0].dram_budget_octants < rows[1].dram_budget_octants


def test_fig11_small():
    rows = E.exp_fig11(sizes=((1e6, 4), (8e6, 5)), nranks=8, steps=6,
                       dram_octants=120)
    assert len(rows) == 2
    for r in rows:
        assert r.time_with_s > 0 and r.time_without_s > 0
        assert r.nvbm_writes_with <= r.nvbm_writes_without * 1.05


def test_recovery_small():
    # kill_step must reach the 10-step checkpoint cadence or in-core has
    # nothing to restart from
    res = E.exp_recovery(target_elements=1e6, nranks=8, kill_step=10,
                         max_level=4)
    assert res.pm_same_node_s < res.incore_same_node_s
    assert res.pm_new_node_s >= res.pm_same_node_s
    assert res.incore_new_node_s == res.incore_same_node_s
    assert not res.ooc_new_node_recoverable
    assert res.pm_replica_transfer_s > 0


def test_write_intensity_small():
    res = E.exp_write_intensity(steps=5, max_level=4)
    assert len(res.per_step_pct) == 6  # construction + 5 steps
    assert 0 < res.avg_pct <= res.max_pct < 100


def test_ablation_small():
    rows = E.exp_ablation_sampling(steps=4, max_level=4, dram_octants=60)
    assert [r.policy for r in rows] == ["feature-directed", "history", "none"]
    by = {r.policy: r.nvbm_writes for r in rows}
    assert by["feature-directed"] <= by["none"]
