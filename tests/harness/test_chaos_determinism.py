"""Chaos harness determinism: same seed, same bytes.

The chaos trials drive real replication state machines through injected
fault schedules.  Reproducibility is what makes the shrunk reproducer a
usable artifact: two in-process runs with the same seed must serialize
to *byte-identical* JSON, including the minimized failing schedule.
"""

import json

from repro.harness.chaos import run_chaos
from repro.harness.report import render_json


def _serialize(report):
    sections = {"trials": [t.to_row() for t in report.trials]}
    if report.reproducer is not None:
        sections["reproducer"] = [{
            k: json.dumps(v, sort_keys=True)
            for k, v in report.reproducer.items()
        }]
    return render_json(sections, report.ok)


def test_same_seed_is_byte_identical():
    a = run_chaos(trials=4, seed=0, steps=6)
    b = run_chaos(trials=4, seed=0, steps=6)
    assert _serialize(a) == _serialize(b)


def test_broken_acks_failure_and_reproducer_are_deterministic():
    """break_acks guarantees a violation, which exercises the shrinker —
    the minimized schedule must come out identical both times."""
    a = run_chaos(trials=3, seed=0, steps=6, break_acks=True)
    b = run_chaos(trials=3, seed=0, steps=6, break_acks=True)
    assert not a.ok
    assert a.reproducer is not None
    assert a.reproducer["violations"]
    assert _serialize(a) == _serialize(b)


def test_different_seeds_draw_different_schedules():
    a = run_chaos(trials=4, seed=1, steps=6)
    b = run_chaos(trials=4, seed=2, steps=6)
    events_a = [t.events_applied for t in a.trials]
    events_b = [t.events_applied for t in b.trials]
    assert events_a != events_b


def test_reproducer_replays_the_same_violation():
    report = run_chaos(trials=3, seed=0, steps=6, break_acks=True)
    rep = report.reproducer
    replay = run_chaos(seed=rep["seed"], steps=6, break_acks=True,
                       only_trial=rep["trial"])
    assert len(replay.trials) == 1
    assert list(replay.trials[0].violations) == list(rep["violations"])
