"""Configuration objects: specs, scaling helpers, defaults."""

import pytest

from repro.config import (
    CACHE_LINE_SIZE,
    DISK_SPEC,
    DRAM_SPEC,
    GB,
    GEMINI_SPEC,
    KAMIAK,
    KB,
    MB,
    NVBM_FS_SPEC,
    NVBM_SPEC,
    OCTANT_RECORD_SIZE,
    PFS_SPEC,
    PMOctreeConfig,
    SolverConfig,
    TITAN,
)


def test_units():
    assert KB == 1024
    assert MB == 1024 * KB
    assert GB == 1024 * MB


def test_record_fits_cache_lines():
    assert OCTANT_RECORD_SIZE % CACHE_LINE_SIZE == 0


def test_table2_values():
    assert (DRAM_SPEC.read_latency_ns, DRAM_SPEC.write_latency_ns) == (60, 60)
    assert (NVBM_SPEC.read_latency_ns, NVBM_SPEC.write_latency_ns) == (100, 150)
    assert DRAM_SPEC.volatile and not NVBM_SPEC.volatile


def test_device_spec_scaled():
    slow = NVBM_SPEC.scaled(2.0)
    assert slow.read_latency_ns == 200.0
    assert slow.write_latency_ns == 300.0
    # everything else untouched; original unmodified (frozen dataclass)
    assert slow.endurance_writes == NVBM_SPEC.endurance_writes
    assert NVBM_SPEC.write_latency_ns == 150.0


def test_network_transfer():
    assert GEMINI_SPEC.transfer_ns(0) == 0.0
    t = GEMINI_SPEC.transfer_ns(6_000_000_000)
    assert t == pytest.approx(1e9 + GEMINI_SPEC.latency_us * 1e3)


def test_block_device_ordering():
    # disks are orders of magnitude slower per page than NVBM-as-fs
    assert DISK_SPEC.read_latency_us / NVBM_FS_SPEC.read_latency_us > 1e3
    # shared PFS page is large (1 MB stripes)
    assert PFS_SPEC.page_size == MB


def test_cluster_specs():
    assert TITAN.cores_per_node == 16
    assert TITAN.dram_per_node == 32 * GB
    assert TITAN.network is GEMINI_SPEC
    assert KAMIAK.cores_per_node == 20


def test_pmoctree_config_defaults():
    cfg = PMOctreeConfig()
    assert 0 < cfg.threshold_dram < 1
    assert 0 < cfg.threshold_nvbm < 1
    assert cfg.t_transform > 1.0
    assert cfg.n_sample_max == 100  # the paper's N_sample cap


def test_solver_config_defaults():
    cfg = SolverConfig()
    assert cfg.dim == 2
    assert cfg.min_level < cfg.max_level
    assert cfg.breakup_time > 0
    assert cfg.shutoff_time == float("inf")  # eject forever unless told
    # CFL sanity at defaults: jet crosses less than one finest cell per step
    h_min = 0.5 ** cfg.max_level
    assert cfg.jet_speed * cfg.dt <= 2 * h_min
