"""Mesh extraction: element/vertex counts and hanging-node classification."""

from repro.octree import morton
from repro.octree.mesh import extract_mesh


def test_uniform_mesh_counts(quadtree):
    quadtree.refine_uniform(2)
    mesh = extract_mesh(quadtree)
    assert mesh.num_elements == 16
    assert mesh.num_vertices == 25  # (4+1)^2 grid
    assert mesh.dangling == set()
    assert len(mesh.anchored) == 25


def test_single_cell_mesh(quadtree):
    mesh = extract_mesh(quadtree)
    assert mesh.num_elements == 1
    assert mesh.num_vertices == 4
    assert mesh.dangling == set()


def test_adaptive_mesh_has_hanging_nodes(quadtree):
    kids = quadtree.refine(morton.ROOT_LOC)
    quadtree.refine(kids[0])
    mesh = extract_mesh(quadtree)
    assert mesh.num_elements == 7
    # 2-D: refining one quadrant introduces exactly 2 hanging nodes (the
    # midpoints of the two interior faces shared with coarser quadrants)
    assert len(mesh.dangling) == 2
    # hanging nodes are at (0.5, 0.25) and (0.25, 0.5): fine-int coords at
    # max_level 2 are (2,1) and (1,2)
    hang_coords = {
        c for c, vid in mesh.vertex_ids.items() if vid in mesh.dangling
    }
    assert hang_coords == {(2, 1), (1, 2)}


def test_anchored_dangling_partition(quadtree):
    kids = quadtree.refine(morton.ROOT_LOC)
    quadtree.refine(kids[3])
    mesh = extract_mesh(quadtree)
    all_ids = set(mesh.vertex_ids.values())
    assert mesh.anchored | mesh.dangling == all_ids
    assert mesh.anchored & mesh.dangling == set()


def test_elements_reference_valid_vertices(quadtree):
    quadtree.refine(morton.ROOT_LOC)
    mesh = extract_mesh(quadtree)
    valid = set(mesh.vertex_ids.values())
    for _loc, corners in mesh.elements:
        assert len(corners) == 4
        assert set(corners) <= valid


def test_3d_uniform_mesh(octree3d):
    octree3d.refine_uniform(1)
    mesh = extract_mesh(octree3d)
    assert mesh.num_elements == 8
    assert mesh.num_vertices == 27  # 3^3
    assert mesh.dangling == set()


def test_3d_adaptive_hanging_nodes(octree3d):
    kids = octree3d.refine(morton.ROOT_LOC)
    octree3d.refine(kids[0])
    mesh = extract_mesh(octree3d)
    assert mesh.num_elements == 15
    # Refining one octant of 8: each of the 3 interior faces carries a face
    # center + 4 edge midpoints = 5 hanging nodes, but the 3 edges shared
    # between face pairs are double-counted: 3*5 - 3 = 12.
    assert len(mesh.dangling) == 12


def test_vertex_position(quadtree):
    quadtree.refine(morton.ROOT_LOC)
    mesh = extract_mesh(quadtree)
    vid = mesh.vertex_ids[(1, 1)]  # domain center at max_level 1
    assert mesh.vertex_position(vid) == (0.5, 0.5)
