"""Traversal-order tests."""

from repro.octree import morton
from repro.octree.traversal import (
    foreach_leaf,
    leaves_zorder,
    levelorder,
    postorder,
    preorder,
)


def test_preorder_parent_before_children(quadtree):
    quadtree.refine_uniform(2)
    seen = {}
    for i, loc in enumerate(preorder(quadtree)):
        seen[loc] = i
    for loc in seen:
        if loc != morton.ROOT_LOC:
            assert seen[morton.parent_of(loc, 2)] < seen[loc]
    assert len(seen) == quadtree.num_octants()


def test_postorder_children_before_parent(quadtree):
    quadtree.refine_uniform(2)
    seen = {}
    for i, loc in enumerate(postorder(quadtree)):
        seen[loc] = i
    for loc in seen:
        if loc != morton.ROOT_LOC:
            assert seen[morton.parent_of(loc, 2)] > seen[loc]
    assert len(seen) == quadtree.num_octants()


def test_leaves_zorder_is_sorted_by_zkey(quadtree):
    kids = quadtree.refine(morton.ROOT_LOC)
    quadtree.refine(kids[2])
    leaves = list(leaves_zorder(quadtree))
    assert set(leaves) == set(quadtree.leaves())
    keys = [morton.zorder_key(leaf, 2, 4) for leaf in leaves]
    assert keys == sorted(keys)


def test_levelorder_is_monotone_in_level(quadtree):
    quadtree.refine_uniform(2)
    levels = [morton.level_of(leaf, 2) for leaf in levelorder(quadtree)]
    assert levels == sorted(levels)


def test_foreach_leaf_counts(quadtree):
    quadtree.refine_uniform(2)
    visited = []
    n = foreach_leaf(quadtree, visited.append)
    assert n == 16
    assert len(visited) == 16


def test_preorder_subtree_start(quadtree):
    kids = quadtree.refine(morton.ROOT_LOC)
    quadtree.refine(kids[0])
    sub = list(preorder(quadtree, start=kids[0]))
    assert sub[0] == kids[0]
    assert len(sub) == 5  # subtree root + its 4 children
