"""Locational-code arithmetic tests (both dims, plus property checks)."""

import pytest
from hypothesis import given, strategies as st

from repro.octree import morton


@pytest.mark.parametrize("dim,expected", [(2, 4), (3, 8)])
def test_fanout(dim, expected):
    assert morton.fanout(dim) == expected


def test_fanout_rejects_bad_dim():
    with pytest.raises(ValueError):
        morton.fanout(4)


def test_root_properties():
    assert morton.level_of(morton.ROOT_LOC, 2) == 0
    assert morton.level_of(morton.ROOT_LOC, 3) == 0
    with pytest.raises(ValueError):
        morton.parent_of(morton.ROOT_LOC, 2)
    with pytest.raises(ValueError):
        morton.child_index_of(morton.ROOT_LOC, 2)


def test_child_parent_roundtrip_2d():
    for c in range(4):
        child = morton.child_of(morton.ROOT_LOC, 2, c)
        assert morton.parent_of(child, 2) == morton.ROOT_LOC
        assert morton.child_index_of(child, 2) == c
        assert morton.level_of(child, 2) == 1


def test_children_of():
    kids = morton.children_of(morton.ROOT_LOC, 3)
    assert len(kids) == 8
    assert len(set(kids)) == 8
    assert all(morton.parent_of(k, 3) == morton.ROOT_LOC for k in kids)


def test_child_of_rejects_bad_index():
    with pytest.raises(ValueError):
        morton.child_of(morton.ROOT_LOC, 2, 4)


def test_coords_roundtrip_2d():
    # level 2, all 16 cells
    for x in range(4):
        for y in range(4):
            loc = morton.loc_from_coords(2, (x, y), 2)
            assert morton.coords_of(loc, 2) == (x, y)
            assert morton.level_of(loc, 2) == 2


def test_coords_axis_convention():
    # child index bit 0 is x: child 1 of root has x=1, y=0
    loc = morton.child_of(morton.ROOT_LOC, 2, 1)
    assert morton.coords_of(loc, 2) == (1, 0)
    loc = morton.child_of(morton.ROOT_LOC, 2, 2)
    assert morton.coords_of(loc, 2) == (0, 1)


def test_loc_from_coords_validates():
    with pytest.raises(ValueError):
        morton.loc_from_coords(1, (2, 0), 2)
    with pytest.raises(ValueError):
        morton.loc_from_coords(1, (0,), 2)


def test_ancestor_at_and_is_ancestor():
    loc = morton.loc_from_coords(3, (5, 2), 2)
    anc1 = morton.ancestor_at(loc, 2, 1)
    assert morton.level_of(anc1, 2) == 1
    assert morton.is_ancestor(anc1, loc, 2)
    assert not morton.is_ancestor(loc, anc1, 2)
    assert not morton.is_ancestor(loc, loc, 2)
    assert morton.ancestor_at(loc, 2, 3) == loc
    with pytest.raises(ValueError):
        morton.ancestor_at(loc, 2, 4)


def test_neighbor_of_interior():
    loc = morton.loc_from_coords(2, (1, 1), 2)
    right = morton.neighbor_of(loc, 2, 0, +1)
    assert morton.coords_of(right, 2) == (2, 1)
    up = morton.neighbor_of(loc, 2, 1, +1)
    assert morton.coords_of(up, 2) == (1, 2)


def test_neighbor_of_boundary_is_none():
    loc = morton.loc_from_coords(2, (0, 0), 2)
    assert morton.neighbor_of(loc, 2, 0, -1) is None
    assert morton.neighbor_of(loc, 2, 1, -1) is None
    far = morton.loc_from_coords(2, (3, 3), 2)
    assert morton.neighbor_of(far, 2, 0, +1) is None


def test_neighbor_of_validates():
    loc = morton.loc_from_coords(1, (0, 0), 2)
    with pytest.raises(ValueError):
        morton.neighbor_of(loc, 2, 0, 0)
    with pytest.raises(ValueError):
        morton.neighbor_of(loc, 2, 2, 1)


def test_neighbors_all_counts():
    # interior cell in 2-D has 8 neighbors, corner has 3
    interior = morton.loc_from_coords(2, (1, 1), 2)
    assert len(morton.neighbors_all(interior, 2)) == 8
    corner = morton.loc_from_coords(2, (0, 0), 2)
    assert len(morton.neighbors_all(corner, 2)) == 3
    # interior cell in 3-D has 26
    interior3 = morton.loc_from_coords(2, (1, 1, 1), 3)
    assert len(morton.neighbors_all(interior3, 3)) == 26


def test_cell_geometry():
    loc = morton.loc_from_coords(1, (1, 0), 2)
    lo, hi = morton.cell_bounds(loc, 2)
    assert lo == (0.5, 0.0)
    assert hi == (1.0, 0.5)
    assert morton.cell_center(loc, 2) == (0.75, 0.25)
    assert morton.cell_size(loc, 2) == 0.5


def test_zorder_ancestors_sort_first():
    parent = morton.loc_from_coords(1, (0, 0), 2)
    child = morton.child_of(parent, 2, 0)
    kp = morton.zorder_key(parent, 2, 5)
    kc = morton.zorder_key(child, 2, 5)
    assert kp < kc


def test_zorder_respects_space_order():
    a = morton.loc_from_coords(2, (0, 0), 2)
    b = morton.loc_from_coords(2, (3, 3), 2)
    assert morton.zorder_key(a, 2, 4) < morton.zorder_key(b, 2, 4)


def test_zorder_rejects_too_deep():
    loc = morton.loc_from_coords(3, (0, 0), 2)
    with pytest.raises(ValueError):
        morton.zorder_key(loc, 2, 2)


def test_containing_leaf_path():
    target = morton.loc_from_coords(3, (5, 2), 2)
    path = list(morton.containing_leaf_path(morton.ROOT_LOC, (5, 2), 3, 2))
    assert path[0] == morton.ROOT_LOC
    assert path[-1] == target
    assert len(path) == 4
    for parent, child in zip(path, path[1:]):
        assert morton.parent_of(child, 2) == parent


@given(
    dim=st.sampled_from([2, 3]),
    level=st.integers(min_value=0, max_value=8),
    data=st.data(),
)
def test_coords_roundtrip_property(dim, level, data):
    side = 1 << level
    coords = tuple(
        data.draw(st.integers(min_value=0, max_value=side - 1)) for _ in range(dim)
    )
    loc = morton.loc_from_coords(level, coords, dim)
    assert morton.coords_of(loc, dim) == coords
    assert morton.level_of(loc, dim) == level


@given(dim=st.sampled_from([2, 3]), steps=st.lists(st.integers(0, 7), max_size=10))
def test_descend_ascend_property(dim, steps):
    loc = morton.ROOT_LOC
    for s in steps:
        loc = morton.child_of(loc, dim, s % morton.fanout(dim))
    for _ in steps:
        loc = morton.parent_of(loc, dim)
    assert loc == morton.ROOT_LOC


@given(
    dim=st.sampled_from([2, 3]),
    level=st.integers(min_value=1, max_value=6),
    axis=st.integers(min_value=0, max_value=2),
    direction=st.sampled_from([-1, 1]),
    data=st.data(),
)
def test_neighbor_is_involution_property(dim, level, axis, direction, data):
    if axis >= dim:
        axis = axis % dim
    side = 1 << level
    coords = tuple(
        data.draw(st.integers(min_value=0, max_value=side - 1)) for _ in range(dim)
    )
    loc = morton.loc_from_coords(level, coords, dim)
    n = morton.neighbor_of(loc, dim, axis, direction)
    if n is not None:
        assert morton.neighbor_of(n, dim, axis, -direction) == loc
