"""VTK export tests: structure, winding, fields, dangling markers."""

import pytest

from repro.octree import morton
from repro.octree.mesh import extract_mesh
from repro.octree.vtkout import mesh_to_vtk, tree_to_vtk


def _parse_sections(vtk: str):
    lines = vtk.strip().split("\n")
    assert lines[0] == "# vtk DataFile Version 3.0"
    assert lines[2] == "ASCII"
    assert lines[3] == "DATASET UNSTRUCTURED_GRID"
    return lines


def test_single_cell_quad(quadtree):
    vtk = tree_to_vtk(quadtree, payload_slot=None)
    lines = _parse_sections(vtk)
    assert "POINTS 4 double" in vtk
    assert "CELLS 1 5" in vtk
    assert "CELL_TYPES 1" in vtk
    i = lines.index("CELL_TYPES 1")
    assert lines[i + 1] == "9"  # VTK_QUAD


def test_quad_winding_is_ccw(quadtree):
    vtk = tree_to_vtk(quadtree, payload_slot=None)
    lines = vtk.strip().split("\n")
    pts_start = lines.index("POINTS 4 double") + 1
    pts = [tuple(map(float, lines[pts_start + k].split())) for k in range(4)]
    cell_line = lines[lines.index("CELLS 1 5") + 1].split()
    ids = list(map(int, cell_line[1:]))
    poly = [pts[i] for i in ids]
    # shoelace formula: positive area = counter-clockwise
    area = 0.0
    for (x0, y0, _), (x1, y1, _) in zip(poly, poly[1:] + poly[:1]):
        area += x0 * y1 - x1 * y0
    assert area > 0


def test_uniform_mesh_counts(quadtree):
    quadtree.refine_uniform(2)
    mesh = extract_mesh(quadtree)
    vtk = mesh_to_vtk(mesh)
    assert "POINTS 25 double" in vtk
    assert "CELLS 16 80" in vtk
    assert vtk.count("\n9\n") + vtk.endswith("9\n") >= 1  # 16 quad type rows


def test_cell_field_emitted(quadtree):
    quadtree.refine(morton.ROOT_LOC)
    for i, loc in enumerate(sorted(quadtree.leaves())):
        quadtree.set_payload(loc, (float(i), 0, 0, 0))
    vtk = tree_to_vtk(quadtree, payload_slot=0, field_name="vof")
    assert "CELL_DATA 4" in vtk
    assert "SCALARS vof double 1" in vtk
    # all four payload values appear after the lookup table
    tail = vtk.split("LOOKUP_TABLE default", 1)[1]
    for i in range(4):
        assert f"\n{float(i):.10g}" in "\n" + tail


def test_dangling_markers(quadtree):
    kids = quadtree.refine(morton.ROOT_LOC)
    quadtree.refine(kids[0])
    mesh = extract_mesh(quadtree)
    vtk = mesh_to_vtk(mesh)
    assert "SCALARS dangling int 1" in vtk
    marks = vtk.strip().split("\n")[-mesh.num_vertices:]
    assert marks.count("1") == len(mesh.dangling) == 2


def test_field_length_validated(quadtree):
    mesh = extract_mesh(quadtree)
    with pytest.raises(ValueError):
        mesh_to_vtk(mesh, {"bad": [1.0, 2.0]})


def test_title_single_line(quadtree):
    mesh = extract_mesh(quadtree)
    with pytest.raises(ValueError):
        mesh_to_vtk(mesh, title="two\nlines")


def test_3d_hexahedra(octree3d):
    octree3d.refine(morton.ROOT_LOC)
    vtk = tree_to_vtk(octree3d, payload_slot=None)
    assert "POINTS 27 double" in vtk
    assert "CELLS 8 72" in vtk
    lines = vtk.strip().split("\n")
    i = lines.index("CELL_TYPES 8")
    assert lines[i + 1] == "12"  # VTK_HEXAHEDRON
    # points carry a real z coordinate
    pts_start = lines.index("POINTS 27 double") + 1
    zs = {lines[pts_start + k].split()[2] for k in range(27)}
    assert len(zs) == 3  # 0, 0.5, 1


def test_hex_winding_consistent(octree3d):
    """Signed volume of the emitted hexahedron must be positive (no
    inside-out cells)."""
    import numpy as np

    vtk = tree_to_vtk(octree3d, payload_slot=None)
    lines = vtk.strip().split("\n")
    pts_start = lines.index("POINTS 8 double") + 1
    pts = np.array([
        list(map(float, lines[pts_start + k].split())) for k in range(8)
    ])
    ids = list(map(int, lines[lines.index("CELLS 1 9") + 1].split()[1:]))
    p = pts[ids]
    # VTK hex: 0-3 bottom CCW, 4-7 top CCW; build 5 tetrahedra and sum
    base = p[0]
    vol = 0.0
    for tet in ((1, 2, 5), (2, 7, 5), (2, 3, 7), (5, 7, 4), (2, 6, 7)):
        a, b, c = p[tet[0]] - base, p[tet[1]] - base, p[tet[2]] - base
        vol += np.dot(a, np.cross(b, c)) / 6.0
    assert vol > 0
