"""Bottom-up completion of linear octrees (Sundar et al.'s construction)."""

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.errors import ConsistencyError
from repro.octree import morton
from repro.octree.linear import LinearOctree, _fill_interval


def test_fill_whole_domain_is_root():
    # level 0: the whole span collapses to the root octant
    assert _fill_interval(0, 16, 2, 2) == [morton.ROOT_LOC]


def test_fill_empty_interval():
    assert _fill_interval(5, 5, 2, 3) == []


def test_fill_unaligned_interval():
    # [1, 4) at max_level 2 (span 16): three level-2 cells? positions 1,2,3
    out = _fill_interval(1, 4, 2, 2)
    # position 1 aligned only to 1 -> level-2 cell; [2,4) aligned to 2? 2 %
    # 4 != 0 at k=1 width=4... width at k=1 is 4, 2%4!=0 -> level-2 cells
    assert len(out) == 3
    assert all(morton.level_of(leaf, 2) == 2 for leaf in out)


def test_fill_aligned_block_coarsens():
    # [4, 8) at max_level 2 is exactly one level-1 quadrant
    out = _fill_interval(4, 8, 2, 2)
    assert len(out) == 1
    assert morton.level_of(out[0], 2) == 1


def test_complete_empty_seed_set_is_root():
    lin = LinearOctree.complete(2, [])
    assert list(lin) == [morton.ROOT_LOC]
    lin.validate_complete()


def test_complete_single_deep_seed():
    seed = morton.loc_from_coords(3, (5, 2), 2)
    lin = LinearOctree.complete(2, [seed])
    lin.validate_complete()
    assert lin.contains(seed)
    # minimal: only 3 siblings per ancestor level beyond the seed
    assert len(lin) == 1 + 3 * 3


def test_complete_two_seeds():
    a = morton.loc_from_coords(2, (0, 0), 2)
    b = morton.loc_from_coords(2, (3, 3), 2)
    lin = LinearOctree.complete(2, [a, b])
    lin.validate_complete()
    assert lin.contains(a) and lin.contains(b)


def test_complete_rejects_overlapping_seeds():
    parent = morton.loc_from_coords(1, (0, 0), 2)
    child = morton.child_of(parent, 2, 0)
    with pytest.raises(ConsistencyError):
        LinearOctree.complete(2, [parent, child])


def test_complete_3d():
    seed = morton.loc_from_coords(2, (1, 2, 3), 3)
    lin = LinearOctree.complete(3, [seed])
    lin.validate_complete()
    assert lin.contains(seed)
    assert len(lin) == 1 + 7 * 2  # 7 siblings per ancestor level


def _no_full_filler_sibling_groups(lin, seeds, dim):
    present = set(int(leaf) for leaf in lin.locs)
    seeds = set(seeds)
    for loc in present:
        if loc == morton.ROOT_LOC:
            continue
        parent = morton.parent_of(loc, dim)
        siblings = morton.children_of(parent, dim)
        if all(s in present for s in siblings):
            # a full sibling group is only allowed if it contains a seed
            # (otherwise the construction should have emitted the parent)
            assert any(s in seeds for s in siblings), (
                f"non-minimal: full filler sibling group under {parent:#x}"
            )


@settings(max_examples=40, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(
    dim=st.sampled_from([2, 3]),
    data=st.data(),
)
def test_complete_properties(dim, data):
    """Completion tiles the domain, keeps all seeds, and is minimal."""
    max_level = 4 if dim == 2 else 3
    n_seeds = data.draw(st.integers(0, 6))
    seeds = set()
    for _ in range(n_seeds):
        level = data.draw(st.integers(1, max_level))
        coords = tuple(
            data.draw(st.integers(0, (1 << level) - 1)) for _ in range(dim)
        )
        cand = morton.loc_from_coords(level, coords, dim)
        # keep the seed set overlap-free
        ok = all(
            cand != s
            and not morton.is_ancestor(cand, s, dim)
            and not morton.is_ancestor(s, cand, dim)
            for s in seeds
        )
        if ok:
            seeds.add(cand)
    lin = LinearOctree.complete(dim, seeds, max_level=max_level)
    lin.validate_complete()
    for s in seeds:
        assert lin.contains(s)
    _no_full_filler_sibling_groups(lin, seeds, dim)
