"""Property-based mesh-extraction checks on random balanced trees."""

import random

from hypothesis import HealthCheck, given, settings, strategies as st

from repro.config import DRAM_SPEC
from repro.nvbm.arena import MemoryArena
from repro.nvbm.clock import SimClock
from repro.nvbm.pointers import ARENA_DRAM
from repro.octree import morton
from repro.octree.balance import balance_tree
from repro.octree.mesh import extract_mesh
from repro.octree.tree import PointerOctree


def _random_balanced_tree(seed: int, dim: int = 2, max_level: int = 5):
    rng = random.Random(seed)
    clock = SimClock()
    tree = PointerOctree(
        MemoryArena(ARENA_DRAM, DRAM_SPEC, clock, 1 << 16), dim=dim
    )
    for _ in range(10):
        leaves = [
            leaf for leaf in tree.leaves() if morton.level_of(leaf, dim) < max_level
        ]
        if not leaves:
            break
        tree.refine(rng.choice(leaves))
    balance_tree(tree, max_level=max_level)
    return tree


@settings(max_examples=20, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(seed=st.integers(0, 10_000))
def test_mesh_extraction_properties(seed):
    tree = _random_balanced_tree(seed)
    mesh = extract_mesh(tree)

    # elements == leaves, each with the full corner count
    assert mesh.num_elements == tree.num_leaves()
    fanout_corners = 1 << tree.dim
    for _loc, corners in mesh.elements:
        assert len(corners) == fanout_corners
        assert len(set(corners)) == fanout_corners  # no degenerate cells

    # vertex ids are dense
    ids = set(mesh.vertex_ids.values())
    assert ids == set(range(mesh.num_vertices))

    # anchored/dangling partition the vertex set
    assert mesh.anchored | mesh.dangling == ids
    assert mesh.anchored & mesh.dangling == set()

    # a vertex is dangling iff it's a corner of some leaf AND the midpoint
    # of a coarser leaf's edge: so it can never be a corner of every leaf
    # touching it. Corner vertices of the domain are always anchored.
    scale = 1 << mesh.max_level
    for corner in [(0, 0), (0, scale), (scale, 0), (scale, scale)]:
        vid = mesh.vertex_ids.get(corner)
        if vid is not None:
            assert vid in mesh.anchored


@settings(max_examples=15, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(seed=st.integers(0, 10_000))
def test_dangling_nodes_sit_on_level_jumps(seed):
    """Every dangling vertex is the midpoint of an edge of some coarser
    leaf, i.e. it lies strictly inside that leaf's boundary."""
    tree = _random_balanced_tree(seed)
    mesh = extract_mesh(tree)
    if not mesh.dangling:
        return
    coords_of_vid = {v: c for c, v in mesh.vertex_ids.items()}
    leaf_corner_sets = {
        loc: set(corners) for loc, corners in mesh.elements
    }
    scale = 1 << mesh.max_level
    for vid in mesh.dangling:
        x, y = coords_of_vid[vid]
        hosted = False
        for loc, corner_vids in leaf_corner_sets.items():
            if vid in corner_vids:
                continue
            level = morton.level_of(loc, 2)
            side = scale >> level
            bx, by = (c * side for c in morton.coords_of(loc, 2))
            on_boundary = (
                bx <= x <= bx + side and by <= y <= by + side
                and (x in (bx, bx + side) or y in (by, by + side))
            )
            if on_boundary:
                hosted = True
                break
        assert hosted, f"dangling vertex {vid} hangs on no coarser leaf"


@settings(max_examples=10, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(seed=st.integers(0, 10_000))
def test_vtk_export_never_crashes_and_counts_match(seed):
    from repro.octree.vtkout import mesh_to_vtk

    tree = _random_balanced_tree(seed)
    mesh = extract_mesh(tree)
    vtk = mesh_to_vtk(mesh)
    assert f"POINTS {mesh.num_vertices} double" in vtk
    assert f"CELL_TYPES {mesh.num_elements}" in vtk
    assert vtk.count("\n9") >= mesh.num_elements  # one type row per quad
