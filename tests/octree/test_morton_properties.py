"""Seeded property tests for locational-code arithmetic.

Plain stdlib ``random`` with fixed seeds (no extra dependencies): each test
draws a few hundred random codes and checks an algebraic property that must
hold for *every* code, not just the hand-picked ones in test_morton.py.
"""

import random

import pytest

from repro.octree import morton

DIMS = (2, 3)
MAX_LEVEL = 7


def random_loc(rng, dim, max_level=MAX_LEVEL, min_level=0):
    level = rng.randint(min_level, max_level)
    loc = morton.ROOT_LOC
    for _ in range(level):
        loc = morton.child_of(loc, dim, rng.randrange(morton.fanout(dim)))
    return loc


@pytest.mark.parametrize("dim", DIMS)
def test_coords_round_trip(dim):
    rng = random.Random(1000 + dim)
    for _ in range(300):
        loc = random_loc(rng, dim)
        level = morton.level_of(loc, dim)
        coords = morton.coords_of(loc, dim)
        assert len(coords) == dim
        assert all(0 <= c < (1 << level) for c in coords)
        assert morton.loc_from_coords(level, coords, dim) == loc


@pytest.mark.parametrize("dim", DIMS)
def test_coords_round_trip_from_coords_side(dim):
    rng = random.Random(2000 + dim)
    for _ in range(300):
        level = rng.randint(0, MAX_LEVEL)
        coords = tuple(rng.randrange(1 << level) for _ in range(dim))
        loc = morton.loc_from_coords(level, coords, dim)
        assert morton.level_of(loc, dim) == level
        assert morton.coords_of(loc, dim) == coords


@pytest.mark.parametrize("dim", DIMS)
def test_parent_child_inverse(dim):
    rng = random.Random(3000 + dim)
    for _ in range(300):
        loc = random_loc(rng, dim, min_level=1)
        parent = morton.parent_of(loc, dim)
        idx = morton.child_index_of(loc, dim)
        assert morton.child_of(parent, dim, idx) == loc
        assert morton.is_ancestor(parent, loc, dim)
        # child coords = 2*parent coords + child-index bits, axis by axis
        pc = morton.coords_of(parent, dim)
        cc = morton.coords_of(loc, dim)
        for axis in range(dim):
            assert cc[axis] == 2 * pc[axis] + ((idx >> axis) & 1)


def _dfs_preorder(dim, depth, rng, max_nodes=400):
    """Random tree, preorder leaves-and-internals in Morton child order."""
    out = []
    stack = [morton.ROOT_LOC]
    while stack and len(out) < max_nodes:
        loc = stack.pop()
        out.append(loc)
        if morton.level_of(loc, dim) < depth and rng.random() < 0.6:
            # push in reverse so children pop in Morton order
            stack.extend(reversed(morton.children_of(loc, dim)))
    return out


@pytest.mark.parametrize("dim", DIMS)
def test_zorder_key_strictly_increasing_along_dfs_preorder(dim):
    """The Etree B-tree key is exactly DFS (ancestors-first) order."""
    for seed in range(5):
        rng = random.Random(4000 + dim * 10 + seed)
        order = _dfs_preorder(dim, depth=5, rng=rng)
        keys = [morton.zorder_key(loc, dim, 5) for loc in order]
        assert all(a < b for a, b in zip(keys, keys[1:]))


@pytest.mark.parametrize("dim", DIMS)
def test_zorder_key_orders_ancestors_before_descendants(dim):
    rng = random.Random(5000 + dim)
    for _ in range(200):
        loc = random_loc(rng, dim, min_level=1, max_level=MAX_LEVEL)
        anc_level = rng.randint(0, morton.level_of(loc, dim) - 1)
        anc = morton.ancestor_at(loc, dim, anc_level)
        assert morton.zorder_key(anc, dim, MAX_LEVEL) \
            < morton.zorder_key(loc, dim, MAX_LEVEL)


@pytest.mark.parametrize("dim", DIMS)
def test_neighbor_of_neighbor_is_identity(dim):
    """neighbor(+d) then neighbor(-d) along the same axis returns home."""
    rng = random.Random(6000 + dim)
    checked = 0
    for _ in range(400):
        loc = random_loc(rng, dim)
        axis = rng.randrange(dim)
        direction = rng.choice((-1, 1))
        n = morton.neighbor_of(loc, dim, axis, direction)
        if n is None:
            level = morton.level_of(loc, dim)
            c = morton.coords_of(loc, dim)[axis]
            # None only at the domain boundary on that side
            assert c == (0 if direction < 0 else (1 << level) - 1)
            continue
        assert morton.neighbor_of(n, dim, axis, -direction) == loc
        checked += 1
    assert checked > 100  # most draws must exercise the symmetric case


@pytest.mark.parametrize("dim", DIMS)
def test_neighbor_differs_by_one_on_one_axis(dim):
    rng = random.Random(7000 + dim)
    for _ in range(300):
        loc = random_loc(rng, dim, min_level=1)
        axis = rng.randrange(dim)
        direction = rng.choice((-1, 1))
        n = morton.neighbor_of(loc, dim, axis, direction)
        if n is None:
            continue
        a, b = morton.coords_of(loc, dim), morton.coords_of(n, dim)
        assert morton.level_of(n, dim) == morton.level_of(loc, dim)
        for ax in range(dim):
            assert b[ax] - a[ax] == (direction if ax == axis else 0)


@pytest.mark.parametrize("dim", DIMS)
def test_neighbors_all_are_mutual(dim):
    rng = random.Random(8000 + dim)
    for _ in range(60):
        loc = random_loc(rng, dim, max_level=5)
        for n in morton.neighbors_all(loc, dim):
            assert loc in morton.neighbors_all(n, dim)


@pytest.mark.parametrize("dim", DIMS)
def test_cell_bounds_nest_in_parent(dim):
    rng = random.Random(9000 + dim)
    for _ in range(200):
        loc = random_loc(rng, dim, min_level=1)
        lo, hi = morton.cell_bounds(loc, dim)
        plo, phi = morton.cell_bounds(morton.parent_of(loc, dim), dim)
        assert all(pl <= l_ and h <= ph
                   for pl, l_, h, ph in zip(plo, lo, hi, phi))
