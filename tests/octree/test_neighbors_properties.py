"""Seeded property tests for leaf-neighbor resolution on random trees.

Builds random *balanced* adaptive trees (2:1 level constraint, as every
caller of the neighbor machinery guarantees via balance_tree) and checks
symmetry and geometric adjacency of the resolved neighbor relation.
"""

import random

import pytest

from repro.octree import morton
from repro.octree.balance import balance_tree
from repro.octree.neighbors import face_neighbor_leaves, leaf_neighbor
from repro.octree.tree import PointerOctree


def random_balanced_tree(arena, dim, seed, depth=4, rounds=12):
    rng = random.Random(seed)
    tree = PointerOctree(arena, dim=dim)
    for _ in range(rounds):
        leaves = list(tree.leaves())
        loc = rng.choice(leaves)
        if morton.level_of(loc, dim) < depth:
            tree.refine(loc)
    balance_tree(tree, max_level=depth)
    return tree


def _faces_touch(a, b, dim):
    """True when cells a and b share a (dim-1)-face in the unit cube."""
    alo, ahi = morton.cell_bounds(a, dim)
    blo, bhi = morton.cell_bounds(b, dim)
    eps = 1e-12
    touching_axes = 0
    for ax in range(dim):
        if abs(ahi[ax] - blo[ax]) < eps or abs(bhi[ax] - alo[ax]) < eps:
            touching_axes += 1
        elif ahi[ax] - blo[ax] < eps or bhi[ax] - alo[ax] < eps:
            return False  # disjoint on this axis: at most corner contact
    # exactly one axis touches, the others overlap with positive measure
    if touching_axes != 1:
        return False
    overlaps = 0
    for ax in range(dim):
        if min(ahi[ax], bhi[ax]) - max(alo[ax], blo[ax]) > eps:
            overlaps += 1
    return overlaps == dim - 1


@pytest.mark.parametrize("dim", (2, 3))
@pytest.mark.parametrize("seed", range(4))
def test_face_neighbor_leaves_symmetry(dram_arena, dim, seed):
    """If B is listed as a face neighbor of leaf A, A is listed for B."""
    tree = random_balanced_tree(dram_arena, dim, seed)
    leaves = list(tree.leaves())
    adjacency = {
        loc: {n for n, _ax, _d in face_neighbor_leaves(tree, loc)}
        for loc in leaves
    }
    for loc, nbrs in adjacency.items():
        for n in nbrs:
            assert loc in adjacency[n], (
                f"dim={dim} seed={seed}: {n:#x} neighbors {loc:#x} "
                "but not vice versa"
            )


@pytest.mark.parametrize("dim", (2, 3))
@pytest.mark.parametrize("seed", range(4))
def test_face_neighbors_are_geometric_face_sharers(dram_arena, dim, seed):
    tree = random_balanced_tree(dram_arena, dim, seed)
    for loc in tree.leaves():
        for n, _axis, _direction in face_neighbor_leaves(tree, loc):
            assert _faces_touch(loc, n, dim)


@pytest.mark.parametrize("dim", (2, 3))
@pytest.mark.parametrize("seed", range(4))
def test_every_interior_face_has_a_neighbor(dram_arena, dim, seed):
    """A face not on the domain boundary resolves to >= 1 leaf."""
    tree = random_balanced_tree(dram_arena, dim, seed)
    for loc in tree.leaves():
        level = morton.level_of(loc, dim)
        coords = morton.coords_of(loc, dim)
        for axis in range(dim):
            for direction in (-1, 1):
                at_boundary = (
                    coords[axis] == 0 if direction < 0
                    else coords[axis] == (1 << level) - 1
                )
                resolved = [
                    n for n, ax, d in face_neighbor_leaves(tree, loc)
                    if ax == axis and d == direction
                ]
                if at_boundary:
                    assert resolved == []
                else:
                    assert resolved, (
                        f"interior face axis={axis} dir={direction} of "
                        f"{loc:#x} resolved to nothing"
                    )


@pytest.mark.parametrize("dim", (2, 3))
def test_leaf_neighbor_equal_level_matches_morton(dram_arena, dim):
    """On a uniform tree every neighbor is same-level Morton arithmetic."""
    tree = PointerOctree(dram_arena, dim=dim)
    for _ in range(2):
        for loc in list(tree.leaves()):
            tree.refine(loc)
    for loc in tree.leaves():
        for axis in range(dim):
            for direction in (-1, 1):
                expect = morton.neighbor_of(loc, dim, axis, direction)
                assert leaf_neighbor(tree, loc, axis, direction) == expect
