"""RefinementEngine behaviour: criteria, level caps, sibling-vote coarsening."""

import pytest

from repro.octree import morton
from repro.octree.balance import is_balanced
from repro.octree.refine import Action, RefinementEngine, refine_where
from repro.octree.store import validate_tree


def _refine_lower_left(loc, payload):
    # A usable AMR criterion must fire on any cell *intersecting* the region
    # of interest, or refinement never starts from the coarse root.
    lo, _hi = morton.cell_bounds(loc, 2)
    if lo[0] < 0.5 and lo[1] < 0.5:
        return Action.REFINE
    return Action.KEEP


def test_engine_refines_matching_leaves(quadtree):
    engine = RefinementEngine(_refine_lower_left, max_level=3)
    res = engine.adapt(quadtree, rounds=10)
    assert res.refined > 0
    # lower-left corner should reach max level
    leaf = quadtree.find_leaf_at((0.01, 0.01))
    assert morton.level_of(leaf, 2) == 3
    assert is_balanced(quadtree)
    validate_tree(quadtree)


def test_engine_respects_max_level(quadtree):
    engine = RefinementEngine(lambda lv, p: Action.REFINE, max_level=2)
    engine.adapt(quadtree, rounds=10)
    levels = [morton.level_of(lv, 2) for lv in quadtree.leaves()]
    assert max(levels) == 2
    assert len(levels) == 16


def test_engine_coarsens_on_unanimous_vote(quadtree):
    quadtree.refine_uniform(2)
    engine = RefinementEngine(lambda lv, p: Action.COARSEN, min_level=1)
    res = engine.adapt(quadtree, rounds=10)
    assert res.coarsened > 0
    levels = [morton.level_of(lv, 2) for lv in quadtree.leaves()]
    assert max(levels) == 1  # stopped by min_level


def test_engine_mixed_votes_do_not_coarsen(quadtree):
    quadtree.refine_uniform(1)

    def one_holdout(loc, payload):
        # leaf (0,0) wants to stay; everyone else wants to coarsen
        if morton.coords_of(loc, 2) == (0, 0):
            return Action.KEEP
        return Action.COARSEN

    engine = RefinementEngine(one_holdout, min_level=0)
    res = engine.adapt(quadtree)
    assert res.coarsened == 0
    assert quadtree.num_octants() == 5


def test_engine_stops_when_stable(quadtree):
    engine = RefinementEngine(lambda lv, p: Action.KEEP)
    res = engine.adapt(quadtree, rounds=100)
    assert not res.changed


def test_engine_validates_levels():
    with pytest.raises(ValueError):
        RefinementEngine(lambda lv, p: Action.KEEP, min_level=5, max_level=2)


def test_payload_criterion(quadtree):
    quadtree.refine_uniform(1)
    target = morton.loc_from_coords(1, (1, 1), 2)
    quadtree.set_payload(target, (1.0, 0, 0, 0))

    def by_payload(loc, payload):
        return Action.REFINE if payload[0] > 0.5 else Action.KEEP

    engine = RefinementEngine(by_payload, max_level=2)
    res = engine.adapt(quadtree)
    assert res.refined == 1
    assert not quadtree.is_leaf(target)


def test_refine_where(quadtree):
    n = refine_where(
        quadtree,
        lambda loc: morton.cell_bounds(loc, 2)[0][0] < 0.3,
        max_level=3,
    )
    assert n > 0
    leaf = quadtree.find_leaf_at((0.05, 0.5))
    assert morton.level_of(leaf, 2) == 3
    coarse = quadtree.find_leaf_at((0.9, 0.9))
    assert morton.level_of(coarse, 2) < 3
