"""Leaf-neighbor resolution on adaptive (non-uniform) trees."""

import pytest

from repro.octree import morton
from repro.octree.neighbors import (
    face_neighbor_leaves,
    finer_face_neighbors,
    leaf_neighbor,
    neighbor_level_gap,
)


@pytest.fixture
def adaptive(quadtree):
    """Root refined once, then the (0,0) child refined again.

    Leaves: four level-2 cells in the lower-left quadrant, three level-1
    quadrants elsewhere.
    """
    kids = quadtree.refine(morton.ROOT_LOC)
    quadtree.refine(kids[0])
    return quadtree


def test_equal_level_neighbor(adaptive):
    loc = morton.loc_from_coords(2, (0, 0), 2)
    n = leaf_neighbor(adaptive, loc, 0, +1)
    assert n == morton.loc_from_coords(2, (1, 0), 2)


def test_coarser_neighbor(adaptive):
    # level-2 cell (1,1)'s +x neighbor code is level-2 (2,1), which does not
    # exist; its parent, quadrant (1,0) at level 1, is the leaf.
    loc = morton.loc_from_coords(2, (1, 1), 2)
    n = leaf_neighbor(adaptive, loc, 0, +1)
    assert n == morton.loc_from_coords(1, (1, 0), 2)
    assert adaptive.is_leaf(n)


def test_boundary_neighbor_is_none(adaptive):
    loc = morton.loc_from_coords(2, (0, 0), 2)
    assert leaf_neighbor(adaptive, loc, 0, -1) is None
    assert leaf_neighbor(adaptive, loc, 1, -1) is None


def test_finer_face_neighbors(adaptive):
    # quadrant (1,0) looking -x sees the two level-2 cells on its west face
    loc = morton.loc_from_coords(1, (1, 0), 2)
    fine = finer_face_neighbors(adaptive, loc, 0, -1)
    expected = {
        morton.loc_from_coords(2, (1, 0), 2),
        morton.loc_from_coords(2, (1, 1), 2),
    }
    assert set(fine) == expected


def test_finer_face_neighbors_empty_when_same_level(adaptive):
    loc = morton.loc_from_coords(1, (1, 0), 2)
    # +x is the domain boundary
    assert finer_face_neighbors(adaptive, loc, 0, +1) == []


def test_face_neighbor_leaves_enumeration(adaptive):
    loc = morton.loc_from_coords(1, (1, 0), 2)
    found = list(face_neighbor_leaves(adaptive, loc))
    leaves = {f[0] for f in found}
    # west: two fine cells; north: quadrant (1,1)
    assert morton.loc_from_coords(2, (1, 0), 2) in leaves
    assert morton.loc_from_coords(2, (1, 1), 2) in leaves
    assert morton.loc_from_coords(1, (1, 1), 2) in leaves
    assert len(found) == 3


def test_neighbor_level_gap(adaptive):
    fine = morton.loc_from_coords(2, (1, 1), 2)
    assert neighbor_level_gap(adaptive, fine) == 1
    # quadrant (1,1) only touches the refined quadrant at a corner, so its
    # *face* gap is 0
    quadtree_leaf = morton.loc_from_coords(1, (1, 1), 2)
    assert neighbor_level_gap(adaptive, quadtree_leaf) == 0
    # quadrant (1,0) shares a face with the two fine west cells -> gap 1
    east = morton.loc_from_coords(1, (1, 0), 2)
    assert neighbor_level_gap(adaptive, east) == 1


def test_3d_neighbors(octree3d):
    kids = octree3d.refine(morton.ROOT_LOC)
    octree3d.refine(kids[0])
    loc = morton.loc_from_coords(2, (1, 1, 1), 3)
    n = leaf_neighbor(octree3d, loc, 2, +1)
    assert n == morton.loc_from_coords(1, (0, 0, 1), 3)
