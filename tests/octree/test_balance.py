"""2:1 balance tests, including hypothesis-driven random refinement."""

from hypothesis import given, settings, strategies as st

from repro.config import DRAM_SPEC
from repro.nvbm.arena import MemoryArena
from repro.nvbm.clock import SimClock
from repro.nvbm.pointers import ARENA_DRAM
from repro.octree import morton
from repro.octree.balance import balance_tree, find_violation, is_balanced
from repro.octree.store import validate_tree
from repro.octree.tree import PointerOctree


def _fresh_tree(dim=2):
    clock = SimClock()
    arena = MemoryArena(ARENA_DRAM, DRAM_SPEC, clock, capacity_octants=1 << 17)
    return PointerOctree(arena, dim=dim)


def test_uniform_tree_is_balanced(quadtree):
    quadtree.refine_uniform(3)
    assert is_balanced(quadtree)
    assert balance_tree(quadtree) == 0  # no work needed


def _inner_corner_chain(tree, depth):
    """Refine root's (0,0) child, then repeatedly the child nearest the
    domain center.  Unlike a corner-aligned chain (which is naturally
    face-balanced), the deep cells end up face-adjacent to level-1 leaves.
    """
    loc = tree.refine(morton.ROOT_LOC)[0]  # (0,0) quadrant
    for _ in range(depth - 1):
        loc = tree.refine(loc)[-1]  # child 3/7: the inner corner
    return loc


def test_single_deep_refinement_unbalances(quadtree):
    _inner_corner_chain(quadtree, 3)
    assert not is_balanced(quadtree)
    assert find_violation(quadtree) is not None


def test_balance_fixes_violations(quadtree):
    _inner_corner_chain(quadtree, 4)
    n = balance_tree(quadtree)
    assert n > 0
    assert is_balanced(quadtree)
    validate_tree(quadtree)


def test_balance_is_idempotent(quadtree):
    _inner_corner_chain(quadtree, 4)
    balance_tree(quadtree)
    assert balance_tree(quadtree) == 0


def test_balance_3d():
    tree = _fresh_tree(dim=3)
    _inner_corner_chain(tree, 3)
    assert not is_balanced(tree)
    balance_tree(tree)
    assert is_balanced(tree)
    validate_tree(tree)


def test_balance_respects_max_level(quadtree):
    _inner_corner_chain(quadtree, 4)
    octants_before = quadtree.num_octants()
    # capping at level 1 forbids any repair refinement (repairs would need
    # to create level-2+ leaves), so the tree must be left unchanged
    balance_tree(quadtree, max_level=1)
    assert quadtree.num_octants() == octants_before


@settings(max_examples=25, deadline=None)
@given(seed=st.integers(min_value=0, max_value=10_000))
def test_balance_random_trees_property(seed):
    """Property: after balance_tree, any random tree is 2:1 balanced and
    still tiles the domain."""
    import random

    rng = random.Random(seed)
    tree = _fresh_tree()
    for _ in range(12):
        leaves = [leaf for leaf in tree.leaves() if morton.level_of(leaf, 2) < 6]
        if not leaves:
            break
        tree.refine(rng.choice(leaves))
    balance_tree(tree, max_level=6)
    assert is_balanced(tree)
    validate_tree(tree)


def test_balance_seeds_subset(quadtree):
    """Incremental balance starting from just-refined seeds also reaches a
    balanced state."""
    loc = quadtree.refine(morton.ROOT_LOC)[0]
    created = []
    for _ in range(3):
        kids = quadtree.refine(loc)
        created = kids
        loc = kids[-1]
    balance_tree(quadtree, seeds=created)
    assert is_balanced(quadtree)
