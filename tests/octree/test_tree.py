"""PointerOctree structural tests."""

import pytest

from repro.errors import ReproError
from repro.nvbm.clock import Category
from repro.octree import morton
from repro.octree.store import validate_tree
from repro.octree.tree import PointerOctree


def test_new_tree_is_single_root_leaf(quadtree):
    assert quadtree.num_octants() == 1
    assert quadtree.is_leaf(morton.ROOT_LOC)
    assert list(quadtree.leaves()) == [morton.ROOT_LOC]
    validate_tree(quadtree)


def test_refine_root(quadtree):
    kids = quadtree.refine(morton.ROOT_LOC)
    assert len(kids) == 4
    assert quadtree.num_octants() == 5
    assert not quadtree.is_leaf(morton.ROOT_LOC)
    assert all(quadtree.is_leaf(k) for k in kids)
    validate_tree(quadtree)


def test_refine_3d(octree3d):
    kids = octree3d.refine(morton.ROOT_LOC)
    assert len(kids) == 8
    assert octree3d.num_octants() == 9
    validate_tree(octree3d)


def test_refine_non_leaf_rejected(quadtree):
    quadtree.refine(morton.ROOT_LOC)
    with pytest.raises(ReproError):
        quadtree.refine(morton.ROOT_LOC)


def test_refine_missing_rejected(quadtree):
    with pytest.raises(ReproError):
        quadtree.refine(morton.loc_from_coords(3, (0, 0), 2))


def test_children_inherit_payload(quadtree):
    quadtree.set_payload(morton.ROOT_LOC, (0.5, 1.0, 2.0, 3.0))
    kids = quadtree.refine(morton.ROOT_LOC)
    for k in kids:
        assert quadtree.get_payload(k) == (0.5, 1.0, 2.0, 3.0)


def test_coarsen_roundtrip(quadtree):
    kids = quadtree.refine(morton.ROOT_LOC)
    quadtree.coarsen(morton.ROOT_LOC)
    assert quadtree.num_octants() == 1
    assert quadtree.is_leaf(morton.ROOT_LOC)
    assert not any(quadtree.exists(k) for k in kids)
    validate_tree(quadtree)


def test_coarsen_leaf_rejected(quadtree):
    with pytest.raises(ReproError):
        quadtree.coarsen(morton.ROOT_LOC)


def test_coarsen_with_grandchildren_rejected(quadtree):
    kids = quadtree.refine(morton.ROOT_LOC)
    quadtree.refine(kids[0])
    with pytest.raises(ReproError):
        quadtree.coarsen(morton.ROOT_LOC)


def test_refine_uniform(quadtree):
    quadtree.refine_uniform(3)
    leaves = list(quadtree.leaves())
    assert len(leaves) == 4**3
    assert all(morton.level_of(leaf, 2) == 3 for leaf in leaves)
    # total octants: 1 + 4 + 16 + 64
    assert quadtree.num_octants() == 85
    validate_tree(quadtree)


def test_payload_set_get(quadtree):
    quadtree.refine(morton.ROOT_LOC)
    loc = morton.loc_from_coords(1, (1, 1), 2)
    quadtree.set_payload(loc, (9.0, 8.0, 7.0, 6.0))
    assert quadtree.get_payload(loc) == (9.0, 8.0, 7.0, 6.0)
    # siblings untouched
    other = morton.loc_from_coords(1, (0, 0), 2)
    assert quadtree.get_payload(other) == (0.0, 0.0, 0.0, 0.0)


def test_payload_of_missing_rejected(quadtree):
    with pytest.raises(ReproError):
        quadtree.get_payload(12345)


def test_find_leaf_at(quadtree):
    quadtree.refine_uniform(2)
    loc = quadtree.find_leaf_at((0.9, 0.1))
    assert morton.coords_of(loc, 2) == (3, 0)
    loc = quadtree.find_leaf_at((0.0, 0.0))
    assert morton.coords_of(loc, 2) == (0, 0)


def test_find_leaf_at_validates_dim(quadtree):
    with pytest.raises(ValueError):
        quadtree.find_leaf_at((0.5, 0.5, 0.5))


def test_memory_traffic_charged(clock, quadtree):
    before = clock.category_ns(Category.MEM_DRAM)
    quadtree.refine_uniform(2)
    assert clock.category_ns(Category.MEM_DRAM) > before


def test_rebuild_index_matches(quadtree):
    quadtree.refine_uniform(2)
    loc = morton.loc_from_coords(2, (1, 2), 2)
    quadtree.set_payload(loc, (5.0, 0.0, 0.0, 0.0))
    index_before = dict(quadtree._index)
    leaves_before = set(quadtree._leaf_set)
    quadtree.rebuild_index()
    assert quadtree._index == index_before
    assert quadtree._leaf_set == leaves_before
    assert quadtree.get_payload(loc)[0] == 5.0
    quadtree.check_record_consistency()


def test_record_parent_child_links(quadtree):
    kids = quadtree.refine(morton.ROOT_LOC)
    root_rec = quadtree.get_record(morton.ROOT_LOC)
    for i, k in enumerate(kids):
        assert root_rec.children[i] == quadtree.handle_of(k)
        child_rec = quadtree.get_record(k)
        assert child_rec.parent == quadtree.handle_of(morton.ROOT_LOC)


def test_invalid_dim_rejected(dram_arena):
    with pytest.raises(ValueError):
        PointerOctree(dram_arena, dim=1)
