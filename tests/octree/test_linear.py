"""Linear octree tests: ordering, search, splitting, completeness."""

import pytest

from repro.errors import ConsistencyError
from repro.octree import morton
from repro.octree.linear import LinearOctree


def _adaptive_quadtree(quadtree):
    kids = quadtree.refine(morton.ROOT_LOC)
    quadtree.refine(kids[1])
    return quadtree


def test_from_tree_roundtrip(quadtree):
    _adaptive_quadtree(quadtree)
    loc = morton.loc_from_coords(1, (0, 1), 2)
    quadtree.set_payload(loc, (3.0, 1.0, 0.0, 0.0))
    lin = LinearOctree.from_tree(quadtree)
    assert len(lin) == 7
    assert set(lin) == set(quadtree.leaves())
    assert lin.payload_of(loc) == (3.0, 1.0, 0.0, 0.0)


def test_sorted_by_zorder(quadtree):
    _adaptive_quadtree(quadtree)
    lin = LinearOctree.from_tree(quadtree)
    assert list(lin.keys) == sorted(lin.keys)


def test_index_of_and_contains(quadtree):
    _adaptive_quadtree(quadtree)
    lin = LinearOctree.from_tree(quadtree)
    present = morton.loc_from_coords(1, (0, 0), 2)
    absent = morton.loc_from_coords(1, (1, 0), 2)  # refined away
    assert lin.contains(present)
    assert not lin.contains(absent)
    assert lin.index_of(absent) == -1


def test_payload_of_missing_raises(quadtree):
    lin = LinearOctree.from_tree(quadtree)
    with pytest.raises(KeyError):
        lin.payload_of(morton.loc_from_coords(2, (0, 0), 2))


def test_find_enclosing(quadtree):
    _adaptive_quadtree(quadtree)
    lin = LinearOctree.from_tree(quadtree)
    # a virtual deep cell inside the (0,0) quadrant resolves to that leaf
    deep = morton.loc_from_coords(3, (1, 1), 2)
    i = lin.find_enclosing(deep)
    assert i >= 0
    assert int(lin.locs[i]) == morton.loc_from_coords(1, (0, 0), 2)
    # exact hit
    exact = morton.loc_from_coords(1, (0, 0), 2)
    assert int(lin.locs[lin.find_enclosing(exact)]) == exact


def test_validate_complete_accepts_tiling(quadtree):
    _adaptive_quadtree(quadtree)
    lin = LinearOctree.from_tree(quadtree)
    lin.validate_complete()


def test_validate_complete_rejects_gap():
    locs = [morton.loc_from_coords(1, (0, 0), 2),
            morton.loc_from_coords(1, (1, 1), 2)]  # missing two quadrants
    lin = LinearOctree(2, locs)
    with pytest.raises(ConsistencyError):
        lin.validate_complete()


def test_split_ranges_cover_everything(quadtree):
    quadtree.refine_uniform(3)
    lin = LinearOctree.from_tree(quadtree)
    ranges = lin.split_ranges(5)
    assert len(ranges) == 5
    assert ranges[0][0] == 0
    assert ranges[-1][1] == len(lin)
    for (_a, b), (c, _d) in zip(ranges, ranges[1:]):
        assert b == c
    sizes = [b - a for a, b in ranges]
    assert max(sizes) - min(sizes) <= 1


def test_split_more_parts_than_leaves(quadtree):
    lin = LinearOctree.from_tree(quadtree)  # 1 leaf
    ranges = lin.split_ranges(4)
    nonempty = [r for r in ranges if r[1] > r[0]]
    assert len(nonempty) == 1


def test_split_rejects_nonpositive(quadtree):
    lin = LinearOctree.from_tree(quadtree)
    with pytest.raises(ValueError):
        lin.split_ranges(0)


def test_slice_and_merge_roundtrip(quadtree):
    quadtree.refine_uniform(2)
    lin = LinearOctree.from_tree(quadtree)
    (a0, a1), (b0, b1) = lin.split_ranges(2)
    left, right = lin.slice(a0, a1), lin.slice(b0, b1)
    merged = left.merged_with(right)
    assert set(merged) == set(lin)
    merged.validate_complete()


def test_merge_dim_mismatch():
    a = LinearOctree(2, [morton.ROOT_LOC])
    b = LinearOctree(3, [morton.ROOT_LOC])
    with pytest.raises(ValueError):
        a.merged_with(b)
