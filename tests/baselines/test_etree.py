"""Out-of-core Etree baseline: correctness + its characteristic costs."""

import pytest

from repro.config import NVBM_FS_SPEC
from repro.baselines.etree import ETREE_MAX_LEVEL, EtreeOctree
from repro.errors import ReproError
from repro.nvbm.clock import Category, SimClock
from repro.octree import morton
from repro.octree.balance import balance_tree, is_balanced
from repro.octree.store import validate_tree
from repro.storage.block import BlockDevice


@pytest.fixture
def clock():
    return SimClock()


@pytest.fixture
def etree(clock):
    return EtreeOctree(BlockDevice(NVBM_FS_SPEC, clock), dim=2)


def test_fresh_tree(etree):
    assert etree.is_leaf(morton.ROOT_LOC)
    assert etree.exists(morton.ROOT_LOC)
    assert etree.num_leaves() == 1
    validate_tree(etree)


def test_refine_and_implied_internal_octants(etree):
    kids = etree.refine(morton.ROOT_LOC)
    assert len(kids) == 4
    assert not etree.is_leaf(morton.ROOT_LOC)
    assert etree.exists(morton.ROOT_LOC)  # implied by stored descendants
    assert all(etree.is_leaf(k) for k in kids)
    assert etree.num_leaves() == 4
    validate_tree(etree)


def test_refine_non_leaf_rejected(etree):
    etree.refine(morton.ROOT_LOC)
    with pytest.raises(ReproError):
        etree.refine(morton.ROOT_LOC)


def test_coarsen_roundtrip(etree):
    etree.refine(morton.ROOT_LOC)
    for k in morton.children_of(morton.ROOT_LOC, 2):
        etree.set_payload(k, (2.0, 0, 0, 0))
    etree.coarsen(morton.ROOT_LOC)
    assert etree.is_leaf(morton.ROOT_LOC)
    assert etree.num_leaves() == 1
    # restriction: parent payload is the child mean
    assert etree.get_payload(morton.ROOT_LOC)[0] == 2.0
    validate_tree(etree)


def test_coarsen_missing_child_rejected(etree):
    kids = etree.refine(morton.ROOT_LOC)
    etree.refine(kids[0])
    with pytest.raises(ReproError):
        etree.coarsen(morton.ROOT_LOC)


def test_payload_roundtrip(etree):
    kids = etree.refine(morton.ROOT_LOC)
    etree.set_payload(kids[2], (1.0, 2.0, 3.0, 4.0))
    assert etree.get_payload(kids[2]) == (1.0, 2.0, 3.0, 4.0)


def test_payload_of_internal_rejected(etree):
    etree.refine(morton.ROOT_LOC)
    with pytest.raises(ReproError):
        etree.get_payload(morton.ROOT_LOC)  # only leaves are stored


def test_children_inherit_payload(etree):
    etree.set_payload(morton.ROOT_LOC, (5.0, 0, 0, 0))
    for k in etree.refine(morton.ROOT_LOC):
        assert etree.get_payload(k)[0] == 5.0


def test_every_octant_access_is_page_io(clock, etree):
    etree.refine(morton.ROOT_LOC)
    reads0 = etree.device.stats.page_reads
    writes0 = etree.device.stats.page_writes
    etree.set_payload(morton.children_of(morton.ROOT_LOC, 2)[0], (1, 0, 0, 0))
    # one logical update = index descent reads + a page RMW (§5.4 point 1-2)
    assert etree.device.stats.page_reads - reads0 >= 2
    assert etree.device.stats.page_writes - writes0 >= 1


def test_io_time_dwarfs_memory_time(clock, etree):
    for _leaf in list(etree.leaves()):
        pass
    etree.refine(morton.ROOT_LOC)
    assert clock.category_ns(Category.IO) > 0
    assert clock.category_ns(Category.IO) > clock.category_ns(Category.MEM_DRAM)


def test_balance_on_etree(etree):
    loc = etree.refine(morton.ROOT_LOC)[0]
    for _ in range(2):
        loc = etree.refine(loc)[-1]
    assert not is_balanced(etree)
    balance_tree(etree)
    assert is_balanced(etree)
    validate_tree(etree)


def test_balance_cost_is_io_heavy(clock, etree):
    loc = etree.refine(morton.ROOT_LOC)[0]
    for _ in range(2):
        loc = etree.refine(loc)[-1]
    reads0 = etree.device.stats.page_reads
    balance_tree(etree)
    # pointer-free balance does many index searches (§5.4 point 3)
    assert etree.device.stats.page_reads - reads0 > 20


def test_durable_across_crash(clock, etree):
    kids = etree.refine(morton.ROOT_LOC)
    etree.set_payload(kids[1], (9.0, 0, 0, 0))
    etree.device.crash()  # no-op: block storage is durable
    assert etree.recover_check() == 4
    assert etree.get_payload(kids[1])[0] == 9.0


def test_slot_recycling(etree):
    etree.refine(morton.ROOT_LOC)
    pages_after_refine = etree.device.bytes_used()
    etree.coarsen(morton.ROOT_LOC)
    etree.refine(morton.ROOT_LOC)
    # freed slots were reused: no new page allocations
    assert etree.device.bytes_used() == pages_after_refine


def test_max_depth_guard(clock):
    etree = EtreeOctree(BlockDevice(NVBM_FS_SPEC, clock), dim=2)
    loc = morton.ROOT_LOC
    # descend to the depth cap cheaply by refining one chain
    for _ in range(ETREE_MAX_LEVEL):
        loc = etree.refine(loc)[0]
    with pytest.raises(ReproError):
        etree.refine(loc)


def test_3d_etree(clock):
    etree = EtreeOctree(BlockDevice(NVBM_FS_SPEC, clock), dim=3)
    kids = etree.refine(morton.ROOT_LOC)
    assert len(kids) == 8
    validate_tree(etree)
