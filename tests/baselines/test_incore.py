"""In-core baseline: meshing + snapshot checkpoint/restore."""

import pytest

from repro.config import DRAM_SPEC, NVBM_FS_SPEC
from repro.baselines.incore import CheckpointPolicy, InCoreOctree
from repro.errors import RecoveryError
from repro.nvbm.arena import MemoryArena
from repro.nvbm.clock import Category, SimClock
from repro.nvbm.pointers import ARENA_DRAM
from repro.octree import morton
from repro.octree.store import validate_tree
from repro.storage.block import BlockDevice
from repro.storage.filesystem import SimFileSystem


@pytest.fixture
def clock():
    return SimClock()


@pytest.fixture
def arena(clock):
    return MemoryArena(ARENA_DRAM, DRAM_SPEC, clock, 1 << 14)


@pytest.fixture
def fs(clock):
    return SimFileSystem(BlockDevice(NVBM_FS_SPEC, clock))


def _build(arena, dim=2):
    t = InCoreOctree(arena, dim=dim)
    for _ in range(2):
        for leaf in list(t.leaves()):
            t.refine(leaf)
    for i, leaf in enumerate(sorted(t.leaves())):
        t.set_payload(leaf, (float(i), 0.0, 0.0, 0.0))
    return t


def test_requires_volatile_arena(clock):
    from repro.config import NVBM_SPEC
    from repro.nvbm.pointers import ARENA_NVBM

    nvbm = MemoryArena(ARENA_NVBM, NVBM_SPEC, clock, 64)
    with pytest.raises(ValueError):
        InCoreOctree(nvbm)


def test_checkpoint_restore_roundtrip(clock, arena, fs):
    t = _build(arena)
    sig = {loc: t.get_payload(loc) for loc in t.leaves()}
    written = t.checkpoint(fs, "snap.gfs")
    assert written > 0
    # crash: DRAM gone
    arena.crash()
    fresh = MemoryArena(ARENA_DRAM, DRAM_SPEC, clock, 1 << 14)
    t2 = InCoreOctree.restore_from(fs, "snap.gfs", fresh)
    assert {loc: t2.get_payload(loc) for loc in t2.leaves()} == sig
    validate_tree(t2)


def test_checkpoint_cost_scales_with_tree(clock, arena, fs):
    t = _build(arena)
    io0 = clock.category_ns(Category.IO)
    small = t.checkpoint(fs, "a.gfs")
    io_small = clock.category_ns(Category.IO) - io0
    for _ in range(2):  # grow well past one filesystem page
        for leaf in list(t.leaves()):
            t.refine(leaf)
    io1 = clock.category_ns(Category.IO)
    big = t.checkpoint(fs, "b.gfs")
    io_big = clock.category_ns(Category.IO) - io1
    assert big > small
    assert io_big > io_small  # full-tree I/O every time: the §1 bottleneck


def test_restore_missing_snapshot(fs, arena):
    with pytest.raises(RecoveryError):
        InCoreOctree.restore_from(fs, "ghost.gfs", arena)


def test_restore_corrupt_snapshot(clock, fs, arena):
    f = fs.create("bad.gfs")
    f.append(b"not a snapshot at all")
    with pytest.raises(RecoveryError):
        InCoreOctree.restore_from(fs, "bad.gfs", arena)


def test_restore_truncated_snapshot(clock, arena, fs):
    t = _build(arena)
    t.checkpoint(fs, "snap.gfs")
    blob = fs.open("snap.gfs").read_all()
    f = fs.create("trunc.gfs")
    f.append(blob[: len(blob) // 2])
    fresh = MemoryArena(ARENA_DRAM, DRAM_SPEC, clock, 1 << 14)
    with pytest.raises(RecoveryError):
        InCoreOctree.restore_from(fs, "trunc.gfs", fresh)


def test_internal_payloads_survive_roundtrip(clock, arena, fs):
    t = _build(arena)
    t.set_payload(morton.ROOT_LOC, (42.0, 0, 0, 0))
    t.checkpoint(fs, "s.gfs")
    fresh = MemoryArena(ARENA_DRAM, DRAM_SPEC, clock, 1 << 14)
    t2 = InCoreOctree.restore_from(fs, "s.gfs", fresh)
    assert t2.get_payload(morton.ROOT_LOC)[0] == 42.0
    t2.coarsen(morton.loc_from_coords(1, (0, 0), 2))
    validate_tree(t2)


def test_checkpoint_policy_cadence(clock, arena, fs):
    t = _build(arena)
    policy = CheckpointPolicy(fs, interval=10)
    writes = [policy.maybe_checkpoint(t, step) for step in range(1, 31)]
    assert sum(1 for w in writes if w > 0) == 3  # steps 10, 20, 30
    assert policy.latest() == "snapshot.gfs"


def test_checkpoint_policy_validates(fs):
    with pytest.raises(ValueError):
        CheckpointPolicy(fs, interval=0)
    with pytest.raises(RecoveryError):
        CheckpointPolicy(fs).latest()


def test_3d_roundtrip(clock, fs):
    arena = MemoryArena(ARENA_DRAM, DRAM_SPEC, clock, 1 << 14)
    t = InCoreOctree(arena, dim=3)
    t.refine(morton.ROOT_LOC)
    t.checkpoint(fs, "3d.gfs")
    fresh = MemoryArena(ARENA_DRAM, DRAM_SPEC, clock, 1 << 14)
    t2 = InCoreOctree.restore_from(fs, "3d.gfs", fresh)
    assert t2.dim == 3
    assert t2.num_leaves() == 8
