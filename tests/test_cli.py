"""Command-line interface tests."""

import pytest

from repro.cli import EXPERIMENTS, build_parser, main


def test_list(capsys):
    assert main(["list"]) == 0
    out = capsys.readouterr().out
    for name in EXPERIMENTS:
        assert name in out


def test_unknown_experiment(capsys):
    assert main(["experiment", "fig99"]) == 2
    assert "unknown experiment" in capsys.readouterr().err


def test_experiment_table2(capsys):
    assert main(["experiment", "table2"]) == 0
    out = capsys.readouterr().out
    assert "DRAM" in out and "NVBM" in out
    assert "150" in out


def test_experiment_fig5(capsys):
    assert main(["experiment", "fig5"]) == 0
    out = capsys.readouterr().out
    assert "oblivious" in out and "aware" in out


def test_simulate_pm(capsys):
    assert main(["simulate", "--steps", "6", "--max-level", "4"]) == 0
    out = capsys.readouterr().out
    assert "droplet ejection on pm-octree" in out
    assert "simulated execution time" in out


def test_simulate_other_backends(capsys):
    for backend in ("in-core", "out-of-core"):
        assert main(["simulate", "--backend", backend, "--steps", "3",
                     "--max-level", "3"]) == 0
        assert backend in capsys.readouterr().out


def test_export_vtk(tmp_path, capsys):
    out_file = tmp_path / "mesh.vtk"
    assert main(["export-vtk", "--out", str(out_file), "--steps", "4",
                 "--max-level", "4"]) == 0
    content = out_file.read_text()
    assert content.startswith("# vtk DataFile Version 3.0")
    assert "SCALARS vof double 1" in content


def test_analyze_static(capsys):
    assert main(["analyze", "--static"]) == 0
    assert "pmlint: clean" in capsys.readouterr().out


def test_analyze_static_json(capsys):
    import json

    assert main(["analyze", "--static", "--json"]) == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["ok"] is True
    assert payload["sections"]["static"] == []
    assert payload["counts"]["static"] == 0


def test_analyze_static_flags_planted_bug(tmp_path, capsys):
    bad = tmp_path / "planted.py"
    bad.write_text(
        "def persist(self):\n"
        "    self.nvbm.new_octant(rec)\n"
        "    self.nvbm.roots.set(SLOT_PREV, h)\n"
    )
    assert main(["analyze", "--static", "--path", str(bad)]) == 1
    assert "missing-flush" in capsys.readouterr().out


def test_analyze_trace(capsys):
    assert main(["analyze", "--trace", "--steps", "3"]) == 0
    assert "ordering trace: clean" in capsys.readouterr().out


def test_chaos_smoke(capsys):
    assert main(["chaos", "--trials", "2", "--seed", "0",
                 "--steps", "5"]) == 0
    out = capsys.readouterr().out
    assert "chaos:" in out and "2 passed" in out


def test_chaos_json(capsys):
    import json

    assert main(["chaos", "--trials", "2", "--seed", "0", "--steps", "5",
                 "--json"]) == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["ok"] is True
    assert len(payload["sections"]["trials"]) == 2
    assert payload["sections"]["reproducer"] == []


def test_chaos_break_acks_fails_with_reproducer(capsys):
    assert main(["chaos", "--trials", "2", "--seed", "0", "--steps", "5",
                 "--break-acks"]) == 1
    out = capsys.readouterr().out
    assert "FAILURE" in out and "minimal seeded reproducer" in out
    assert "--break-acks" in out


def test_parser_requires_command():
    with pytest.raises(SystemExit):
        build_parser().parse_args([])


def test_bad_backend_rejected():
    with pytest.raises(SystemExit):
        build_parser().parse_args(["simulate", "--backend", "magnetic-tape"])


PLANTED_INTERPROCEDURAL = (
    "SLOT_PREV = 0\n"
    "\n"
    "def plant_store(tree, rec, h):\n"
    "    tree.nvbm.write_payload(h, rec)\n"
    "\n"
    "def plant_persist(tree, rec, h):\n"
    "    plant_store(tree, rec, h)\n"
    "    tree.nvbm.roots.set(SLOT_PREV, h)\n"
)


def test_analyze_interprocedural_flags_planted_bug(tmp_path, capsys):
    bad = tmp_path / "planted.py"
    bad.write_text(PLANTED_INTERPROCEDURAL)
    assert main(["analyze", "--interprocedural", "--path", str(bad)]) == 1
    out = capsys.readouterr().out
    assert "missing-flush" in out
    # the witness chain names the frames the store flowed through
    assert "plant_persist" in out and "plant_store" in out


def test_analyze_deep_json_golden_snapshot(capsys):
    """Clean-tree golden envelope: the deep analysis over the real source
    must report exactly nothing, in the schema-versioned shape CI diffs."""
    import json
    import pathlib

    baseline = pathlib.Path(__file__).parents[1] / "ANALYZE_BASELINE.json"
    assert main(["analyze", "--interprocedural", "--coverage",
                 "--baseline", str(baseline), "--json"]) == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload == {
        "schema": "repro-analyze/v1",
        "ok": True,
        "sections": {"interprocedural": [], "coverage": [], "baseline": []},
        "counts": {"interprocedural": 0, "coverage": 0, "baseline": 0},
    }


def test_analyze_baseline_accepts_known_and_flags_drift(tmp_path, capsys):
    import json

    from repro.analysis import analyze_paths

    bad = tmp_path / "planted.py"
    bad.write_text(PLANTED_INTERPROCEDURAL)
    fps = sorted({f.fingerprint()
                  for f in analyze_paths([bad]).findings})
    assert fps  # the plant fired

    # new finding vs an empty baseline: fail
    empty = tmp_path / "empty.json"
    empty.write_text(json.dumps({"fingerprints": []}))
    assert main(["analyze", "--interprocedural", "--path", str(bad),
                 "--baseline", str(empty)]) == 1
    assert "new" in capsys.readouterr().out

    # the same finding accepted in the baseline: pass
    known = tmp_path / "known.json"
    known.write_text(json.dumps({"fingerprints": fps}))
    assert main(["analyze", "--interprocedural", "--path", str(bad),
                 "--baseline", str(known)]) == 0
    assert "baseline: matches" in capsys.readouterr().out

    # a stale entry (finding since fixed): fail until it is deleted
    stale = tmp_path / "stale.json"
    stale.write_text(json.dumps({"fingerprints": fps + ["gone//x.py//f"]}))
    assert main(["analyze", "--interprocedural", "--path", str(bad),
                 "--baseline", str(stale)]) == 1
    assert "stale" in capsys.readouterr().out


def test_analyze_metrics_export(tmp_path, capsys):
    import json

    bad = tmp_path / "planted.py"
    bad.write_text(PLANTED_INTERPROCEDURAL)
    out_file = tmp_path / "metrics.jsonl"
    assert main(["analyze", "--interprocedural", "--path", str(bad),
                 "--metrics-out", str(out_file)]) == 1
    capsys.readouterr()
    samples = [json.loads(line)
               for line in out_file.read_text().splitlines()]
    by_key = {(s["name"], tuple(sorted(s["labels"].items()))): s["value"]
              for s in samples}
    assert by_key[("analysis.findings.total",
                   (("section", "interprocedural"),))] == 1
    assert by_key[("analysis.findings",
                   (("rule", "missing-flush"),
                    ("section", "interprocedural")))] == 1


def test_analyze_trace_strict_epochs(capsys):
    assert main(["analyze", "--trace", "--strict-epochs",
                 "--steps", "2"]) == 0
    out = capsys.readouterr().out
    assert "ordering trace: clean" in out
    assert "[strict-epochs]" in out
    assert "epoch(s) opened+closed" in out
