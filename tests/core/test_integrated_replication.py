"""Replication integrated into the persist path (the §3.4 user switch)."""


from repro.config import OCTANT_RECORD_SIZE
from repro.core.replication import ReplicaStore, restore_from_replica
from repro.nvbm.pointers import NULL_HANDLE
from repro.octree import morton


def test_persist_ships_automatically(rig):
    t = rig.tree
    shipped = []
    replica = t.enable_replication(on_ship=shipped.append)
    for leaf in list(t.leaves()):
        t.refine(leaf)
    t.persist(transform=False)
    assert shipped == [5 * OCTANT_RECORD_SIZE]
    assert len(replica.records) == 5
    # a second persist with one change ships only the delta
    t.set_payload(sorted(t.leaves())[0], (1.0, 0, 0, 0))
    t.persist(transform=False)
    assert shipped[-1] == 2 * OCTANT_RECORD_SIZE  # leaf + root rewritten


def test_disabled_by_default(rig):
    assert rig.tree.replica is None
    rig.tree.refine(morton.ROOT_LOC)
    rig.tree.persist()  # must not try to ship anywhere


def test_replica_recovers_full_simulation_state(rig):
    from repro.config import SolverConfig
    from repro.solver.simulation import DropletSimulation

    t = rig.tree
    replica = t.enable_replication()
    sim = DropletSimulation(
        t, SolverConfig(dim=2, min_level=2, max_level=4, dt=0.01),
        clock=rig.clock, persistence=lambda s: s.tree.persist(),
    )
    sim.run(5)
    sig = {loc: t.get_payload(loc) for loc in t.leaves()}
    # the node is gone; rebuild from the replica on fresh arenas
    from repro.config import DRAM_SPEC, NVBM_SPEC
    from repro.nvbm.arena import MemoryArena
    from repro.nvbm.clock import SimClock
    from repro.nvbm.pointers import ARENA_DRAM, ARENA_NVBM

    clock = SimClock()
    t2 = restore_from_replica(
        replica,
        MemoryArena(ARENA_DRAM, DRAM_SPEC, clock, 1 << 14),
        MemoryArena(ARENA_NVBM, NVBM_SPEC, clock, 1 << 16),
        dim=2,
    )
    assert {loc: t2.get_payload(loc) for loc in t2.leaves()} == sig


def test_external_replica_object_accepted(rig):
    mine = ReplicaStore()
    got = rig.tree.enable_replication(replica=mine)
    assert got is mine
    rig.tree.refine(morton.ROOT_LOC)
    rig.tree.persist(transform=False)
    assert mine.root != NULL_HANDLE
