"""Copy-on-write versioning semantics (§3.2, Fig 4)."""


from repro.nvbm.pointers import is_nvbm
from repro.octree import morton


def _persisted_two_levels(rig):
    """Uniform level-2 tree, persisted (so everything is shared in NVBM)."""
    t = rig.tree
    for leaf in list(t.leaves()):
        t.refine(leaf)
    for leaf in list(t.leaves()):
        t.refine(leaf)
    t.persist(transform=False)
    return t


def test_persist_moves_everything_to_nvbm(rig):
    t = _persisted_two_levels(rig)
    assert all(is_nvbm(h) for h in t._index.values())
    assert t.overlap_ratio() == 1.0


def test_update_shared_octant_cows_path(rig):
    t = _persisted_two_levels(rig)
    before = t.stats.cow_copies
    leaf = morton.loc_from_coords(2, (3, 3), 2)
    old_handle = t.handle_of(leaf)
    t.set_payload(leaf, (9.0, 0.0, 0.0, 0.0))
    # leaf + its level-1 parent + root copied (Fig 4b)
    assert t.stats.cow_copies - before == 3
    assert t.handle_of(leaf) != old_handle
    # the old record still holds the old payload for V_{i-1}
    assert rig.nvbm.read_octant(old_handle).payload[0] == 0.0
    assert t.get_payload(leaf)[0] == 9.0
    t.check_invariants()


def test_second_update_same_leaf_is_in_place(rig):
    t = _persisted_two_levels(rig)
    leaf = morton.loc_from_coords(2, (1, 2), 2)
    t.set_payload(leaf, (1.0, 0, 0, 0))
    copies = t.stats.cow_copies
    h = t.handle_of(leaf)
    t.set_payload(leaf, (2.0, 0, 0, 0))
    assert t.stats.cow_copies == copies  # no further copies
    assert t.handle_of(leaf) == h


def test_update_sibling_shares_copied_ancestors(rig):
    t = _persisted_two_levels(rig)
    a = morton.loc_from_coords(2, (0, 0), 2)
    b = morton.loc_from_coords(2, (1, 0), 2)  # same level-1 parent
    t.set_payload(a, (1.0, 0, 0, 0))
    copies = t.stats.cow_copies  # 3: leaf, parent, root
    t.set_payload(b, (1.0, 0, 0, 0))
    # parent and root already current-epoch: only the sibling leaf copies
    assert t.stats.cow_copies - copies == 1


def test_insert_into_shared_tree_propagates(rig):
    """Fig 4a: inserting octants below a shared leaf copies the root path."""
    t = _persisted_two_levels(rig)
    before = t.stats.cow_copies
    leaf = morton.loc_from_coords(2, (2, 1), 2)
    kids = t.refine(leaf)
    assert t.stats.cow_copies - before == 3  # leaf + parent + root
    assert len(kids) == 4
    # the new children are current-epoch NVBM records
    for k in kids:
        rec = t.get_record(k)
        assert rec.epoch == t.epoch
    t.check_invariants()


def test_old_version_not_mutated_by_refine(rig):
    t = _persisted_two_levels(rig)
    prev_root = rig.nvbm.roots.get("V_prev")
    prev_set = t.reachable_from(prev_root)
    leaf = morton.loc_from_coords(2, (0, 3), 2)
    t.refine(leaf)
    # every handle V_{i-1} could reach is still allocated and its leaf is
    # still a leaf from V_{i-1}'s perspective
    assert t.reachable_from(prev_root) == prev_set
    old_leaf_handles = [
        h for h in prev_set if rig.nvbm.read_octant(h).loc == leaf
    ]
    assert len(old_leaf_handles) == 1
    assert rig.nvbm.read_octant(old_leaf_handles[0]).is_leaf


def test_coarsen_shared_children_keeps_them_for_vprev(rig):
    t = _persisted_two_levels(rig)
    parent = morton.loc_from_coords(1, (0, 0), 2)
    child_handles = [
        t.handle_of(c) for c in morton.children_of(parent, 2)
    ]
    t.coarsen(parent)
    # children gone from working version
    assert all(not t.exists(c) for c in morton.children_of(parent, 2))
    # but their records survive for V_{i-1}
    for h in child_handles:
        assert rig.nvbm.contains(h)
        assert not rig.nvbm.read_octant(h).is_deleted
    prev_set = t.reachable_from(rig.nvbm.roots.get("V_prev"))
    assert set(child_handles) <= prev_set
    t.check_invariants()


def test_coarsen_unshared_children_marked_deleted(rig):
    t = _persisted_two_levels(rig)
    leaf = morton.loc_from_coords(2, (3, 0), 2)
    kids = t.refine(leaf)  # current-epoch children
    kid_handles = [t.handle_of(k) for k in kids]
    deleted_before = t.stats.marked_deleted
    t.coarsen(leaf)
    assert t.stats.marked_deleted - deleted_before == 4
    for h in kid_handles:
        assert rig.nvbm.read_octant(h).is_deleted  # marked, not freed
        assert rig.nvbm.contains(h)  # §3.2: real deletion only in GC


def test_overlap_ratio_declines_with_updates(rig):
    t = _persisted_two_levels(rig)
    assert t.overlap_ratio() == 1.0
    ratios = [1.0]
    for x in range(4):
        t.set_payload(morton.loc_from_coords(2, (x, 0), 2), (1.0, 0, 0, 0))
        ratios.append(t.overlap_ratio())
    assert ratios == sorted(ratios, reverse=True)
    assert ratios[-1] < 1.0


def test_cow_only_tracks_two_versions(rig):
    """After persist, superseded records get marked and GC reclaims them:
    memory does not grow with the number of persisted versions."""
    t = _persisted_two_levels(rig)
    t.gc()
    baseline = rig.nvbm.used
    leaf = morton.loc_from_coords(2, (2, 2), 2)
    for step in range(5):
        t.set_payload(leaf, (float(step), 0, 0, 0))
        t.persist(transform=False)
        t.gc()
    # steady state: only V_{i-1} == V_i remains (all shared)
    assert rig.nvbm.used == baseline
