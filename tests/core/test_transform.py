"""Dynamic layout transformation with feature-directed sampling (§3.3)."""


from repro.core.transform import (
    candidate_roots,
    detect_and_transform,
    sample_frequency,
    subtree_level,
)
from repro.nvbm.pointers import is_dram
from repro.octree import morton
from tests.core.conftest import PMRig


def _persisted(levels=3, dram=4096, **kw):
    rig = PMRig(dram_octants=dram, **kw)
    t = rig.tree
    for _ in range(levels):
        for leaf in list(t.leaves()):
            t.refine(leaf)
    t.persist(transform=False)
    return rig, t


def _hot_region_feature(hot_quadrant):
    """Feature: cells inside one level-1 quadrant are interesting."""

    def fn(loc, payload):
        level = morton.level_of(loc, 2)
        if level == 0:
            return True
        return morton.ancestor_at(loc, 2, 1) == hot_quadrant

    return fn


def test_subtree_level_eq1():
    rig, t = _persisted(levels=3, dram=16)
    # depth 3, fanout 4, dram 16 -> L_sub = 3 - log4(16) = 1
    assert subtree_level(t) == 1
    rig2, t2 = _persisted(levels=3, dram=4096)
    # log4(4096) = 6 > depth: clamps to 0 (whole tree is one candidate)
    assert subtree_level(t2) == 0


def test_candidate_roots():
    rig, t = _persisted(levels=2)
    assert candidate_roots(t, 0) == [morton.ROOT_LOC]
    lvl1 = candidate_roots(t, 1)
    assert sorted(lvl1) == sorted(morton.children_of(morton.ROOT_LOC, 2))


def test_sample_frequency_reflects_features():
    rig, t = _persisted(levels=3, dram=16)
    hot = morton.loc_from_coords(1, (0, 0), 2)
    t.register_feature(_hot_region_feature(hot))
    import numpy as np

    rng = np.random.default_rng(0)
    f_hot, size_hot = sample_frequency(t, hot, rng)
    cold = morton.loc_from_coords(1, (1, 1), 2)
    f_cold, size_cold = sample_frequency(t, cold, rng)
    assert size_hot == size_cold == 21  # 1 + 4 + 16
    assert f_hot > f_cold
    assert f_cold == 0.0


def test_no_features_no_transformation():
    rig, t = _persisted(levels=3, dram=32)
    res = detect_and_transform(t)
    assert not res.transformed
    assert t.c0_size() == 0


def test_hot_subtree_loaded_into_dram():
    rig, t = _persisted(levels=3, dram=32)
    hot = morton.loc_from_coords(1, (1, 0), 2)
    t.register_feature(_hot_region_feature(hot))
    res = detect_and_transform(t)
    assert hot in res.loaded
    assert hot in t._c0_roots
    # every octant of the hot subtree is now DRAM-resident
    for loc in t._index:
        if loc != morton.ROOT_LOC and morton.level_of(loc, 2) >= 1:
            in_hot = morton.ancestor_at(loc, 2, 1) == hot
            assert is_dram(t.handle_of(loc)) == in_hot
    t.check_invariants()


def test_transformation_respects_capacity():
    # DRAM too small for any level-1 subtree (21 octants)
    rig, t = _persisted(levels=3, dram=16)
    hot = morton.loc_from_coords(1, (0, 1), 2)
    t.register_feature(_hot_region_feature(hot))
    res = detect_and_transform(t)
    assert res.loaded == []
    t.check_invariants()


def test_hot_swap_replaces_cold_subtree():
    """When the feature moves, the old C0 subtree is evicted for the new."""
    rig, t = _persisted(levels=3, dram=30)  # room for exactly one subtree
    a = morton.loc_from_coords(1, (0, 0), 2)
    b = morton.loc_from_coords(1, (1, 1), 2)
    t.features = [_hot_region_feature(a)]
    detect_and_transform(t)
    assert a in t._c0_roots
    # the application moves on: now b is hot
    t.features = [_hot_region_feature(b)]
    res = detect_and_transform(t)
    assert a in res.evicted
    assert b in res.loaded
    assert list(t._c0_roots) == [b]
    t.check_invariants()


def test_ratio_threshold_blocks_marginal_swaps():
    """Equal heat on both sides -> Ratio_access ~ 1 < T_transform: no swap."""
    rig, t = _persisted(levels=3, dram=30)
    t.register_feature(lambda loc, p: True)  # everything equally hot
    detect_and_transform(t)
    first = list(t._c0_roots)
    res = detect_and_transform(t)
    assert not res.evicted  # nothing clearly hotter than the resident tree
    assert list(t._c0_roots) == first


def test_transformation_runs_inside_persist():
    rig, t = _persisted(levels=3, dram=32)
    hot = morton.loc_from_coords(1, (0, 0), 2)
    t.register_feature(_hot_region_feature(hot))
    t.persist(transform=True)
    assert t.stats.transformations >= 1
    assert hot in t._c0_roots
    t.check_invariants()


def test_transformation_reduces_nvbm_writes():
    """The Fig 5/11 mechanism: with the hot subtree in DRAM, a refinement
    burst there writes far less NVBM."""

    def run(transform: bool) -> int:
        rig, t = _persisted(levels=3, dram=32)
        hot = morton.loc_from_coords(1, (0, 0), 2)
        t.register_feature(_hot_region_feature(hot))
        if transform:
            detect_and_transform(t)
        w0 = rig.nvbm.device.stats.writes
        for leaf in sorted(t.leaves()):
            if morton.level_of(leaf, 2) >= 1 and morton.ancestor_at(leaf, 2, 1) == hot:
                t.set_payload(leaf, (1.0, 0, 0, 0))
        return rig.nvbm.device.stats.writes - w0

    oblivious = run(transform=False)
    aware = run(transform=True)
    assert aware == 0  # all served from DRAM
    assert oblivious > 16
