"""Property-based stress: random op sequences never break the invariants.

Hypothesis drives arbitrary interleavings of refine / coarsen / payload
writes / persist / GC / crash+restore and checks, after every persist or
recovery, that the working version equals an independently-maintained model
tree and that invariants I1-I3 hold.
"""

import numpy as np
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.octree import morton
from repro.octree.store import validate_tree
from tests.core.conftest import PMRig

MAX_LEVEL = 4


class ModelTree:
    """Reference implementation: plain dicts, no persistence tricks."""

    def __init__(self):
        self.payloads = {morton.ROOT_LOC: (0.0, 0.0, 0.0, 0.0)}
        self.leaves = {morton.ROOT_LOC}
        self.persisted = None

    def refine(self, loc):
        self.leaves.discard(loc)
        for c in morton.children_of(loc, 2):
            self.leaves.add(c)
            self.payloads[c] = self.payloads[loc]

    def coarsen(self, loc):
        for c in morton.children_of(loc, 2):
            self.leaves.discard(c)
            del self.payloads[c]
        self.leaves.add(loc)

    def set_payload(self, loc, payload):
        self.payloads[loc] = payload

    def snapshot(self):
        # internal-node payloads matter too: a later coarsen re-exposes them
        self.persisted = (dict(self.payloads), set(self.leaves))

    def rollback(self):
        payloads, leaves = self.persisted
        self.payloads = dict(payloads)
        self.leaves = set(leaves)


def _signature(tree):
    return {loc: tree.get_payload(loc) for loc in tree.leaves()}


op = st.sampled_from(["refine", "coarsen", "payload", "persist", "gc", "crash"])


@settings(
    max_examples=40,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(ops=st.lists(st.tuples(op, st.integers(0, 10_000)), max_size=40))
def test_random_ops_preserve_consistency(ops):
    rig = PMRig(dram_octants=128, nvbm_octants=1 << 14)
    t = rig.tree
    model = ModelTree()
    persisted_once = False

    for kind, pick in ops:
        if kind == "refine":
            candidates = sorted(
                leaf for leaf in model.leaves if morton.level_of(leaf, 2) < MAX_LEVEL
            )
            if not candidates:
                continue
            loc = candidates[pick % len(candidates)]
            t.refine(loc)
            model.refine(loc)
        elif kind == "coarsen":
            # parents whose children are all leaves
            parents = sorted(
                {
                    morton.parent_of(leaf, 2)
                    for leaf in model.leaves
                    if leaf != morton.ROOT_LOC
                }
            )
            parents = [
                p for p in parents
                if all(c in model.leaves for c in morton.children_of(p, 2))
            ]
            if not parents:
                continue
            loc = parents[pick % len(parents)]
            t.coarsen(loc)
            model.coarsen(loc)
        elif kind == "payload":
            leaves = sorted(model.leaves)
            loc = leaves[pick % len(leaves)]
            payload = (float(pick), 0.0, 0.0, 0.0)
            t.set_payload(loc, payload)
            model.set_payload(loc, payload)
        elif kind == "persist":
            t.persist(transform=False)
            model.snapshot()
            persisted_once = True
            assert _signature(t) == {leaf: model.payloads[leaf] for leaf in model.leaves}
            t.check_invariants()
        elif kind == "gc":
            t.gc()
        elif kind == "crash":
            if not persisted_once:
                continue
            rig.crash(seed=pick)
            t = rig.restore()
            model.rollback()
            assert _signature(t) == {leaf: model.payloads[leaf] for leaf in model.leaves}
            t.check_invariants()

    # final audit
    assert {leaf for leaf in t.leaves()} == model.leaves
    validate_tree(t)
    t.check_invariants()
    t.gc()
    t.check_invariants()
