"""PR 4 correctness fixes: coarsen over C0 children, unmetered inspection,
heap-based eviction cost.

The coarsen reproducer is the headline bug: coarsening an NVBM parent whose
children were brought into DRAM by ``load_subtree`` (each a size-1 C0
subtree root, legal under I1) used to treat the DRAM handles as NVBM
records and corrupt the tree.
"""

import dataclasses

import pytest

from repro.core.merge import load_subtree
from repro.errors import ReproError
from repro.nvbm.pointers import is_dram, is_nvbm
from repro.octree import morton
from tests.core.conftest import PMRig


def _nvbm_tree(levels=1, **kwargs):
    """A persisted tree: everything in NVBM, C0 empty."""
    rig = PMRig(**kwargs)
    t = rig.tree
    for _ in range(levels):
        for leaf in list(t.leaves()):
            t.refine(leaf)
    t.persist(transform=False, keep_resident=False)
    return rig


# -- coarsen over DRAM-resident C0 children ---------------------------------


def test_coarsen_nvbm_parent_with_c0_children():
    """The reproducer: NVBM parent, every child a DRAM C0 subtree root."""
    rig = _nvbm_tree(levels=2)
    t = rig.tree
    parent = morton.children_of(morton.ROOT_LOC, t.dim)[0]
    child_locs = morton.children_of(parent, t.dim)
    for cloc in child_locs:
        assert load_subtree(t, cloc)
        assert is_dram(t.handle_of(cloc))
    dram_used = rig.dram.used
    assert dram_used == len(child_locs)

    t.coarsen(parent)

    assert t.is_leaf(parent)
    assert is_nvbm(t.handle_of(parent))
    for cloc in child_locs:
        assert not t.exists(cloc)
        assert cloc not in t._c0_roots
        assert cloc not in t._origin
    assert rig.dram.used == 0  # C0 copies freed immediately
    t.check_invariants()


def test_coarsen_mixed_dram_and_nvbm_children():
    """Only some children resident: both paths in one coarsen call."""
    rig = _nvbm_tree(levels=2)
    t = rig.tree
    parent = morton.children_of(morton.ROOT_LOC, t.dim)[1]
    child_locs = morton.children_of(parent, t.dim)
    resident = child_locs[:2]
    for cloc in resident:
        assert load_subtree(t, cloc)
    t.coarsen(parent)
    assert t.is_leaf(parent)
    assert rig.dram.used == 0
    t.check_invariants()


def test_coarsen_c0_children_then_persist_and_recover():
    """The corruption only surfaced at the next persist/recovery; the fixed
    path must survive a full persist -> crash -> restore cycle."""
    rig = _nvbm_tree(levels=2)
    t = rig.tree
    parent = morton.children_of(morton.ROOT_LOC, t.dim)[2]
    for cloc in morton.children_of(parent, t.dim):
        assert load_subtree(t, cloc)
    t.coarsen(parent)
    t.persist(transform=False)
    t.check_invariants()
    before = sorted(t._index)
    rig.crash(seed=3)
    restored = rig.restore()
    restored.check_invariants()
    assert sorted(restored._index) == before


def test_coarsen_still_rejects_internal_children():
    rig = _nvbm_tree(levels=2)
    t = rig.tree
    with pytest.raises(ReproError):
        t.coarsen(morton.ROOT_LOC)  # children are internal octants


# -- unmetered inspection ----------------------------------------------------


def test_unmetered_inspection():
    """Structural queries are measurement probes: no simulated time, no
    device traffic — on either arena."""
    rig = _nvbm_tree(levels=2)
    t = rig.tree
    # mixed residency so every query walks both arenas
    assert load_subtree(t, morton.children_of(morton.ROOT_LOC, t.dim)[0])
    before_ns = rig.clock.now_ns
    before_dram = dataclasses.replace(rig.dram.device.stats)
    before_nvbm = dataclasses.replace(rig.nvbm.device.stats)

    ratio = t.overlap_ratio()
    t.check_invariants()
    t.reachable_from(t.nvbm.roots._slots.get("current", 0))

    assert 0.0 <= ratio <= 1.0
    assert rig.clock.now_ns == before_ns
    assert rig.dram.device.stats == before_dram
    assert rig.nvbm.device.stats == before_nvbm


def test_inspection_does_not_pollute_obs():
    from repro.obs import Observability

    rig = _nvbm_tree(levels=1)
    obs = Observability()
    rig.tree.attach_obs(obs)
    rig.dram.attach_obs(obs)
    rig.nvbm.attach_obs(obs)
    rig.tree.overlap_ratio()
    rig.tree.check_invariants()
    assert obs.metrics.total("device.reads") == 0
    assert obs.metrics.total("device.lines_touched") == 0


# -- heap-based LFU eviction -------------------------------------------------


class _CountedAccess:
    """An ``accesses`` value whose comparisons are counted: the heap tuples
    ``(accesses, root)`` compare these first, so every heap comparison in
    ``_ensure_dram_capacity`` shows up in ``count``."""

    count = 0

    def __init__(self, value):
        self.value = value

    def _cmp(self, other):
        type(self).count += 1
        return self.value, other.value

    def __lt__(self, other):
        a, b = self._cmp(other)
        return a < b

    def __le__(self, other):
        a, b = self._cmp(other)
        return a <= b

    def __gt__(self, other):
        a, b = self._cmp(other)
        return a > b

    def __eq__(self, other):
        if not isinstance(other, _CountedAccess):
            return NotImplemented
        a, b = self._cmp(other)
        return a == b

    def __hash__(self):
        return hash(self.value)

    def __add__(self, other):  # _touch_c0 bumps accesses
        return _CountedAccess(self.value + other)


def test_eviction_uses_heap_not_resort():
    """k evictions over n C0 roots must cost O(n + k log n) comparisons —
    the old code re-sorted every iteration, O(k * n log n)."""
    rig = _nvbm_tree(levels=3, dram_octants=80, dram_capacity_octants=80)
    t = rig.tree
    level2 = [
        loc for loc in t._index
        if morton.level_of(loc, t.dim) == 2 and not t.is_leaf(loc)
    ]
    assert len(level2) == 16
    for loc in sorted(level2):
        assert load_subtree(t, loc)  # 5 octants each: 16 roots, 80 octants
    assert len(t._c0_roots) == 16 and rig.dram.used == 80

    # interleaved access counts (a fixed permutation of 0..15): sorted runs
    # would let timsort re-sort in O(n), hiding the re-sort-per-victim cost
    for i, root in enumerate(sorted(t._c0_roots)):
        t._c0_roots[root].accesses = _CountedAccess((i * 7) % 16)
    _CountedAccess.count = 0
    before_ev = t.stats.evictions

    assert t._ensure_dram_capacity(20)  # forces exactly 4 LFU evictions

    assert t.stats.evictions - before_ev == 4
    assert rig.dram.used == 60
    # the four least-accessed roots went first
    survivors = {t._c0_roots[r].accesses.value for r in t._c0_roots}
    assert survivors == set(range(4, 16))
    # n=16, k=4: one heapify (~2n) plus k pops (~2 log n each) lands around
    # 80 comparisons; re-sorting per victim costs > 300 on this permutation
    assert _CountedAccess.count < 150
    t.check_invariants()
