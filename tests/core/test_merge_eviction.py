"""C0 eviction under DRAM pressure and sharing-aware merging."""


from repro.nvbm.pointers import is_nvbm
from repro.octree import morton
from repro.octree.store import validate_tree
from tests.core.conftest import PMRig


def test_dram_pressure_triggers_eviction():
    rig = PMRig(dram_octants=64, threshold_dram=0.1)
    t = rig.tree
    # refine until well past 64 octants: evictions must kick in
    for _ in range(3):
        for leaf in list(t.leaves()):
            t.refine(leaf)
    assert t.num_octants() == 85
    assert t.stats.evictions >= 1
    assert rig.dram.used <= 64
    assert rig.nvbm.used > 0
    validate_tree(t)
    t.check_invariants()


def test_tree_larger_than_dram_still_works():
    rig = PMRig(dram_octants=32)
    t = rig.tree
    for _ in range(4):
        for leaf in list(t.leaves()):
            t.refine(leaf)
    assert t.num_octants() == 341
    validate_tree(t)
    t.check_invariants()
    t.persist(transform=False)
    t.check_invariants()


def test_lfu_eviction_prefers_cold_subtree():

    rig = PMRig(dram_octants=4096)
    t = rig.tree
    for _ in range(3):
        for leaf in list(t.leaves()):
            t.refine(leaf)
    t.persist(transform=False)
    # load two disjoint level-1 subtrees into C0
    from repro.core.merge import load_subtree

    a = morton.loc_from_coords(1, (0, 0), 2)
    b = morton.loc_from_coords(1, (1, 1), 2)
    assert load_subtree(t, a)
    assert load_subtree(t, b)
    # heat subtree b only
    for leaf in sorted(t.leaves()):
        if morton.ancestor_at(leaf, 2, 1) == b:
            t.get_payload(leaf)
    # force one eviction
    t._ensure_dram_capacity(rig.dram.capacity - rig.dram.used + 1)
    assert a not in t._c0_roots  # cold one went
    assert b in t._c0_roots
    t.check_invariants()


def test_merge_reuses_clean_octants():
    """Un-dirtied C0 octants re-link to their NVBM origins: no new writes."""
    from repro.core.merge import load_subtree

    rig = PMRig()
    t = rig.tree
    for _ in range(2):
        for leaf in list(t.leaves()):
            t.refine(leaf)
    t.persist(transform=False)
    t.gc()
    used_before = rig.nvbm.used
    sub = morton.loc_from_coords(1, (0, 0), 2)
    assert load_subtree(t, sub)
    # touch exactly one leaf
    dirty_leaf = morton.loc_from_coords(2, (0, 0), 2)
    t.set_payload(dirty_leaf, (3.0, 0, 0, 0))
    t.persist(transform=False)
    t.gc()
    # steady state: only the dirty leaf + its ancestors were rewritten, the
    # other octants of the subtree are shared with V_{i-1}... which is now
    # V_i too, so usage returns to the baseline
    assert rig.nvbm.used == used_before
    assert t.get_payload(dirty_leaf)[0] == 3.0
    t.check_invariants()


def test_merge_writes_proportional_to_dirt():
    """NVBM write count at persist scales with dirtied octants, not C0 size."""
    from repro.core.merge import load_subtree

    rig = PMRig()
    t = rig.tree
    for _ in range(3):
        for leaf in list(t.leaves()):
            t.refine(leaf)
    t.persist(transform=False)

    def persist_writes(n_dirty):
        sub = morton.loc_from_coords(1, (0, 0), 2)
        assert load_subtree(t, sub)
        leaves = sorted(
            loc for loc in t.leaves() if morton.ancestor_at(loc, 2, 1) == sub
        )
        for leaf in leaves[:n_dirty]:
            t.set_payload(leaf, (float(n_dirty), 0, 0, 0))
        w0 = rig.nvbm.device.stats.writes
        t.persist(transform=False)
        return rig.nvbm.device.stats.writes - w0

    small = persist_writes(1)
    large = persist_writes(12)
    assert small < large
    assert small < 20  # roughly path-length, nowhere near subtree size


def test_eviction_of_protected_subtree_falls_back_to_nvbm():
    """When even the octant's own subtree cannot stay, refinement proceeds
    through the NVBM path."""
    rig = PMRig(dram_octants=8, threshold_dram=0.0)
    t = rig.tree
    for _ in range(3):
        for leaf in list(t.leaves()):
            t.refine(leaf)
    assert t.num_octants() == 85
    assert is_nvbm(t.handle_of(morton.ROOT_LOC)) or rig.dram.used <= 8
    validate_tree(t)
    t.check_invariants()


def test_persist_after_heavy_adaptation():
    rig = PMRig(dram_octants=128)
    t = rig.tree
    for _ in range(3):
        for leaf in list(t.leaves()):
            t.refine(leaf)
    t.persist(transform=False)
    # coarsen one quadrant, refine another, persist again
    for parent in sorted(
        loc for loc in list(t._index)
        if morton.level_of(loc, 2) == 2
        and morton.ancestor_at(loc, 2, 1) == morton.loc_from_coords(1, (0, 0), 2)
        and not t.is_leaf(loc)
    ):
        t.coarsen(parent)
    t.persist(transform=False)
    t.gc()
    validate_tree(t)
    t.check_invariants()
