"""Multi-failure recovery drivers: every §3.4 scenario plus the compound
failures — host-then-replica loss, concurrent host+peer loss, mandatory
re-replication after every recovery."""

from dataclasses import replace

from repro.config import PMOctreeConfig, TITAN
from repro.core.api import pm_create
from repro.core.recovery import Degraded, Recovered, recover_host, reprotect
from repro.core.replication import choose_replica_peer
from repro.parallel.cluster import SimulatedCluster
from repro.parallel.faults import NetworkFaultPlan

ONE_PER_NODE = replace(TITAN, cores_per_node=1)
PMCFG = PMOctreeConfig(dram_capacity_octants=2048)


def _sig(tree):
    return {loc: tuple(tree.get_payload(loc)) for loc in tree.leaves()}


def _cluster_with_host(nranks=4, fault_plan=None):
    cluster = SimulatedCluster(nranks, spec=ONE_PER_NODE,
                               fault_plan=fault_plan)
    ctx = cluster.ranks[0]
    tree = pm_create(ctx.resources["dram"], ctx.resources["nvbm"], dim=2,
                     config=PMCFG, injector=ctx.injector)
    for _ in range(2):
        for leaf in list(tree.leaves()):
            tree.refine(leaf)
    for i, leaf in enumerate(sorted(tree.leaves())):
        tree.set_payload(leaf, (float(i), 0.0, 0.0, 0.0))
    tree.persist(transform=False)
    return cluster, tree


def _protect(cluster, tree, host=0):
    session, peer, detail = reprotect(cluster, tree, host)
    assert session is not None, detail
    return session, peer


def test_reprotect_picks_live_peer_and_ships_full():
    cluster, tree = _cluster_with_host()
    session, peer = _protect(cluster, tree)
    assert peer == choose_replica_peer(cluster, 0)
    assert session.protected
    assert tree.replicator is session  # future persists ship automatically


def test_host_reboot_restores_locally_and_reprotects():
    cluster, tree = _cluster_with_host()
    session, peer = _protect(cluster, tree)
    persisted = _sig(tree)
    cluster.kill_node(0)
    rec = recover_host(cluster, 0, replica=session.replica,
                       replica_peer=peer, host_node_returns=True,
                       config=PMCFG)
    assert isinstance(rec, Recovered) and not rec.degraded
    assert rec.kind == "local" and rec.host_rank == 0
    assert _sig(rec.tree) == persisted
    assert rec.protected and rec.session.protected  # mandatory re-replication
    assert cluster.ranks[rec.replica_peer].alive


def test_host_reboot_survives_replica_loss_too():
    """Host-loss-then-replica-loss: the local NVBM path needs no replica."""
    cluster, tree = _cluster_with_host()
    session, peer = _protect(cluster, tree)
    persisted = _sig(tree)
    cluster.kill_node(cluster.ranks[peer].node)   # replica gone first
    cluster.kill_node(0)                          # then the host
    rec = recover_host(cluster, 0, replica=session.replica,
                       replica_peer=peer, host_node_returns=True,
                       config=PMCFG)
    assert not rec.degraded and rec.kind == "local"
    assert _sig(rec.tree) == persisted
    assert rec.protected
    assert rec.replica_peer != peer               # reprotected elsewhere


def test_host_gone_recovers_from_replica_on_peer():
    cluster, tree = _cluster_with_host()
    session, peer = _protect(cluster, tree)
    persisted = _sig(tree)
    cluster.kill_node(0)
    rec = recover_host(cluster, 0, replica=session.replica,
                       replica_peer=peer, host_node_returns=False,
                       config=PMCFG)
    assert not rec.degraded and rec.kind == "replica"
    assert rec.host_rank == peer                  # peer now serves the tree
    assert _sig(rec.tree) == persisted
    rec.tree.check_invariants()
    assert rec.protected and rec.replica_peer not in (None, peer)


def test_concurrent_host_and_peer_loss_degrades_gracefully():
    cluster, tree = _cluster_with_host()
    session, peer = _protect(cluster, tree)
    cluster.kill_node(cluster.ranks[peer].node)
    cluster.kill_node(0)
    rec = recover_host(cluster, 0, replica=session.replica,
                       replica_peer=peer, host_node_returns=False,
                       config=PMCFG)
    assert isinstance(rec, Degraded) and rec.degraded
    assert "replica peer died with the host" in rec.reason
    assert 0 in rec.lost_ranks and peer in rec.lost_ranks
    assert rec.snapshot_restart


def test_host_gone_with_nothing_shipped_degrades():
    cluster, tree = _cluster_with_host()
    cluster.kill_node(0)
    rec = recover_host(cluster, 0, replica=None, replica_peer=None,
                       host_node_returns=False, config=PMCFG)
    assert rec.degraded
    assert "no replica was ever shipped" in rec.reason


def test_recovery_without_any_live_peer_is_unprotected_not_fatal():
    cluster, tree = _cluster_with_host(nranks=2)
    session, peer = _protect(cluster, tree)
    assert peer == 1
    cluster.kill_node(0)
    # only the replica peer remains: recovery serves from it, but there is
    # no third node to re-replicate onto — recovered yet unprotected
    rec = recover_host(cluster, 0, replica=session.replica,
                       replica_peer=peer, host_node_returns=False,
                       config=PMCFG)
    assert not rec.degraded and rec.kind == "replica"
    assert not rec.protected
    assert "no live peer" in rec.detail


def test_reprotect_over_faulty_network_uses_faulty_transport():
    from repro.core.replication import FaultyTransport

    cluster, tree = _cluster_with_host(
        fault_plan=NetworkFaultPlan(seed=0))
    session, peer = _protect(cluster, tree)
    assert isinstance(session.transport, FaultyTransport)
    assert session.transport.peer_rank == peer


def test_persist_after_recovery_keeps_shipping():
    cluster, tree = _cluster_with_host()
    session, peer = _protect(cluster, tree)
    cluster.kill_node(0)
    rec = recover_host(cluster, 0, replica=session.replica,
                       replica_peer=peer, host_node_returns=True,
                       config=PMCFG)
    t = rec.tree
    t.set_payload(sorted(t.leaves())[0], (42.0, 0.0, 0.0, 0.0))
    t.persist(transform=False)                    # auto-ships via session
    assert rec.session.protected


def test_outcomes_are_reported_never_raised():
    """A ReplicaSession that cannot converge must yield an unprotected
    Recovered, not leak ReplicationTimeoutError out of recover_host."""
    cluster, tree = _cluster_with_host()
    session, peer = _protect(cluster, tree)
    cluster.kill_node(0)
    rec = recover_host(cluster, 0, replica=session.replica,
                       replica_peer=peer, host_node_returns=True,
                       config=PMCFG, break_acks=True)
    assert not rec.degraded
    assert not rec.protected
    assert "timed out" in rec.detail
